#include "btree/verbtree.h"

#include <algorithm>
#include <cassert>

#include "util/backoff.h"

namespace cbat {

VerBTree::VerBTree() {
  head_leaf_ = new Leaf;
  root_.store(head_leaf_, std::memory_order_release);
  track(head_leaf_);
}

VerBTree::~VerBTree() {
  for (NodeBase* n : all_nodes_mu_protected_) {
    if (n->leaf) {
      delete static_cast<Leaf*>(n);
    } else {
      delete static_cast<Inner*>(n);
    }
  }
}

void VerBTree::track(NodeBase* n) {
  std::lock_guard<std::mutex> g(nodes_mu_);
  all_nodes_mu_protected_.push_back(n);
}

std::uint64_t VerBTree::stable_version(const NodeBase* n) {
  Backoff bo;
  std::uint64_t v = n->version.load(std::memory_order_acquire);
  while (is_locked(v)) {
    bo.pause();
    v = n->version.load(std::memory_order_acquire);
  }
  return v;
}

bool VerBTree::try_lock(NodeBase* n, std::uint64_t expected) {
  if (is_locked(expected)) return false;
  return n->version.compare_exchange_strong(expected, expected + 1,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire);
}

void VerBTree::unlock(NodeBase* n) {
  n->version.fetch_add(1, std::memory_order_release);  // odd -> even
}

int VerBTree::child_index(const Inner* n, Key k) {
  // children[i] covers keys < keys[i]; the last child covers the rest.
  int i = 0;
  while (i < n->count && k >= n->keys[i]) ++i;
  return i;
}

int VerBTree::leaf_lower_bound(const Leaf* n, Key k) {
  int i = 0;
  while (i < n->count && n->keys[i] < k) ++i;
  return i;
}

void VerBTree::grow_root(NodeBase* old_root) {
  // Caller holds root_mu_ and old_root's write lock and has verified
  // root_ == old_root.  Splits old_root under a brand-new root.
  auto* new_root = new Inner;
  track(new_root);
  if (old_root->leaf) {
    auto* l = static_cast<Leaf*>(old_root);
    auto* r = new Leaf;
    track(r);
    const int half = l->count / 2;
    r->count = l->count - half;
    std::copy(l->keys + half, l->keys + l->count, r->keys);
    l->count = half;
    r->next.store(l->next.load(std::memory_order_acquire),
                  std::memory_order_release);
    l->next.store(r, std::memory_order_release);
    new_root->count = 1;
    new_root->keys[0] = r->keys[0];
    new_root->children[0] = l;
    new_root->children[1] = r;
  } else {
    auto* n = static_cast<Inner*>(old_root);
    auto* r = new Inner;
    track(r);
    const int mid = n->count / 2;  // separator key moves up
    const Key sep = n->keys[mid];
    r->count = n->count - mid - 1;
    std::copy(n->keys + mid + 1, n->keys + n->count, r->keys);
    std::copy(n->children + mid + 1, n->children + n->count + 1, r->children);
    n->count = mid;
    new_root->count = 1;
    new_root->keys[0] = sep;
    new_root->children[0] = n;
    new_root->children[1] = r;
  }
  root_.store(new_root, std::memory_order_release);
}

void VerBTree::split_inner(Inner* parent, int child_slot, Inner* child) {
  // Caller holds write locks on parent and child; parent is not full.
  auto* r = new Inner;
  track(r);
  const int mid = child->count / 2;
  const Key sep = child->keys[mid];
  r->count = child->count - mid - 1;
  std::copy(child->keys + mid + 1, child->keys + child->count, r->keys);
  std::copy(child->children + mid + 1, child->children + child->count + 1,
            r->children);
  child->count = mid;
  // Insert separator + new child into the parent at child_slot.
  for (int i = parent->count; i > child_slot; --i) {
    parent->keys[i] = parent->keys[i - 1];
    parent->children[i + 1] = parent->children[i];
  }
  parent->keys[child_slot] = sep;
  parent->children[child_slot + 1] = r;
  ++parent->count;
}

void VerBTree::split_leaf(Inner* parent, int child_slot, Leaf* child) {
  // Caller holds write locks on parent and child; parent is not full.
  auto* r = new Leaf;
  track(r);
  const int half = child->count / 2;
  r->count = child->count - half;
  std::copy(child->keys + half, child->keys + child->count, r->keys);
  child->count = half;
  r->next.store(child->next.load(std::memory_order_acquire),
                std::memory_order_release);
  child->next.store(r, std::memory_order_release);
  for (int i = parent->count; i > child_slot; --i) {
    parent->keys[i] = parent->keys[i - 1];
    parent->children[i + 1] = parent->children[i];
  }
  parent->keys[child_slot] = r->keys[0];
  parent->children[child_slot + 1] = r;
  ++parent->count;
}

bool VerBTree::insert(Key k) {
  assert(k <= kMaxUserKey);
  Backoff bo;
restart:
  NodeBase* n = root_.load(std::memory_order_acquire);
  std::uint64_t v = stable_version(n);
  if (n != root_.load(std::memory_order_acquire)) goto restart;

  // Root full?  Grow the tree by one level (rare).
  {
    const bool root_full = n->leaf
                               ? static_cast<Leaf*>(n)->count == kLeafCap
                               : static_cast<Inner*>(n)->count == kFanout;
    if (root_full) {
      std::lock_guard<std::mutex> g(root_mu_);
      if (root_.load(std::memory_order_acquire) == n && try_lock(n, v)) {
        grow_root(n);
        unlock(n);
      }
      bo.pause();
      goto restart;
    }
  }

  {
    Inner* parent = nullptr;
    std::uint64_t vparent = 0;
    int slot = 0;
    while (!n->leaf) {
      auto* inner = static_cast<Inner*>(n);
      const int i = child_index(inner, k);
      NodeBase* child = inner->children[i];
      const std::uint64_t vc = stable_version(child);
      if (n->version.load(std::memory_order_acquire) != v) goto restart;
      // Proactively split full children so leaf splits never cascade.
      const bool child_full =
          child->leaf ? static_cast<Leaf*>(child)->count == kLeafCap
                      : static_cast<Inner*>(child)->count == kFanout;
      if (child_full) {
        if (!try_lock(n, v)) {
          bo.pause();
          goto restart;
        }
        if (!try_lock(child, vc)) {
          unlock(n);
          bo.pause();
          goto restart;
        }
        if (child->leaf) {
          split_leaf(inner, i, static_cast<Leaf*>(child));
        } else {
          split_inner(inner, i, static_cast<Inner*>(child));
        }
        unlock(child);
        unlock(n);
        goto restart;
      }
      parent = inner;
      vparent = v;
      slot = i;
      n = child;
      v = vc;
    }
    (void)parent;
    (void)vparent;
    (void)slot;

    auto* leaf = static_cast<Leaf*>(n);
    // Leaf is not full (proactive splitting and the root check guarantee it).
    const int pos = leaf_lower_bound(leaf, k);
    if (pos < leaf->count && leaf->keys[pos] == k) {
      // Validate the read before declaring "already present".
      if (n->version.load(std::memory_order_acquire) != v) goto restart;
      return false;
    }
    if (!try_lock(n, v)) {
      bo.pause();
      goto restart;
    }
    // Re-find position under the lock (contents may have changed between
    // the optimistic read and the upgrade only if version changed, in which
    // case try_lock failed; still, recompute for clarity).
    const int p2 = leaf_lower_bound(leaf, k);
    if (p2 < leaf->count && leaf->keys[p2] == k) {
      unlock(n);
      return false;
    }
    for (int i = leaf->count; i > p2; --i) leaf->keys[i] = leaf->keys[i - 1];
    leaf->keys[p2] = k;
    ++leaf->count;
    unlock(n);
    return true;
  }
}

bool VerBTree::erase(Key k) {
  assert(k <= kMaxUserKey);
  Backoff bo;
restart:
  NodeBase* n = root_.load(std::memory_order_acquire);
  std::uint64_t v = stable_version(n);
  if (n != root_.load(std::memory_order_acquire)) goto restart;
  while (!n->leaf) {
    auto* inner = static_cast<Inner*>(n);
    NodeBase* child = inner->children[child_index(inner, k)];
    const std::uint64_t vc = stable_version(child);
    if (n->version.load(std::memory_order_acquire) != v) goto restart;
    n = child;
    v = vc;
  }
  auto* leaf = static_cast<Leaf*>(n);
  const int pos = leaf_lower_bound(leaf, k);
  if (pos >= leaf->count || leaf->keys[pos] != k) {
    if (n->version.load(std::memory_order_acquire) != v) goto restart;
    return false;
  }
  if (!try_lock(n, v)) {
    bo.pause();
    goto restart;
  }
  const int p2 = leaf_lower_bound(leaf, k);
  if (p2 >= leaf->count || leaf->keys[p2] != k) {
    unlock(n);
    return false;
  }
  for (int i = p2; i + 1 < leaf->count; ++i) leaf->keys[i] = leaf->keys[i + 1];
  --leaf->count;
  unlock(n);
  return true;
}

bool VerBTree::contains(Key k) const {
  assert(k <= kMaxUserKey);
  Backoff bo;
restart:
  NodeBase* n = root_.load(std::memory_order_acquire);
  std::uint64_t v = stable_version(n);
  if (n != root_.load(std::memory_order_acquire)) goto restart;
  while (!n->leaf) {
    auto* inner = static_cast<Inner*>(n);
    NodeBase* child = inner->children[child_index(inner, k)];
    const std::uint64_t vc = stable_version(child);
    if (n->version.load(std::memory_order_acquire) != v) {
      bo.pause();
      goto restart;
    }
    n = child;
    v = vc;
  }
  auto* leaf = static_cast<const Leaf*>(n);
  const int pos = leaf_lower_bound(leaf, k);
  const bool found = pos < leaf->count && leaf->keys[pos] == k;
  if (n->version.load(std::memory_order_acquire) != v) {
    bo.pause();
    goto restart;
  }
  return found;
}

const VerBTree::Leaf* VerBTree::locate_leaf(Key k,
                                            std::uint64_t* leaf_version) const {
  Backoff bo;
restart:
  NodeBase* n = root_.load(std::memory_order_acquire);
  std::uint64_t v = stable_version(n);
  if (n != root_.load(std::memory_order_acquire)) goto restart;
  while (!n->leaf) {
    auto* inner = static_cast<Inner*>(n);
    NodeBase* child = inner->children[child_index(inner, k)];
    const std::uint64_t vc = stable_version(child);
    if (n->version.load(std::memory_order_acquire) != v) {
      bo.pause();
      goto restart;
    }
    n = child;
    v = vc;
  }
  *leaf_version = v;
  return static_cast<const Leaf*>(n);
}

std::int64_t VerBTree::range_count(Key lo, Key hi) const {
  if (lo > hi) return 0;
  std::uint64_t v;
  const Leaf* leaf = locate_leaf(lo, &v);
  std::int64_t total = 0;
  Backoff bo;
  while (leaf != nullptr) {
    // Seqlock-validated per-leaf read.
    std::int64_t c = 0;
    bool done = false;
    const Leaf* next;
    while (true) {
      c = 0;
      next = leaf->next.load(std::memory_order_acquire);
      int count = leaf->count;
      if (count > kLeafCap) count = kLeafCap;  // torn read; will re-validate
      bool past_hi = false;
      for (int i = 0; i < count; ++i) {
        const Key key = leaf->keys[i];
        if (key > hi) {
          past_hi = true;
          break;
        }
        if (key >= lo) ++c;
      }
      if (leaf->version.load(std::memory_order_acquire) == v &&
          !is_locked(v)) {
        done = past_hi;
        break;
      }
      bo.pause();
      v = stable_version(leaf);
    }
    total += c;
    if (done || next == nullptr) break;
    leaf = next;
    v = stable_version(leaf);
  }
  return total;
}

std::vector<Key> VerBTree::range_collect(Key lo, Key hi,
                                         std::size_t limit) const {
  std::vector<Key> out;
  if (lo > hi) return out;
  std::uint64_t v;
  const Leaf* leaf = locate_leaf(lo, &v);
  Backoff bo;
  while (leaf != nullptr) {
    std::vector<Key> chunk;
    bool done = false;
    const Leaf* next;
    while (true) {
      chunk.clear();
      next = leaf->next.load(std::memory_order_acquire);
      int count = leaf->count;
      if (count > kLeafCap) count = kLeafCap;
      bool past_hi = false;
      for (int i = 0; i < count; ++i) {
        const Key key = leaf->keys[i];
        if (key > hi) {
          past_hi = true;
          break;
        }
        if (key >= lo) chunk.push_back(key);
      }
      if (leaf->version.load(std::memory_order_acquire) == v &&
          !is_locked(v)) {
        done = past_hi;
        break;
      }
      bo.pause();
      v = stable_version(leaf);
    }
    out.insert(out.end(), chunk.begin(), chunk.end());
    if (limit > 0 && out.size() >= limit) {
      out.resize(limit);
      break;
    }
    if (done || next == nullptr) break;
    leaf = next;
    v = stable_version(leaf);
  }
  return out;
}

std::int64_t VerBTree::rank(Key k) const {
  // Brute force: scan the chain from the head counting keys <= k, as the
  // paper prescribes for unaugmented structures.
  return range_count(std::numeric_limits<Key>::min(), k);
}

std::int64_t VerBTree::size() const {
  return range_count(std::numeric_limits<Key>::min(), kMaxUserKey);
}

std::optional<Key> VerBTree::select(std::int64_t i) const {
  if (i < 1) return std::nullopt;
  std::uint64_t v;
  const Leaf* leaf = locate_leaf(std::numeric_limits<Key>::min(), &v);
  std::int64_t seen = 0;
  Backoff bo;
  while (leaf != nullptr) {
    Key keys[kLeafCap];
    int count;
    const Leaf* next;
    while (true) {
      next = leaf->next.load(std::memory_order_acquire);
      count = leaf->count;
      if (count > kLeafCap) count = kLeafCap;
      std::copy(leaf->keys, leaf->keys + count, keys);
      if (leaf->version.load(std::memory_order_acquire) == v &&
          !is_locked(v)) {
        break;
      }
      bo.pause();
      v = stable_version(leaf);
    }
    if (seen + count >= i) return keys[i - seen - 1];
    seen += count;
    if (next == nullptr) break;
    leaf = next;
    v = stable_version(leaf);
  }
  return std::nullopt;
}

int VerBTree::height_slow() const {
  int h = 0;
  const NodeBase* n = root_.load(std::memory_order_acquire);
  while (!n->leaf) {
    n = static_cast<const Inner*>(n)->children[0];
    ++h;
  }
  return h;
}

}  // namespace cbat
