// VerBTree: the high-fanout concurrent B+tree baseline standing in for
// Verlib's B-tree (Blelloch & Wei, PPoPP 2024) — paper Table 1's
// "VerlibBTree", fanout 4-22.
//
// Design: a B+tree (fanout 16) with *optimistic lock coupling*: readers
// descend without locks, validating per-node seqlock versions; writers
// upgrade to a per-node spinlock at the leaf (plus the parent when
// splitting).  Full inner nodes are split proactively during the descent so
// a split never propagates more than one level.  Leaves are chained for
// range scans; leaves and inner nodes are never deallocated (no merges —
// deletes only empty leaves), so no reclamation is needed.
//
// Substitution note (see DESIGN.md §3): Verlib achieves snapshot range
// queries with versioned pointers; we substitute per-leaf-atomic seqlock
// scans.  The cost profile the paper compares against — cache-friendly
// high-fanout point operations and Θ(range) range queries — is preserved.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "util/keys.h"

namespace cbat {

class VerBTree {
 public:
  static constexpr int kFanout = 16;   // max keys per inner node
  static constexpr int kLeafCap = 16;  // max keys per leaf

  VerBTree();
  ~VerBTree();
  VerBTree(const VerBTree&) = delete;
  VerBTree& operator=(const VerBTree&) = delete;

  bool insert(Key k);
  bool erase(Key k);
  bool contains(Key k) const;

  std::int64_t size() const;                        // Theta(n) chain scan
  std::int64_t rank(Key k) const;                   // Theta(rank)
  std::optional<Key> select(std::int64_t i) const;  // Theta(i)
  std::int64_t range_count(Key lo, Key hi) const;   // Theta(range)
  std::vector<Key> range_collect(Key lo, Key hi, std::size_t limit = 0) const;

  int height_slow() const;

 private:
  struct NodeBase {
    // shared: per-node seqlock word; the payload it versions shares the
    // line on purpose so a read is one cache fill.
    std::atomic<std::uint64_t> version{0};  // seqlock; odd = write-locked
    const bool leaf;
    explicit NodeBase(bool is_leaf) : leaf(is_leaf) {}
  };

  struct Inner : NodeBase {
    Inner() : NodeBase(false) {}
    int count = 0;  // number of separator keys; count+1 children
    Key keys[kFanout];
    NodeBase* children[kFanout + 1] = {};
  };

  struct Leaf : NodeBase {
    Leaf() : NodeBase(true) {}
    int count = 0;
    Key keys[kLeafCap];
    // shared: per-leaf link, same tradeoff as the version word above.
    std::atomic<Leaf*> next{nullptr};
  };

  // --- seqlock helpers ----------------------------------------------------
  static bool is_locked(std::uint64_t v) { return v & 1; }
  static std::uint64_t stable_version(const NodeBase* n);  // spins past locks
  static bool try_lock(NodeBase* n, std::uint64_t expected);
  static void unlock(NodeBase* n);

  static int child_index(const Inner* n, Key k);
  static int leaf_lower_bound(const Leaf* n, Key k);

  void split_inner(Inner* parent, int child_slot, Inner* child);
  void split_leaf(Inner* parent, int child_slot, Leaf* child);
  void grow_root(NodeBase* old_root);

  // Locates the leaf whose range covers k and returns it with a validated
  // version; retries internally on conflicts.
  const Leaf* locate_leaf(Key k, std::uint64_t* leaf_version) const;

  // shared: read-mostly root pointer; replaced only under root_mu_.
  std::atomic<NodeBase*> root_;
  Leaf* head_leaf_;       // leftmost leaf, never replaced
  std::mutex root_mu_;    // serializes root replacement only
  std::vector<NodeBase*> all_nodes_mu_protected_;  // for the destructor
  std::mutex nodes_mu_;
  void track(NodeBase* n);
};

}  // namespace cbat
