// BundledTree: lock-based internal BST with timestamped "bundles" on its
// edges, standing in for the BundledCitrusTree baseline (Nelson-Slivon,
// Hassan, Palmieri — PPoPP 2022; paper Table 1: lock-based, unbalanced,
// fanout 2, linearizable range queries).
//
// Every child pointer and every node's logical-presence flag is a bundle: a
// timestamped version list (we reuse the vCAS version-list machinery, which
// implements the same idea).  Updates take per-node locks and push new
// bundle entries; range queries take a snapshot timestamp and traverse the
// tree "as of" that time, so they are linearizable and cost Θ(range +
// height) like the original.
//
// Substitution notes (DESIGN.md §3): deletions are logical (presence flag)
// and the physical structure is append-only, where Citrus unlinks nodes
// under RCU.  Structure nodes are freed by the destructor; superseded
// bundle entries are truncated past the oldest active snapshot exactly as
// in VcasBST.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "reclamation/ebr.h"
#include "util/keys.h"
#include "vcasbst/vcas.h"

namespace cbat {

class BundledTree {
 public:
  BundledTree();
  ~BundledTree();
  BundledTree(const BundledTree&) = delete;
  BundledTree& operator=(const BundledTree&) = delete;

  bool insert(Key k);
  bool erase(Key k);
  bool contains(Key k) const;

  std::int64_t size() const;
  std::int64_t rank(Key k) const;                   // Theta(rank)
  std::optional<Key> select(std::int64_t i) const;  // Theta(i)
  std::int64_t range_count(Key lo, Key hi) const;   // Theta(range)
  std::vector<Key> range_collect(Key lo, Key hi, std::size_t limit = 0) const;

  int height_slow() const;

 private:
  struct BNode {
    const Key key;
    std::mutex mu;
    VersionedPtr<BNode> child[2];
    VersionedPtr<void> present;  // (void*)1 = logically present

    BNode(Key k, bool pres) : key(k) {
      child[0].init(nullptr);
      child[1].init(nullptr);
      present.init(pres ? kPresentTag : nullptr);
    }
  };

  static inline void* const kPresentTag = reinterpret_cast<void*>(1);

  struct SnapshotScope {
    EbrGuard ebr;
    SnapshotRegistry::Guard reg;
    std::uint64_t ts;
    SnapshotScope() : reg(VcasClock::now()), ts(VcasClock::take_snapshot()) {}
  };

  // Newest-version traversal to the node holding k (or null) plus the last
  // node on the path (the attach parent when absent).
  BNode* find_node(Key k, BNode** parent, int* dir) const;

  std::int64_t count_rec(const BNode* n, std::uint64_t t, Key lo,
                         Key hi) const;
  void collect_rec(const BNode* n, std::uint64_t t, Key lo, Key hi,
                   std::vector<Key>* out, std::size_t limit) const;
  int height_rec(const BNode* n) const;

  BNode* root_;  // sentinel (key kInf2, never present, never removed)
};

}  // namespace cbat
