#include "bundled/bundled_tree.h"

#include <cassert>

namespace cbat {

BundledTree::BundledTree() { root_ = new BNode(kInf2, false); }

BundledTree::~BundledTree() {
  std::vector<BNode*> stack{root_};
  while (!stack.empty()) {
    BNode* n = stack.back();
    stack.pop_back();
    for (int d = 0; d < 2; ++d) {
      if (BNode* c = n->child[d].read()) stack.push_back(c);
    }
    delete n;
  }
  Ebr::drain();
}

BundledTree::BNode* BundledTree::find_node(Key k, BNode** parent,
                                           int* dir) const {
  BNode* p = nullptr;
  int d = 0;
  BNode* n = root_;
  while (n != nullptr && n->key != k) {
    p = n;
    d = k < n->key ? 0 : 1;
    n = n->child[d].read();
  }
  *parent = p;
  *dir = d;
  return n;
}

bool BundledTree::insert(Key k) {
  assert(k <= kMaxUserKey);
  EbrGuard g;
  while (true) {
    BNode* parent;
    int dir;
    BNode* n = find_node(k, &parent, &dir);
    if (n != nullptr) {
      // Node exists: flip the presence bundle if logically absent.
      std::lock_guard<std::mutex> lock(n->mu);
      if (n->present.read() == kPresentTag) return false;
      n->present.vcas(nullptr, kPresentTag);  // stamped at CAS time
      return true;
    }
    std::unique_lock<std::mutex> lock(parent->mu);
    if (parent->child[dir].read() != nullptr) continue;  // raced; retry
    auto* fresh = new BNode(k, true);
    parent->child[dir].vcas(nullptr, fresh);
    return true;
  }
}

bool BundledTree::erase(Key k) {
  assert(k <= kMaxUserKey);
  EbrGuard g;
  BNode* parent;
  int dir;
  BNode* n = find_node(k, &parent, &dir);
  if (n == nullptr) return false;
  std::lock_guard<std::mutex> lock(n->mu);
  if (n->present.read() != kPresentTag) return false;
  n->present.vcas(kPresentTag, nullptr);
  return true;
}

bool BundledTree::contains(Key k) const {
  assert(k <= kMaxUserKey);
  EbrGuard g;
  BNode* parent;
  int dir;
  BNode* n = find_node(k, &parent, &dir);
  return n != nullptr && n->present.read() == kPresentTag;
}

std::int64_t BundledTree::count_rec(const BNode* n, std::uint64_t t, Key lo,
                                    Key hi) const {
  if (n == nullptr) return 0;
  std::int64_t c = 0;
  if (!is_sentinel_key(n->key) && lo <= n->key && n->key <= hi &&
      n->present.read_at(t) == kPresentTag) {
    c = 1;
  }
  if (lo < n->key) c += count_rec(n->child[0].read_at(t), t, lo, hi);
  if (hi > n->key) c += count_rec(n->child[1].read_at(t), t, lo, hi);
  return c;
}

void BundledTree::collect_rec(const BNode* n, std::uint64_t t, Key lo, Key hi,
                              std::vector<Key>* out,
                              std::size_t limit) const {
  if (n == nullptr) return;
  if (limit > 0 && out->size() >= limit) return;
  if (lo < n->key) collect_rec(n->child[0].read_at(t), t, lo, hi, out, limit);
  if (limit > 0 && out->size() >= limit) return;
  if (!is_sentinel_key(n->key) && lo <= n->key && n->key <= hi &&
      n->present.read_at(t) == kPresentTag) {
    out->push_back(n->key);
  }
  if (hi > n->key) collect_rec(n->child[1].read_at(t), t, lo, hi, out, limit);
}

std::int64_t BundledTree::range_count(Key lo, Key hi) const {
  if (lo > hi) return 0;
  SnapshotScope s;
  return count_rec(root_, s.ts, lo, hi);
}

std::int64_t BundledTree::rank(Key k) const {
  SnapshotScope s;
  return count_rec(root_, s.ts, std::numeric_limits<Key>::min(), k);
}

std::int64_t BundledTree::size() const {
  SnapshotScope s;
  return count_rec(root_, s.ts, std::numeric_limits<Key>::min(), kMaxUserKey);
}

std::optional<Key> BundledTree::select(std::int64_t i) const {
  if (i < 1) return std::nullopt;
  SnapshotScope s;
  std::vector<Key> keys;
  collect_rec(root_, s.ts, std::numeric_limits<Key>::min(), kMaxUserKey,
              &keys, static_cast<std::size_t>(i));
  if (static_cast<std::int64_t>(keys.size()) < i) return std::nullopt;
  return keys[i - 1];
}

std::vector<Key> BundledTree::range_collect(Key lo, Key hi,
                                            std::size_t limit) const {
  std::vector<Key> out;
  if (lo > hi) return out;
  SnapshotScope s;
  collect_rec(root_, s.ts, lo, hi, &out, limit);
  return out;
}

int BundledTree::height_rec(const BNode* n) const {
  if (n == nullptr) return 0;
  return 1 + std::max(height_rec(n->child[0].read()),
                      height_rec(n->child[1].read()));
}

int BundledTree::height_slow() const {
  EbrGuard g;
  return height_rec(root_);
}

}  // namespace cbat
