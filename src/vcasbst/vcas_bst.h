// VcasBST baseline (Wei et al., PPoPP 2021): the EFRB non-blocking BST with
// versioned-CAS child pointers, giving O(1)-time snapshots.
//
// Range and order-statistic queries take a snapshot timestamp and traverse
// the tree "as of" that time, so a range query costs Θ(range + height) and
// a rank query Θ(rank + height) — exactly the brute-force behaviour the
// paper contrasts with BAT's O(height) augmented queries (§2, Fig. 6/7).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "reclamation/descriptor.h"
#include "reclamation/ebr.h"
#include "util/keys.h"
#include "vcasbst/vcas.h"

namespace cbat {

class VcasBst {
 public:
  VcasBst();
  ~VcasBst();
  VcasBst(const VcasBst&) = delete;
  VcasBst& operator=(const VcasBst&) = delete;

  bool insert(Key k);
  bool erase(Key k);
  bool contains(Key k) const;

  // Snapshot queries (linearized at the clock tick).
  std::int64_t size() const;
  std::int64_t rank(Key k) const;            // # keys <= k; Theta(rank)
  std::optional<Key> select(std::int64_t i) const;  // i-th smallest
  std::int64_t range_count(Key lo, Key hi) const;   // Theta(range)
  std::vector<Key> range_collect(Key lo, Key hi, std::size_t limit = 0) const;

  int height_slow() const;

  struct Info;  // operation descriptor; defined in vcas_bst.cpp

 private:
  struct VbNode {
    Key key;
    bool leaf;
    // shared: per-node word; see the padding tradeoff note in node.h.
    std::atomic<std::uintptr_t> update{0};
    VersionedPtr<VbNode> child[2];

    VbNode(Key k, bool is_leaf) : key(k), leaf(is_leaf) {}
    bool is_leaf() const { return leaf; }
  };

  struct SearchResult {
    VbNode* gp = nullptr;
    VbNode* p = nullptr;
    VbNode* l = nullptr;
    std::uintptr_t gpupdate = 0;
    std::uintptr_t pupdate = 0;
  };

  // Snapshot acquisition: announce before ticking so concurrent truncation
  // cannot cut versions this snapshot still needs.
  struct SnapshotScope {
    EbrGuard ebr;
    SnapshotRegistry::Guard reg;
    std::uint64_t ts;
    SnapshotScope()
        : reg(VcasClock::now()), ts(VcasClock::take_snapshot()) {}
  };

  SearchResult search(Key k) const;
  void help(std::uintptr_t w);
  void help_insert(Info* op);
  bool help_delete(Info* op);
  void help_marked(Info* op);
  void cas_child(VbNode* parent, VbNode* old_child, VbNode* new_child);

  static VbNode* mk_leaf(Key k) { return new VbNode(k, true); }
  static VbNode* mk_internal(Key k, VbNode* l, VbNode* r) {
    auto* n = new VbNode(k, false);
    n->child[0].init(l);
    n->child[1].init(r);
    return n;
  }
  static void node_deleter(void* p);
  static void retire_node(VbNode* n) { Ebr::retire(n, &node_deleter); }

  std::int64_t count_rec(const VbNode* n, std::uint64_t t, Key lo,
                         Key hi) const;
  void collect_rec(const VbNode* n, std::uint64_t t, Key lo, Key hi,
                   std::vector<Key>* out, std::size_t limit) const;
  int height_rec(const VbNode* n) const;

  VbNode* root_;
};

}  // namespace cbat
