// Versioned CAS objects (Wei, Ben-David, Blelloch, Fatourou, Ruppert, Sun —
// PPoPP 2021): the snapshotting substrate of the VcasBST baseline.
//
// A VersionedPtr behaves like an atomic pointer whose history is retained
// as a timestamped version list.  `read()` returns the newest value;
// `read_at(t)` returns the value as of global timestamp t, giving O(1)-time
// snapshots of a whole structure: take one clock tick, then read every
// pointer "as of" that tick.  Timestamps are assigned lazily (a version is
// stamped by the first operation that needs its timestamp), which is what
// makes the scheme constant-time.
//
// Version lists are truncated past the oldest announced snapshot (see
// SnapshotRegistry) and the cut-off chains are EBR-retired.
#pragma once

#include <atomic>
#include <cstdint>

#include "reclamation/ebr.h"
#include "reclamation/pool.h"
#include "reclamation/snapshot_registry.h"

namespace cbat {

// Global version clock.  Starts at 1 (0 is reserved by SnapshotRegistry).
class VcasClock {
 public:
  static std::uint64_t now() { return ts_.load(std::memory_order_seq_cst); }
  // Returns a snapshot timestamp t: all versions stamped <= t are visible,
  // all later writes get stamps > t.
  static std::uint64_t take_snapshot() {
    return ts_.fetch_add(1, std::memory_order_seq_cst);
  }

 private:
  inline static std::atomic<std::uint64_t> ts_{1};
};

template <class T>
class VersionedPtr {
 public:
  static constexpr std::uint64_t kTbd = ~0ULL;

  struct VNode {
    T* val;
    // shared: per-version words; version chains are numerous and small,
    // so padding would multiply memory, not reduce contention.
    std::atomic<std::uint64_t> ts;
    std::atomic<VNode*> next;
  };

  VersionedPtr() : head_(nullptr) {}

  // Not thread-safe; call before publishing the owning object.
  void init(T* v) {
    // relaxed: pre-publication store per the contract above.
    head_.store(pool_new<VNode>(v, VcasClock::now(), nullptr),
                std::memory_order_relaxed);
  }

  ~VersionedPtr() {
    // relaxed: destructor runs at quiescence; no concurrent access.
    VNode* n = head_.load(std::memory_order_relaxed);
    while (n != nullptr) {
      VNode* next = n->next.load(std::memory_order_relaxed);
      pool_delete(n);
      n = next;
    }
  }

  T* read() const {
    VNode* h = head_.load(std::memory_order_acquire);
    init_ts(h);
    return h->val;
  }

  // Value as of snapshot timestamp t.  The owning object must have existed
  // at t (otherwise the caller could not have navigated here at t).
  T* read_at(std::uint64_t t) const {
    VNode* n = head_.load(std::memory_order_acquire);
    init_ts(n);
    while (n->ts.load(std::memory_order_acquire) > t) {
      n = n->next.load(std::memory_order_acquire);
    }
    return n->val;
  }

  // Atomic compare-and-swap preserving history.
  bool vcas(T* expected, T* desired) {
    while (true) {
      VNode* h = head_.load(std::memory_order_acquire);
      init_ts(h);
      if (h->val != expected) return false;
      if (expected == desired) return true;
      auto* n = pool_new<VNode>(desired, kTbd, h);
      if (head_.compare_exchange_strong(h, n, std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        init_ts(n);
        truncate();
        return true;
      }
      pool_delete(n);
    }
  }

 private:
  static void init_ts(VNode* n) {
    std::uint64_t t = n->ts.load(std::memory_order_acquire);
    if (t == kTbd) {
      std::uint64_t now = VcasClock::now();
      n->ts.compare_exchange_strong(t, now, std::memory_order_acq_rel,
                                    std::memory_order_acquire);
    }
  }

  // Detaches and retires every version invisible to all current and future
  // snapshots: everything strictly after the first version whose timestamp
  // is <= the oldest announced snapshot.  Only one truncation may run per
  // pointer at a time (trunc_busy_): two concurrent walks could otherwise
  // capture overlapping tails and double-retire; losers simply skip — the
  // next vcas will truncate.  The walk must start from the *current* head
  // (read after taking the flag): any older starting point may itself
  // already sit on a detached-and-retired tail.
  void truncate() {
    if (trunc_busy_.exchange(true, std::memory_order_acquire)) return;
    VNode* n = head_.load(std::memory_order_acquire);
    const std::uint64_t m = SnapshotRegistry::min_active(VcasClock::now());
    while (true) {
      const std::uint64_t t = n->ts.load(std::memory_order_acquire);
      if (t != kTbd && t <= m) break;
      VNode* next = n->next.load(std::memory_order_acquire);
      if (next == nullptr) {
        trunc_busy_.store(false, std::memory_order_release);
        return;
      }
      n = next;
    }
    VNode* chain = n->next.exchange(nullptr, std::memory_order_acq_rel);
    while (chain != nullptr) {
      VNode* next = chain->next.load(std::memory_order_acquire);
      pool_retire(chain);
      chain = next;
    }
    trunc_busy_.store(false, std::memory_order_release);
  }

  // shared: head_ rides in the owning node (per-node tradeoff);
  // trunc_busy_ is a rarely-contended single-writer election flag.
  std::atomic<VNode*> head_;
  std::atomic<bool> trunc_busy_{false};
};

}  // namespace cbat
