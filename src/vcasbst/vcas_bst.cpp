#include "vcasbst/vcas_bst.h"

#include <cassert>

#include "reclamation/pool.h"
#include "util/backoff.h"

namespace cbat {

namespace {
enum State : std::uintptr_t { kClean = 0, kIFlag = 1, kDFlag = 2, kMark = 3 };
inline State state_of(std::uintptr_t w) { return static_cast<State>(w & 3); }
inline std::uintptr_t ptr_bits(std::uintptr_t w) {
  return w & ~std::uintptr_t{3};
}
}  // namespace

struct VcasBst::Info : RefCountedDescriptor {
  bool is_insert = false;
  VbNode* p = nullptr;
  VbNode* new_internal = nullptr;
  VbNode* l = nullptr;
  VbNode* gp = nullptr;
  std::uintptr_t pupdate = 0;
};

namespace {
inline VcasBst::Info* info_of(std::uintptr_t w) {
  return reinterpret_cast<VcasBst::Info*>(ptr_bits(w));
}
inline std::uintptr_t pack(VcasBst::Info* i, State s) {
  return reinterpret_cast<std::uintptr_t>(i) | s;
}
}  // namespace

VcasBst::VcasBst() {
  root_ = mk_internal(kInf2, mk_leaf(kInf1), mk_leaf(kInf2));
}

VcasBst::~VcasBst() {
  std::vector<VbNode*> stack{root_};
  while (!stack.empty()) {
    VbNode* n = stack.back();
    stack.pop_back();
    if (!n->is_leaf()) {
      stack.push_back(n->child[0].read());
      stack.push_back(n->child[1].read());
    }
    node_deleter(n);
  }
  Ebr::drain();
}

void VcasBst::node_deleter(void* p) {
  auto* n = static_cast<VbNode*>(p);
  descriptor_unref(info_of(n->update.load(std::memory_order_acquire)));
  delete n;  // VersionedPtr destructors free remaining version chains
}

VcasBst::SearchResult VcasBst::search(Key k) const {
  SearchResult r;
  r.l = root_;
  while (!r.l->is_leaf()) {
    r.gp = r.p;
    r.gpupdate = r.pupdate;
    r.p = r.l;
    r.pupdate = r.p->update.load(std::memory_order_acquire);
    r.l = r.l->child[k < r.l->key ? 0 : 1].read();
  }
  return r;
}

bool VcasBst::contains(Key k) const {
  assert(k <= kMaxUserKey);
  EbrGuard g;
  VbNode* l = root_;
  while (!l->is_leaf()) l = l->child[k < l->key ? 0 : 1].read();
  return l->key == k;
}

bool VcasBst::insert(Key k) {
  assert(k <= kMaxUserKey);
  EbrGuard g;
  Backoff bo;
  while (true) {
    SearchResult s = search(k);
    if (s.l->key == k) return false;
    if (state_of(s.pupdate) != kClean) {
      help(s.pupdate);
      bo.pause();
      continue;
    }
    VbNode* nl = mk_leaf(k);
    VbNode* lc = mk_leaf(s.l->key);
    VbNode* ni = (k < s.l->key)
                     ? mk_internal(std::max(k, s.l->key), nl, lc)
                     : mk_internal(std::max(k, s.l->key), lc, nl);
    auto* op = pool_new<Info>();
    op->is_insert = true;
    op->p = s.p;
    op->new_internal = ni;
    op->l = s.l;
    std::uintptr_t expected = s.pupdate;
    if (s.p->update.compare_exchange_strong(expected, pack(op, kIFlag),
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      descriptor_ref(op);
      descriptor_retire_unref(info_of(s.pupdate));
      help_insert(op);
      descriptor_retire_unref(op);
      retire_node(s.l);
      return true;
    }
    descriptor_retire_unref(op);
    node_deleter(nl);
    node_deleter(lc);
    node_deleter(ni);
    help(expected);
    bo.pause();
  }
}

bool VcasBst::erase(Key k) {
  assert(k <= kMaxUserKey);
  EbrGuard g;
  Backoff bo;
  while (true) {
    SearchResult s = search(k);
    if (s.l->key != k) return false;
    if (state_of(s.gpupdate) != kClean) {
      help(s.gpupdate);
      bo.pause();
      continue;
    }
    if (state_of(s.pupdate) != kClean) {
      help(s.pupdate);
      bo.pause();
      continue;
    }
    auto* op = pool_new<Info>();
    op->is_insert = false;
    op->gp = s.gp;
    op->p = s.p;
    op->l = s.l;
    op->pupdate = s.pupdate;
    std::uintptr_t expected = s.gpupdate;
    if (s.gp->update.compare_exchange_strong(expected, pack(op, kDFlag),
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
      descriptor_ref(op);
      descriptor_retire_unref(info_of(s.gpupdate));
      const bool ok = help_delete(op);
      descriptor_retire_unref(op);
      if (ok) {
        retire_node(s.p);
        retire_node(s.l);
        return true;
      }
    } else {
      descriptor_retire_unref(op);
      help(expected);
    }
    bo.pause();
  }
}

void VcasBst::help(std::uintptr_t w) {
  Info* op = info_of(w);
  switch (state_of(w)) {
    case kIFlag:
      help_insert(op);
      break;
    case kMark:
      help_marked(op);
      break;
    case kDFlag:
      help_delete(op);
      break;
    case kClean:
      break;
  }
}

void VcasBst::cas_child(VbNode* parent, VbNode* old_child, VbNode* new_child) {
  for (int d = 0; d < 2; ++d) {
    if (parent->child[d].read() == old_child) {
      parent->child[d].vcas(old_child, new_child);
      return;
    }
  }
}

void VcasBst::help_insert(Info* op) {
  cas_child(op->p, op->l, op->new_internal);
  std::uintptr_t expected = pack(op, kIFlag);
  op->p->update.compare_exchange_strong(expected, pack(op, kClean),
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire);
}

bool VcasBst::help_delete(Info* op) {
  std::uintptr_t expected = op->pupdate;
  const std::uintptr_t marked = pack(op, kMark);
  if (op->p->update.compare_exchange_strong(expected, marked,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
    descriptor_ref(op);
    descriptor_retire_unref(info_of(op->pupdate));
    help_marked(op);
    return true;
  }
  if (expected == marked) {
    help_marked(op);
    return true;
  }
  help(expected);
  std::uintptr_t flagged = pack(op, kDFlag);
  op->gp->update.compare_exchange_strong(flagged, pack(op, kClean),
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
  return false;
}

void VcasBst::help_marked(Info* op) {
  VbNode* c0 = op->p->child[0].read();
  VbNode* sibling = (c0 == op->l) ? op->p->child[1].read() : c0;
  cas_child(op->gp, op->p, sibling);
  std::uintptr_t expected = pack(op, kDFlag);
  op->gp->update.compare_exchange_strong(expected, pack(op, kClean),
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
}

// --- snapshot queries --------------------------------------------------------

std::int64_t VcasBst::count_rec(const VbNode* n, std::uint64_t t, Key lo,
                                Key hi) const {
  if (n->is_leaf()) {
    return (!is_sentinel_key(n->key) && lo <= n->key && n->key <= hi) ? 1 : 0;
  }
  std::int64_t c = 0;
  if (lo < n->key) c += count_rec(n->child[0].read_at(t), t, lo, hi);
  if (hi >= n->key) c += count_rec(n->child[1].read_at(t), t, lo, hi);
  return c;
}

void VcasBst::collect_rec(const VbNode* n, std::uint64_t t, Key lo, Key hi,
                          std::vector<Key>* out, std::size_t limit) const {
  if (limit > 0 && out->size() >= limit) return;
  if (n->is_leaf()) {
    if (!is_sentinel_key(n->key) && lo <= n->key && n->key <= hi) {
      out->push_back(n->key);
    }
    return;
  }
  if (lo < n->key) collect_rec(n->child[0].read_at(t), t, lo, hi, out, limit);
  if (hi >= n->key) collect_rec(n->child[1].read_at(t), t, lo, hi, out, limit);
}

std::int64_t VcasBst::range_count(Key lo, Key hi) const {
  if (lo > hi) return 0;
  SnapshotScope s;
  return count_rec(root_, s.ts, lo, hi);
}

std::int64_t VcasBst::rank(Key k) const {
  SnapshotScope s;
  return count_rec(root_, s.ts, std::numeric_limits<Key>::min(), k);
}

std::int64_t VcasBst::size() const {
  SnapshotScope s;
  return count_rec(root_, s.ts, std::numeric_limits<Key>::min(), kMaxUserKey);
}

std::optional<Key> VcasBst::select(std::int64_t i) const {
  if (i < 1) return std::nullopt;
  SnapshotScope s;
  // In-order walk, stopping at the i-th key.
  std::int64_t seen = 0;
  std::optional<Key> found;
  // Explicit stack to avoid recursing with captured state.
  std::vector<const VbNode*> stack;
  const VbNode* n = root_;
  while (n != nullptr || !stack.empty()) {
    while (n != nullptr) {
      stack.push_back(n);
      n = n->is_leaf() ? nullptr : n->child[0].read_at(s.ts);
    }
    const VbNode* top = stack.back();
    stack.pop_back();
    if (top->is_leaf() && !is_sentinel_key(top->key)) {
      if (++seen == i) {
        found = top->key;
        break;
      }
    }
    n = top->is_leaf() ? nullptr : top->child[1].read_at(s.ts);
  }
  return found;
}

std::vector<Key> VcasBst::range_collect(Key lo, Key hi,
                                        std::size_t limit) const {
  std::vector<Key> out;
  if (lo > hi) return out;
  SnapshotScope s;
  collect_rec(root_, s.ts, lo, hi, &out, limit);
  return out;
}

int VcasBst::height_rec(const VbNode* n) const {
  if (n->is_leaf()) return 0;
  return 1 + std::max(height_rec(n->child[0].read()),
                      height_rec(n->child[1].read()));
}

int VcasBst::height_slow() const {
  EbrGuard g;
  return height_rec(root_);
}

}  // namespace cbat
