// FR-BST: the Fatourou–Ruppert lock-free augmented *unbalanced* BST
// (DISC 2024), the paper's principal augmented baseline (§3.2, Table 1).
//
// The node tree is the classic Ellen–Fatourou–Ruppert–van Breugel
// non-blocking leaf-oriented BST (PODC 2010): internal nodes carry an
// `update` word packing an operation state (CLEAN / IFLAG / DFLAG / MARK)
// with a pointer to an Info record; updates flag/mark the affected nodes
// with CAS and are helped to completion by anyone who encounters them.
//
// Augmentation follows §3.2: every node points to an immutable Version;
// updates Propagate along their recorded search path with a double Refresh
// per node.  Unlike BAT there are no rotations, so new internal nodes can
// be created with a ready version (their children's versions are known and
// final at creation time) and Propagate never needs to re-descend or fill
// nil versions.
//
// Queries reuse version_queries.h on the same Version<Aug> type as BAT.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/version.h"
#include "core/version_queries.h"
#include "reclamation/descriptor.h"
#include "reclamation/ebr.h"
#include "reclamation/pool.h"
#include "util/backoff.h"
#include "util/counters.h"
#include "util/keys.h"

namespace cbat {

namespace frbst_detail {

struct Info;  // forward

struct FrNode {
  Key key;
  // shared: per-node words; see the padding tradeoff note in
  // llxscx/node.h — contention diffuses across the tree.
  std::atomic<FrNode*> child[2];       // null for leaves
  std::atomic<std::uintptr_t> update;  // Info* | state (internal nodes)
  std::atomic<void*> version;

  FrNode(Key k, FrNode* l, FrNode* r) : key(k), update(0) {
    // relaxed: constructor stores; the node is private until the CAS
    // that links it in publishes with release ordering.
    child[0].store(l, std::memory_order_relaxed);
    child[1].store(r, std::memory_order_relaxed);
    version.store(nullptr, std::memory_order_relaxed);
  }
  bool is_leaf() const {
    return child[0].load(std::memory_order_acquire) == nullptr;
  }
};

// Update-word states (low 2 bits of the word).
enum State : std::uintptr_t { kClean = 0, kIFlag = 1, kDFlag = 2, kMark = 3 };

inline State state_of(std::uintptr_t w) { return static_cast<State>(w & 3); }
inline Info* info_of(std::uintptr_t w) {
  return reinterpret_cast<Info*>(w & ~std::uintptr_t{3});
}
inline std::uintptr_t pack(Info* i, State s) {
  return reinterpret_cast<std::uintptr_t>(i) | s;
}

struct Info : RefCountedDescriptor {
  bool is_insert = false;
  // IInfo fields
  FrNode* p = nullptr;
  FrNode* new_internal = nullptr;
  FrNode* l = nullptr;
  // DInfo extra fields
  FrNode* gp = nullptr;
  std::uintptr_t pupdate = 0;
};

}  // namespace frbst_detail

template <Augmentation Aug>
class FrBst {
 public:
  using AugValue = typename Aug::Value;
  using V = Version<Aug>;
  using FrNode = frbst_detail::FrNode;

  FrBst() {
    FrNode* l1 = mk_leaf(kInf1);
    FrNode* l2 = mk_leaf(kInf2);
    root_ = new FrNode(kInf2, l1, l2);
    // The root is internal; give it a ready version like any other
    // internal node created with known children.
    set_internal_version(root_, version_of(l1), version_of(l2));
  }

  FrBst(const FrBst&) = delete;
  FrBst& operator=(const FrBst&) = delete;

  ~FrBst() {
    std::vector<FrNode*> stack{root_};
    while (!stack.empty()) {
      FrNode* n = stack.back();
      stack.pop_back();
      if (!n->is_leaf()) {
        // relaxed: destructor walk at quiescence; no concurrent access.
        stack.push_back(n->child[0].load(std::memory_order_relaxed));
        stack.push_back(n->child[1].load(std::memory_order_relaxed));
      }
      node_deleter(n);
    }
    Ebr::drain();
  }

  // --- updates -------------------------------------------------------------

  bool insert(Key k) {
    assert(k <= kMaxUserKey);
    EbrGuard g;
    const bool result = do_insert(k);
    propagate(k);
    return result;
  }

  bool erase(Key k) {
    assert(k <= kMaxUserKey);
    EbrGuard g;
    const bool result = do_erase(k);
    propagate(k);
    return result;
  }

  // --- queries (same snapshot semantics as BAT) ---------------------------

  bool contains(Key k) const {
    EbrGuard g;
    return version_contains<Aug>(root_version(), k);
  }
  std::int64_t size() const
    requires SizedAugmentation<Aug>
  {
    EbrGuard g;
    return version_size<Aug>(root_version());
  }
  std::int64_t rank(Key k) const
    requires SizedAugmentation<Aug>
  {
    EbrGuard g;
    return version_rank<Aug>(root_version(), k);
  }
  std::optional<Key> select(std::int64_t i) const
    requires SizedAugmentation<Aug>
  {
    EbrGuard g;
    return version_select<Aug>(root_version(), i);
  }
  std::int64_t range_count(Key lo, Key hi) const
    requires SizedAugmentation<Aug>
  {
    EbrGuard g;
    return version_range_count<Aug>(root_version(), lo, hi);
  }
  AugValue range_aggregate(Key lo, Key hi) const {
    EbrGuard g;
    return version_range_aggregate<Aug>(root_version(), lo, hi);
  }
  std::vector<Key> range_collect(Key lo, Key hi, std::size_t limit = 0) const {
    EbrGuard g;
    std::vector<Key> out;
    version_collect_range<Aug>(root_version(), lo, hi, &out, limit);
    return out;
  }

  const V* root_version_unsafe() const { return root_version(); }

  // Height of the node tree (sequential; the whole point of BAT is that
  // this can degenerate to O(n) here while staying O(log n) there).
  int height_slow() const { return height_rec(root_); }

 private:
  using Info = frbst_detail::Info;
  static constexpr auto kClean = frbst_detail::kClean;
  static constexpr auto kIFlag = frbst_detail::kIFlag;
  static constexpr auto kDFlag = frbst_detail::kDFlag;
  static constexpr auto kMark = frbst_detail::kMark;

  static frbst_detail::State state_of(std::uintptr_t w) {
    return frbst_detail::state_of(w);
  }
  static Info* info_of(std::uintptr_t w) { return frbst_detail::info_of(w); }
  static std::uintptr_t pack(Info* i, frbst_detail::State s) {
    return frbst_detail::pack(i, s);
  }

  // --- node/version lifecycle ---------------------------------------------

  static V* version_of(const FrNode* n) {
    return static_cast<V*>(n->version.load(std::memory_order_acquire));
  }

  FrNode* mk_leaf(Key k) {
    auto* n = pool_new<FrNode>(k, nullptr, nullptr);
    auto* v = pool_new<V>(nullptr, nullptr, k,
                          is_sentinel_key(k) ? Aug::sentinel() : Aug::leaf(k),
                          nullptr);
    n->version.store(v, std::memory_order_release);
    return n;
  }

  static void set_internal_version(FrNode* n, V* vl, V* vr) {
    auto* v =
        pool_new<V>(vl, vr, n->key, Aug::combine(vl->aug, vr->aug), nullptr);
    n->version.store(v, std::memory_order_release);
  }

  static void node_deleter(void* p) {
    auto* n = static_cast<FrNode*>(p);
    auto* v = static_cast<V*>(n->version.load(std::memory_order_acquire));
    if (v != nullptr) pool_retire(v);
    descriptor_unref(
        info_of(n->update.load(std::memory_order_acquire)));
    pool_delete(n);
  }

  static void retire_node(FrNode* n) { Ebr::retire(n, &node_deleter); }

  // --- EFRB machinery -------------------------------------------------------

  struct SearchResult {
    FrNode* gp = nullptr;
    FrNode* p = nullptr;
    FrNode* l = nullptr;
    std::uintptr_t gpupdate = 0;
    std::uintptr_t pupdate = 0;
  };

  // Records the internal nodes visited in scratch().path for Propagate.
  SearchResult search(Key k, bool record_path) {
    SearchResult r;
    if (record_path) scratch().path.clear();
    r.l = root_;
    while (!r.l->is_leaf()) {
      r.gp = r.p;
      r.gpupdate = r.pupdate;
      r.p = r.l;
      r.pupdate = r.p->update.load(std::memory_order_acquire);
      if (record_path) scratch().path.push_back(r.p);
      r.l = r.l->child[k < r.l->key ? 0 : 1].load(std::memory_order_acquire);
    }
    return r;
  }

  bool do_insert(Key k) {
    Backoff bo;
    while (true) {
      SearchResult s = search(k, /*record_path=*/true);
      if (s.l->key == k) return false;
      if (state_of(s.pupdate) != kClean) {
        help(s.pupdate);
        bo.pause();
        continue;
      }
      FrNode* nl = mk_leaf(k);
      FrNode* lc = mk_leaf(s.l->key);
      FrNode* ni = (k < s.l->key)
                       ? pool_new<FrNode>(std::max(k, s.l->key), nl, lc)
                       : pool_new<FrNode>(std::max(k, s.l->key), lc, nl);
      // Both children are fresh leaves with final versions: the internal
      // node's version is computable right now (no nil versions in
      // FR-BST).  relaxed: ni is private until the CAS publishes it.
      set_internal_version(
          ni, version_of(ni->child[0].load(std::memory_order_relaxed)),
          version_of(ni->child[1].load(std::memory_order_relaxed)));
      auto* op = pool_new<Info>();
      op->is_insert = true;
      op->p = s.p;
      op->new_internal = ni;
      op->l = s.l;
      std::uintptr_t expected = s.pupdate;
      if (s.p->update.compare_exchange_strong(expected, pack(op, kIFlag),
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
        descriptor_ref(op);
        descriptor_retire_unref(info_of(s.pupdate));
        help_insert(op);
        descriptor_retire_unref(op);  // creator credit
        retire_node(s.l);             // replaced by its copy inside ni
        return true;
      }
      descriptor_retire_unref(op);  // never installed; credit sinks to zero
      node_deleter(nl);
      node_deleter(lc);
      node_deleter(ni);
      help(expected);
      bo.pause();
    }
  }

  bool do_erase(Key k) {
    Backoff bo;
    while (true) {
      SearchResult s = search(k, /*record_path=*/true);
      if (s.l->key != k) return false;
      if (state_of(s.gpupdate) != kClean) {
        help(s.gpupdate);
        bo.pause();
        continue;
      }
      if (state_of(s.pupdate) != kClean) {
        help(s.pupdate);
        bo.pause();
        continue;
      }
      auto* op = pool_new<Info>();
      op->is_insert = false;
      op->gp = s.gp;
      op->p = s.p;
      op->l = s.l;
      op->pupdate = s.pupdate;
      std::uintptr_t expected = s.gpupdate;
      if (s.gp->update.compare_exchange_strong(expected, pack(op, kDFlag),
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
        descriptor_ref(op);
        descriptor_retire_unref(info_of(s.gpupdate));
        const bool ok = help_delete(op);
        descriptor_retire_unref(op);  // creator credit
        if (ok) {
          retire_node(s.p);
          retire_node(s.l);
          return true;
        }
      } else {
        descriptor_retire_unref(op);
        help(expected);
      }
      bo.pause();
    }
  }

  void help(std::uintptr_t w) {
    Info* op = info_of(w);
    switch (state_of(w)) {
      case kIFlag:
        help_insert(op);
        break;
      case kMark:
        help_marked(op);
        break;
      case kDFlag:
        help_delete(op);
        break;
      case kClean:
        break;
    }
  }

  void cas_child(FrNode* parent, FrNode* old_child, FrNode* new_child) {
    for (int d = 0; d < 2; ++d) {
      FrNode* expected = old_child;
      if (parent->child[d].load(std::memory_order_acquire) == old_child) {
        parent->child[d].compare_exchange_strong(expected, new_child,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire);
        return;
      }
    }
  }

  void help_insert(Info* op) {
    cas_child(op->p, op->l, op->new_internal);
    std::uintptr_t expected = pack(op, kIFlag);
    op->p->update.compare_exchange_strong(expected, pack(op, kClean),
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
    // Same pointer, new state: no descriptor reference change.
  }

  bool help_delete(Info* op) {
    std::uintptr_t expected = op->pupdate;
    const std::uintptr_t marked = pack(op, kMark);
    if (op->p->update.compare_exchange_strong(expected, marked,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
      descriptor_ref(op);
      descriptor_retire_unref(info_of(op->pupdate));
      help_marked(op);
      return true;
    }
    if (expected == marked) {  // someone else marked for this same op
      help_marked(op);
      return true;
    }
    help(expected);
    // Backtrack: unflag the grandparent so the delete can retry.
    std::uintptr_t flagged = pack(op, kDFlag);
    op->gp->update.compare_exchange_strong(flagged, pack(op, kClean),
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire);
    return false;
  }

  void help_marked(Info* op) {
    // Splice p out: gp's child pointer moves from p to p's other child.
    FrNode* c0 = op->p->child[0].load(std::memory_order_acquire);
    FrNode* sibling =
        (c0 == op->l) ? op->p->child[1].load(std::memory_order_acquire) : c0;
    cas_child(op->gp, op->p, sibling);
    std::uintptr_t expected = pack(op, kDFlag);
    op->gp->update.compare_exchange_strong(expected, pack(op, kClean),
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire);
  }

  // --- FR propagation (§3.2): double refresh up the recorded path ---------

  struct Scratch {
    std::vector<FrNode*> path;
    std::vector<V*> to_retire;
  };
  static Scratch& scratch() {
    thread_local Scratch s;
    return s;
  }

  V* root_version() const {
    return static_cast<V*>(root_->version.load(std::memory_order_acquire));
  }

  // One refresh attempt; returns the replaced version on success.
  bool refresh(FrNode* x, V** replaced) {
    V* old = static_cast<V*>(x->version.load(std::memory_order_acquire));
    FrNode* xl;
    V* vl;
    do {
      xl = x->child[0].load(std::memory_order_acquire);
      vl = version_of(xl);
    } while (x->child[0].load(std::memory_order_acquire) != xl);
    FrNode* xr;
    V* vr;
    do {
      xr = x->child[1].load(std::memory_order_acquire);
      vr = version_of(xr);
    } while (x->child[1].load(std::memory_order_acquire) != xr);
    auto* nv =
        pool_new<V>(vl, vr, x->key, Aug::combine(vl->aug, vr->aug), nullptr);
    Counters::bump(Counter::kRefreshCas);
    void* expected = old;
    if (x->version.compare_exchange_strong(expected, nv,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      *replaced = old;
      return true;
    }
    Counters::bump(Counter::kRefreshCasFail);
    pool_delete(nv);
    return false;
  }

  void propagate(Key k) {
    (void)k;
    Counters::bump(Counter::kPropagateCalls);
    Scratch& s = scratch();
    s.to_retire.clear();
    // Pop the recorded root-to-leaf path: deepest internal node first.
    for (auto it = s.path.rbegin(); it != s.path.rend(); ++it) {
      FrNode* x = *it;
      Counters::bump(Counter::kPropagateNodes);
      Counters::bump(Counter::kSearchPathNodes);
      V* replaced = nullptr;
      if (refresh(x, &replaced)) {
        s.to_retire.push_back(replaced);
      } else if (refresh(x, &replaced)) {
        s.to_retire.push_back(replaced);
      }
    }
    for (V* v : s.to_retire) pool_retire(v);
  }

  int height_rec(const FrNode* n) const {
    if (n->is_leaf()) return 0;
    // relaxed: sequential diagnostic; callers run it at quiescence.
    return 1 + std::max(
                   height_rec(n->child[0].load(std::memory_order_relaxed)),
                   height_rec(n->child[1].load(std::memory_order_relaxed)));
  }

  FrNode* root_;
};

}  // namespace cbat
