#include "frbst/frbst.h"

namespace cbat {

// Explicit instantiations for the configurations used by tests, benches and
// examples; keeps their compile times down.
template class FrBst<SizeAug>;
template class FrBst<SizeSumAug>;

}  // namespace cbat
