// Per-thread object pools fed by EBR reclamation.
//
// BAT allocates roughly one Version per node on every update path (plus an
// SCX record and patch nodes), so allocator throughput dominates update
// cost.  The paper used mimalloc; we get the same effect with type-keyed
// per-thread free lists: EBR deleters push reclaimed objects into the pool
// of whichever thread runs the reclamation, and allocations pop from the
// local pool.
//
// Recycling is ABA-safe for the same reason freeing is: an object reaches
// the pool only after a grace period, so no operation that could still
// compare-and-swap against its old address is running.
//
// Only trivially destructible types may be pooled (objects are reused by
// placement-new without running destructors).
#pragma once

#include <atomic>
#include <cstdlib>
#include <new>
#include <type_traits>
#include <vector>

#include "reclamation/ebr.h"
#include "util/backoff.h"
#include "util/fault.h"

namespace cbat {

template <class T>
class Pool {
  static_assert(std::is_trivially_destructible_v<T>);

 public:
  static void* alloc() {
    auto& f = free_list();
    if (!f.slots.empty()) {
      void* p = f.slots.back();
      f.slots.pop_back();
      return p;
    }
    // Allocation-failure degradation: transient exhaustion (real, or forced
    // by a fault plan) retries with exponential backoff instead of letting
    // bad_alloc unwind mid-protocol — a grace period elapsing usually
    // refills the free lists via EBR reclamation.  Only a *persistent*
    // failure (every retry exhausted) surfaces as std::bad_alloc, before
    // the caller has published anything, so the tree stays consistent.
    Backoff bo;
    for (std::uint32_t attempt = 0; attempt < kAllocRetries; ++attempt) {
      if (!CBAT_FAULT_FORCE("pool.alloc_fail")) {
        void* p = ::operator new(sizeof(T), std::nothrow);
        if (p != nullptr) return p;
      }
      bo.pause();
      if (!f.slots.empty()) {  // reclamation refilled us while backing off
        void* p = f.slots.back();
        f.slots.pop_back();
        return p;
      }
    }
    throw std::bad_alloc{};
  }

  static void dealloc(void* p) {
    // relaxed: the exit flag is set when only one thread remains; any
    // pre-exit read correctly sees false.
    if (g_reclaim_shutdown.load(std::memory_order_relaxed)) {
      // The thread-local free lists are already destroyed during exit.
      ::operator delete(p);
      return;
    }
    auto& f = free_list();
    if (f.slots.size() < kMaxFree) {
      f.slots.push_back(p);
    } else {
      ::operator delete(p);
    }
  }

  // Warm-up hook: pre-faults the calling thread's free list up to `n`
  // objects (capped at the recycling limit) so a fresh worker thread's
  // first operations do not pay cold ::operator new calls.  First-touch
  // allocation jitter showed up as outliers in smoke-mode latency
  // percentiles; the benchmark driver calls this from prefill and worker
  // threads before timing starts.
  static void reserve(std::size_t n) {
    // relaxed: see dealloc().
    if (g_reclaim_shutdown.load(std::memory_order_relaxed)) return;
    auto& f = free_list();
    const std::size_t want = std::min(n, kMaxFree);
    if (f.slots.size() >= want) return;
    f.slots.reserve(want);
    while (f.slots.size() < want) {
      f.slots.push_back(::operator new(sizeof(T)));
    }
  }

 private:
  static constexpr std::size_t kMaxFree = 1 << 16;
  // Allocation retry cap: must exceed any fault plan's per-site forced
  // budget (FaultPlan::max_fails_per_site) so an injected exhaustion burst
  // can never be mistaken for a persistent one.
  static constexpr std::uint32_t kAllocRetries = 256;

  struct FreeList {
    std::vector<void*> slots;
    ~FreeList() {
      for (void* p : slots) ::operator delete(p);
    }
  };

  static FreeList& free_list() {
    thread_local FreeList f;
    return f;
  }
};

// Allocates a T from the pool, forwarding constructor arguments.
template <class T, class... A>
T* pool_new(A&&... args) {
  return new (Pool<T>::alloc()) T{std::forward<A>(args)...};
}

// Immediate free for objects that were never published.
template <class T>
void pool_delete(T* p) {
  Pool<T>::dealloc(p);
}

// Deferred free through the EBR (the usual path for published objects).
template <class T>
void pool_retire(T* p) {
  Ebr::retire(p, [](void* q) { Pool<T>::dealloc(q); });
}

// Pre-faults the calling thread's free list for T (see Pool::reserve).
template <class T>
void pool_reserve(std::size_t n) {
  Pool<T>::reserve(n);
}

}  // namespace cbat
