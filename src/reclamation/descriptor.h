// Reference-counted operation descriptors.
//
// LLX/SCX records and FR-BST Info records are published through per-node
// descriptor pointers (`info` / `update` fields) and can stay referenced
// long after the operation that created them finishes: a node keeps pointing
// at the descriptor of its last update until its *next* update replaces it.
// Retiring the descriptor when the operation completes (as one would for
// data nodes) would therefore leave dangling pointers.
//
// Scheme (see DESIGN.md §2):
//   * a descriptor is created with refs = 1 (the creator's credit);
//   * every successful CAS that installs descriptor N into a node field
//     calls descriptor_ref(N) *after* the CAS and schedules a deferred
//     unref of the replaced descriptor via descriptor_retire_unref();
//   * the creator schedules a deferred drop of its credit when its
//     operation completes;
//   * freeing a node unrefs the descriptor its field still holds (direct:
//     the node already sat out a grace period).
//
// All decrements that could take the count to zero are deferred through the
// EBR, so they execute only after every operation that was active at
// scheduling time has finished — in particular after the corresponding
// increments, whose owners were active then.  Hence the count reaches zero
// at most once, and it does so only when no active operation can still
// install or dereference the descriptor; retiring it at that point is safe.
#pragma once

#include <atomic>
#include <cstdint>

#include "reclamation/ebr.h"
#include "reclamation/pool.h"

namespace cbat {

struct RefCountedDescriptor {
  // shared: refcount rides in the descriptor it guards; descriptors are
  // pool-recycled size classes, so padding would fragment the pool.
  std::atomic<std::int64_t> refs{1};  // creator's credit
  bool is_static = false;  // statically allocated sentinels are never freed
};

template <class D>
void descriptor_ref(D* d) {
  if (d == nullptr || d->is_static) return;
  // relaxed: incrementing a count you already hold a reference through
  // needs no ordering; the matching unref uses acq_rel to sequence the
  // final release before destruction.
  d->refs.fetch_add(1, std::memory_order_relaxed);
}

template <class D>
void descriptor_unref(D* d) {
  if (d == nullptr || d->is_static) return;
  if (d->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    pool_retire(d);  // descriptors are pool-allocated (see pool.h)
  }
}

// Schedules descriptor_unref(d) to run after a grace period.
template <class D>
void descriptor_retire_unref(D* d) {
  if (d == nullptr || d->is_static) return;
  Ebr::retire(d, [](void* q) { descriptor_unref(static_cast<D*>(q)); });
}

}  // namespace cbat
