// Epoch-based reclamation (paper §6).
//
// Classic 3-epoch EBR in the style of Fraser / DEBRA: a global epoch, a
// per-thread announcement slot, and three per-thread limbo bags.  An object
// retired while the global epoch is e may be freed once the global epoch
// reaches e+2, because advancing the epoch twice requires every operation
// that was active at retire time to have finished.
//
// This matches the property the paper relies on throughout §6: "an object is
// safe to retire at time T if it will not be accessed by any high-level
// operation that starts after time T".
//
// Usage: every public tree operation opens an `EbrGuard` (re-entrant).
// Unlinked objects are passed to `Ebr::retire(ptr, deleter)`.  Deleters may
// themselves call `retire` (e.g. freeing a node retires its final version,
// exactly as §6 prescribes).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/padded.h"
#include "util/thread_annotations.h"
#include "util/thread_registry.h"

namespace cbat {

// The EBR guard modeled as a Thread Safety Analysis capability: functions
// that dereference raw Version*/node pointers are annotated
// CBAT_REQUIRES(ebr_capability), EbrGuard ACQUIREs it, and guardless
// traversal becomes a compile error under -DCBAT_THREAD_SAFETY=ON.  The
// object is purely a compile-time token — it has no state and no runtime
// cost; the actual protection is the epoch machinery below.
class CBAT_CAPABILITY("ebr") EbrCapabilityT {};
inline EbrCapabilityT ebr_capability;

// Tells the analysis the EBR capability is held without acquiring anything.
// For contexts where a guard provably exists but TSA cannot see it: a guard
// held as a *member* subobject (scoped-capability tracking only follows
// named locals), or a protocol that pins the epoch by other means (per-
// thread in-flight slots, quiescence).  Every call site carries a
// `// guard:` comment naming the proof.
inline void ebr_assert_held() CBAT_ASSERT_CAPABILITY(ebr_capability) {}

// Set once by ~Ebr.  After this, grace periods are moot (no thread can
// start an operation), thread-local state — pool free lists, registry
// slots — is already destroyed ([basic.start.term]), so retired objects
// are freed immediately and pool deallocations bypass the free lists.
// shared: written once at exit, read on reclamation slow paths only.
inline std::atomic<bool> g_reclaim_shutdown{false};

// Limbo-pressure guardrail knob: when a thread's summed limbo bags reach
// this many items, the next retire attempts an inline epoch advance and
// reclaim (bumping Counter::kEbrPressureEvents) instead of waiting out the
// periodic advance batch — bounding memory held hostage by a stalled or
// fault-delayed epoch.  0 disables the guardrail.  Process-wide; exposed
// through SetOptions::ebr_limbo_high_water, which rejects negatives.
// shared: read-mostly knob, written only by configure() and tests.
inline std::atomic<std::int64_t> g_ebr_limbo_high_water{1 << 15};

inline std::int64_t ebr_limbo_high_water() {
  // relaxed: a tuning knob; any recently written value is acceptable.
  return g_ebr_limbo_high_water.load(std::memory_order_relaxed);
}

// Ignores negative values (configure() additionally rejects the whole
// options struct up front, matching the other knob validations).
inline void set_ebr_limbo_high_water(std::int64_t n) {
  // relaxed: see ebr_limbo_high_water().
  if (n >= 0) g_ebr_limbo_high_water.store(n, std::memory_order_relaxed);
}

class Ebr {
 public:
  using Deleter = void (*)(void*);

  static Ebr& instance();

  // Defers destruction of p until all currently-active operations finish.
  static void retire(void* p, Deleter d) {
    // relaxed: shutdown is set once, single-threaded, after all workers
    // have joined; any observed value is correct (a stale false just takes
    // the normal deferred path).
    if (g_reclaim_shutdown.load(std::memory_order_relaxed)) {
      d(p);  // shutdown: free now; must not touch per-thread state
      return;
    }
    instance().retire_impl(p, d);
  }

  // Frees everything immediately.  Caller must guarantee quiescence (no
  // other thread inside a guard or calling retire).  Used by tests and by
  // the benchmark driver between phases.
  static void drain();

  // Number of objects currently awaiting reclamation (approximate).
  static std::size_t pending();

  friend class EbrGuard;

 private:
  static constexpr std::uint64_t kQuiescent = ~0ULL;
  static constexpr int kBags = 3;
  static constexpr std::size_t kAdvanceThreshold = 256;

  struct Bag {
    std::vector<std::pair<void*, Deleter>> items;
    std::uint64_t epoch = 0;
  };

  struct Ctx {
    // shared: each Ctx is wrapped in Padded<> at the ctxs_ array below,
    // so announce words of different threads never share a line.
    std::atomic<std::uint64_t> announce{kQuiescent};
    Bag bags[kBags];
    std::uint64_t retire_count = 0;
    int nesting = 0;
  };

  Ebr() = default;
  // Frees everything still in limbo at process exit (deleters may retire
  // more; iterates to fixpoint).  Runs after all worker threads have ended.
  ~Ebr();

  void enter();
  void exit();
  void retire_impl(void* p, Deleter d);
  void try_advance();
  void reclaim_safe_bags(Ctx& ctx, std::uint64_t global);
  static void free_bag(Bag& bag);

  Ctx& ctx() { return *ctxs_[ThreadRegistry::thread_id()]; }

  // shared: the global epoch is the coordination point by design; it
  // advances rarely (amortized by retire_count batching).
  std::atomic<std::uint64_t> epoch_{1};
  Padded<Ctx> ctxs_[kMaxThreads];
};

// RAII epoch guard; re-entrant per thread.  A scoped capability for the
// analysis: while a named EbrGuard local is live, ebr_capability is held
// and CBAT_REQUIRES(ebr_capability) functions may be called.  Re-entrancy
// is invisible to (and fine with) TSA — the analysis is intraprocedural,
// so nested guards in separate functions never meet.
class CBAT_SCOPED_CAPABILITY EbrGuard {
 public:
  EbrGuard() CBAT_ACQUIRE(ebr_capability) { Ebr::instance().enter(); }
  ~EbrGuard() CBAT_RELEASE() { Ebr::instance().exit(); }
  EbrGuard(const EbrGuard&) = delete;
  EbrGuard& operator=(const EbrGuard&) = delete;
};

// Convenience typed retire.
template <class T>
void ebr_retire(T* p) {
  Ebr::retire(p, [](void* q) { delete static_cast<T*>(q); });
}

}  // namespace cbat
