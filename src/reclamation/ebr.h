// Epoch-based reclamation (paper §6).
//
// Classic 3-epoch EBR in the style of Fraser / DEBRA: a global epoch, a
// per-thread announcement slot, and three per-thread limbo bags.  An object
// retired while the global epoch is e may be freed once the global epoch
// reaches e+2, because advancing the epoch twice requires every operation
// that was active at retire time to have finished.
//
// This matches the property the paper relies on throughout §6: "an object is
// safe to retire at time T if it will not be accessed by any high-level
// operation that starts after time T".
//
// Usage: every public tree operation opens an `EbrGuard` (re-entrant).
// Unlinked objects are passed to `Ebr::retire(ptr, deleter)`.  Deleters may
// themselves call `retire` (e.g. freeing a node retires its final version,
// exactly as §6 prescribes).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/padded.h"
#include "util/thread_registry.h"

namespace cbat {

// Set once by ~Ebr.  After this, grace periods are moot (no thread can
// start an operation), thread-local state — pool free lists, registry
// slots — is already destroyed ([basic.start.term]), so retired objects
// are freed immediately and pool deallocations bypass the free lists.
inline std::atomic<bool> g_reclaim_shutdown{false};

class Ebr {
 public:
  using Deleter = void (*)(void*);

  static Ebr& instance();

  // Defers destruction of p until all currently-active operations finish.
  static void retire(void* p, Deleter d) {
    if (g_reclaim_shutdown.load(std::memory_order_relaxed)) {
      d(p);  // shutdown: free now; must not touch per-thread state
      return;
    }
    instance().retire_impl(p, d);
  }

  // Frees everything immediately.  Caller must guarantee quiescence (no
  // other thread inside a guard or calling retire).  Used by tests and by
  // the benchmark driver between phases.
  static void drain();

  // Number of objects currently awaiting reclamation (approximate).
  static std::size_t pending();

  friend class EbrGuard;

 private:
  static constexpr std::uint64_t kQuiescent = ~0ULL;
  static constexpr int kBags = 3;
  static constexpr std::size_t kAdvanceThreshold = 256;

  struct Bag {
    std::vector<std::pair<void*, Deleter>> items;
    std::uint64_t epoch = 0;
  };

  struct Ctx {
    std::atomic<std::uint64_t> announce{kQuiescent};
    Bag bags[kBags];
    std::uint64_t retire_count = 0;
    int nesting = 0;
  };

  Ebr() = default;
  // Frees everything still in limbo at process exit (deleters may retire
  // more; iterates to fixpoint).  Runs after all worker threads have ended.
  ~Ebr();

  void enter();
  void exit();
  void retire_impl(void* p, Deleter d);
  void try_advance();
  void reclaim_safe_bags(Ctx& ctx, std::uint64_t global);
  static void free_bag(Bag& bag);

  Ctx& ctx() { return *ctxs_[ThreadRegistry::thread_id()]; }

  std::atomic<std::uint64_t> epoch_{1};
  Padded<Ctx> ctxs_[kMaxThreads];
};

// RAII epoch guard; re-entrant per thread.
class EbrGuard {
 public:
  EbrGuard() { Ebr::instance().enter(); }
  ~EbrGuard() { Ebr::instance().exit(); }
  EbrGuard(const EbrGuard&) = delete;
  EbrGuard& operator=(const EbrGuard&) = delete;
};

// Convenience typed retire.
template <class T>
void ebr_retire(T* p) {
  Ebr::retire(p, [](void* q) { delete static_cast<T*>(q); });
}

}  // namespace cbat
