#include "reclamation/ebr.h"

#include "util/counters.h"
#include "util/fault.h"

namespace cbat {

Ebr& Ebr::instance() {
  static Ebr ebr;
  return ebr;
}

Ebr::~Ebr() {
  // From here on, re-entrant retires (node -> final version, descriptor
  // chains) free immediately inside Ebr::retire without touching the
  // per-thread contexts or pool free lists — both already destroyed
  // ([basic.start.term]) — so one sweep over the bags empties everything.
  // relaxed: program-exit path; only this thread still runs.
  g_reclaim_shutdown.store(true, std::memory_order_relaxed);
  for (auto& ctx : ctxs_) {
    for (Bag& bag : ctx->bags) free_bag(bag);
  }
}

void Ebr::enter() {
  Ctx& c = ctx();
  if (c.nesting++ > 0) return;
  // seq_cst so the announcement is globally visible before we read any
  // shared pointers, and so we observe the freshest epoch.
  std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
  c.announce.store(e, std::memory_order_seq_cst);
  // The epoch may have advanced between the load and the store; re-announce
  // once so we never pin an epoch older than the one we entered in.
  std::uint64_t e2 = epoch_.load(std::memory_order_seq_cst);
  if (e2 != e) c.announce.store(e2, std::memory_order_seq_cst);
  reclaim_safe_bags(c, e2);
}

void Ebr::exit() {
  Ctx& c = ctx();
  if (--c.nesting > 0) return;
  c.announce.store(kQuiescent, std::memory_order_release);
}

void Ebr::retire_impl(void* p, Deleter d) {
  CBAT_FAULT_POINT("ebr.retire");
  Ctx& c = ctx();
  const std::uint64_t e = epoch_.load(std::memory_order_acquire);
  Bag& bag = c.bags[e % kBags];
  if (bag.epoch != e) {
    // Bag held objects from epoch e-3 (or is empty): always safe now.
    free_bag(bag);
    bag.epoch = e;
  }
  bag.items.emplace_back(p, d);
  bool reclaimed = false;
  if (++c.retire_count % kAdvanceThreshold == 0) {
    try_advance();
    reclaim_safe_bags(c, epoch_.load(std::memory_order_acquire));
    reclaimed = true;
  }
  // Limbo-pressure guardrail: a pinned or fault-delayed epoch lets bags
  // grow without bound between periodic advances; above the high-water
  // mark every retire attempts an inline advance+reclaim.  The attempt is
  // best-effort (an old announcement still blocks it) but bounds the lag
  // once the pinning operation finishes.
  const std::int64_t hw = ebr_limbo_high_water();
  if (!reclaimed && hw > 0) {
    const std::size_t local = c.bags[0].items.size() + c.bags[1].items.size() +
                              c.bags[2].items.size();
    if (local >= static_cast<std::size_t>(hw)) {
      Counters::bump(Counter::kEbrPressureEvents);
      try_advance();
      reclaim_safe_bags(c, epoch_.load(std::memory_order_acquire));
    }
  }
}

void Ebr::try_advance() {
  CBAT_FAULT_POINT("ebr.advance");
  // Advance is best-effort by design (any old announcement vetoes it), so
  // a forced skip degrades to "reclaim later" — exactly what the limbo
  // guardrail above and the chaos suite's pending() checks exercise.
  if (CBAT_FAULT_FORCE("ebr.advance_skip")) return;
  const std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
  const int n = ThreadRegistry::instance().max_id();
  for (int t = 0; t < n; ++t) {
    const std::uint64_t a = ctxs_[t]->announce.load(std::memory_order_seq_cst);
    // Someone is still in an older epoch.
    if (a != kQuiescent && a != e) return;
  }
  std::uint64_t expected = e;
  epoch_.compare_exchange_strong(expected, e + 1, std::memory_order_seq_cst);
}

void Ebr::reclaim_safe_bags(Ctx& c, std::uint64_t global) {
  for (Bag& bag : c.bags) {
    if (!bag.items.empty() && bag.epoch + 2 <= global) free_bag(bag);
  }
}

void Ebr::free_bag(Bag& bag) {
  // Deleters may re-enter retire(); detach the contents first.
  std::vector<std::pair<void*, Deleter>> items;
  items.swap(bag.items);
  for (auto& [p, d] : items) d(p);
}

void Ebr::drain() {
  Ebr& e = instance();
  // Each pass advances the epoch once and reclaims; deleters may retire
  // more objects (e.g. node -> final version), so iterate to fixpoint.
  for (int pass = 0; pass < 8; ++pass) {
    e.try_advance();
    const std::uint64_t global = e.epoch_.load(std::memory_order_seq_cst);
    const int n = ThreadRegistry::instance().max_id();
    bool any = false;
    for (int t = 0; t < n; ++t) {
      for (Bag& bag : e.ctxs_[t]->bags) {
        if (!bag.items.empty() && bag.epoch + 2 <= global) {
          free_bag(bag);
          any = true;
        }
      }
    }
    if (!any && pending() == 0) break;
  }
}

std::size_t Ebr::pending() {
  Ebr& e = instance();
  std::size_t total = 0;
  const int n = ThreadRegistry::instance().max_id();
  for (int t = 0; t < n; ++t) {
    for (const Bag& bag : e.ctxs_[t]->bags) total += bag.items.size();
  }
  return total;
}

}  // namespace cbat
