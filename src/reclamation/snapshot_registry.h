// Registry of active snapshot timestamps.
//
// The multiversioned baselines (VcasBST's version lists, the bundled tree's
// bundle entries) keep one version per outstanding snapshot.  Queries
// announce the timestamp they read at; writers may discard versions that no
// current snapshot — and no future one, since future snapshots get larger
// timestamps — can observe.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/padded.h"
#include "util/thread_registry.h"

namespace cbat {

class SnapshotRegistry {
 public:
  static constexpr std::uint64_t kNone = ~0ULL;

  // RAII announcement of an active snapshot timestamp.
  class Guard {
   public:
    explicit Guard(std::uint64_t ts) : slot_(&slot()) {
      // relaxed: reading our own thread's slot; only we write it.
      prev_ = slot_->load(std::memory_order_relaxed);
      slot_->store(ts, std::memory_order_seq_cst);
    }
    ~Guard() { slot_->store(prev_, std::memory_order_seq_cst); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    std::atomic<std::uint64_t>* slot_;
    std::uint64_t prev_;  // support nested snapshots
  };

  // Smallest announced timestamp, or `fallback` if none is active.  Safe
  // truncation boundary: versions superseded at or before this timestamp
  // are invisible to every current and future snapshot.
  static std::uint64_t min_active(std::uint64_t fallback) {
    std::uint64_t m = fallback;
    const int n = ThreadRegistry::instance().max_id();
    for (int t = 0; t < n; ++t) {
      const std::uint64_t a = slots()[t]->load(std::memory_order_seq_cst);
      // 0 = never-used slot (timestamps start at 1).
      if (a != 0 && a < m) m = a;
    }
    return m;
  }

 private:
  static Padded<std::atomic<std::uint64_t>>* slots() {
    static Padded<std::atomic<std::uint64_t>> s[kMaxThreads];
    return s;
  }
  static std::atomic<std::uint64_t>& slot() {
    return *slots()[ThreadRegistry::thread_id()];
  }
};

}  // namespace cbat
