#include "llxscx/llx_scx.h"

#include "reclamation/pool.h"

#include "util/counters.h"

namespace cbat {

namespace {
ScxRecord* make_initial() {
  auto* r = new ScxRecord;  // immortal singleton
  // relaxed: pre-publication store; g_initial's dynamic initialization
  // happens-before any thread that can observe the pointer.
  r->state.store(ScxRecord::kCommitted, std::memory_order_relaxed);
  r->is_static = true;
  return r;
}
ScxRecord* const g_initial = make_initial();
}  // namespace

ScxRecord* scx_initial_record() { return g_initial; }

Node::Node(Key k, std::int32_t w, Node* left, Node* right) : key(k), weight(w) {
  // relaxed: constructor stores; the node is private to this thread until
  // the SCX that links it in publishes with release ordering.
  child[0].store(left, std::memory_order_relaxed);
  child[1].store(right, std::memory_order_relaxed);
  info.store(g_initial, std::memory_order_relaxed);
}

LlxStatus llx(Node* r, LlxSnap* snap) {
  const bool marked1 = r->marked.load(std::memory_order_acquire);
  ScxRecord* rinfo = r->info.load(std::memory_order_acquire);
  const int state = rinfo->state.load(std::memory_order_acquire);
  const bool marked2 = r->marked.load(std::memory_order_acquire);

  if (state == ScxRecord::kAborted ||
      (state == ScxRecord::kCommitted && !marked2)) {
    Node* c0 = r->child[0].load(std::memory_order_acquire);
    Node* c1 = r->child[1].load(std::memory_order_acquire);
    if (r->info.load(std::memory_order_acquire) == rinfo) {
      snap->node = r;
      snap->info = rinfo;
      snap->children[0] = c0;
      snap->children[1] = c1;
      return LlxStatus::kOk;
    }
  }

  // Could not snapshot: either an SCX is in progress (help it) or the node
  // has been finalized.
  ScxRecord* cur = r->info.load(std::memory_order_acquire);
  if (cur->state.load(std::memory_order_acquire) == ScxRecord::kInProgress) {
    scx_help(cur);
  }
  return marked1 ? LlxStatus::kFinalized : LlxStatus::kFail;
}

bool scx_help(ScxRecord* u) {
  // Freeze every record in V by swinging its info pointer to u.
  for (int i = 0; i < u->num_nodes; ++i) {
    Node* r = u->nodes[i];
    ScxRecord* expected = u->infos[i];
    if (!r->info.compare_exchange_strong(expected, u,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      if (expected != u) {
        // Frozen by some other SCX since the caller's LLX.
        if (u->all_frozen.load(std::memory_order_acquire)) {
          return true;  // another helper already finished the job
        }
        u->state.store(ScxRecord::kAborted, std::memory_order_release);
        return false;
      }
      // expected == u: another helper froze this record for us; continue.
    } else {
      // One more node field now references u; the replaced descriptor
      // loses that reference after a grace period (so this decrement can
      // never overtake the increment of a racing installer).
      descriptor_ref(u);
      descriptor_retire_unref(u->infos[i]);
    }
  }

  u->all_frozen.store(true, std::memory_order_release);
  for (int i = u->finalize_from; i < u->num_nodes; ++i) {
    u->nodes[i]->marked.store(true, std::memory_order_release);
  }
  Node* expected = u->old_value;
  u->field->compare_exchange_strong(expected, u->new_value,
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire);
  u->state.store(ScxRecord::kCommitted, std::memory_order_release);
  return true;
}

bool scx(const LlxSnap* v, int num, int finalize_from,
         std::atomic<Node*>* field, Node* new_value) {
  Counters::bump(Counter::kScxAttempts);
  auto* u = pool_new<ScxRecord>();
  u->num_nodes = num;
  u->finalize_from = finalize_from;
  for (int i = 0; i < num; ++i) {
    u->nodes[i] = v[i].node;
    u->infos[i] = v[i].info;
  }
  u->field = field;
  u->new_value = new_value;
  // The expected old value is the snapshot v[0] took of this field.
  u->old_value = (field == &v[0].node->child[0]) ? v[0].children[0]
                                                 : v[0].children[1];
  const bool ok = scx_help(u);
  if (!ok) Counters::bump(Counter::kScxFailures);
  // Drop the creator credit once every operation active right now (which
  // includes any helper that could still install u) has finished.
  descriptor_retire_unref(u);
  return ok;
}

void release_node_info(Node* n) {
  descriptor_unref(n->info.load(std::memory_order_acquire));
}

}  // namespace cbat
