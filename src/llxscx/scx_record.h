// SCX operation descriptors (paper §3.1; Brown–Ellen–Ruppert 2013).
#pragma once

#include <atomic>
#include <cstdint>

#include "llxscx/node.h"
#include "reclamation/descriptor.h"

namespace cbat {

inline constexpr int kMaxScxNodes = 6;

struct ScxRecord : RefCountedDescriptor {
  enum State : int { kInProgress = 0, kCommitted = 1, kAborted = 2 };

  // shared: descriptors are short-lived and pool-recycled; padding them
  // would defeat the pool's size-class reuse for a window of a few helps.
  std::atomic<int> state{kInProgress};
  std::atomic<bool> all_frozen{false};

  // V: the records this SCX depends on, in freeze order; infos[i] is the
  // descriptor observed by the caller's LLX of nodes[i].
  int num_nodes = 0;
  Node* nodes[kMaxScxNodes] = {};
  ScxRecord* infos[kMaxScxNodes] = {};

  // R: nodes[finalize_from .. num_nodes) are finalized on commit.
  int finalize_from = 1;

  // The single field update: *field goes old_value -> new_value.
  std::atomic<Node*>* field = nullptr;
  Node* old_value = nullptr;
  Node* new_value = nullptr;
};

// Statically allocated descriptor used as the initial `info` value of fresh
// nodes: permanently Committed, never reclaimed.
ScxRecord* scx_initial_record();

}  // namespace cbat
