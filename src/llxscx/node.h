// Tree node layout shared by the chromatic tree and BAT.
//
// A node is an LLX/SCX *record* (paper §3.1): its mutable fields (the two
// child pointers) may only change through a successful SCX, its `info`
// pointer names the last SCX that froze it, and `marked` is the finalized
// bit set when the node is removed from the tree.
//
// The `version` pointer (BAT's supplementary fields, paper §4) is *not*
// part of the record: it is manipulated directly with CAS so augmentation
// does not interfere with chromatic-tree operations.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/keys.h"

namespace cbat {

struct ScxRecord;

struct Node {
  // Immutable after construction.  Weight changes always allocate a
  // replacement node, which keeps weights readable without an LLX.
  Key key;
  std::int32_t weight;

  // shared: per-node fields throughout — padding every hot word would
  // multiply node size and wreck cache residency; contention is diffused
  // across millions of nodes instead.
  // Mutable fields protected by LLX/SCX.  Both null for leaves.
  std::atomic<Node*> child[2];

  // LLX/SCX bookkeeping (shared: see above).
  std::atomic<ScxRecord*> info;
  std::atomic<bool> marked{false};

  // BAT version pointer (type-erased; the augmented tree knows the
  // type).  shared: same per-node tradeoff as the fields above.
  std::atomic<void*> version{nullptr};

  Node(Key k, std::int32_t w, Node* left, Node* right);

  bool is_leaf() const {
    return child[0].load(std::memory_order_acquire) == nullptr;
  }
  bool is_finalized() const { return marked.load(std::memory_order_acquire); }
};

// Direction helpers: children are indexed so that the search for key k at
// internal node n steps to child[ k < n->key ? 0 : 1 ].
inline int dir_of(Key k, const Node* n) { return k < n->key ? 0 : 1; }

}  // namespace cbat
