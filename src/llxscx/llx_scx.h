// LLX and SCX primitives (Brown–Ellen–Ruppert, PODC 2013).
//
// LLX(r) returns a consistent snapshot of r's mutable fields together with
// the descriptor observed in r.info.  SCX(V, R, fld, new) atomically
// changes one field and finalizes the records in R, succeeding only if no
// record in V was modified since the caller's LLX of it.  Both are built
// from single-word CAS with cooperative helping, exactly as in the paper.
#pragma once

#include "llxscx/scx_record.h"

namespace cbat {

// Result of a successful LLX: the descriptor observed plus a snapshot of
// the node's mutable fields (child pointers).
struct LlxSnap {
  Node* node = nullptr;
  ScxRecord* info = nullptr;
  Node* children[2] = {nullptr, nullptr};

  Node* left() const { return children[0]; }
  Node* right() const { return children[1]; }
  Node* child(int dir) const { return children[dir]; }
};

enum class LlxStatus { kOk, kFail, kFinalized };

// Attempts an LLX on r.  On kOk, *snap holds the snapshot.  kFail means a
// concurrent SCX interfered (we helped it); kFinalized means r has been
// removed from the tree.  Caller must hold an EbrGuard.
LlxStatus llx(Node* r, LlxSnap* snap);

// Performs an SCX.
//   v:             LLX snapshots of the records in V, in freeze order.
//                  v[0] must be the node containing *field.
//   num:           |V| (<= kMaxScxNodes)
//   finalize_from: index into v of the first record to finalize; records
//                  v[finalize_from..num) form R.
//   field:         the mutable field to change (a child pointer of v[0]).
//   new_value:     value to store.
// The expected old value is taken from v[0]'s snapshot.
// Returns true iff the SCX committed.  Caller must hold an EbrGuard.
bool scx(const LlxSnap* v, int num, int finalize_from,
         std::atomic<Node*>* field, Node* new_value);

// Cooperative completion of a pending SCX (exposed for tests).
bool scx_help(ScxRecord* u);

// Drops the reference a node holds to its descriptor; called by node
// deleters when a node is physically freed.
void release_node_info(Node* n);

}  // namespace cbat
