#include "shard/sharded_set.h"

namespace cbat {

namespace shard_detail {

namespace {
// 2^20 keys: large enough that the default map is not degenerate for the
// paper's small-tree workloads, small enough that hinted workloads always
// override it.  One knob for every template instance (see header).
std::atomic<Key>& default_keyspace_slot() {
  static std::atomic<Key> keyspace{Key{1} << 20};
  return keyspace;
}
}  // namespace

Key default_keyspace() {
  // relaxed: configuration knob; no data is published through it.
  return default_keyspace_slot().load(std::memory_order_relaxed);
}

void set_default_keyspace(Key keyspace) {
  if (keyspace > 0) {
    // relaxed: see default_keyspace().
    default_keyspace_slot().store(keyspace, std::memory_order_relaxed);
  }
}

}  // namespace shard_detail

// The registry-visible shard counts, compiled once for every user.
template class ShardedSet<Bat<SizeAug>, 1>;
template class ShardedSet<Bat<SizeAug>, 4>;
template class ShardedSet<Bat<SizeAug>, 16>;
template class ShardedSet<Bat<SizeAug>, 64>;
template class ShardedSet<BatDel<SizeAug>, 16>;
// Linearizable-snapshot variants (epoch-stamped roots; the 4-shard one is
// test-only, the 16-shard one is registered as "Sharded16-BAT-Lin").
template class ShardedSet<Bat<SizeAug>, 4, SnapshotPolicy::kLinearizable>;
template class ShardedSet<Bat<SizeAug>, 16, SnapshotPolicy::kLinearizable>;
// Read-combined variants over plain BAT shards (test-only; the registry's
// "-RC" forests wrap CombinedSet shards, see combine/combined_set.cpp).
template class ShardedSet<Bat<SizeAug>, 4, SnapshotPolicy::kQuiescent,
                          ReadPath::kCombined>;
template class ShardedSet<Bat<SizeAug>, 4, SnapshotPolicy::kLinearizable,
                          ReadPath::kCombined>;
// Adaptive (hot-shard rebalancing) variants over plain BAT shards
// (test-only; the registry's "-Adapt" forest wraps CombinedSet shards).
template class ShardedSet<Bat<SizeAug>, 4, SnapshotPolicy::kQuiescent,
                          ReadPath::kDirect, true>;
template class ShardedSet<Bat<SizeAug>, 4, SnapshotPolicy::kLinearizable,
                          ReadPath::kDirect, true>;

}  // namespace cbat
