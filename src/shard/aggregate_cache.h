// AggregateCache — epoch-stamped per-shard aggregate memoization
// (ROADMAP: read-side scaling; Sela & Petrank's concurrent aggregate
// queries are the grounding for both halves of the read layer).
//
// A ShardedSet snapshot answers composite queries by combining per-shard
// aggregates: shard sizes for the rank/select prefix sums, partial
// range_aggregate answers for the boundary shards of a range.  Those
// per-shard answers are pure functions of the shard's pinned root version,
// and PR 5's epoch stamps give every root an identity the caches can key
// on: an aggregate computed from a root stamped `e` is valid exactly while
// the pinned root's stamp is still `e`.  The cache therefore stores
// (stamp, value) pairs and validates by stamp comparison — invalidation is
// free, performed by the very counter the roots already carry.
//
// Soundness requires stamps to be *unique* per root: with the default
// load-based stamping two roots installed between counter advances share a
// stamp, and the cache could serve one root's aggregate for the other
// (under a quiescent forest the counter never advances at all, so every
// root would share stamp 1).  Forests that enable the cache switch their
// shards to fetch_add-minted stamps (version_epoch_unique; see
// BatTree::set_epoch_source) — ShardedSet does this for
// ReadPath::kCombined.
//
// Entry protocol: a seqlock per entry (util/seqlock.h; even seq = stable,
// odd = writer in place), all payload words individually atomic so the
// fast path is data-race-free under TSan.  The seqlock's write side is a
// thread-safety capability: filling an entry without first claiming the
// writer token (Seqlock::try_write) is a compile error under
// -DCBAT_THREAD_SAFETY=ON.  Readers accept a value only if the sequence
// word is even and unchanged across the payload reads AND the stored stamp
// equals the stamp of the root the *caller* has pinned — a concurrent
// root CAS re-stamps the shard, the stamps mismatch, and the stale entry
// is simply recomputed (see the stale-cache interleaving test in
// tests/linearizability_test.cpp).  Writers claim the entry with one CAS
// and never block; a lost claim skips the fill (best effort — the caller
// already holds the freshly computed value).
//
// Layout: the size entries are deliberately PACKED — all NumShards of
// them in one padded block — because the hot consumer (the snapshot's
// prefix-sum materialization) reads every one of them back to back, and a
// cache-line-per-entry layout would touch NumShards lines where the
// packed row touches NumShards/2.  Size entries are refilled only when a
// shard's root moved, so write-side false sharing inside the row is rare
// by construction in the read-heavy regime the cache targets.  The range
// rows keep a line per shard: their refills are per-query on cold
// ranges, frequent enough to keep off each other's lines.
//
// The cache itself counts nothing: lookups are hot-path (16 per prefix
// materialization), so hit/miss accounting is the caller's job, batched —
// ShardedSet::Snapshot tallies locally and flushes kAggCacheHits/
// kAggCacheMisses once, at destruction.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/version.h"
#include "util/fault.h"
#include "util/keys.h"
#include "util/padded.h"
#include "util/seqlock.h"
#include "util/thread_annotations.h"

namespace cbat {

// Process-wide switch for the stamp-validated aggregate caches, mirroring
// set_combine_max_batch / set_lease_reads: the read_burst benchmark turns
// it off to measure the leased-but-uncached series.  Off, every lookup
// misses (and is not counted), so the cached structures degrade to plain
// snapshot reads with identical semantics.
inline std::atomic<bool>& aggregate_cache_slot() {
  // shared: process-wide knob, read-mostly; padding a function-local
  // static buys nothing.
  static std::atomic<bool> v{true};
  return v;
}
inline bool aggregate_cache_enabled() {
  // relaxed: tuning knob; any recently-written value is acceptable and no
  // other data is published through it.
  return aggregate_cache_slot().load(std::memory_order_relaxed);
}
inline void set_aggregate_cache(bool on) {
  // relaxed: tuning knob; see aggregate_cache_enabled().
  aggregate_cache_slot().store(on, std::memory_order_relaxed);
}

template <int NumShards>
class AggregateCache {
  static_assert(NumShards >= 1);

 public:
  // Range entries per shard; direct-mapped by a hash of (lo, hi).  Small
  // on purpose: the target is the handful of hot ranges a leaderboard
  // serves repeatedly, not a general result cache.
  static constexpr int kRangeWays = 4;

  // --- per-shard size (the rank/select prefix-sum inputs) -----------------

  bool load_size(int s, std::uint64_t stamp, std::int64_t* out) const {
    const SizeEntry& e = sizes_->e[s];
    const std::uint64_t s1 = e.seq.read_begin();
    if (!Seqlock::is_stable(s1)) return false;
    // relaxed: racy-read-then-validate; read_validate's acquire fence
    // orders these payload loads before the sequence re-check.
    const std::uint64_t st = e.stamp.load(std::memory_order_relaxed);
    const std::int64_t v = e.value.load(std::memory_order_relaxed);
    if (!e.seq.read_validate(s1)) return false;
    if (st != stamp || st == kEpochTbd) return false;
    *out = v;
    return true;
  }
  void store_size(int s, std::uint64_t stamp, std::int64_t v) const {
    SizeEntry& e = sizes_->e[s];
    // Another writer filling means ours is best effort: skip.
    if (!e.seq.try_write()) return;
    // Stretches the odd (write-in-progress) seqlock window: concurrent
    // readers must keep rejecting the entry for the whole fill.
    CBAT_FAULT_POINT("cache.fill_size");
    fill_size(e, stamp, v);
    e.seq.end_write();
  }

  // --- per-shard range_aggregate results ----------------------------------

  bool load_range(int s, Key lo, Key hi, std::uint64_t stamp,
                  std::int64_t* out) const {
    const RangeEntry& e = ranges_[s]->e[range_way(lo, hi)];
    const std::uint64_t s1 = e.seq.read_begin();
    if (!Seqlock::is_stable(s1)) return false;
    // relaxed: racy-read-then-validate; see load_size.
    const std::uint64_t st = e.stamp.load(std::memory_order_relaxed);
    const Key elo = e.lo.load(std::memory_order_relaxed);
    const Key ehi = e.hi.load(std::memory_order_relaxed);
    const std::int64_t v = e.value.load(std::memory_order_relaxed);
    if (!e.seq.read_validate(s1)) return false;
    if (st != stamp || st == kEpochTbd || elo != lo || ehi != hi) {
      return false;
    }
    *out = v;
    return true;
  }
  void store_range(int s, Key lo, Key hi, std::uint64_t stamp,
                   std::int64_t v) const {
    RangeEntry& e = ranges_[s]->e[range_way(lo, hi)];
    if (!e.seq.try_write()) return;  // best effort: a writer is in place
    // See store_size: stretch the odd seqlock window.
    CBAT_FAULT_POINT("cache.fill_range");
    fill_range(e, stamp, lo, hi, v);
    e.seq.end_write();
  }

  // --- map-flip invalidation ----------------------------------------------

  // Drops every entry (stamp -> kEpochTbd, which load_* always reject).
  // Called by the adaptive shard layer when it installs a new shard map.
  // Not needed for correctness — adaptive lookups key range entries by
  // the exact (lo, hi) they aggregate, and a given (root version, range)
  // pair always has one answer, so survivors from the old map either
  // mismatch the new owned bounds or are still right — but after a flip
  // most surviving ranges never recur, so the sweep reclaims the ways
  // for the new map's working set.  Best effort per entry (an entry
  // mid-fill keeps its writer's value).
  void invalidate_all() const {
    for (int s = 0; s < NumShards; ++s) {
      kill_entry(sizes_->e[s].seq, sizes_->e[s].stamp);
      for (int w = 0; w < kRangeWays; ++w) {
        kill_entry(ranges_[s]->e[w].seq, ranges_[s]->e[w].stamp);
      }
    }
  }

 private:
  // Seqlock field order mirrors the read/write protocol above: the
  // acquire fence in a reader pairs with the writer's release fence, so a
  // reader that observed any payload word of an in-progress or newer
  // write is guaranteed to observe the bumped sequence word and reject.
  struct SizeEntry {
    Seqlock seq;  // even = stable, odd = writing
    // shared: seqlock payload — racy-read-then-validate by design; the
    // packed-row layout (see header comment) is the padding tradeoff.
    std::atomic<std::uint64_t> stamp{kEpochTbd};
    std::atomic<std::int64_t> value{0};
  };
  struct RangeEntry {
    Seqlock seq;
    // shared: seqlock payload; see SizeEntry.
    std::atomic<std::uint64_t> stamp{kEpochTbd};
    std::atomic<Key> lo{0};
    std::atomic<Key> hi{0};
    std::atomic<std::int64_t> value{0};
  };
  struct SizeRow {
    SizeEntry e[NumShards];
  };
  struct RangeRow {
    RangeEntry e[kRangeWays];
  };

  static void kill_entry(Seqlock& seq, std::atomic<std::uint64_t>& stamp) {
    if (!seq.try_write()) return;  // mid-fill entry keeps its writer's value
    // relaxed: bracketed by try_write's release fence and end_write's
    // release store, which order it for validating readers.
    stamp.store(kEpochTbd, std::memory_order_relaxed);
    seq.end_write();
  }

  // Payload fills, REQUIRES the entry's writer token: the seqlock protocol
  // (claim fence before, release publish after) is what orders these
  // relaxed stores, so they must not run tokenless.
  static void fill_size(SizeEntry& e, std::uint64_t stamp, std::int64_t v)
      CBAT_REQUIRES(e.seq) {
    // relaxed: bracketed by the writer token's fences; see above.
    e.stamp.store(stamp, std::memory_order_relaxed);
    e.value.store(v, std::memory_order_relaxed);
  }
  static void fill_range(RangeEntry& e, std::uint64_t stamp, Key lo, Key hi,
                         std::int64_t v) CBAT_REQUIRES(e.seq) {
    // relaxed: bracketed by the writer token's fences; see above.
    e.stamp.store(stamp, std::memory_order_relaxed);
    e.lo.store(lo, std::memory_order_relaxed);
    e.hi.store(hi, std::memory_order_relaxed);
    e.value.store(v, std::memory_order_relaxed);
  }

  static int range_way(Key lo, Key hi) {
    // Fibonacci-style mix of both bounds; any deterministic spread works,
    // collisions only cost a miss on the colder range.
    const std::uint64_t h =
        (static_cast<std::uint64_t>(lo) * 0x9E3779B97F4A7C15ull) ^
        (static_cast<std::uint64_t>(hi) * 0xC2B2AE3D27D4EB4Full);
    return static_cast<int>((h >> 59) % kRangeWays);
  }

  // mutable-through-const on purpose: the cache is memoization state
  // filled from const composite queries, not observable set state.
  mutable Padded<SizeRow> sizes_;
  mutable Padded<RangeRow> ranges_[NumShards];
};

}  // namespace cbat
