// ShardedSet — a keyspace-partitioned forest of BATs (ROADMAP: sharding).
//
// The key range is split into NumShards contiguous sub-ranges, each served
// by its own inner tree (default `Bat<SizeAug>`).  Updates touch exactly one
// shard, so update throughput scales with the shard count instead of
// serializing on one root Propagate; the price is that composite queries
// must merge per-shard snapshots.  The merge is exactly the per-subtree
// aggregate composition of Sela & Petrank's concurrent aggregate queries:
//
//   * size / range_count / range_aggregate: sum (combine) the per-shard
//     answers — contiguity makes every middle shard a fully-covered subtree
//     whose answer is its root version's supplementary field, O(1);
//   * rank: prefix-sum the sizes of the shards entirely below the key's
//     shard, then one O(log n) rank descent inside it;
//   * select: binary-search the shard-size prefix sums for the owning
//     shard, then one O(log n) `version_select` descent inside it.
//
// Consistency: each shard is a BAT, so every single-shard operation is
// linearizable.  A `Snapshot` pins all shard root versions under one EBR
// guard; all queries through one Snapshot see the same immutable forest
// (multi-query consistency).  How the cut is *acquired* is the
// SnapshotPolicy template parameter:
//
//   * kQuiescent (default): the roots are read one after another, so a
//     cross-shard query is quiescently consistent, not linearizable — it
//     sees every update that completed before the Snapshot was taken and
//     no update that started after it, but may observe a later update
//     while missing an earlier one on a different shard.
//   * kLinearizable: the set owns a global epoch counter that every
//     shard-root installation stamps (BatTree::set_epoch_source, vcas-
//     style deferred timestamps as in Wei et al.'s constant-time
//     snapshots).  Acquisition is two-phase: fetch_add the counter — the
//     snapshot's linearization point — then resolve each shard's root to
//     the newest version stamped at or before that epoch, walking the
//     root's prev_root history backward when an installation raced past
//     the cut.  Every composite query on the snapshot then linearizes at
//     the fetch_add, closing the gap the quiescent mode leaves (and the
//     correctness gap that blocks hot-shard rebalancing; see ROADMAP).
//     Updates pay one counter load plus one uncontended stamp CAS per
//     root refresh; acquisition pays the fetch_add plus a usually-empty
//     history walk (see the snapshot_consistency bench scenario).
//
// Shard map: shard_of(k) = clamp(k / width) with width = ceil(keyspace /
// NumShards).  The keyspace defaults to `default_keyspace()` and can be
// adapted to a workload with `key_range_hint(max_key)` *while the set is
// empty* (the benchmark driver calls this before prefilling).  The map is
// monotone, so order statistics compose across shards by construction; keys
// outside [0, keyspace) are legal and simply land in the first or last
// shard.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "core/bat_tree.h"
#include "core/version_queries.h"
#include "reclamation/ebr.h"
#include "util/padded.h"

namespace cbat {

namespace shard_detail {

// One process-wide keyspace default shared by every ShardedSet template
// instance, so registry-created structures of any shard count agree.
Key default_keyspace();
void set_default_keyspace(Key keyspace);

}  // namespace shard_detail

// The inner structure must expose a *sized* augmentation (the cross-shard
// prefix sums are shard sizes) and a pinned-root view; the BAT variants do.
// (root_version_unsafe is safe here: every caller holds an EbrGuard for the
// lifetime of the returned pointer.)
template <class Inner>
concept ShardableInner = requires(Inner t, const Inner ct, Key k) {
  typename Inner::AugType;
  requires SizedAugmentation<typename Inner::AugType>;
  { t.insert(k) } -> std::same_as<bool>;
  { t.erase(k) } -> std::same_as<bool>;
  { ct.contains(k) } -> std::same_as<bool>;
  { ct.root_version_unsafe() };
};

// Inner structures whose root installations can stamp a shared epoch
// counter (BatTree and wrappers that forward set_epoch_source).  Required
// by SnapshotPolicy::kLinearizable; quiescent forests stamp too when the
// inner supports it, so the two policies differ only in acquisition.
template <class Inner>
concept EpochStampedInner =
    requires(Inner t, std::atomic<std::uint64_t>* c) { t.set_epoch_source(c); };

// Cross-shard snapshot acquisition mode; see the header comment.
enum class SnapshotPolicy { kQuiescent, kLinearizable };

template <class Inner = Bat<SizeAug>, int NumShards = 16,
          SnapshotPolicy Policy = SnapshotPolicy::kQuiescent>
  requires ShardableInner<Inner> && (NumShards >= 1) &&
           (Policy == SnapshotPolicy::kQuiescent || EpochStampedInner<Inner>)
class ShardedSet {
 public:
  using Aug = typename Inner::AugType;
  using AugValue = typename Aug::Value;
  using V = Version<Aug>;

  ShardedSet() : ShardedSet(shard_detail::default_keyspace()) {}
  explicit ShardedSet(Key keyspace) {
    repartition(keyspace);
    // Attach the epoch counter before any update can run, so every root
    // the forest ever installs (beyond the initial empty roots, which the
    // resolve walk accepts as the oldest state) is stamped.  Stamping is
    // on under BOTH policies, deliberately: (a) it is what keeps the
    // snapshot_consistency ratio a pure *acquisition*-cost measurement
    // (the write paths are identical), and (b) the planned hot-shard
    // migration protocol (ROADMAP) needs epoch cuts on the *default*
    // quiescent forests.  The quiescent-side cost is one counter load
    // plus one uncontended CAS on a just-written line per root refresh —
    // inside smoke-gate noise.
    if constexpr (EpochStampedInner<Inner>) {
      for (auto& s : shards_) s->set_epoch_source(&*epoch_);
    }
  }

  static constexpr int num_shards() { return NumShards; }
  static constexpr SnapshotPolicy snapshot_policy() { return Policy; }

  // Introspection hook picked up by the API layer (SetModel::consistency):
  // cross-shard composite queries linearize only under kLinearizable.
  static constexpr bool composite_queries_linearizable() {
    return Policy == SnapshotPolicy::kLinearizable;
  }

  Key keyspace() const { return keyspace_; }

  // Current value of the snapshot epoch counter (tests; advanced only by
  // linearizable snapshot acquisitions, read by every root stamp).
  std::uint64_t current_epoch() const {
    return epoch_->load(std::memory_order_seq_cst);
  }

  // Adapts the shard map to keys drawn from [0, max_key).  Only honored
  // while the set is empty — repartitioning a populated forest would strand
  // keys in the wrong shard.  Not thread-safe against concurrent updates;
  // call it before handing the set to worker threads.
  bool key_range_hint(Key max_key) {
    if (max_key <= 0) return false;
    if (size() != 0) return false;
    repartition(max_key);
    return true;
  }

  // --- updates: exactly one shard, one EBR-guarded BAT update -------------

  bool insert(Key k) { return shard(k).insert(k); }
  bool erase(Key k) { return shard(k).erase(k); }

  // --- queries -------------------------------------------------------------

  bool contains(Key k) const { return shard(k).contains(k); }

  // All composite queries pin one Snapshot so their per-shard reads merge a
  // single consistent forest (see the header comment for the guarantee).
  std::int64_t size() const { return Snapshot(*this).size(); }
  std::int64_t rank(Key k) const { return Snapshot(*this).rank(k); }
  std::optional<Key> select(std::int64_t i) const {
    return Snapshot(*this).select(i);
  }
  std::int64_t range_count(Key lo, Key hi) const {
    return Snapshot(*this).range_count(lo, hi);
  }
  AugValue range_aggregate(Key lo, Key hi) const {
    return Snapshot(*this).range_aggregate(lo, hi);
  }
  std::optional<Key> select_in_range(Key lo, Key hi, std::int64_t i) const {
    return Snapshot(*this).select_in_range(lo, hi, i);
  }
  std::optional<Key> floor(Key k) const { return Snapshot(*this).floor(k); }
  std::optional<Key> ceiling(Key k) const {
    return Snapshot(*this).ceiling(k);
  }
  std::vector<Key> range_collect(Key lo, Key hi, std::size_t limit = 0) const {
    return Snapshot(*this).keys(lo, hi, limit);
  }

  // Pins every shard's root version under ONE EBR guard: `guard_` is
  // declared (and therefore constructed) before the root-pinning loop in
  // the constructor runs, and it spans every query made through the
  // snapshot — composite queries never re-enter the EBR per shard.  Under
  // SnapshotPolicy::kLinearizable the pinning loop is the second phase of
  // the two-phase acquisition: phase one increments the owner's epoch
  // counter (the snapshot's linearization point), phase two resolves each
  // shard's root against that epoch, walking the root's prev_root history
  // backward past any installation stamped after the cut.  The shard-size
  // prefix sums are materialized lazily, once, on the first query that
  // needs them (rank/select/size); order-free queries such as floor or
  // range_aggregate skip the O(NumShards) size reads entirely.
  class Snapshot {
   public:
    // Test-only seam: called with the shard index right before that
    // shard's root is read, letting deterministic interleaving tests
    // (tests/linearizability_test.cpp) run updates mid-acquisition.
    using MidAcquireHook = void (*)(void* ctx, int next_shard);

    explicit Snapshot(const ShardedSet& s) : Snapshot(s, nullptr, nullptr) {}
    Snapshot(const ShardedSet& s, MidAcquireHook hook, void* hook_ctx)
        : owner_(&s) {
      if constexpr (Policy == SnapshotPolicy::kLinearizable) {
        // fetch_add (not a plain read): every root stamped after this
        // point reads a counter value > epoch_, so it resolves past the
        // cut — and every update whose response preceded this call was
        // stamped <= epoch_, so it resolves inside it.
        epoch_ = s.epoch_->fetch_add(1, std::memory_order_seq_cst);
      }
      for (int i = 0; i < NumShards; ++i) {
        if (hook != nullptr) hook(hook_ctx, i);
        const V* r = s.shards_[i]->root_version_unsafe();
        if constexpr (Policy == SnapshotPolicy::kLinearizable) {
          r = version_resolve_epoch<Aug>(r, epoch_, *s.epoch_);
        }
        roots_[i] = r;
      }
    }
    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;

    // The acquisition epoch (kLinearizable; 0 under kQuiescent).  All
    // composite queries on this snapshot linearize at the counter
    // increment that returned it.
    std::uint64_t epoch() const { return epoch_; }

    bool contains(Key k) const {
      return version_contains<Aug>(root_of(k), k);
    }

    std::int64_t size() const { return prefix()[NumShards]; }

    // Keys <= k: the full shards below k's shard, by prefix sum, plus one
    // rank descent inside it.
    std::int64_t rank(Key k) const {
      const int s = owner_->shard_of(k);
      return prefix()[s] + version_rank<Aug>(roots_[s], k);
    }

    // Keys < k.
    std::int64_t rank_less(Key k) const {
      const int s = owner_->shard_of(k);
      return prefix()[s] + version_rank_less<Aug>(roots_[s], k);
    }

    // i-th smallest key overall (1-based): binary-search the prefix sums
    // for the owning shard, then select inside it.
    std::optional<Key> select(std::int64_t i) const {
      const auto& pre = prefix();
      if (i < 1 || i > pre[NumShards]) return std::nullopt;
      const auto it = std::lower_bound(pre.begin() + 1, pre.end(), i);
      const int s = static_cast<int>(it - pre.begin()) - 1;
      return version_select<Aug>(roots_[s], i - pre[s]);
    }

    // Keys in [lo, hi]: two composite rank descents (the middle shards are
    // absorbed by the prefix sums).
    std::int64_t range_count(Key lo, Key hi) const {
      if (lo > hi) return 0;
      return rank(hi) - rank_less(lo);
    }

    // Aggregate over [lo, hi]: boundary shards answer partially, every
    // fully-covered middle shard contributes its root's supplementary
    // field in O(1), and contiguity keeps the combine in key order.
    AugValue range_aggregate(Key lo, Key hi) const {
      if (lo > hi) return Aug::sentinel();
      const int slo = owner_->shard_of(lo);
      const int shi = owner_->shard_of(hi);
      if (slo == shi) {
        return version_range_aggregate<Aug>(roots_[slo], lo, hi);
      }
      AugValue acc =
          version_range_aggregate<Aug>(roots_[slo], lo, kMaxUserKey);
      for (int s = slo + 1; s < shi; ++s) {
        acc = Aug::combine(acc, roots_[s]->aug);
      }
      return Aug::combine(
          acc, version_range_aggregate<Aug>(
                   roots_[shi], std::numeric_limits<Key>::min(), hi));
    }

    // i-th smallest key within [lo, hi] (1-based), all on this snapshot.
    std::optional<Key> select_in_range(Key lo, Key hi,
                                       std::int64_t i) const {
      if (lo > hi || i < 1) return std::nullopt;
      const std::int64_t before = rank_less(lo);
      if (i > rank(hi) - before) return std::nullopt;
      return select(before + i);
    }

    // Largest key <= k: try k's shard, then walk down over empty-below
    // shards (usually zero or one extra probe).
    std::optional<Key> floor(Key k) const {
      for (int s = owner_->shard_of(k); s >= 0; --s) {
        if (auto r = version_floor<Aug>(roots_[s], k)) return r;
      }
      return std::nullopt;
    }

    // Smallest key >= k.
    std::optional<Key> ceiling(Key k) const {
      for (int s = owner_->shard_of(k); s < NumShards; ++s) {
        if (auto r = version_ceiling<Aug>(roots_[s], k)) return r;
      }
      return std::nullopt;
    }

    // All keys in [lo, hi] in order; shard contiguity makes simple
    // per-shard concatenation sorted.
    std::vector<Key> keys(Key lo = std::numeric_limits<Key>::min(),
                          Key hi = kMaxUserKey,
                          std::size_t limit = 0) const {
      std::vector<Key> out;
      for (int s = 0; s < NumShards; ++s) {
        version_collect_range<Aug>(roots_[s], lo, hi, &out, limit);
        if (limit > 0 && out.size() >= limit) break;
      }
      return out;
    }

    const V* root(int s) const { return roots_[s]; }

   private:
    const V* root_of(Key k) const { return roots_[owner_->shard_of(k)]; }

    // Lazy prefix-sum materialization, once per snapshot.  call_once
    // keeps the cache safe even when several reader threads fan out over
    // one pinned Snapshot (a supported pattern: all queries are const);
    // the pinned roots make the result stable for the snapshot's
    // lifetime.
    const std::array<std::int64_t, NumShards + 1>& prefix() const {
      std::call_once(prefix_once_, [this] {
        prefix_[0] = 0;
        for (int i = 0; i < NumShards; ++i) {
          prefix_[i + 1] = prefix_[i] + version_size<Aug>(roots_[i]);
        }
      });
      return prefix_;
    }

    EbrGuard guard_;
    const ShardedSet* owner_;
    std::uint64_t epoch_ = 0;
    std::array<const V*, NumShards> roots_;
    mutable std::once_flag prefix_once_;
    mutable std::array<std::int64_t, NumShards + 1> prefix_;
  };

  // Shard index owning key k; monotone non-decreasing in k, which is what
  // lets rank/select compose by prefix sums.
  int shard_of(Key k) const {
    if (k <= 0) return 0;
    const Key s = k / width_;
    return s >= NumShards ? NumShards - 1 : static_cast<int>(s);
  }

  Inner& shard_at(int i) { return *shards_[i]; }
  const Inner& shard_at(int i) const { return *shards_[i]; }

  // Pool warm-up passthrough.  The object pools are type-keyed and
  // per-thread (process-wide, not per-tree), so pre-faulting through one
  // shard covers every shard of the forest.
  void warm_up(std::size_t expected_updates)
    requires requires(Inner t, std::size_t n) { t.warm_up(n); }
  {
    shards_[0]->warm_up(expected_updates);
  }

 private:
  Inner& shard(Key k) { return *shards_[shard_of(k)]; }
  const Inner& shard(Key k) const { return *shards_[shard_of(k)]; }

  void repartition(Key keyspace) {
    keyspace_ = std::max<Key>(keyspace, NumShards);
    // Overflow-free ceiling: keyspace_ may be as large as kInf2, where
    // `(keyspace_ + NumShards - 1)` would wrap.
    width_ = keyspace_ / NumShards + (keyspace_ % NumShards != 0 ? 1 : 0);
  }

  Key keyspace_ = 0;
  Key width_ = 1;
  // Snapshot epoch counter.  Starts at 1 so every assigned stamp is
  // distinguishable from kEpochTbd (0).  Padded: every update's root
  // stamp loads it, every linearizable acquisition fetch_adds it.
  // Mutable: acquisition advances it from const composite queries; it is
  // bookkeeping for the cut, not observable set state.
  mutable Padded<std::atomic<std::uint64_t>> epoch_{{1}};
  // Padded: shards are updated by different threads; their tree roots must
  // not share cache lines.
  std::array<Padded<Inner>, NumShards> shards_;
};

// The shard counts the registry exposes ("Sharded4-BAT", ...); definitions
// live in sharded_set.cpp so the template is compiled once.
extern template class ShardedSet<Bat<SizeAug>, 1>;
extern template class ShardedSet<Bat<SizeAug>, 4>;
extern template class ShardedSet<Bat<SizeAug>, 16>;
extern template class ShardedSet<Bat<SizeAug>, 64>;
extern template class ShardedSet<BatDel<SizeAug>, 16>;
extern template class ShardedSet<Bat<SizeAug>, 4,
                                 SnapshotPolicy::kLinearizable>;
extern template class ShardedSet<Bat<SizeAug>, 16,
                                 SnapshotPolicy::kLinearizable>;

}  // namespace cbat
