// ShardedSet — a keyspace-partitioned forest of BATs (ROADMAP: sharding).
//
// The key range is split into NumShards contiguous sub-ranges, each served
// by its own inner tree (default `Bat<SizeAug>`).  Updates touch exactly one
// shard, so update throughput scales with the shard count instead of
// serializing on one root Propagate; the price is that composite queries
// must merge per-shard snapshots.  The merge is exactly the per-subtree
// aggregate composition of Sela & Petrank's concurrent aggregate queries:
//
//   * size / range_count / range_aggregate: sum (combine) the per-shard
//     answers — contiguity makes every middle shard a fully-covered subtree
//     whose answer is its root version's supplementary field, O(1);
//   * rank: prefix-sum the sizes of the shards entirely below the key's
//     shard, then one O(log n) rank descent inside it;
//   * select: binary-search the shard-size prefix sums for the owning
//     shard, then one O(log n) `version_select` descent inside it.
//
// Consistency: each shard is a BAT, so every single-shard operation is
// linearizable.  A `Snapshot` pins all shard root versions under one EBR
// guard; all queries through one Snapshot see the same immutable forest
// (multi-query consistency).  How the cut is *acquired* is the
// SnapshotPolicy template parameter:
//
//   * kQuiescent (default): the roots are read one after another, so a
//     cross-shard query is quiescently consistent, not linearizable — it
//     sees every update that completed before the Snapshot was taken and
//     no update that started after it, but may observe a later update
//     while missing an earlier one on a different shard.
//   * kLinearizable: the set owns a global epoch counter that every
//     shard-root installation stamps (BatTree::set_epoch_source, vcas-
//     style deferred timestamps as in Wei et al.'s constant-time
//     snapshots).  Acquisition is two-phase: fetch_add the counter — the
//     snapshot's linearization point — then resolve each shard's root to
//     the newest version stamped at or before that epoch, walking the
//     root's prev_root history backward when an installation raced past
//     the cut.  Every composite query on the snapshot then linearizes at
//     the fetch_add, closing the gap the quiescent mode leaves (and the
//     correctness gap that blocks hot-shard rebalancing; see ROADMAP).
//     Updates pay one counter load plus one uncontended stamp CAS per
//     root refresh; acquisition pays the fetch_add plus a usually-empty
//     history walk (see the snapshot_consistency bench scenario).
//
// Shard map: shard_of(k) = clamp(k / width) with width = ceil(keyspace /
// NumShards).  The keyspace defaults to `default_keyspace()` and can be
// adapted to a workload with `key_range_hint(max_key)` *while the set is
// empty* (the benchmark driver calls this before prefilling).  The map is
// monotone, so order statistics compose across shards by construction; keys
// outside [0, keyspace) are legal and simply land in the first or last
// shard.
//
// Read path (the ReadPath template parameter; ROADMAP: read-side scaling):
//
//   * kDirect (default): every composite query acquires its own Snapshot
//     and runs the per-shard merges itself.
//   * kCombined ("-RC" registry variants): the two read-side
//     amortizations are on.  (1) Snapshot leasing: composite queries
//     publish into a forest-level CombiningBuffer; the elected combiner
//     acquires ONE Snapshot — one epoch cut — and answers the whole read
//     burst against it, so a burst of N queries pays one acquisition
//     (and, under kLinearizable, one counter fetch_add) instead of N.
//     Each request linearizes at the shared cut's linearization point,
//     which lies between its publication and its response, so leased
//     queries inherit exactly the policy of the underlying cut — never
//     weaker.  (2) Epoch-stamped aggregate caches: per-shard sizes and
//     hot-range aggregates are memoized in an AggregateCache keyed by the
//     pinned root's stamp (src/shard/aggregate_cache.h); shards switch to
//     unique (fetch_add-minted) stamps so stamp equality implies root
//     identity.  Both halves are toggleable process-wide
//     (set_lease_reads / set_aggregate_cache) for benchmark attribution;
//     semantics are identical with either off.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

#include "combine/combining_buffer.h"
#include "core/bat_tree.h"
#include "core/version_queries.h"
#include "reclamation/ebr.h"
#include "shard/aggregate_cache.h"
#include "util/backoff.h"
#include "util/counters.h"
#include "util/padded.h"

namespace cbat {

namespace shard_detail {

// One process-wide keyspace default shared by every ShardedSet template
// instance, so registry-created structures of any shard count agree.
Key default_keyspace();
void set_default_keyspace(Key keyspace);

// Monotone forest ids for thread-local snapshot leases: a lease slot left
// behind by a destroyed forest can never match a live one.
inline std::uint64_t next_forest_id() {
  static std::atomic<std::uint64_t> src{0};
  return src.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace shard_detail

// The inner structure must expose a *sized* augmentation (the cross-shard
// prefix sums are shard sizes) and a pinned-root view; the BAT variants do.
// (root_version_unsafe is safe here: every caller holds an EbrGuard for the
// lifetime of the returned pointer.)
template <class Inner>
concept ShardableInner = requires(Inner t, const Inner ct, Key k) {
  typename Inner::AugType;
  requires SizedAugmentation<typename Inner::AugType>;
  { t.insert(k) } -> std::same_as<bool>;
  { t.erase(k) } -> std::same_as<bool>;
  { ct.contains(k) } -> std::same_as<bool>;
  { ct.root_version_unsafe() };
};

// Inner structures whose root installations can stamp a shared epoch
// counter (BatTree and wrappers that forward set_epoch_source).  Required
// by SnapshotPolicy::kLinearizable; quiescent forests stamp too when the
// inner supports it, so the two policies differ only in acquisition.
template <class Inner>
concept EpochStampedInner =
    requires(Inner t, std::atomic<std::uint64_t>* c) { t.set_epoch_source(c); };

// Cross-shard snapshot acquisition mode; see the header comment.
enum class SnapshotPolicy { kQuiescent, kLinearizable };

// Composite-query read path; see the header comment.  kCombined requires
// an epoch-stamped inner (the caches key on root stamps) and an int64
// augmentation value (the leased response slot and the cache entries carry
// one 64-bit aggregate).
enum class ReadPath { kDirect, kCombined };

template <class Inner = Bat<SizeAug>, int NumShards = 16,
          SnapshotPolicy Policy = SnapshotPolicy::kQuiescent,
          ReadPath RPath = ReadPath::kDirect>
  requires ShardableInner<Inner> && (NumShards >= 1) &&
           (Policy == SnapshotPolicy::kQuiescent || EpochStampedInner<Inner>) &&
           (RPath == ReadPath::kDirect ||
            (EpochStampedInner<Inner> &&
             std::same_as<typename Inner::AugType::Value, std::int64_t>))
class ShardedSet {
 public:
  using Aug = typename Inner::AugType;
  using AugValue = typename Aug::Value;
  using V = Version<Aug>;

  ShardedSet() : ShardedSet(shard_detail::default_keyspace()) {}
  explicit ShardedSet(Key keyspace) {
    repartition(keyspace);
    // Attach the epoch counter before any update can run, so every root
    // the forest ever installs (beyond the initial empty roots, which the
    // resolve walk accepts as the oldest state) is stamped.  Stamping is
    // on under BOTH policies, deliberately: (a) it is what keeps the
    // snapshot_consistency ratio a pure *acquisition*-cost measurement
    // (the write paths are identical), and (b) the planned hot-shard
    // migration protocol (ROADMAP) needs epoch cuts on the *default*
    // quiescent forests.  The quiescent-side cost is one counter load
    // plus one uncontended CAS on a just-written line per root refresh —
    // inside smoke-gate noise.
    // kCombined additionally selects unique (fetch_add-minted) stamps:
    // the aggregate caches validate by stamp equality, which is only
    // meaningful when no two roots can share a stamp (see
    // aggregate_cache.h).
    if constexpr (EpochStampedInner<Inner>) {
      for (auto& s : shards_) {
        s->set_epoch_source(&*epoch_, RPath == ReadPath::kCombined);
      }
    }
  }

  static constexpr int num_shards() { return NumShards; }
  static constexpr SnapshotPolicy snapshot_policy() { return Policy; }
  static constexpr ReadPath read_path() { return RPath; }

  // Introspection hook picked up by the API layer (SetModel::consistency):
  // cross-shard composite queries linearize only under kLinearizable.
  static constexpr bool composite_queries_linearizable() {
    return Policy == SnapshotPolicy::kLinearizable;
  }

  Key keyspace() const { return keyspace_; }

  // Current value of the snapshot epoch counter (tests; advanced only by
  // linearizable snapshot acquisitions, read by every root stamp).
  std::uint64_t current_epoch() const {
    return epoch_->load(std::memory_order_seq_cst);
  }

  // Adapts the shard map to keys drawn from [0, max_key).  Only honored
  // while the set is empty — repartitioning a populated forest would strand
  // keys in the wrong shard.  Not thread-safe against concurrent updates;
  // call it before handing the set to worker threads.
  bool key_range_hint(Key max_key) {
    if (max_key <= 0) return false;
    if (size() != 0) return false;
    repartition(max_key);
    return true;
  }

  // --- updates: exactly one shard, one EBR-guarded BAT update -------------

  bool insert(Key k) {
    if constexpr (RPath == ReadPath::kCombined) {
      const bool r = regime_update(k, /*is_insert=*/true);
      bump_update_seq(k);
      return r;
    } else {
      return shard(k).insert(k);
    }
  }
  bool erase(Key k) {
    if constexpr (RPath == ReadPath::kCombined) {
      const bool r = regime_update(k, /*is_insert=*/false);
      bump_update_seq(k);
      return r;
    } else {
      return shard(k).erase(k);
    }
  }

  // --- queries -------------------------------------------------------------

  bool contains(Key k) const { return shard(k).contains(k); }

  // All composite queries pin one Snapshot so their per-shard reads merge a
  // single consistent forest (see the header comment for the guarantee).
  // Under ReadPath::kCombined the five leasable kinds route through
  // read_op (publish into the forest buffer or combine inline); the
  // answer still comes from one Snapshot — a shared one when leased.
  std::int64_t size() const {
    if constexpr (RPath == ReadPath::kCombined) {
      return read_op(RBuffer::kSize, 0, 0).value;
    } else {
      return Snapshot(*this).size();
    }
  }
  std::int64_t rank(Key k) const {
    if constexpr (RPath == ReadPath::kCombined) {
      return read_op(RBuffer::kRank, k, 0).value;
    } else {
      return Snapshot(*this).rank(k);
    }
  }
  std::optional<Key> select(std::int64_t i) const {
    if constexpr (RPath == ReadPath::kCombined) {
      const auto r = read_op(RBuffer::kSelect, i, 0);
      return r.ok ? std::optional<Key>(r.value) : std::nullopt;
    } else {
      return Snapshot(*this).select(i);
    }
  }
  std::int64_t range_count(Key lo, Key hi) const {
    if constexpr (RPath == ReadPath::kCombined) {
      return read_op(RBuffer::kRangeCount, lo, hi).value;
    } else {
      return Snapshot(*this).range_count(lo, hi);
    }
  }
  AugValue range_aggregate(Key lo, Key hi) const {
    if constexpr (RPath == ReadPath::kCombined) {
      return read_op(RBuffer::kRangeAggregate, lo, hi).value;
    } else {
      return Snapshot(*this).range_aggregate(lo, hi);
    }
  }
  std::optional<Key> select_in_range(Key lo, Key hi, std::int64_t i) const {
    return Snapshot(*this).select_in_range(lo, hi, i);
  }
  std::optional<Key> floor(Key k) const { return Snapshot(*this).floor(k); }
  std::optional<Key> ceiling(Key k) const {
    return Snapshot(*this).ceiling(k);
  }
  std::vector<Key> range_collect(Key lo, Key hi, std::size_t limit = 0) const {
    return Snapshot(*this).keys(lo, hi, limit);
  }

  // Pins every shard's root version under ONE EBR guard: `guard_` is
  // declared (and therefore constructed) before the root-pinning loop in
  // the constructor runs, and it spans every query made through the
  // snapshot — composite queries never re-enter the EBR per shard.  Under
  // SnapshotPolicy::kLinearizable the pinning loop is the second phase of
  // the two-phase acquisition: phase one increments the owner's epoch
  // counter (the snapshot's linearization point), phase two resolves each
  // shard's root against that epoch, walking the root's prev_root history
  // backward past any installation stamped after the cut.  The shard-size
  // prefix sums are materialized lazily, once, on the first query that
  // needs them (rank/select/size); order-free queries such as floor or
  // range_aggregate skip the O(NumShards) size reads entirely.
  class Snapshot {
   public:
    // Test-only seam: called with the shard index right before that
    // shard's root is read, letting deterministic interleaving tests
    // (tests/linearizability_test.cpp) run updates mid-acquisition.
    using MidAcquireHook = void (*)(void* ctx, int next_shard);

    explicit Snapshot(const ShardedSet& s) : Snapshot(s, nullptr, nullptr) {}
    Snapshot(const ShardedSet& s, MidAcquireHook hook, void* hook_ctx)
        : owner_(&s) {
      if constexpr (Policy == SnapshotPolicy::kLinearizable) {
        // fetch_add (not a plain read): every root stamped after this
        // point reads a counter value > epoch_, so it resolves past the
        // cut — and every update whose response preceded this call was
        // stamped <= epoch_, so it resolves inside it.
        epoch_ = s.epoch_->fetch_add(1, std::memory_order_seq_cst);
      }
      for (int i = 0; i < NumShards; ++i) {
        if (hook != nullptr) hook(hook_ctx, i);
        const V* r = s.shards_[i]->root_version_unsafe();
        if constexpr (Policy == SnapshotPolicy::kLinearizable) {
          // The resolve walk helps finalize stamps, so it must mint them
          // in the forest's mode: unique forests (kCombined) may never
          // let a load-based helper duplicate a fetch_add-minted stamp.
          if constexpr (RPath == ReadPath::kCombined) {
            r = version_resolve_epoch_unique<Aug>(r, epoch_, *s.epoch_);
          } else {
            r = version_resolve_epoch<Aug>(r, epoch_, *s.epoch_);
          }
        }
        roots_[i] = r;
      }
    }
    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;

    ~Snapshot() = default;

    // The acquisition epoch (kLinearizable; 0 under kQuiescent).  All
    // composite queries on this snapshot linearize at the counter
    // increment that returned it.
    std::uint64_t epoch() const { return epoch_; }

    bool contains(Key k) const {
      return version_contains<Aug>(root_of(k), k);
    }

    std::int64_t size() const { return prefix()[NumShards]; }

    // Keys <= k: the full shards below k's shard, by prefix sum, plus one
    // rank descent inside it.
    std::int64_t rank(Key k) const {
      const int s = owner_->shard_of(k);
      return prefix()[s] + version_rank<Aug>(roots_[s], k);
    }

    // Keys < k.
    std::int64_t rank_less(Key k) const {
      const int s = owner_->shard_of(k);
      return prefix()[s] + version_rank_less<Aug>(roots_[s], k);
    }

    // i-th smallest key overall (1-based): binary-search the prefix sums
    // for the owning shard, then select inside it.
    std::optional<Key> select(std::int64_t i) const {
      const auto& pre = prefix();
      if (i < 1 || i > pre[NumShards]) return std::nullopt;
      const auto it = std::lower_bound(pre.begin() + 1, pre.end(), i);
      const int s = static_cast<int>(it - pre.begin()) - 1;
      return version_select<Aug>(roots_[s], i - pre[s]);
    }

    // Keys in [lo, hi]: two composite rank descents (the middle shards are
    // absorbed by the prefix sums).
    std::int64_t range_count(Key lo, Key hi) const {
      if (lo > hi) return 0;
      return rank(hi) - rank_less(lo);
    }

    // Aggregate over [lo, hi]: boundary shards answer partially, every
    // fully-covered middle shard contributes its root's supplementary
    // field in O(1), and contiguity keeps the combine in key order.  The
    // boundary descents are the only O(log n) part, so they are what the
    // range cache memoizes (shard_range_agg) under ReadPath::kCombined.
    AugValue range_aggregate(Key lo, Key hi) const {
      if (lo > hi) return Aug::sentinel();
      const int slo = owner_->shard_of(lo);
      const int shi = owner_->shard_of(hi);
      if (slo == shi) {
        return shard_range_agg(slo, lo, hi);
      }
      AugValue acc = shard_range_agg(slo, lo, kMaxUserKey);
      for (int s = slo + 1; s < shi; ++s) {
        acc = Aug::combine(acc, roots_[s]->aug);
      }
      return Aug::combine(
          acc,
          shard_range_agg(shi, std::numeric_limits<Key>::min(), hi));
    }

    // i-th smallest key within [lo, hi] (1-based), all on this snapshot.
    std::optional<Key> select_in_range(Key lo, Key hi,
                                       std::int64_t i) const {
      if (lo > hi || i < 1) return std::nullopt;
      const std::int64_t before = rank_less(lo);
      if (i > rank(hi) - before) return std::nullopt;
      return select(before + i);
    }

    // Largest key <= k: try k's shard, then walk down over empty-below
    // shards (usually zero or one extra probe).
    std::optional<Key> floor(Key k) const {
      for (int s = owner_->shard_of(k); s >= 0; --s) {
        if (auto r = version_floor<Aug>(roots_[s], k)) return r;
      }
      return std::nullopt;
    }

    // Smallest key >= k.
    std::optional<Key> ceiling(Key k) const {
      for (int s = owner_->shard_of(k); s < NumShards; ++s) {
        if (auto r = version_ceiling<Aug>(roots_[s], k)) return r;
      }
      return std::nullopt;
    }

    // All keys in [lo, hi] in order; shard contiguity makes simple
    // per-shard concatenation sorted.
    std::vector<Key> keys(Key lo = std::numeric_limits<Key>::min(),
                          Key hi = kMaxUserKey,
                          std::size_t limit = 0) const {
      std::vector<Key> out;
      for (int s = 0; s < NumShards; ++s) {
        version_collect_range<Aug>(roots_[s], lo, hi, &out, limit);
        if (limit > 0 && out.size() >= limit) break;
      }
      return out;
    }

    const V* root(int s) const { return roots_[s]; }

   private:
    const V* root_of(Key k) const { return roots_[owner_->shard_of(k)]; }

    // Lazy prefix-sum materialization, once per snapshot, guarded by a
    // plain flag.  The documented contract is single-threaded use of one
    // Snapshot (one thread constructs it, queries it, drops it — the
    // leased read path's combiner included; a thread that wants its own
    // view takes its own Snapshot), so the previous std::call_once /
    // once_flag here paid fence-and-branch machinery on every
    // rank/select/size for a cross-thread fan-out that never happens.
    const std::array<std::int64_t, NumShards + 1>& prefix() const {
      if (prefix_ready_) return prefix_;
      // Straight fill from the pinned roots, one aug load per shard —
      // deliberately NO stamp-keyed memoization and NO probe of the
      // shared size row here.  A root's epoch stamp lives on the same
      // version-node cache line as its aug field, so validating a
      // memoized prefix by stamps touches the same NumShards lines as
      // refilling it and then pays the compare and the copy on top; an
      // earlier revision memoized the prefix in the thread's lease slot
      // and measured 25-35% SLOWER than this loop on the read_burst rank
      // mixes.  A seqlock probe of the shared size row likewise costs
      // more than the one aug load it could save.  The quiescent leased
      // path keeps its cut in SnapLease and never lands here;
      // linearizable snapshots must re-pin fresh roots per read, and
      // this loop is the cheapest possible refill for them.
      prefix_[0] = 0;
      for (int i = 0; i < NumShards; ++i) {
        prefix_[i + 1] = prefix_[i] + version_size<Aug>(roots_[i]);
      }
      prefix_ready_ = true;
      return prefix_;
    }

    // Partial range aggregate of shard s over [lo, hi], cached per shard
    // for the hot ranges under ReadPath::kCombined.  The (lo, hi) pair is
    // part of the entry, so boundary pieces of different ranges that
    // hash together only cost each other misses, never wrong answers.
    AugValue shard_range_agg(int s, Key lo, Key hi) const {
      if constexpr (RPath == ReadPath::kCombined) {
        if (aggregate_cache_enabled()) {
          const std::uint64_t stamp =
              version_epoch_unique<Aug>(roots_[s], *owner_->epoch_);
          std::int64_t v;
          if (owner_->rc_.cache.load_range(s, lo, hi, stamp, &v)) {
            ++snap_lease().unflushed_hits;
            return v;
          }
          ++snap_lease().unflushed_misses;
          const AugValue fresh =
              version_range_aggregate<Aug>(roots_[s], lo, hi);
          owner_->rc_.cache.store_range(s, lo, hi, stamp, fresh);
          return fresh;
        }
      }
      return version_range_aggregate<Aug>(roots_[s], lo, hi);
    }

    EbrGuard guard_;
    const ShardedSet* owner_;
    std::uint64_t epoch_ = 0;
    std::array<const V*, NumShards> roots_;
    mutable bool prefix_ready_ = false;
    mutable std::array<std::int64_t, NumShards + 1> prefix_;
  };

  // Shard index owning key k; monotone non-decreasing in k, which is what
  // lets rank/select compose by prefix sums.
  int shard_of(Key k) const {
    if (k <= 0) return 0;
    const Key s = k / width_;
    return s >= NumShards ? NumShards - 1 : static_cast<int>(s);
  }

  Inner& shard_at(int i) { return *shards_[i]; }
  const Inner& shard_at(int i) const { return *shards_[i]; }

  // Pool warm-up passthrough.  The object pools are type-keyed and
  // per-thread (process-wide, not per-tree), so pre-faulting through one
  // shard covers every shard of the forest.
  void warm_up(std::size_t expected_updates)
    requires requires(Inner t, std::size_t n) { t.warm_up(n); }
  {
    shards_[0]->warm_up(expected_updates);
  }

 private:
  Inner& shard(Key k) { return *shards_[shard_of(k)]; }
  const Inner& shard(Key k) const { return *shards_[shard_of(k)]; }

  // Release edge pairing with leased_read's acquire load: everything the
  // completed update wrote (its root CAS included) is visible to any
  // reader that observes the new sequence value.  Bumped even when the
  // point op reports no logical change — a failed insert can still have
  // rebalanced on its descent and replaced version nodes.
  //
  // The updater then SELF-PATCHES its own lease: a thread's own updates
  // are the common invalidator under read-mostly mixes, and without the
  // patch every one of them would knock the next read onto the full
  // NumShards repair walk.  The patch is attempted only when the lease
  // was current right up to this update (lease.seq == prev); any
  // interleaved foreign update makes the next read repair instead, so
  // the lease's seq never overstates what was validated.  On read-free
  // update streams the first unpatched gap makes every later attempt
  // bail on the seq check — the cost self-limits to mixes that lease.
  void bump_update_seq(Key k)
    requires(RPath == ReadPath::kCombined)
  {
    const std::uint64_t prev =
        rc_.update_seq->fetch_add(1, std::memory_order_release);
    if constexpr (Policy == SnapshotPolicy::kQuiescent) {
      if (!lease_reads_enabled()) return;
      SnapLease& lease = snap_lease();
      if (lease.forest != rc_.forest_id || lease.seq != prev) return;
      EbrGuard g;
      const int s = shard_of(k);
      const V* cur = shards_[s]->root_version_unsafe();
      const std::uint64_t stamp = version_epoch_unique<Aug>(cur, *epoch_);
      if (stamp != lease.stamps[s]) {
        const std::int64_t sz = version_size<Aug>(cur);
        const std::int64_t delta =
            sz - (lease.prefix[s + 1] - lease.prefix[s]);
        lease.roots[s] = cur;
        lease.stamps[s] = stamp;
        if (delta != 0) {
          for (int j = s + 1; j <= NumShards; ++j) lease.prefix[j] += delta;
        }
        // The recompute counts as a hierarchy miss (and refills the
        // shared row, for other threads' repairs): it is the read-side
        // work this update caused, merely paid here in advance.
        ++lease.unflushed_misses;
        if (aggregate_cache_enabled()) rc_.cache.store_size(s, stamp, sz);
      }
      lease.seq = prev + 1;
    }
  }

  // A thread whose recent traffic was this many composite reads (with no
  // update in between) applies its next update solo instead of joining
  // the shard's combining protocol.  Rationale: flat combining pays when
  // updates are dense enough to batch — under a read-dominated mix batch
  // occupancy is ~1, so an update that finds the combiner lock busy would
  // publish and spin behind a possibly-descheduled combiner (a convoy the
  // measured read_burst gap was entirely made of) to amortize nothing.
  // The detector is thread-local and free: update-dense threads keep the
  // counter pinned at 0 and retain the full protocol (combine_sweep's
  // batched-Propagate win is untouched); read-dominated threads skip
  // straight to the inner tree, which is safe under concurrent combined
  // batches.  Point reads (contains) do not feed the signal — it gates a
  // composite-read-path optimization, and they never enter that path.
  static constexpr std::uint32_t kRegimeSoloReads = 1;

  bool regime_update(Key k, bool is_insert)
    requires(RPath == ReadPath::kCombined)
  {
    Inner& s = shard(k);
    if constexpr (requires {
                    { s.insert_solo(k) } -> std::same_as<bool>;
                    { s.erase_solo(k) } -> std::same_as<bool>;
                  }) {
      SnapLease& lease = snap_lease();
      const bool solo = lease.reads_since_update >= kRegimeSoloReads;
      lease.reads_since_update = 0;
      if (solo) return is_insert ? s.insert_solo(k) : s.erase_solo(k);
    }
    return is_insert ? s.insert(k) : s.erase(k);
  }

  // --- the leased read path (ReadPath::kCombined only) ---------------------

  using RBuffer = CombiningBuffer<64>;
  using ReadRes = typename RBuffer::ReadResult;

  // Spin budget a publisher waits on its read slot before retracting and
  // going direct; same budget (and same meaning of 0: never wait) as the
  // update-combining layer, so one knob governs both.
  static std::uint64_t lease_budget() {
    if constexpr (requires {
                    {
                      Inner::delegation_timeout()
                    } -> std::convertible_to<std::uint64_t>;
                  }) {
      return Inner::delegation_timeout();
    } else {
      return std::uint64_t{1} << 16;
    }
  }

  // One composite read through the lease protocol: combine inline when
  // the buffer lock is free (the own request rides the cut it acquires),
  // otherwise publish and spin, inheriting the lock or retracting on
  // timeout exactly like CombinedSet::update — progress never depends on
  // a combiner.  The lock covers only the drain sweep, never the cut
  // acquisition or the answers: drained slots are already claimed
  // (kTaken), so the combiner answers them lock-free and a reader that
  // arrives mid-answer elects itself combiner of the next cut instead of
  // stalling behind this one.
  ReadRes read_op(typename RBuffer::Op op, Key a, Key b) const
    requires(RPath == ReadPath::kCombined)
  {
    // Lease elision first: with nothing published there is no burst to
    // share a cut with — this read IS the degenerate one-request burst,
    // answered on its own (possibly leased, see direct_read) cut without
    // the lock RMWs.  Checked before the knobs so the hot no-burst path
    // pays one shared load instead of three globals; under a real burst
    // in_flight is nonzero and the protocol below engages.
    if (!rc_.buffer.has_pending()) {
      return direct_read(op, a, b);
    }
    const std::uint64_t budget = lease_budget();
    if (!lease_reads_enabled() || budget == 0 || combine_max_batch() <= 1) {
      return direct_read(op, a, b);
    }
    if (rc_.buffer.try_lock()) {
      return run_read_combiner(op, a, b);
    }
    const int slot = rc_.buffer.publish_read(op, a, b);
    if (slot < 0) {  // buffer full: shed load
      return direct_read(op, a, b);
    }
    std::uint64_t spins = 0;
    bool may_time_out = true;
    while (true) {
      const auto st = rc_.buffer.slot_state(slot);
      if (st == RBuffer::kDone) return rc_.buffer.take_read_result(slot);
      if (st == RBuffer::kPending && rc_.buffer.try_lock()) {
        // The previous combiner's cut closed without our request: drain
        // the buffer ourselves (our own slot included).
        run_read_combiner_drained_only();
        continue;
      }
      cpu_relax();
      if ((++spins & 63) == 0) std::this_thread::yield();
      if (may_time_out && spins > budget) {
        if (rc_.buffer.try_retract(slot)) {
          return direct_read(op, a, b);
        }
        // A combiner claimed the request; only it may answer now.
        may_time_out = false;
      }
    }
  }

  // A thread's retained lease on a quiescent cut: the roots it last
  // answered on, their unique stamps, and the materialized prefix sums.
  // Deliberately guard-FREE plain data — an early version kept a live
  // Snapshot (EBR guard included) here, and on an oversubscribed host a
  // descheduled thread's held guard pinned the global epoch for its whole
  // scheduling gap, stalling reclamation and starving the version pools.
  // Instead each read re-enters a fresh guard and revalidates the lease by
  // stamp identity (below); between reads the lease pins nothing.
  // `forest` ids are minted from a process-wide monotone counter and never
  // reused, so a slot left behind by a destroyed forest can never be
  // mistaken for the current one (its dangling roots are only ever
  // dereferenced after revalidation proves them live).
  struct SnapLease {
    std::uint64_t forest = 0;
    // update_seq value this lease was last validated against (see
    // ReadCombining::update_seq).
    std::uint64_t seq = 0;
    std::array<const V*, NumShards> roots;
    std::array<std::uint64_t, NumShards> stamps;
    std::array<std::int64_t, NumShards + 1> prefix;
    // Batched tallies, flushed every 1024 reads and here at thread exit:
    // a per-read Counters::bump was a measurable slice of the ~100ns hit
    // path.  hits/misses feed kAggCacheHits/kAggCacheMisses with the
    // HIERARCHY semantics the read_burst metric reports: the lease is the
    // thread-local first level of the aggregate cache, the shared
    // AggregateCache the second, and a "hit" is a per-shard aggregate (or
    // a whole still-valid cut, on the seq fast path) served from either
    // level without recomputing from version nodes; a "miss" is a
    // recompute.  Safe to bump from this destructor: the lease TLS is
    // first touched under an EbrGuard, so the thread's registry slot
    // (constructed earlier) outlives it.
    std::uint32_t unflushed_reads = 0;
    std::uint32_t unflushed_solo = 0;
    std::uint32_t unflushed_hits = 0;
    std::uint32_t unflushed_misses = 0;
    // Regime signal, not a statistic (never flushed): composite reads this
    // thread has issued since its last update.  insert/erase consult it to
    // decide whether joining the shard's combining protocol can pay — see
    // regime_update.
    std::uint32_t reads_since_update = 0;
    void flush() {
      if (unflushed_reads != 0) {
        Counters::bump(Counter::kLeaseBatchedReads, unflushed_reads);
        unflushed_reads = 0;
      }
      if (unflushed_solo != 0) {
        Counters::bump(Counter::kLeaseSoloReads, unflushed_solo);
        unflushed_solo = 0;
      }
      if (unflushed_hits != 0) {
        Counters::bump(Counter::kAggCacheHits, unflushed_hits);
        unflushed_hits = 0;
      }
      if (unflushed_misses != 0) {
        Counters::bump(Counter::kAggCacheMisses, unflushed_misses);
        unflushed_misses = 0;
      }
    }
    ~SnapLease() { flush(); }
  };
  static SnapLease& snap_lease()
    requires(RPath == ReadPath::kCombined)
  {
    thread_local SnapLease lease;
    return lease;
  }

  // Solo composite read.  Under kQuiescent this is where snapshot leasing
  // pays on every core count: the thread renews its leased cut only when
  // some root actually moved, so a run of undisturbed reads shares one
  // prefix materialization and each read costs a NumShards stamp check on
  // top of its descent.  Revalidating on EVERY read (rather than trusting
  // the lease for some grace period) is what keeps the semantics exactly
  // those of a fresh quiescent acquisition.  kLinearizable snapshots must
  // advance the epoch counter to order against concurrent stamping, so
  // they are acquired fresh per read and leasing contributes only
  // combiner cuts.
  ReadRes direct_read(typename RBuffer::Op op, Key a, Key b) const
    requires(RPath == ReadPath::kCombined)
  {
    if constexpr (Policy == SnapshotPolicy::kQuiescent) {
      if (lease_reads_enabled()) return leased_read(op, a, b);
    }
    const Snapshot snap(*this);
    SnapLease& lease = snap_lease();
    ++lease.reads_since_update;
    if (++lease.unflushed_solo >= 1024) lease.flush();
    return answer(snap, op, a, b);
  }

  // Validate-or-renew the thread's lease under a fresh guard, then answer
  // on it.  Validation is by STAMP identity, not pointer identity: without
  // a guard held since the cut was taken, a cached pointer could have been
  // freed and its address reused (ABA), but stamps are fetch_add-minted
  // and unique per version, so `stamp(current root) == cached stamp`
  // proves the current root IS the cached version object — and a root
  // still installed was never retired, so the whole cached cut (interior
  // version nodes included: they are only retired after a replacement
  // root installs) is live and answerable.
  ReadRes leased_read(typename RBuffer::Op op, Key a, Key b) const
    requires(RPath == ReadPath::kCombined)
  {
    EbrGuard g;
    SnapLease& lease = snap_lease();
    // Fast path: the forest's update sequence has not moved since this
    // lease was last validated, so no update has completed anywhere and
    // every cached root, stamp, and prefix sum is current — one shared
    // (read-mostly) load replaces the whole per-shard stamp walk.  The
    // seq is loaded BEFORE any validation below: updates racing the
    // slow path at worst leave lease.seq behind the roots actually
    // stored, forcing one spurious revalidation later — never a stale
    // accept.
    const std::uint64_t seq =
        rc_.update_seq->load(std::memory_order_acquire);
    if (lease.forest == rc_.forest_id && lease.seq == seq) {
      ++lease.unflushed_hits;
      return lease_finish(lease, op, a, b);
    }
    if (lease.forest != rc_.forest_id) {
      renew_lease(lease);
    } else {
      // Validate and repair every shard in one pass.  A stale stamp does
      // NOT discard the lease: only the moved shard is reloaded, and the
      // prefix sums are patched by the size delta — the lease's prefix
      // array is always an exact prefix sum of the per-shard sizes its
      // stamps identify, so `prefix[i+1] - prefix[i]` recovers the
      // outdated size without storing sizes separately.  The walk covers
      // ALL shards, not just the ones this answer reads, because setting
      // lease.seq below declares the whole cut validated-at-seq: a
      // partial span here would let a later fast-path read serve a shard
      // this pass skipped.  Full repair runs once per completed update a
      // thread observes (the seq gate absorbs everything else), so its
      // cost is amortized across the read run that follows.
      const bool cache_on = aggregate_cache_enabled();
      std::int64_t delta = 0;
      bool dirty = false;
      for (int i = 0; i < NumShards; ++i) {
        const V* cur = shards_[i]->root_version_unsafe();
        const std::uint64_t stamp = version_epoch_unique<Aug>(cur, *epoch_);
        if (stamp == lease.stamps[i]) {
          ++lease.unflushed_hits;
          if (delta != 0) lease.prefix[i] += delta;
          continue;
        }
        const std::int64_t old_sz = lease.prefix[i + 1] - lease.prefix[i];
        if (delta != 0) lease.prefix[i] += delta;
        lease.roots[i] = cur;
        lease.stamps[i] = stamp;
        std::int64_t sz;
        if (cache_on && rc_.cache.load_size(i, stamp, &sz)) {
          ++lease.unflushed_hits;
        } else {
          ++lease.unflushed_misses;
          sz = version_size<Aug>(cur);
          if (cache_on) rc_.cache.store_size(i, stamp, sz);
        }
        delta += sz - old_sz;
        dirty = true;
      }
      if (dirty) {
        if (delta != 0) lease.prefix[NumShards] += delta;
        Counters::bump(Counter::kLeaseCuts);
      }
    }
    lease.seq = seq;
    return lease_finish(lease, op, a, b);
  }

  // Shared tail of both leased paths: batch-flush the read/hit tallies,
  // then answer on the (now valid) lease.
  ReadRes lease_finish(SnapLease& lease, typename RBuffer::Op op, Key a,
                       Key b) const
    requires(RPath == ReadPath::kCombined)
  {
    ++lease.reads_since_update;
    if (++lease.unflushed_reads >= 1024) lease.flush();
    return lease_answer(lease, op, a, b);
  }

  // Take a fresh quiescent cut into the lease slot: roots, unique stamps,
  // and the prefix sums — the latter through the shared aggregate cache.
  // Cold path only: a thread's first read of a forest, or a lease left
  // behind by another forest; root movement within the forest is repaired
  // incrementally in leased_read and never lands here.  Caller holds an
  // EBR guard.
  void renew_lease(SnapLease& lease) const
    requires(RPath == ReadPath::kCombined)
  {
    const bool cache_on = aggregate_cache_enabled();
    std::uint32_t hits = 0;
    std::uint32_t misses = 0;
    lease.forest = rc_.forest_id;
    lease.prefix[0] = 0;
    for (int i = 0; i < NumShards; ++i) {
      const V* r = shards_[i]->root_version_unsafe();
      const std::uint64_t stamp = version_epoch_unique<Aug>(r, *epoch_);
      lease.roots[i] = r;
      lease.stamps[i] = stamp;
      std::int64_t sz;
      if (cache_on) {
        if (rc_.cache.load_size(i, stamp, &sz)) {
          ++hits;
        } else {
          ++misses;
          sz = version_size<Aug>(r);
          rc_.cache.store_size(i, stamp, sz);
        }
      } else {
        sz = version_size<Aug>(r);
      }
      lease.prefix[i + 1] = lease.prefix[i] + sz;
    }
    if (hits != 0) Counters::bump(Counter::kAggCacheHits, hits);
    if (misses != 0) Counters::bump(Counter::kAggCacheMisses, misses);
    Counters::bump(Counter::kLeaseCuts);
  }

  std::int64_t lease_rank(const SnapLease& lease, Key k) const
    requires(RPath == ReadPath::kCombined)
  {
    const int s = shard_of(k);
    return lease.prefix[s] + version_rank<Aug>(lease.roots[s], k);
  }
  std::int64_t lease_rank_less(const SnapLease& lease, Key k) const
    requires(RPath == ReadPath::kCombined)
  {
    const int s = shard_of(k);
    return lease.prefix[s] + version_rank_less<Aug>(lease.roots[s], k);
  }

  // Boundary piece of a range aggregate on the leased cut, memoized in
  // the shared range cache under the shard's stamp (bumps flushed here
  // directly: at most two pieces per query).
  AugValue lease_range_piece(const SnapLease& lease, int s, Key lo,
                             Key hi) const
    requires(RPath == ReadPath::kCombined)
  {
    if (aggregate_cache_enabled()) {
      std::int64_t v;
      if (rc_.cache.load_range(s, lo, hi, lease.stamps[s], &v)) {
        Counters::bump(Counter::kAggCacheHits);
        return v;
      }
      Counters::bump(Counter::kAggCacheMisses);
      const AugValue fresh =
          version_range_aggregate<Aug>(lease.roots[s], lo, hi);
      rc_.cache.store_range(s, lo, hi, lease.stamps[s], fresh);
      return fresh;
    }
    return version_range_aggregate<Aug>(lease.roots[s], lo, hi);
  }

  // Composite answers on the leased cut; mirrors Snapshot's query logic
  // over the lease's POD state.
  ReadRes lease_answer(const SnapLease& lease, typename RBuffer::Op op,
                       Key a, Key b) const
    requires(RPath == ReadPath::kCombined)
  {
    switch (op) {
      case RBuffer::kSize:
        return {lease.prefix[NumShards], true};
      case RBuffer::kRank:
        return {lease_rank(lease, a), true};
      case RBuffer::kSelect: {
        if (a < 1 || a > lease.prefix[NumShards]) return {0, false};
        const auto it = std::lower_bound(lease.prefix.begin() + 1,
                                         lease.prefix.end(), a);
        const int s = static_cast<int>(it - lease.prefix.begin()) - 1;
        const std::optional<Key> r =
            version_select<Aug>(lease.roots[s], a - lease.prefix[s]);
        return {r.value_or(0), r.has_value()};
      }
      case RBuffer::kRangeCount: {
        if (a > b) return {0, true};
        return {lease_rank(lease, b) - lease_rank_less(lease, a), true};
      }
      case RBuffer::kRangeAggregate: {
        if (a > b) return {Aug::sentinel(), true};
        const int slo = shard_of(a);
        const int shi = shard_of(b);
        if (slo == shi) return {lease_range_piece(lease, slo, a, b), true};
        AugValue acc = lease_range_piece(lease, slo, a, kMaxUserKey);
        for (int s = slo + 1; s < shi; ++s) {
          acc = Aug::combine(acc, lease.roots[s]->aug);
        }
        return {Aug::combine(acc,
                             lease_range_piece(
                                 lease, shi,
                                 std::numeric_limits<Key>::min(), b)),
                true};
      }
      default:
        return {0, false};  // unreachable: only reads are routed here
    }
  }

  // Answers one drained request against the given (pinned) cut.
  static ReadRes answer(const Snapshot& snap, typename RBuffer::Op op, Key a,
                        Key b) {
    switch (op) {
      case RBuffer::kSize:
        return {snap.size(), true};
      case RBuffer::kRank:
        return {snap.rank(a), true};
      case RBuffer::kSelect: {
        const std::optional<Key> r = snap.select(a);
        return {r.value_or(0), r.has_value()};
      }
      case RBuffer::kRangeCount:
        return {snap.range_count(a, b), true};
      case RBuffer::kRangeAggregate:
        return {snap.range_aggregate(a, b), true};
      default:
        return {0, false};  // unreachable: only reads are published here
    }
  }

  // Caller holds the buffer lock; releases it after the drain.  Acquires
  // ONE cut and answers the own request plus every drained read against
  // it — the expensive part runs with the lock already free.
  ReadRes run_read_combiner(typename RBuffer::Op op, Key a, Key b) const
    requires(RPath == ReadPath::kCombined)
  {
    typename RBuffer::DrainedRequest reqs[RBuffer::num_slots()];
    const int n = rc_.buffer.drain(
        reqs, std::min(combine_max_batch() - 1,
                       static_cast<int>(RBuffer::num_slots())));
    rc_.buffer.unlock();
    const Snapshot snap(*this);
    for (int i = 0; i < n; ++i) {
      rc_.buffer.complete_read(
          reqs[i].slot, answer(snap, reqs[i].op, reqs[i].key, reqs[i].b));
    }
    Counters::bump(Counter::kLeaseCuts);
    Counters::bump(Counter::kLeaseBatchedReads,
                   static_cast<std::uint64_t>(n) + 1);
    return answer(snap, op, a, b);
  }

  // Caller holds the buffer lock; releases it after the drain.  Its own
  // request is already published (lock inheritance), so the batch is just
  // the drained slots.
  void run_read_combiner_drained_only() const
    requires(RPath == ReadPath::kCombined)
  {
    typename RBuffer::DrainedRequest reqs[RBuffer::num_slots()];
    const int n = rc_.buffer.drain(
        reqs, std::min(combine_max_batch(),
                       static_cast<int>(RBuffer::num_slots())));
    rc_.buffer.unlock();
    if (n == 0) return;
    const Snapshot snap(*this);
    for (int i = 0; i < n; ++i) {
      rc_.buffer.complete_read(
          reqs[i].slot, answer(snap, reqs[i].op, reqs[i].key, reqs[i].b));
    }
    Counters::bump(Counter::kLeaseCuts);
    Counters::bump(Counter::kLeaseBatchedReads,
                   static_cast<std::uint64_t>(n));
  }

  void repartition(Key keyspace) {
    keyspace_ = std::max<Key>(keyspace, NumShards);
    // Overflow-free ceiling: keyspace_ may be as large as kInf2, where
    // `(keyspace_ + NumShards - 1)` would wrap.
    width_ = keyspace_ / NumShards + (keyspace_ % NumShards != 0 ? 1 : 0);
  }

  Key keyspace_ = 0;
  Key width_ = 1;
  // Snapshot epoch counter.  Starts at 1 so every assigned stamp is
  // distinguishable from kEpochTbd (0).  Padded: every update's root
  // stamp loads it, every linearizable acquisition fetch_adds it.
  // Mutable: acquisition advances it from const composite queries; it is
  // bookkeeping for the cut, not observable set state.
  mutable Padded<std::atomic<std::uint64_t>> epoch_{{1}};
  // Read-side state, materialized only for ReadPath::kCombined: the
  // forest-level publication buffer for leased cuts and the epoch-stamped
  // aggregate caches.  Mutable for the same reason as epoch_: both are
  // bookkeeping driven by const composite queries.
  struct ReadCombining {
    RBuffer buffer;
    AggregateCache<NumShards> cache;
    // Identity for thread-local snapshot leases (see SnapLease); minted
    // once per forest, never reused.
    const std::uint64_t forest_id = shard_detail::next_forest_id();
    // Bumped (release) after every insert/erase RETURNS; a leased read
    // that loads (acquire) an unchanged value skips per-shard stamp
    // validation entirely — no update has completed since the lease was
    // last validated, so the cut is still exactly what a fresh quiescent
    // acquisition would assemble.  An update whose bump is not yet
    // visible to the reader's load is indistinguishable from one that
    // has not returned (it races the read), which quiescent consistency
    // already permits — the same eventual-visibility contract a direct
    // read's non-atomic root loads rely on.  Single line, bumped only by
    // updates: read-mostly mixes keep it shared across readers.
    Padded<std::atomic<std::uint64_t>> update_seq{{0}};
  };
  struct NoReadCombining {};
  [[no_unique_address]] mutable std::conditional_t<
      RPath == ReadPath::kCombined, ReadCombining, NoReadCombining>
      rc_;
  // Padded: shards are updated by different threads; their tree roots must
  // not share cache lines.
  std::array<Padded<Inner>, NumShards> shards_;
};

// The shard counts the registry exposes ("Sharded4-BAT", ...); definitions
// live in sharded_set.cpp so the template is compiled once.
extern template class ShardedSet<Bat<SizeAug>, 1>;
extern template class ShardedSet<Bat<SizeAug>, 4>;
extern template class ShardedSet<Bat<SizeAug>, 16>;
extern template class ShardedSet<Bat<SizeAug>, 64>;
extern template class ShardedSet<BatDel<SizeAug>, 16>;
extern template class ShardedSet<Bat<SizeAug>, 4,
                                 SnapshotPolicy::kLinearizable>;
extern template class ShardedSet<Bat<SizeAug>, 16,
                                 SnapshotPolicy::kLinearizable>;
// Read-combined variants over a plain BAT (test-only; the registry's
// "-RC" forests wrap CombinedSet shards, see combine/combined_set.h).
extern template class ShardedSet<Bat<SizeAug>, 4, SnapshotPolicy::kQuiescent,
                                 ReadPath::kCombined>;
extern template class ShardedSet<Bat<SizeAug>, 4,
                                 SnapshotPolicy::kLinearizable,
                                 ReadPath::kCombined>;

}  // namespace cbat
