// ShardedSet — a keyspace-partitioned forest of BATs (ROADMAP: sharding).
//
// The key range is split into NumShards contiguous sub-ranges, each served
// by its own inner tree (default `Bat<SizeAug>`).  Updates touch exactly one
// shard, so update throughput scales with the shard count instead of
// serializing on one root Propagate; the price is that composite queries
// must merge per-shard snapshots.  The merge is exactly the per-subtree
// aggregate composition of Sela & Petrank's concurrent aggregate queries:
//
//   * size / range_count / range_aggregate: sum (combine) the per-shard
//     answers — contiguity makes every middle shard a fully-covered subtree
//     whose answer is its root version's supplementary field, O(1);
//   * rank: prefix-sum the sizes of the shards entirely below the key's
//     shard, then one O(log n) rank descent inside it;
//   * select: binary-search the shard-size prefix sums for the owning
//     shard, then one O(log n) `version_select` descent inside it.
//
// Consistency: each shard is a BAT, so every single-shard operation is
// linearizable.  A `Snapshot` pins all shard root versions under one EBR
// guard; all queries through one Snapshot see the same immutable forest
// (multi-query consistency).  How the cut is *acquired* is the
// SnapshotPolicy template parameter:
//
//   * kQuiescent (default): the roots are read one after another, so a
//     cross-shard query is quiescently consistent, not linearizable — it
//     sees every update that completed before the Snapshot was taken and
//     no update that started after it, but may observe a later update
//     while missing an earlier one on a different shard.
//   * kLinearizable: the set owns a global epoch counter that every
//     shard-root installation stamps (BatTree::set_epoch_source, vcas-
//     style deferred timestamps as in Wei et al.'s constant-time
//     snapshots).  Acquisition is two-phase: fetch_add the counter — the
//     snapshot's linearization point — then resolve each shard's root to
//     the newest version stamped at or before that epoch, walking the
//     root's prev_root history backward when an installation raced past
//     the cut.  Every composite query on the snapshot then linearizes at
//     the fetch_add, closing the gap the quiescent mode leaves (and the
//     correctness gap that blocks hot-shard rebalancing; see ROADMAP).
//     Updates pay one counter load plus one uncontended stamp CAS per
//     root refresh; acquisition pays the fetch_add plus a usually-empty
//     history walk (see the snapshot_consistency bench scenario).
//
// Shard map: shard_of(k) = clamp(k / width) with width = ceil(keyspace /
// NumShards).  The keyspace defaults to `default_keyspace()` and can be
// adapted to a workload with `key_range_hint(max_key)` *while the set is
// empty* (the benchmark driver calls this before prefilling).  The map is
// monotone, so order statistics compose across shards by construction; keys
// outside [0, keyspace) are legal and simply land in the first or last
// shard.
//
// Adaptive sharding (the Adaptive template parameter; ROADMAP: hot-shard
// rebalancing).  The static contiguous split leaves a Zipfian hot shard
// reserializing updates; "-Adapt" forests replace it with a ShardMap
// indirection — an atomically-swappable boundary table — plus per-shard
// update-rate tracking and a piggybacked RebalanceController that sheds
// half of a hot shard's owned range to a cooler adjacent neighbor (a
// local rule in the spirit of Bampas et al.'s self-stabilizing
// containment-tree balancing: no global coordinator, convergence while
// traffic continues).  A boundary move runs the epoch-cut migration
// protocol (docs/ARCHITECTURE.md "The migration protocol"): freeze the
// move behind a phase word, bulk-move the keys on a linearizable epoch
// cut via apply_batch, double-route in-flight updates through a dirty-key
// log, seal the range for one grace period to replay the log, then
// publish the new map and retire the moved keys' source-shard copies.
// Composite queries stay correct because every shard's contribution is
// restricted to the owned range of the map the snapshot pinned: a key's
// copies outside its owning shard's range are invisible on every cut, so
// any (map, roots) combination a snapshot can assemble is consistent.
//
// Read path (the ReadPath template parameter; ROADMAP: read-side scaling):
//
//   * kDirect (default): every composite query acquires its own Snapshot
//     and runs the per-shard merges itself.
//   * kCombined ("-RC" registry variants): the two read-side
//     amortizations are on.  (1) Snapshot leasing: composite queries
//     publish into a forest-level CombiningBuffer; the elected combiner
//     acquires ONE Snapshot — one epoch cut — and answers the whole read
//     burst against it, so a burst of N queries pays one acquisition
//     (and, under kLinearizable, one counter fetch_add) instead of N.
//     Each request linearizes at the shared cut's linearization point,
//     which lies between its publication and its response, so leased
//     queries inherit exactly the policy of the underlying cut — never
//     weaker.  (2) Epoch-stamped aggregate caches: per-shard sizes and
//     hot-range aggregates are memoized in an AggregateCache keyed by the
//     pinned root's stamp (src/shard/aggregate_cache.h); shards switch to
//     unique (fetch_add-minted) stamps so stamp equality implies root
//     identity.  Both halves are toggleable process-wide
//     (set_lease_reads / set_aggregate_cache) for benchmark attribution;
//     semantics are identical with either off.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

#include "combine/combining_buffer.h"
#include "core/bat_tree.h"
#include "core/version_queries.h"
#include "reclamation/ebr.h"
#include "shard/aggregate_cache.h"
#include "util/backoff.h"
#include "util/counters.h"
#include "util/fault.h"
#include "util/padded.h"
#include "util/thread_annotations.h"

namespace cbat {

namespace shard_detail {

// One process-wide keyspace default shared by every ShardedSet template
// instance, so registry-created structures of any shard count agree.
Key default_keyspace();
void set_default_keyspace(Key keyspace);

// Monotone forest ids for thread-local snapshot leases: a lease slot left
// behind by a destroyed forest can never match a live one.
inline std::uint64_t next_forest_id() {
  // shared: one-time id mint per forest construction; cold.
  static std::atomic<std::uint64_t> src{0};
  // relaxed: only uniqueness is needed, not ordering with anything.
  return src.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace shard_detail

// The inner structure must expose a *sized* augmentation (the cross-shard
// prefix sums are shard sizes) and a pinned-root view; the BAT variants do.
// (root_version_unsafe is safe here: every caller holds an EbrGuard for the
// lifetime of the returned pointer.)
template <class Inner>
concept ShardableInner = requires(Inner t, const Inner ct, Key k) {
  typename Inner::AugType;
  requires SizedAugmentation<typename Inner::AugType>;
  { t.insert(k) } -> std::same_as<bool>;
  { t.erase(k) } -> std::same_as<bool>;
  { ct.contains(k) } -> std::same_as<bool>;
  { ct.root_version_unsafe() };
};

// Inner structures whose root installations can stamp a shared epoch
// counter (BatTree and wrappers that forward set_epoch_source).  Required
// by SnapshotPolicy::kLinearizable; quiescent forests stamp too when the
// inner supports it, so the two policies differ only in acquisition.
template <class Inner>
concept EpochStampedInner =
    requires(Inner t, std::atomic<std::uint64_t>* c) { t.set_epoch_source(c); };

// Cross-shard snapshot acquisition mode; see the header comment.
enum class SnapshotPolicy { kQuiescent, kLinearizable };

// Composite-query read path; see the header comment.  kCombined requires
// an epoch-stamped inner (the caches key on root stamps) and an int64
// augmentation value (the leased response slot and the cache entries carry
// one 64-bit aggregate).
enum class ReadPath { kDirect, kCombined };

template <class Inner = Bat<SizeAug>, int NumShards = 16,
          SnapshotPolicy Policy = SnapshotPolicy::kQuiescent,
          ReadPath RPath = ReadPath::kDirect, bool Adaptive = false>
  requires ShardableInner<Inner> && (NumShards >= 1) &&
           (Policy == SnapshotPolicy::kQuiescent || EpochStampedInner<Inner>) &&
           // Migration freezes boundary moves at epoch cuts and bulk-moves
           // keys with apply_batch, so adaptive forests need the stamping
           // machinery even under kQuiescent plus a bulk update path.
           (!Adaptive ||
            (EpochStampedInner<Inner> &&
             requires(Inner t, BatchOp* b, int n) { t.apply_batch(b, n); })) &&
           (RPath == ReadPath::kDirect ||
            (EpochStampedInner<Inner> &&
             std::same_as<typename Inner::AugType::Value, std::int64_t>))
class ShardedSet {
 public:
  using Aug = typename Inner::AugType;
  using AugValue = typename Aug::Value;
  using V = Version<Aug>;

  // The atomically-swappable boundary table (Adaptive forests).  Shard s
  // owns the inclusive key range [lo_of(s), hi_of(s)]; upper[NumShards-1]
  // is pinned to kMaxUserKey so the table always covers the keyspace.
  // Maps are immutable once published: a boundary move installs a fresh
  // table whose `prev` points at the one it replaced and whose
  // `flip_epoch` is stamped after installation (kEpochTbd until then,
  // help-stamped by readers — the same deferred-timestamp discipline as
  // root stamps), so linearizable snapshots can resolve the map chain to
  // the newest table at or before their cut.  Replaced tables are
  // EBR-retired; an accepted table's `prev` is never dereferenced, which
  // is what bounds the walk to live memory (see resolve_map_epoch).
  struct ShardMap {
    std::array<Key, NumShards> upper{};  // inclusive owned upper bounds
    std::uint64_t gen = 1;               // monotone map generation
    const ShardMap* prev = nullptr;
    // shared: stamped once at the flip; cold after publication.
    mutable std::atomic<std::uint64_t> flip_epoch{kEpochTbd};

    int shard_of(Key k) const {
      int lo = 0, hi = NumShards - 1;
      while (lo < hi) {
        const int mid = (lo + hi) / 2;
        if (k <= upper[mid]) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      return lo;
    }
    Key lo_of(int s) const {
      return s == 0 ? std::numeric_limits<Key>::min() : upper[s - 1] + 1;
    }
    Key hi_of(int s) const { return upper[s]; }
  };

  // Migration phase-hook stages (test seam, like Snapshot's
  // MidAcquireHook): the migrator calls the hook at every protocol
  // boundary so tests can interleave queries and updates at each phase.
  static constexpr int kMigHookCopyBegin = 0;  // descriptor live, pre-copy
  static constexpr int kMigHookCopied = 1;     // bulk copy applied to dst
  static constexpr int kMigHookSealed = 2;     // range sealed, pre-replay
  static constexpr int kMigHookReplayed = 3;   // dirty log applied to dst
  static constexpr int kMigHookFlipped = 4;    // new map installed+stamped
  static constexpr int kMigHookOpened = 5;     // phase kDone, range live
  static constexpr int kMigHookCleaned = 6;    // source copies retired
  using MigrationHook = void (*)(void* ctx, int stage);

  ShardedSet() : ShardedSet(shard_detail::default_keyspace()) {}
  explicit ShardedSet(Key keyspace) {
    repartition(keyspace);
    // Attach the epoch counter before any update can run, so every root
    // the forest ever installs (beyond the initial empty roots, which the
    // resolve walk accepts as the oldest state) is stamped.  Stamping is
    // on under BOTH policies, deliberately: (a) it is what keeps the
    // snapshot_consistency ratio a pure *acquisition*-cost measurement
    // (the write paths are identical), and (b) the planned hot-shard
    // migration protocol (ROADMAP) needs epoch cuts on the *default*
    // quiescent forests.  The quiescent-side cost is one counter load
    // plus one uncontended CAS on a just-written line per root refresh —
    // inside smoke-gate noise.
    // kCombined additionally selects unique (fetch_add-minted) stamps:
    // the aggregate caches validate by stamp equality, which is only
    // meaningful when no two roots can share a stamp (see
    // aggregate_cache.h).
    if constexpr (EpochStampedInner<Inner>) {
      for (auto& s : shards_) {
        s->set_epoch_source(&*epoch_, RPath == ReadPath::kCombined);
      }
    }
  }

  ~ShardedSet() {
    if constexpr (Adaptive) {
      // Only the current map is owned here; every replaced map was
      // EBR-retired at its flip and the reclaimer frees it independently
      // (its deleter does not touch this set).
      delete map_.load(std::memory_order_acquire);
    }
  }

  static constexpr int num_shards() { return NumShards; }
  static constexpr SnapshotPolicy snapshot_policy() { return Policy; }
  static constexpr ReadPath read_path() { return RPath; }
  static constexpr bool adaptive_rebalancing() { return Adaptive; }

  // True when updates go through a flat-combining protocol somewhere on
  // their path (the registry's capability report); forwarded from the
  // inner so "Sharded16-Combined-*" reports what its shards actually do.
  static constexpr bool combines_updates() {
    if constexpr (requires {
                    { Inner::combines_updates() } -> std::convertible_to<bool>;
                  }) {
      return Inner::combines_updates();
    } else {
      return false;
    }
  }

  // True when composite reads lease shared cuts at the FOREST level (the
  // "-RC" read path).  Deliberately not forwarded from the inner: shard
  // queries bypass the inner's own read combining entirely (they read
  // pinned roots), so only the forest-level path describes this type.
  static constexpr bool combines_reads() {
    return RPath == ReadPath::kCombined;
  }

  // Introspection hook picked up by the API layer (SetModel::consistency):
  // cross-shard composite queries linearize only under kLinearizable.
  static constexpr bool composite_queries_linearizable() {
    return Policy == SnapshotPolicy::kLinearizable;
  }

  Key keyspace() const { return keyspace_; }

  // Current value of the snapshot epoch counter (tests; advanced only by
  // linearizable snapshot acquisitions, read by every root stamp).
  std::uint64_t current_epoch() const {
    return epoch_->load(std::memory_order_seq_cst);
  }

  // Adapts the shard map to keys drawn from [0, max_key).  Only honored
  // while the set is empty — repartitioning a populated forest would strand
  // keys in the wrong shard.  Not thread-safe against concurrent updates;
  // call it before handing the set to worker threads.
  bool key_range_hint(Key max_key) {
    if (max_key <= 0) return false;
    if (size() != 0) return false;
    repartition(max_key);
    return true;
  }

  // --- updates: exactly one shard, one EBR-guarded BAT update -------------

  bool insert(Key k) {
    if constexpr (Adaptive) {
      return adaptive_update(k, /*is_insert=*/true);
    } else if constexpr (RPath == ReadPath::kCombined) {
      const bool r = regime_update(k, /*is_insert=*/true);
      bump_update_seq(k);
      return r;
    } else {
      return shard(k).insert(k);
    }
  }
  bool erase(Key k) {
    if constexpr (Adaptive) {
      return adaptive_update(k, /*is_insert=*/false);
    } else if constexpr (RPath == ReadPath::kCombined) {
      const bool r = regime_update(k, /*is_insert=*/false);
      bump_update_seq(k);
      return r;
    } else {
      return shard(k).erase(k);
    }
  }

  // --- queries -------------------------------------------------------------

  bool contains(Key k) const {
    if constexpr (Adaptive) {
      // Route by the current map, under a guard so the map stays live.
      // Correct in every migration phase: before the flip the old map
      // routes a migrating key to its source shard, which stays
      // authoritative until the range is sealed and replayed; after the
      // flip the new map routes to the destination, which the replay made
      // identical to the source at the moment updates were still blocked —
      // at the flip instant both routes give the same answer.
      EbrGuard g;
      const ShardMap* m = map_.load(std::memory_order_acquire);
      return shards_[m->shard_of(k)]->contains(k);
    } else {
      return shard(k).contains(k);
    }
  }

  // All composite queries pin one Snapshot so their per-shard reads merge a
  // single consistent forest (see the header comment for the guarantee).
  // Under ReadPath::kCombined the five leasable kinds route through
  // read_op (publish into the forest buffer or combine inline); the
  // answer still comes from one Snapshot — a shared one when leased.
  std::int64_t size() const {
    if constexpr (RPath == ReadPath::kCombined) {
      return read_op(RBuffer::kSize, 0, 0).value;
    } else {
      const Snapshot snap(*this);
      return snap.size();
    }
  }
  std::int64_t rank(Key k) const {
    if constexpr (RPath == ReadPath::kCombined) {
      return read_op(RBuffer::kRank, k, 0).value;
    } else {
      const Snapshot snap(*this);
      return snap.rank(k);
    }
  }
  std::optional<Key> select(std::int64_t i) const {
    if constexpr (RPath == ReadPath::kCombined) {
      const auto r = read_op(RBuffer::kSelect, i, 0);
      return r.ok ? std::optional<Key>(r.value) : std::nullopt;
    } else {
      const Snapshot snap(*this);
      return snap.select(i);
    }
  }
  std::int64_t range_count(Key lo, Key hi) const {
    if constexpr (RPath == ReadPath::kCombined) {
      return read_op(RBuffer::kRangeCount, lo, hi).value;
    } else {
      const Snapshot snap(*this);
      return snap.range_count(lo, hi);
    }
  }
  AugValue range_aggregate(Key lo, Key hi) const {
    if constexpr (RPath == ReadPath::kCombined) {
      return read_op(RBuffer::kRangeAggregate, lo, hi).value;
    } else {
      const Snapshot snap(*this);
      return snap.range_aggregate(lo, hi);
    }
  }
  // Named Snapshot locals (never temporaries) throughout: TSA tracks
  // scoped capabilities only for named local variables, so
  // `Snapshot(*this).x()` would not prove ebr_capability held for x().
  std::optional<Key> select_in_range(Key lo, Key hi, std::int64_t i) const {
    const Snapshot snap(*this);
    return snap.select_in_range(lo, hi, i);
  }
  std::optional<Key> floor(Key k) const {
    const Snapshot snap(*this);
    return snap.floor(k);
  }
  std::optional<Key> ceiling(Key k) const {
    const Snapshot snap(*this);
    return snap.ceiling(k);
  }
  std::vector<Key> range_collect(Key lo, Key hi, std::size_t limit = 0) const {
    const Snapshot snap(*this);
    return snap.keys(lo, hi, limit);
  }

  // Pins every shard's root version under ONE EBR guard: `guard_` is
  // declared (and therefore constructed) before the root-pinning loop in
  // the constructor runs, and it spans every query made through the
  // snapshot — composite queries never re-enter the EBR per shard.  Under
  // SnapshotPolicy::kLinearizable the pinning loop is the second phase of
  // the two-phase acquisition: phase one increments the owner's epoch
  // counter (the snapshot's linearization point), phase two resolves each
  // shard's root against that epoch, walking the root's prev_root history
  // backward past any installation stamped after the cut.  The shard-size
  // prefix sums are materialized lazily, once, on the first query that
  // needs them (rank/select/size); order-free queries such as floor or
  // range_aggregate skip the O(NumShards) size reads entirely.
  //
  // For Thread Safety Analysis the Snapshot IS a scoped ebr_capability
  // (its guard_ member pins the epoch for its whole lifetime), and every
  // query method is CBAT_REQUIRES(ebr_capability) because it dereferences
  // the pinned roots.
  class CBAT_SCOPED_CAPABILITY Snapshot {
   public:
    // Test-only seam: called with the shard index right before that
    // shard's root is read, letting deterministic interleaving tests
    // (tests/linearizability_test.cpp) run updates mid-acquisition.
    using MidAcquireHook = void (*)(void* ctx, int next_shard);

    explicit Snapshot(const ShardedSet& s) CBAT_ACQUIRE(ebr_capability)
        : Snapshot(s, nullptr, nullptr) {}
    Snapshot(const ShardedSet& s, MidAcquireHook hook, void* hook_ctx)
        CBAT_ACQUIRE(ebr_capability)
        : owner_(&s) {
      // guard: guard_ is constructed before this body runs (it is the
      // first member); TSA does not track member-subobject guards, so
      // assert the capability it already pinned.
      ebr_assert_held();
      if constexpr (Policy == SnapshotPolicy::kLinearizable) {
        // fetch_add (not a plain read): every root stamped after this
        // point reads a counter value > epoch_, so it resolves past the
        // cut — and every update whose response preceded this call was
        // stamped <= epoch_, so it resolves inside it.
        epoch_ = s.epoch_->fetch_add(1, std::memory_order_seq_cst);
        if constexpr (Adaptive) {
          // Resolve the map the same way the roots are resolved: newest
          // table whose flip was stamped at or before the cut.  Any
          // (map@E, roots@E) pair is consistent — the owned-range
          // restriction below hides a destination's pre-flip copies and
          // a source's post-flip leftovers on every cut.
          map_ = s.resolve_map_epoch(
              s.map_.load(std::memory_order_seq_cst), epoch_);
        }
      } else if constexpr (Adaptive) {
        map_ = s.map_.load(std::memory_order_acquire);
      }
      for (;;) {
        for (int i = 0; i < NumShards; ++i) {
          if (hook != nullptr) hook(hook_ctx, i);
          const V* r = s.shards_[i]->root_version_unsafe();
          if constexpr (Policy == SnapshotPolicy::kLinearizable) {
            // The resolve walk helps finalize stamps, so it must mint them
            // in the forest's mode: unique forests (kCombined) may never
            // let a load-based helper duplicate a fetch_add-minted stamp.
            if constexpr (RPath == ReadPath::kCombined) {
              r = version_resolve_epoch_unique<Aug>(r, epoch_, *s.epoch_);
            } else {
              r = version_resolve_epoch<Aug>(r, epoch_, *s.epoch_);
            }
          }
          roots_[i] = r;
        }
        if constexpr (Adaptive && Policy == SnapshotPolicy::kQuiescent) {
          // A quiescent cut must not pair an OLD map with roots pinned
          // after a newer map's post-flip cleanup (the cleanup's erases
          // would make the migrated range vanish from both shards under
          // the old restriction).  Re-check the map after pinning: flips
          // are rare, the loop virtually never retries, and the guard
          // held across the whole loop rules out map-pointer ABA (a
          // retired map cannot be freed and reallocated while we run).
          const ShardMap* cur = s.map_.load(std::memory_order_acquire);
          if (cur != map_) {
            map_ = cur;
            continue;
          }
        }
        break;
      }
    }
    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;

    ~Snapshot() CBAT_RELEASE() {}

    // The acquisition epoch (kLinearizable; 0 under kQuiescent).  All
    // composite queries on this snapshot linearize at the counter
    // increment that returned it.
    std::uint64_t epoch() const { return epoch_; }

    bool contains(Key k) const CBAT_REQUIRES(ebr_capability) {
      return version_contains<Aug>(root_of(k), k);
    }

    std::int64_t size() const CBAT_REQUIRES(ebr_capability) {
      return prefix()[NumShards];
    }

    // Keys <= k: the full shards below k's shard, by prefix sum, plus one
    // rank descent inside it.  Adaptive shards subtract the keys below
    // their owned range — the routing map guarantees k itself lies inside
    // the owning shard's range, so only the low side needs the clamp.
    std::int64_t rank(Key k) const CBAT_REQUIRES(ebr_capability) {
      const int s = snap_shard_of(k);
      if constexpr (Adaptive) {
        return prefix()[s] + version_rank<Aug>(roots_[s], k) -
               version_rank_less<Aug>(roots_[s], map_->lo_of(s));
      } else {
        return prefix()[s] + version_rank<Aug>(roots_[s], k);
      }
    }

    // Keys < k.
    std::int64_t rank_less(Key k) const CBAT_REQUIRES(ebr_capability) {
      const int s = snap_shard_of(k);
      if constexpr (Adaptive) {
        return prefix()[s] + version_rank_less<Aug>(roots_[s], k) -
               version_rank_less<Aug>(roots_[s], map_->lo_of(s));
      } else {
        return prefix()[s] + version_rank_less<Aug>(roots_[s], k);
      }
    }

    // i-th smallest key overall (1-based): binary-search the prefix sums
    // for the owning shard, then select inside it.
    std::optional<Key> select(std::int64_t i) const
        CBAT_REQUIRES(ebr_capability) {
      const auto& pre = prefix();
      if (i < 1 || i > pre[NumShards]) return std::nullopt;
      const auto it = std::lower_bound(pre.begin() + 1, pre.end(), i);
      const int s = static_cast<int>(it - pre.begin()) - 1;
      if constexpr (Adaptive) {
        return version_select_in_range<Aug>(roots_[s], map_->lo_of(s),
                                            map_->hi_of(s), i - pre[s]);
      } else {
        return version_select<Aug>(roots_[s], i - pre[s]);
      }
    }

    // Keys in [lo, hi]: two composite rank descents (the middle shards are
    // absorbed by the prefix sums).
    std::int64_t range_count(Key lo, Key hi) const
        CBAT_REQUIRES(ebr_capability) {
      if (lo > hi) return 0;
      return rank(hi) - rank_less(lo);
    }

    // Aggregate over [lo, hi]: boundary shards answer partially, every
    // fully-covered middle shard contributes its root's supplementary
    // field in O(1), and contiguity keeps the combine in key order.  The
    // boundary descents are the only O(log n) part, so they are what the
    // range cache memoizes (shard_range_agg) under ReadPath::kCombined.
    AugValue range_aggregate(Key lo, Key hi) const
        CBAT_REQUIRES(ebr_capability) {
      if (lo > hi) return Aug::sentinel();
      const int slo = snap_shard_of(lo);
      const int shi = snap_shard_of(hi);
      if (slo == shi) {
        return shard_range_agg(slo, lo, hi);
      }
      if constexpr (Adaptive) {
        // Middle shards lose their O(1) root-aug shortcut: the root
        // aggregates EVERYTHING in the tree, stale out-of-range copies
        // included, so each middle shard answers its owned range with a
        // restricted descent (cached under kCombined like the boundary
        // pieces — the (lo, hi) pair is part of the cache entry, so a
        // map change re-keys the lookup by itself).
        AugValue acc = shard_range_agg(slo, lo, map_->hi_of(slo));
        for (int s = slo + 1; s < shi; ++s) {
          acc = Aug::combine(
              acc, shard_range_agg(s, map_->lo_of(s), map_->hi_of(s)));
        }
        return Aug::combine(acc, shard_range_agg(shi, map_->lo_of(shi), hi));
      } else {
        AugValue acc = shard_range_agg(slo, lo, kMaxUserKey);
        for (int s = slo + 1; s < shi; ++s) {
          acc = Aug::combine(acc, roots_[s]->aug);
        }
        return Aug::combine(
            acc,
            shard_range_agg(shi, std::numeric_limits<Key>::min(), hi));
      }
    }

    // i-th smallest key within [lo, hi] (1-based), all on this snapshot.
    std::optional<Key> select_in_range(Key lo, Key hi, std::int64_t i) const
        CBAT_REQUIRES(ebr_capability) {
      if (lo > hi || i < 1) return std::nullopt;
      const std::int64_t before = rank_less(lo);
      if (i > rank(hi) - before) return std::nullopt;
      return select(before + i);
    }

    // Largest key <= k: try k's shard, then walk down over empty-below
    // shards (usually zero or one extra probe).  Adaptive shards clamp
    // the probe to the owned range and reject answers below it — a stale
    // out-of-range copy must neither be returned nor end the walk.
    std::optional<Key> floor(Key k) const CBAT_REQUIRES(ebr_capability) {
      for (int s = snap_shard_of(k); s >= 0; --s) {
        if constexpr (Adaptive) {
          const Key cap = std::min(k, map_->hi_of(s));
          if (auto r = version_floor<Aug>(roots_[s], cap)) {
            if (*r >= map_->lo_of(s)) return r;
          }
        } else {
          if (auto r = version_floor<Aug>(roots_[s], k)) return r;
        }
      }
      return std::nullopt;
    }

    // Smallest key >= k.
    std::optional<Key> ceiling(Key k) const CBAT_REQUIRES(ebr_capability) {
      for (int s = snap_shard_of(k); s < NumShards; ++s) {
        if constexpr (Adaptive) {
          const Key flo = std::max(k, map_->lo_of(s));
          if (auto r = version_ceiling<Aug>(roots_[s], flo)) {
            if (*r <= map_->hi_of(s)) return r;
          }
        } else {
          if (auto r = version_ceiling<Aug>(roots_[s], k)) return r;
        }
      }
      return std::nullopt;
    }

    // All keys in [lo, hi] in order; shard contiguity makes simple
    // per-shard concatenation sorted (adaptive shards clamp each
    // collection to the shard's owned slice of [lo, hi]).
    std::vector<Key> keys(Key lo = std::numeric_limits<Key>::min(),
                          Key hi = kMaxUserKey, std::size_t limit = 0) const
        CBAT_REQUIRES(ebr_capability) {
      std::vector<Key> out;
      for (int s = 0; s < NumShards; ++s) {
        if constexpr (Adaptive) {
          const Key l = std::max(lo, map_->lo_of(s));
          const Key h = std::min(hi, map_->hi_of(s));
          if (l <= h) version_collect_range<Aug>(roots_[s], l, h, &out, limit);
        } else {
          version_collect_range<Aug>(roots_[s], lo, hi, &out, limit);
        }
        if (limit > 0 && out.size() >= limit) break;
      }
      return out;
    }

    const V* root(int s) const CBAT_REQUIRES(ebr_capability) {
      return roots_[s];
    }

   private:
    // Shard routing on THIS snapshot's view: the pinned map under
    // Adaptive (the live map may flip while the snapshot is open), the
    // static division otherwise.
    int snap_shard_of(Key k) const CBAT_REQUIRES(ebr_capability) {
      if constexpr (Adaptive) {
        return map_->shard_of(k);
      } else {
        return owner_->shard_of(k);
      }
    }

    const V* root_of(Key k) const CBAT_REQUIRES(ebr_capability) {
      return roots_[snap_shard_of(k)];
    }

    // Lazy prefix-sum materialization, once per snapshot, guarded by a
    // plain flag.  The documented contract is single-threaded use of one
    // Snapshot (one thread constructs it, queries it, drops it — the
    // leased read path's combiner included; a thread that wants its own
    // view takes its own Snapshot), so the previous std::call_once /
    // once_flag here paid fence-and-branch machinery on every
    // rank/select/size for a cross-thread fan-out that never happens.
    const std::array<std::int64_t, NumShards + 1>& prefix() const
        CBAT_REQUIRES(ebr_capability) {
      if (prefix_ready_) return prefix_;
      // Straight fill from the pinned roots, one aug load per shard —
      // deliberately NO stamp-keyed memoization and NO probe of the
      // shared size row here.  A root's epoch stamp lives on the same
      // version-node cache line as its aug field, so validating a
      // memoized prefix by stamps touches the same NumShards lines as
      // refilling it and then pays the compare and the copy on top; an
      // earlier revision memoized the prefix in the thread's lease slot
      // and measured 25-35% SLOWER than this loop on the read_burst rank
      // mixes.  A seqlock probe of the shared size row likewise costs
      // more than the one aug load it could save.  The quiescent leased
      // path keeps its cut in SnapLease and never lands here;
      // linearizable snapshots must re-pin fresh roots per read, and
      // this loop is the cheapest possible refill for them.
      // Adaptive shards count only their owned range: a migration's
      // bulk-copied destination keys (pre-flip) and not-yet-cleaned
      // source keys (post-flip) both live outside their shard's owned
      // range under the pinned map, so version_size would double-count
      // exactly them.  The restricted count is a rank descent per end
      // instead of one aug load — the adaptivity tax on rank/select.
      prefix_[0] = 0;
      for (int i = 0; i < NumShards; ++i) {
        if constexpr (Adaptive) {
          prefix_[i + 1] =
              prefix_[i] + version_range_count<Aug>(roots_[i], map_->lo_of(i),
                                                    map_->hi_of(i));
        } else {
          prefix_[i + 1] = prefix_[i] + version_size<Aug>(roots_[i]);
        }
      }
      prefix_ready_ = true;
      return prefix_;
    }

    // Partial range aggregate of shard s over [lo, hi], cached per shard
    // for the hot ranges under ReadPath::kCombined.  The (lo, hi) pair is
    // part of the entry, so boundary pieces of different ranges that
    // hash together only cost each other misses, never wrong answers.
    AugValue shard_range_agg(int s, Key lo, Key hi) const
        CBAT_REQUIRES(ebr_capability) {
      if constexpr (RPath == ReadPath::kCombined) {
        if (aggregate_cache_enabled()) {
          const std::uint64_t stamp =
              version_epoch_unique<Aug>(roots_[s], *owner_->epoch_);
          std::int64_t v;
          if (owner_->rc_.cache.load_range(s, lo, hi, stamp, &v)) {
            ++snap_lease().unflushed_hits;
            return v;
          }
          ++snap_lease().unflushed_misses;
          const AugValue fresh =
              version_range_aggregate<Aug>(roots_[s], lo, hi);
          owner_->rc_.cache.store_range(s, lo, hi, stamp, fresh);
          return fresh;
        }
      }
      return version_range_aggregate<Aug>(roots_[s], lo, hi);
    }

    EbrGuard guard_;
    const ShardedSet* owner_;
    std::uint64_t epoch_ = 0;
    // The boundary table this snapshot routes and restricts by (Adaptive
    // only; null otherwise).  Pinned by guard_ like the roots.
    const ShardMap* map_ = nullptr;
    std::array<const V*, NumShards> roots_;
    mutable bool prefix_ready_ = false;
    mutable std::array<std::int64_t, NumShards + 1> prefix_;
  };

  // Shard index owning key k; monotone non-decreasing in k, which is what
  // lets rank/select compose by prefix sums.
  int shard_of(Key k) const {
    if (k <= 0) return 0;
    const Key s = k / width_;
    return s >= NumShards ? NumShards - 1 : static_cast<int>(s);
  }

  Inner& shard_at(int i) { return *shards_[i]; }
  const Inner& shard_at(int i) const { return *shards_[i]; }

  // Pool warm-up passthrough.  The object pools are type-keyed and
  // per-thread (process-wide, not per-tree), so pre-faulting through one
  // shard covers every shard of the forest.
  void warm_up(std::size_t expected_updates)
    requires requires(Inner t, std::size_t n) { t.warm_up(n); }
  {
    shards_[0]->warm_up(expected_updates);
  }

  // --- adaptive rebalancing API (Adaptive forests only) --------------------

  // Master switch for the piggybacked controller; the protocol machinery
  // stays armed (rebalance_once still works), only the policy goes quiet.
  void set_adaptive_enabled(bool on)
    requires(Adaptive)
  {
    // relaxed: policy switch; no data is published with it.
    mig_.enabled.store(on, std::memory_order_relaxed);
  }
  // A shard migrates when its update rate exceeds `f` times the mean
  // (f > 1; default 2.0).
  void set_rebalance_hot_factor(double f)
    requires(Adaptive)
  {
    // relaxed: knob; any racing policy check may use either value.
    if (f > 1.0) mig_.hot_factor.store(f, std::memory_order_relaxed);
  }
  // Updates between two policy checks on one thread (default 2048).
  void set_rebalance_check_period(std::uint32_t p)
    requires(Adaptive)
  {
    // relaxed: knob; any racing policy check may use either value.
    if (p > 0) mig_.check_period.store(p, std::memory_order_relaxed);
  }

  // Test seam, mirroring Snapshot::MidAcquireHook: called at every
  // protocol boundary of a migration (the kMigHook* stages) so
  // deterministic interleaving tests can run queries and updates against
  // each phase.  Always invoked outside any EBR guard.
  void set_migration_hook(MigrationHook h, void* ctx)
    requires(Adaptive)
  {
    // relaxed: ctx is published by the hook release store below.
    mig_.hook_ctx.store(ctx, std::memory_order_relaxed);
    mig_.hook.store(h, std::memory_order_release);
  }

  // Test seam for the rollback path: the NEXT migration aborts at pre-flip
  // boundary `b` (0 = copy phase opened, 1 = bulk copy done, 2 = range
  // sealed, 3 = log replayed, 4 = immediately before the map flip) and
  // rolls back; one-shot.  Out-of-range values (e.g. -1) clear the seam.
  // The CBAT_FAULT_FORCE mig.* sites drive the same path when fault
  // injection is compiled in.
  void set_migration_abort_point(int b)
    requires(Adaptive)
  {
    mig_.abort_at.store(b, std::memory_order_seq_cst);
  }

  // Force one boundary move from shard `src` to an ADJACENT `dst` now
  // (tests and benchmarks; the policy path takes the same route).  False
  // when another migration is in flight, the pair is not adjacent, or src
  // owns too few keys to split.
  bool rebalance_once(int src, int dst)
    requires(Adaptive)
  {
    if (src < 0 || src >= NumShards || dst < 0 || dst >= NumShards ||
        (dst != src - 1 && dst != src + 1)) {
      return false;
    }
    if (!mig_.gate.try_acquire()) return false;
    const bool moved = migrate(src, dst);
    mig_.gate.release();
    return moved;
  }

  // Current map generation (1 + completed boundary moves); tests use it
  // to await convergence without poking at counters.
  std::uint64_t map_generation() const
    requires(Adaptive)
  {
    EbrGuard g;
    return map_.load(std::memory_order_acquire)->gen;
  }

 private:
  Inner& shard(Key k) { return *shards_[shard_of(k)]; }
  const Inner& shard(Key k) const { return *shards_[shard_of(k)]; }

  // --- the epoch-cut migration protocol (Adaptive only) --------------------
  //
  // One migration descriptor per forest (moves are serialized by the
  // migration gate).  The phase word is the updater-facing contract:
  //
  //   kIdle  — no move in flight; updates route by the current map.
  //   kCopy  — keys in [lo, hi] are being bulk-copied from src to dst on
  //            an epoch cut E0; updates in the range still apply to src
  //            (the map has not flipped) but ALSO log their key, so the
  //            migrator can replay what the copy missed.
  //   kSeal  — updates in the range park OUTSIDE their guard until the
  //            phase moves on; one grace period after sealing, the range
  //            is quiescent and the log replay makes dst exact.
  //   kDone  — the new map is published; updates route by it (to dst).
  //
  // Every phase store is seq_cst and followed by mig_quiesce() where the
  // protocol needs "all updates that saw the previous phase have
  // finished".  The barrier is a dedicated per-thread in-flight array —
  // NOT the EBR guard — because an update can stall in the combining
  // buffer's publish-wait for whole scheduler quanta when the host is
  // oversubscribed, and parking there inside an EBR guard would pin the
  // reclamation epoch for every structure in the process.  An updater
  // announces its slot (seq_cst) BEFORE reading the phase, so an updater
  // observed idle either finished its operation or started a new one
  // that already sees the new phase.
  // Single-migrator election gate, modeled as a TSA capability: the
  // protocol bodies (migrate, replay_log) are CBAT_REQUIRES(mig_.gate),
  // so reaching them without winning the election is a compile error
  // under -DCBAT_THREAD_SAFETY=ON.  Losers skip, not wait — try_acquire
  // is the whole election.
  class CBAT_CAPABILITY("migration gate") MigrationGate {
   public:
    // acq_rel: a winner must see the previous migration's protocol
    // writes (acquire) and publish its own claim (release) in one RMW.
    bool try_acquire() CBAT_TRY_ACQUIRE(true) {
      return !active_.exchange(true, std::memory_order_acq_rel);
    }
    void release() CBAT_RELEASE() {
      active_.store(false, std::memory_order_release);
    }

   private:
    // shared: single word flipped twice per migration; contention is nil.
    std::atomic<bool> active_{false};
  };

  struct Migration {
    enum Phase : int { kIdle = 0, kCopy = 1, kSeal = 2, kDone = 3 };
    // Dirty-key log capacity.  An overflow is not an error: the replay
    // falls back to a full diff of the migrated range (src truth vs. the
    // bulk copy), it just stops being proportional to the update rate.
    static constexpr std::uint32_t kLogCap = 1u << 13;
    // Don't split shards with fewer owned keys than this.
    static constexpr std::int64_t kMinSplitKeys = 16;

    // shared: phase word; seq_cst-stored by the single migrator, rare.
    std::atomic<int> phase{kIdle};
    // shared: move bounds; written once per migration, before kCopy.
    std::atomic<Key> lo{0};
    std::atomic<Key> hi{0};
    // shared: dirty-log cursor + overflow flag; bumped by in-range
    // updaters during kCopy only, never on the common path.
    std::atomic<std::uint32_t> log_n{0};
    std::atomic<bool> log_overflow{false};
    // shared: the log; slots are claimed by fetch_add, written once.
    std::array<std::atomic<Key>, kLogCap> log{};
    // Per-thread in-flight update announcements: (op_seq << 1) | active.
    // The op counter makes every announcement distinct, so the migrator's
    // quiesce wait is a simple "changed or idle" check with no ABA.
    std::array<Padded<std::atomic<std::uint64_t>>, kMaxThreads> inflight{};
    // Single-migrator gate; also what serializes map flips.
    MigrationGate gate;
    // Per-shard update-rate estimators (sampled 1-in-8 by note_update).
    std::array<Padded<std::atomic<std::uint64_t>>, NumShards> rate{};
    // shared: policy knobs (see the public setters); read-mostly.
    std::atomic<bool> enabled{true};
    std::atomic<std::uint32_t> check_period{2048};
    std::atomic<double> hot_factor{2.0};
    // shared: test seam (set_migration_hook); idle in production.
    std::atomic<MigrationHook> hook{nullptr};
    std::atomic<void*> hook_ctx{nullptr};
    // shared: test seam (set_migration_abort_point) — one-shot boundary
    // index at which the next migration aborts; -1 idle.  The fault layer
    // (CBAT_FAULT_FORCE on the mig.* sites) drives the same abort path
    // without this seam, but the seam keeps the rollback testable in the
    // default build.
    std::atomic<int> abort_at{-1};
  };
  // Zero-cost stand-in keeping TSA attribute arguments (mig_.gate,
  // rc_.buffer) well-formed in instantiations that compile the real
  // member out: member declarations — attributes included — are
  // instantiated even for requires-constrained functions that can never
  // be called there.
  class CBAT_CAPABILITY("unused") UnusedCapability {};
  struct NoMigration {
    [[no_unique_address]] UnusedCapability gate;
  };

  // Announce / retire one in-flight update in this thread's slot.  The
  // announce is seq_cst and MUST precede the phase read (that ordering is
  // the whole barrier: an updater that read the old phase is visibly
  // active to a migrator that scans after its phase store).
  std::atomic<std::uint64_t>& announce_inflight()
    requires(Adaptive)
  {
    thread_local std::uint64_t op_seq = 0;
    auto& slot = mig_.inflight[ThreadRegistry::thread_id()].value;
    slot.store((++op_seq << 1) | 1, std::memory_order_seq_cst);
    return slot;
  }
  static void retire_inflight(std::atomic<std::uint64_t>& slot) {
    // Release: the tree op's response and any dirty-log entry are
    // published before the slot reads idle.
    // relaxed: reads back this thread's own slot; coherence suffices.
    slot.store(slot.load(std::memory_order_relaxed) & ~1ULL,
               std::memory_order_release);
  }

  // Waits until every update announced before the call has finished.
  // Caller must have its own slot idle (the piggybacked migrator calls
  // this from note_update, after its update retired).  A slot that
  // changes at all has moved on: either to idle, or to a NEW operation —
  // which read the phase after our caller's phase store.
  void mig_quiesce()
    requires(Adaptive)
  {
    const int n = ThreadRegistry::instance().max_id();
    for (int t = 0; t < n && t < kMaxThreads; ++t) {
      auto& s = mig_.inflight[t].value;
      const std::uint64_t v = s.load(std::memory_order_seq_cst);
      if ((v & 1) == 0) continue;
      while (s.load(std::memory_order_acquire) == v) {
        std::this_thread::yield();
      }
    }
  }

  // Apply one update through the migration protocol.  The in-flight slot
  // stays announced across the whole routed operation (including any
  // combining-buffer wait) so the migrator's quiesce orders against us; a
  // sealed-range updater parks with its slot retired (spinning announced
  // would deadlock the migrator's own quiesce).
  bool adaptive_update(Key k, bool is_insert)
    requires(Adaptive)
  {
    bool r;
    int routed;
    for (;;) {
      auto& slot = announce_inflight();
      const int ph = mig_.phase.load(std::memory_order_seq_cst);
      // relaxed: lo/hi are stored before the kCopy phase store, and
      // reading kCopy (or later) seq_cst synchronizes with it, so the
      // in-range checks under an active phase never see stale bounds.
      if (ph == Migration::kCopy &&
          k >= mig_.lo.load(std::memory_order_relaxed) &&
          k <= mig_.hi.load(std::memory_order_relaxed)) {
        // Double-route: the map still sends k to the source shard, and
        // the dirty log tells the migrator to re-examine k at replay.
        r = route_update(k, is_insert, &routed);
        mig_log(k);
        retire_inflight(slot);
        break;
      }
      // relaxed: same ordering argument as the kCopy bounds check above.
      if (ph != Migration::kSeal ||
          k < mig_.lo.load(std::memory_order_relaxed) ||
          k > mig_.hi.load(std::memory_order_relaxed)) {
        r = route_update(k, is_insert, &routed);
        retire_inflight(slot);
        break;
      }
      // Sealed and in range: wait for the flip, then re-run the protocol
      // (the retry will see kDone/kIdle and route by the NEW map — the
      // map store precedes the phase store, both seq_cst).
      retire_inflight(slot);
      while (mig_.phase.load(std::memory_order_seq_cst) == Migration::kSeal) {
        std::this_thread::yield();
      }
    }
    note_update(routed);
    return r;
  }

  // The guard is scoped to the map dereference only: the inner operation
  // may wait on the shard's combining buffer, and that wait must pin
  // neither the reclamation epoch nor anything else — the in-flight slot
  // already covers the protocol ordering.
  bool route_update(Key k, bool is_insert, int* routed)
    requires(Adaptive)
  {
    int s;
    {
      EbrGuard g;
      s = map_.load(std::memory_order_acquire)->shard_of(k);
    }
    *routed = s;
    Inner& t = *shards_[s];
    return is_insert ? t.insert(k) : t.erase(k);
  }

  // Caller's in-flight slot is announced: the sealing quiesce is what
  // makes the log entry visible to the replay (the release stores below
  // happen before the slot retires, which the migrator waits for).
  void mig_log(Key k)
    requires(Adaptive)
  {
    const std::uint32_t i =
        mig_.log_n.fetch_add(1, std::memory_order_acq_rel);
    if (i < Migration::kLogCap) {
      mig_.log[i].store(k, std::memory_order_release);
    } else {
      mig_.log_overflow.store(true, std::memory_order_release);
    }
    Counters::bump(Counter::kShardDoubleRoutes);
  }

  // Rate tracking + piggybacked policy check; called after every update,
  // outside any guard.  Sampling 1-in-8 keeps the hot shard's rate
  // counter off the update fast path's critical line budget.
  void note_update(int shard)
    requires(Adaptive)
  {
    thread_local std::uint32_t ops = 0;
    thread_local std::uint32_t until_check = 1;
    if ((++ops & 7u) == 0) {
      // `shard` is the index the op actually routed to — no second map
      // lookup (and no guard) needed here.
      // relaxed: statistical estimator; lost or reordered bumps are noise.
      mig_.rate[shard]->fetch_add(8, std::memory_order_relaxed);
    }
    if (--until_check == 0) {
      // relaxed: policy knob; any recent value works.
      until_check = mig_.check_period.load(std::memory_order_relaxed);
      maybe_rebalance();
    }
  }

  // The RebalanceController's local rule: if the hottest shard's rate
  // exceeds hot_factor x mean and an adjacent neighbor runs at half the
  // hot rate or less, shed half of the hot shard's keys to that neighbor.
  // Piggybacked on updater threads — no coordinator thread; the election
  // gate makes losers skip, not wait.
  void maybe_rebalance()
    requires(Adaptive)
  {
    // relaxed: policy switch; a stale read just defers one check period.
    if (!mig_.enabled.load(std::memory_order_relaxed)) return;
    if (!mig_.gate.try_acquire()) return;
    std::array<std::uint64_t, NumShards> r;
    std::uint64_t total = 0;
    int hot = 0;
    // relaxed: estimator reads; the policy tolerates any approximate view.
    for (int i = 0; i < NumShards; ++i) {
      r[i] = mig_.rate[i]->load(std::memory_order_relaxed);
      total += r[i];
      if (r[i] > r[hot]) hot = i;
    }
    // Need enough samples for the mean to be meaningful.
    if (total >= static_cast<std::uint64_t>(NumShards) * 64) {
      const std::uint64_t mean =
          std::max<std::uint64_t>(total / NumShards, 1);
      Counters::bump(Counter::kShardImbalanceSumMilli,
                     r[hot] * 1000 / mean);
      Counters::bump(Counter::kShardImbalanceSamples);
      // relaxed: knob read; staleness only shifts one policy decision.
      if (NumShards > 1 && static_cast<double>(r[hot]) >
                               mig_.hot_factor.load(
                                   std::memory_order_relaxed) *
                                   static_cast<double>(mean)) {
        // Cooler adjacent neighbor, the cooler of the two if both
        // qualify; require it to run at <= half the hot rate so the move
        // cannot ping-pong.
        int dst = -1;
        if (hot > 0 && r[hot - 1] * 2 <= r[hot]) dst = hot - 1;
        if (hot < NumShards - 1 && r[hot + 1] * 2 <= r[hot] &&
            (dst < 0 || r[hot + 1] < r[dst])) {
          dst = hot + 1;
        }
        if (dst >= 0 && migrate(hot, dst)) {
          // relaxed: estimator reset; racing bumps may survive or vanish.
          for (auto& c : mig_.rate) c->store(0, std::memory_order_relaxed);
        }
      }
      // Decay so the estimator tracks the CURRENT distribution: without
      // it a workload shift would be invisible behind accumulated history.
      if (total > (1u << 16)) {
        // relaxed: estimator decay; racing bumps may be halved or not.
        for (auto& c : mig_.rate) {
          c->store(c->load(std::memory_order_relaxed) / 2,
                   std::memory_order_relaxed);
        }
      }
    }
    mig_.gate.release();
  }

  // Resolve shard s's root to the newest version stamped at or before
  // epoch e, in the forest's stamp-minting mode.  Caller holds a guard.
  const V* resolve_root(int s, std::uint64_t e) const
      CBAT_REQUIRES(ebr_capability)
    requires(Adaptive)
  {
    const V* r = shards_[s]->root_version_unsafe();
    if constexpr (RPath == ReadPath::kCombined) {
      return version_resolve_epoch_unique<Aug>(r, e, *epoch_);
    } else {
      return version_resolve_epoch<Aug>(r, e, *epoch_);
    }
  }

  // Walk the map chain to the newest table whose flip was stamped at or
  // before epoch e.  The same deferred-timestamp argument as the root
  // history walk (version_resolve_epoch) makes the prev dereference safe
  // under the caller's guard: the migrator finalizes flip_epoch BEFORE
  // retiring the replaced table, so a stamp observed > e was minted after
  // this snapshot's fetch_add — which means the retire of the table we
  // are stepping to happened after our guard was announced, and EBR keeps
  // it live for us.  A table we accept is never walked past.
  const ShardMap* resolve_map_epoch(const ShardMap* m, std::uint64_t e) const
      CBAT_REQUIRES(ebr_capability)
    requires(Adaptive)
  {
    for (;;) {
      std::uint64_t fe = m->flip_epoch.load(std::memory_order_acquire);
      if (fe == kEpochTbd) {
        std::uint64_t want = epoch_->load(std::memory_order_seq_cst);
        if (m->flip_epoch.compare_exchange_strong(fe, want,
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_acquire)) {
          fe = want;
        }
        // On failure fe holds the winner's stamp.
      }
      if (fe <= e || m->prev == nullptr) return m;
      m = m->prev;
    }
  }

  void run_hook(int stage)
    requires(Adaptive)
  {
    const MigrationHook h = mig_.hook.load(std::memory_order_acquire);
    if (h != nullptr) h(mig_.hook_ctx.load(std::memory_order_acquire), stage);
  }

  // Chunked bulk apply of one-sided ops (keys sorted) to shard s; the
  // same concurrent-solo path in-flight combined batches already share.
  void apply_bulk(int s, const std::vector<Key>& keys, bool is_insert)
    requires(Adaptive)
  {
    static constexpr std::size_t kChunk = 512;
    std::array<BatchOp, kChunk> ops;
    std::size_t i = 0;
    while (i < keys.size()) {
      const std::size_t n = std::min(kChunk, keys.size() - i);
      for (std::size_t j = 0; j < n; ++j) {
        ops[j] = BatchOp{keys[i + j], is_insert, false, 0};
      }
      shards_[s]->apply_batch(ops.data(), static_cast<int>(n));
      i += n;
    }
  }

  // Consumes a one-shot abort request armed for boundary `b` (see
  // set_migration_abort_point).
  bool mig_take_abort(int b)
    requires(Adaptive)
  {
    int want = b;
    // relaxed: failure order — a non-matching value is left in place and
    // nothing is published either way; the success edge only hands the
    // test's token back to the migrator.
    return mig_.abort_at.compare_exchange_strong(
        want, -1, std::memory_order_acq_rel, std::memory_order_relaxed);
  }

  // Rollback from any pre-flip boundary: recover to the legal state "this
  // migration never happened".  Ordering matters —
  //
  //   (a) phase -> kIdle (seq_cst) disarms double-routing (kCopy loggers)
  //       and releases parked kSeal updaters; both re-route by the OLD
  //       map, which was never replaced, so src keeps serving the range.
  //   (b) one quiesce lets every update that saw kCopy/kSeal finish — all
  //       of them applied to src (pre-flip updates never write dst), so
  //       after it dst's keys in [cut_lo, cut_hi] are exactly the
  //       migrator's own copies.
  //   (c) discard the copy: erase that range from dst.  The erases are
  //       invisible to queries (every live map excludes the range from
  //       dst's owned slice) — ASan and the leak checks in
  //       sharded_set_test verify nothing is stranded.
  //
  // Always returns false so migrate() can `return abort_migration(...)`.
  bool abort_migration(int dst, Key cut_lo, Key cut_hi)
      CBAT_REQUIRES(mig_.gate)
    requires(Adaptive)
  {
    mig_.phase.store(Migration::kIdle, std::memory_order_seq_cst);
    mig_quiesce();
    std::vector<Key> copied;
    {
      EbrGuard g;
      version_collect_range<Aug>(shards_[dst]->root_version_unsafe(), cut_lo,
                                 cut_hi, &copied, 0);
    }
    apply_bulk(dst, copied, /*is_insert=*/false);
    Counters::bump(Counter::kShardMigrationAborts);
    return false;
  }

  // One boundary move, start to finish.  Caller holds the migration gate
  // (statically enforced) and no EBR guard.  Numbered comments match
  // docs/ARCHITECTURE.md.
  bool migrate(int src, int dst) CBAT_REQUIRES(mig_.gate)
    requires(Adaptive)
  {
    // Only the migrator swaps the map and we ARE the migrator (we hold
    // the gate), so the current map cannot be retired under us.
    const ShardMap* m = map_.load(std::memory_order_acquire);
    const Key slo = m->lo_of(src);
    const Key shi = m->hi_of(src);
    if (slo > shi) return false;  // empty owned range, nothing to split

    // (0) Median-key split: shed the half of src's OWNED KEYS adjacent
    // to dst.  Splitting by keys rather than by keyspace midpoint is
    // what makes convergence geometric under any skew — each move halves
    // the hot shard's population no matter how the keys are distributed.
    Key cut_lo, cut_hi, new_upper;
    {
      EbrGuard g;
      const V* r = shards_[src]->root_version_unsafe();
      const std::int64_t cnt = version_range_count<Aug>(r, slo, shi);
      if (cnt < Migration::kMinSplitKeys) return false;
      const std::int64_t half = cnt / 2;
      std::optional<Key> med;
      if (dst == src + 1) {
        med = version_select_in_range<Aug>(r, slo, shi, cnt - half);
        if (!med || *med >= shi) return false;
        cut_lo = *med + 1;
        cut_hi = shi;
      } else {
        med = version_select_in_range<Aug>(r, slo, shi, half);
        if (!med || *med >= shi) return false;
        cut_lo = slo;
        cut_hi = *med;
      }
      new_upper = *med;
    }

    // (1) Arm the descriptor and open the copy phase.  After the grace
    // period, every update that saw kIdle has finished (its effect is
    // stamped before the E0 cut below); every later in-range update logs.
    // relaxed: all four descriptor stores are ordered before updaters
    // can act on them by the seq_cst kCopy phase store below.
    mig_.log_n.store(0, std::memory_order_relaxed);
    mig_.log_overflow.store(false, std::memory_order_relaxed);
    mig_.lo.store(cut_lo, std::memory_order_relaxed);
    mig_.hi.store(cut_hi, std::memory_order_relaxed);
    mig_.phase.store(Migration::kCopy, std::memory_order_seq_cst);
    run_hook(kMigHookCopyBegin);
    mig_quiesce();
    // Abortable boundary 0 of 4: copy phase open, nothing copied yet.
    if (mig_take_abort(0) || CBAT_FAULT_FORCE("mig.copy_begin")) {
      return abort_migration(dst, cut_lo, cut_hi);
    }

    // (2) Bulk copy on a linearizable cut: collect src's range at E0 and
    // insert it into dst.  dst's copies stay invisible until the flip
    // (the pre-flip maps exclude the range from dst's owned slice).
    std::vector<Key> moved;
    {
      EbrGuard g;
      const std::uint64_t e0 =
          epoch_->fetch_add(1, std::memory_order_seq_cst);
      version_collect_range<Aug>(resolve_root(src, e0), cut_lo, cut_hi,
                                 &moved, 0);
    }
    apply_bulk(dst, moved, /*is_insert=*/true);
    run_hook(kMigHookCopied);
    // Abortable boundary 1 of 4: bulk copy sits in dst, invisible (the
    // pre-flip map keeps the range out of dst's owned slice).
    if (mig_take_abort(1) || CBAT_FAULT_FORCE("mig.copied")) {
      return abort_migration(dst, cut_lo, cut_hi);
    }

    // (3) Seal the range.  After the grace period no update is inside
    // the protocol with an un-replayed effect: kIdle-observers finished
    // before E0, kCopy-observers finished now with their keys logged,
    // and new in-range updates park until kDone.
    mig_.phase.store(Migration::kSeal, std::memory_order_seq_cst);
    mig_quiesce();
    run_hook(kMigHookSealed);
    // Abortable boundary 2 of 4: range sealed; the rollback's phase store
    // releases any parked in-range updaters back to the old map.
    if (mig_take_abort(2) || CBAT_FAULT_FORCE("mig.sealed")) {
      return abort_migration(dst, cut_lo, cut_hi);
    }

    // (4) Replay the dirty log against src's sealed truth, making dst's
    // copy of the range exact.
    replay_log(src, dst, cut_lo, cut_hi);
    run_hook(kMigHookReplayed);
    // Abortable boundary 3 of 4: dst's copy is exact, but src still owns
    // the range; discarding the copy costs only the work done so far.
    if (mig_take_abort(3) || CBAT_FAULT_FORCE("mig.replayed")) {
      return abort_migration(dst, cut_lo, cut_hi);
    }
    // Abortable boundary 4 of 4: the last instant an abort is possible —
    // the flip below is the commit point, after which the only legal
    // direction is forward (steps 6 and 7 are then mandatory cleanup).
    if (mig_take_abort(4) || CBAT_FAULT_FORCE("mig.flip")) {
      return abort_migration(dst, cut_lo, cut_hi);
    }

    // (5) Flip: publish the new boundary table, then finalize its epoch
    // stamp BEFORE retiring the old table — the order resolve_map_epoch's
    // safety argument rests on.
    {
      ShardMap* nm = new ShardMap;
      nm->upper = m->upper;
      nm->upper[dst == src + 1 ? src : dst] = new_upper;
      nm->gen = m->gen + 1;
      nm->prev = m;
      map_.store(nm, std::memory_order_seq_cst);
      std::uint64_t expect = kEpochTbd;
      nm->flip_epoch.compare_exchange_strong(
          expect, epoch_->load(std::memory_order_seq_cst),
          std::memory_order_acq_rel, std::memory_order_acquire);
      if constexpr (RPath == ReadPath::kCombined) {
        // Range-cache entries are keyed by (range, root stamp) and old
        // owned ranges never recur with different contents, so survivors
        // cannot validate wrongly — the sweep just reclaims ways early.
        rc_.cache.invalidate_all();
        rc_.update_seq->fetch_add(1, std::memory_order_release);
      }
      ebr_retire(const_cast<ShardMap*>(m));
    }
    run_hook(kMigHookFlipped);
    // Post-commit perturbation only (no CBAT_FAULT_FORCE): past the flip,
    // a yield or delay checks that readers and parked updaters tolerate a
    // slow migrator, but the protocol may no longer abort.
    CBAT_FAULT_POINT("mig.flipped");

    // (6) Open the range: parked updates resume and route by the new map
    // (they read the phase seq_cst, which orders the map store before
    // their map load).
    mig_.phase.store(Migration::kDone, std::memory_order_seq_cst);
    run_hook(kMigHookOpened);
    CBAT_FAULT_POINT("mig.opened");

    // (7) Retire the moved keys' source copies.  No updater can apply a
    // range key to src after the flip (kSeal blocked it, kDone routes it
    // to dst), so one collection is complete; the erases are invisible
    // to every cut because post-flip maps exclude the range from src.
    std::vector<Key> stale;
    {
      EbrGuard g;
      version_collect_range<Aug>(shards_[src]->root_version_unsafe(), cut_lo,
                                 cut_hi, &stale, 0);
    }
    apply_bulk(src, stale, /*is_insert=*/false);
    mig_.phase.store(Migration::kIdle, std::memory_order_seq_cst);
    run_hook(kMigHookCleaned);
    CBAT_FAULT_POINT("mig.cleaned");

    Counters::bump(Counter::kShardMigrations);
    Counters::bump(Counter::kShardMigratedKeys, moved.size());
    return true;
  }

  // The sealed-range reconciliation: on a fresh cut E1 (>= the sealed
  // truth), re-examine every logged key against src and mirror its state
  // into dst.  On log overflow, diff the whole range instead.
  void replay_log(int src, int dst, Key lo, Key hi)
      CBAT_REQUIRES(mig_.gate)
    requires(Adaptive)
  {
    std::vector<Key> ins, del;
    {
      EbrGuard g;
      const std::uint64_t e1 =
          epoch_->fetch_add(1, std::memory_order_seq_cst);
      const V* sr = resolve_root(src, e1);
      if (mig_.log_overflow.load(std::memory_order_acquire)) {
        std::vector<Key> truth, copied;
        version_collect_range<Aug>(sr, lo, hi, &truth, 0);
        version_collect_range<Aug>(shards_[dst]->root_version_unsafe(), lo,
                                   hi, &copied, 0);
        std::set_difference(truth.begin(), truth.end(), copied.begin(),
                            copied.end(), std::back_inserter(ins));
        std::set_difference(copied.begin(), copied.end(), truth.begin(),
                            truth.end(), std::back_inserter(del));
      } else {
        const std::uint32_t n =
            std::min(mig_.log_n.load(std::memory_order_acquire),
                     Migration::kLogCap);
        std::vector<Key> keys(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          keys[i] = mig_.log[i].load(std::memory_order_acquire);
        }
        std::sort(keys.begin(), keys.end());
        keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
        for (Key k : keys) {
          (version_contains<Aug>(sr, k) ? ins : del).push_back(k);
        }
      }
    }
    apply_bulk(dst, ins, /*is_insert=*/true);
    apply_bulk(dst, del, /*is_insert=*/false);
  }

  // Release edge pairing with leased_read's acquire load: everything the
  // completed update wrote (its root CAS included) is visible to any
  // reader that observes the new sequence value.  Bumped even when the
  // point op reports no logical change — a failed insert can still have
  // rebalanced on its descent and replaced version nodes.
  //
  // The updater then SELF-PATCHES its own lease: a thread's own updates
  // are the common invalidator under read-mostly mixes, and without the
  // patch every one of them would knock the next read onto the full
  // NumShards repair walk.  The patch is attempted only when the lease
  // was current right up to this update (lease.seq == prev); any
  // interleaved foreign update makes the next read repair instead, so
  // the lease's seq never overstates what was validated.  On read-free
  // update streams the first unpatched gap makes every later attempt
  // bail on the seq check — the cost self-limits to mixes that lease.
  void bump_update_seq(Key k)
    requires(RPath == ReadPath::kCombined)
  {
    const std::uint64_t prev =
        rc_.update_seq->fetch_add(1, std::memory_order_release);
    if constexpr (Policy == SnapshotPolicy::kQuiescent) {
      if (!lease_reads_enabled()) return;
      SnapLease& lease = snap_lease();
      if (lease.forest != rc_.forest_id || lease.seq != prev) return;
      EbrGuard g;
      const int s = shard_of(k);
      const V* cur = shards_[s]->root_version_unsafe();
      const std::uint64_t stamp = version_epoch_unique<Aug>(cur, *epoch_);
      if (stamp != lease.stamps[s]) {
        const std::int64_t sz = version_size<Aug>(cur);
        const std::int64_t delta =
            sz - (lease.prefix[s + 1] - lease.prefix[s]);
        lease.roots[s] = cur;
        lease.stamps[s] = stamp;
        if (delta != 0) {
          for (int j = s + 1; j <= NumShards; ++j) lease.prefix[j] += delta;
        }
        // The recompute counts as a hierarchy miss (and refills the
        // shared row, for other threads' repairs): it is the read-side
        // work this update caused, merely paid here in advance.
        ++lease.unflushed_misses;
        if (aggregate_cache_enabled()) rc_.cache.store_size(s, stamp, sz);
      }
      lease.seq = prev + 1;
    }
  }

  // A thread whose recent traffic was this many composite reads (with no
  // update in between) applies its next update solo instead of joining
  // the shard's combining protocol.  Rationale: flat combining pays when
  // updates are dense enough to batch — under a read-dominated mix batch
  // occupancy is ~1, so an update that finds the combiner lock busy would
  // publish and spin behind a possibly-descheduled combiner (a convoy the
  // measured read_burst gap was entirely made of) to amortize nothing.
  // The detector is thread-local and free: update-dense threads keep the
  // counter pinned at 0 and retain the full protocol (combine_sweep's
  // batched-Propagate win is untouched); read-dominated threads skip
  // straight to the inner tree, which is safe under concurrent combined
  // batches.  Point reads (contains) do not feed the signal — it gates a
  // composite-read-path optimization, and they never enter that path.
  static constexpr std::uint32_t kRegimeSoloReads = 1;

  bool regime_update(Key k, bool is_insert)
    requires(RPath == ReadPath::kCombined)
  {
    Inner& s = shard(k);
    if constexpr (requires {
                    { s.insert_solo(k) } -> std::same_as<bool>;
                    { s.erase_solo(k) } -> std::same_as<bool>;
                  }) {
      SnapLease& lease = snap_lease();
      const bool solo = lease.reads_since_update >= kRegimeSoloReads;
      lease.reads_since_update = 0;
      if (solo) return is_insert ? s.insert_solo(k) : s.erase_solo(k);
    }
    return is_insert ? s.insert(k) : s.erase(k);
  }

  // --- the leased read path (ReadPath::kCombined only) ---------------------

  using RBuffer = CombiningBuffer<64>;
  using ReadRes = typename RBuffer::ReadResult;

  // Spin budget a publisher waits on its read slot before retracting and
  // going direct; same budget (and same meaning of 0: never wait) as the
  // update-combining layer, so one knob governs both.
  static std::uint64_t lease_budget() {
    if constexpr (requires {
                    {
                      Inner::delegation_timeout()
                    } -> std::convertible_to<std::uint64_t>;
                  }) {
      return Inner::delegation_timeout();
    } else {
      return std::uint64_t{1} << 16;
    }
  }

  // One composite read through the lease protocol: combine inline when
  // the buffer lock is free (the own request rides the cut it acquires),
  // otherwise publish and spin, inheriting the lock or retracting on
  // timeout exactly like CombinedSet::update — progress never depends on
  // a combiner.  The lock covers only the drain sweep, never the cut
  // acquisition or the answers: drained slots are already claimed
  // (kTaken), so the combiner answers them lock-free and a reader that
  // arrives mid-answer elects itself combiner of the next cut instead of
  // stalling behind this one.
  ReadRes read_op(typename RBuffer::Op op, Key a, Key b) const
    requires(RPath == ReadPath::kCombined)
  {
    // Lease elision first: with nothing published there is no burst to
    // share a cut with — this read IS the degenerate one-request burst,
    // answered on its own (possibly leased, see direct_read) cut without
    // the lock RMWs.  Checked before the knobs so the hot no-burst path
    // pays one shared load instead of three globals; under a real burst
    // in_flight is nonzero and the protocol below engages.
    if (!rc_.buffer.has_pending()) {
      return direct_read(op, a, b);
    }
    const std::uint64_t budget = lease_budget();
    if (!lease_reads_enabled() || budget == 0 || combine_max_batch() <= 1) {
      return direct_read(op, a, b);
    }
    if (rc_.buffer.try_lock()) {
      return run_read_combiner(op, a, b);
    }
    const int slot = rc_.buffer.publish_read(op, a, b);
    if (slot < 0) {  // buffer full: shed load
      return direct_read(op, a, b);
    }
    std::uint64_t spins = 0;
    std::uint64_t pauses = 0;
    Backoff bo;
    bool may_time_out = true;
    while (true) {
      const auto st = rc_.buffer.slot_state(slot);
      if (st == RBuffer::kDone) {
        if (pauses != 0) {
          Counters::bump(Counter::kCombineRetractBackoffs, pauses);
        }
        return rc_.buffer.take_read_result(slot);
      }
      if (st == RBuffer::kPending && rc_.buffer.try_lock()) {
        // The previous combiner's cut closed without our request: drain
        // the buffer ourselves (our own slot included).
        run_read_combiner_drained_only();
        continue;
      }
      // Bounded exponential backoff; pause() reports its spin count so the
      // lease budget still bounds the wait (see CombinedSet::update).
      spins += bo.pause();
      ++pauses;
      if (may_time_out &&
          (spins > budget || CBAT_FAULT_FORCE("shard.read_wait"))) {
        if (rc_.buffer.try_retract(slot)) {
          if (pauses != 0) {
            Counters::bump(Counter::kCombineRetractBackoffs, pauses);
          }
          return direct_read(op, a, b);
        }
        // A combiner claimed the request; only it may answer now.
        may_time_out = false;
      }
    }
  }

  // A thread's retained lease on a quiescent cut: the roots it last
  // answered on, their unique stamps, and the materialized prefix sums.
  // Deliberately guard-FREE plain data — an early version kept a live
  // Snapshot (EBR guard included) here, and on an oversubscribed host a
  // descheduled thread's held guard pinned the global epoch for its whole
  // scheduling gap, stalling reclamation and starving the version pools.
  // Instead each read re-enters a fresh guard and revalidates the lease by
  // stamp identity (below); between reads the lease pins nothing.
  // `forest` ids are minted from a process-wide monotone counter and never
  // reused, so a slot left behind by a destroyed forest can never be
  // mistaken for the current one (its dangling roots are only ever
  // dereferenced after revalidation proves them live).
  struct SnapLease {
    std::uint64_t forest = 0;
    // update_seq value this lease was last validated against (see
    // ReadCombining::update_seq).
    std::uint64_t seq = 0;
    std::array<const V*, NumShards> roots;
    std::array<std::uint64_t, NumShards> stamps;
    std::array<std::int64_t, NumShards + 1> prefix;
    // Batched tallies, flushed every 1024 reads and here at thread exit:
    // a per-read Counters::bump was a measurable slice of the ~100ns hit
    // path.  hits/misses feed kAggCacheHits/kAggCacheMisses with the
    // HIERARCHY semantics the read_burst metric reports: the lease is the
    // thread-local first level of the aggregate cache, the shared
    // AggregateCache the second, and a "hit" is a per-shard aggregate (or
    // a whole still-valid cut, on the seq fast path) served from either
    // level without recomputing from version nodes; a "miss" is a
    // recompute.  Safe to bump from this destructor: the lease TLS is
    // first touched under an EbrGuard, so the thread's registry slot
    // (constructed earlier) outlives it.
    std::uint32_t unflushed_reads = 0;
    std::uint32_t unflushed_solo = 0;
    std::uint32_t unflushed_hits = 0;
    std::uint32_t unflushed_misses = 0;
    // Regime signal, not a statistic (never flushed): composite reads this
    // thread has issued since its last update.  insert/erase consult it to
    // decide whether joining the shard's combining protocol can pay — see
    // regime_update.
    std::uint32_t reads_since_update = 0;
    void flush() {
      if (unflushed_reads != 0) {
        Counters::bump(Counter::kLeaseBatchedReads, unflushed_reads);
        unflushed_reads = 0;
      }
      if (unflushed_solo != 0) {
        Counters::bump(Counter::kLeaseSoloReads, unflushed_solo);
        unflushed_solo = 0;
      }
      if (unflushed_hits != 0) {
        Counters::bump(Counter::kAggCacheHits, unflushed_hits);
        unflushed_hits = 0;
      }
      if (unflushed_misses != 0) {
        Counters::bump(Counter::kAggCacheMisses, unflushed_misses);
        unflushed_misses = 0;
      }
    }
    ~SnapLease() { flush(); }
  };
  static SnapLease& snap_lease()
    requires(RPath == ReadPath::kCombined)
  {
    thread_local SnapLease lease;
    return lease;
  }

  // Solo composite read.  Under kQuiescent this is where snapshot leasing
  // pays on every core count: the thread renews its leased cut only when
  // some root actually moved, so a run of undisturbed reads shares one
  // prefix materialization and each read costs a NumShards stamp check on
  // top of its descent.  Revalidating on EVERY read (rather than trusting
  // the lease for some grace period) is what keeps the semantics exactly
  // those of a fresh quiescent acquisition.  kLinearizable snapshots must
  // advance the epoch counter to order against concurrent stamping, so
  // they are acquired fresh per read and leasing contributes only
  // combiner cuts.
  ReadRes direct_read(typename RBuffer::Op op, Key a, Key b) const
    requires(RPath == ReadPath::kCombined)
  {
    // Snapshot leasing is off under Adaptive: the lease caches unrestricted
    // per-shard sizes keyed by root stamps alone, and a map flip changes a
    // shard's owned-range size without moving its root — the lease would
    // validate a cut the flip invalidated.  Adaptive read bursts still
    // amortize through the combiner's shared Snapshot (which pins the map).
    if constexpr (Policy == SnapshotPolicy::kQuiescent && !Adaptive) {
      if (lease_reads_enabled()) return leased_read(op, a, b);
    }
    const Snapshot snap(*this);
    SnapLease& lease = snap_lease();
    ++lease.reads_since_update;
    if (++lease.unflushed_solo >= 1024) lease.flush();
    return answer(snap, op, a, b);
  }

  // Validate-or-renew the thread's lease under a fresh guard, then answer
  // on it.  Validation is by STAMP identity, not pointer identity: without
  // a guard held since the cut was taken, a cached pointer could have been
  // freed and its address reused (ABA), but stamps are fetch_add-minted
  // and unique per version, so `stamp(current root) == cached stamp`
  // proves the current root IS the cached version object — and a root
  // still installed was never retired, so the whole cached cut (interior
  // version nodes included: they are only retired after a replacement
  // root installs) is live and answerable.
  ReadRes leased_read(typename RBuffer::Op op, Key a, Key b) const
    requires(RPath == ReadPath::kCombined)
  {
    EbrGuard g;
    SnapLease& lease = snap_lease();
    // Fast path: the forest's update sequence has not moved since this
    // lease was last validated, so no update has completed anywhere and
    // every cached root, stamp, and prefix sum is current — one shared
    // (read-mostly) load replaces the whole per-shard stamp walk.  The
    // seq is loaded BEFORE any validation below: updates racing the
    // slow path at worst leave lease.seq behind the roots actually
    // stored, forcing one spurious revalidation later — never a stale
    // accept.
    const std::uint64_t seq =
        rc_.update_seq->load(std::memory_order_acquire);
    if (lease.forest == rc_.forest_id && lease.seq == seq) {
      ++lease.unflushed_hits;
      return lease_finish(lease, op, a, b);
    }
    if (lease.forest != rc_.forest_id) {
      renew_lease(lease);
    } else {
      // Validate and repair every shard in one pass.  A stale stamp does
      // NOT discard the lease: only the moved shard is reloaded, and the
      // prefix sums are patched by the size delta — the lease's prefix
      // array is always an exact prefix sum of the per-shard sizes its
      // stamps identify, so `prefix[i+1] - prefix[i]` recovers the
      // outdated size without storing sizes separately.  The walk covers
      // ALL shards, not just the ones this answer reads, because setting
      // lease.seq below declares the whole cut validated-at-seq: a
      // partial span here would let a later fast-path read serve a shard
      // this pass skipped.  Full repair runs once per completed update a
      // thread observes (the seq gate absorbs everything else), so its
      // cost is amortized across the read run that follows.
      const bool cache_on = aggregate_cache_enabled();
      std::int64_t delta = 0;
      bool dirty = false;
      for (int i = 0; i < NumShards; ++i) {
        const V* cur = shards_[i]->root_version_unsafe();
        const std::uint64_t stamp = version_epoch_unique<Aug>(cur, *epoch_);
        if (stamp == lease.stamps[i]) {
          ++lease.unflushed_hits;
          if (delta != 0) lease.prefix[i] += delta;
          continue;
        }
        const std::int64_t old_sz = lease.prefix[i + 1] - lease.prefix[i];
        if (delta != 0) lease.prefix[i] += delta;
        lease.roots[i] = cur;
        lease.stamps[i] = stamp;
        std::int64_t sz;
        if (cache_on && rc_.cache.load_size(i, stamp, &sz)) {
          ++lease.unflushed_hits;
        } else {
          ++lease.unflushed_misses;
          sz = version_size<Aug>(cur);
          if (cache_on) rc_.cache.store_size(i, stamp, sz);
        }
        delta += sz - old_sz;
        dirty = true;
      }
      if (dirty) {
        if (delta != 0) lease.prefix[NumShards] += delta;
        Counters::bump(Counter::kLeaseCuts);
      }
    }
    lease.seq = seq;
    return lease_finish(lease, op, a, b);
  }

  // Shared tail of both leased paths: batch-flush the read/hit tallies,
  // then answer on the (now valid) lease.
  ReadRes lease_finish(SnapLease& lease, typename RBuffer::Op op, Key a,
                       Key b) const CBAT_REQUIRES(ebr_capability)
    requires(RPath == ReadPath::kCombined)
  {
    ++lease.reads_since_update;
    if (++lease.unflushed_reads >= 1024) lease.flush();
    return lease_answer(lease, op, a, b);
  }

  // Take a fresh quiescent cut into the lease slot: roots, unique stamps,
  // and the prefix sums — the latter through the shared aggregate cache.
  // Cold path only: a thread's first read of a forest, or a lease left
  // behind by another forest; root movement within the forest is repaired
  // incrementally in leased_read and never lands here.  Caller holds an
  // EBR guard.
  void renew_lease(SnapLease& lease) const CBAT_REQUIRES(ebr_capability)
    requires(RPath == ReadPath::kCombined)
  {
    const bool cache_on = aggregate_cache_enabled();
    std::uint32_t hits = 0;
    std::uint32_t misses = 0;
    lease.forest = rc_.forest_id;
    lease.prefix[0] = 0;
    for (int i = 0; i < NumShards; ++i) {
      const V* r = shards_[i]->root_version_unsafe();
      const std::uint64_t stamp = version_epoch_unique<Aug>(r, *epoch_);
      lease.roots[i] = r;
      lease.stamps[i] = stamp;
      std::int64_t sz;
      if (cache_on) {
        if (rc_.cache.load_size(i, stamp, &sz)) {
          ++hits;
        } else {
          ++misses;
          sz = version_size<Aug>(r);
          rc_.cache.store_size(i, stamp, sz);
        }
      } else {
        sz = version_size<Aug>(r);
      }
      lease.prefix[i + 1] = lease.prefix[i] + sz;
    }
    if (hits != 0) Counters::bump(Counter::kAggCacheHits, hits);
    if (misses != 0) Counters::bump(Counter::kAggCacheMisses, misses);
    Counters::bump(Counter::kLeaseCuts);
  }

  std::int64_t lease_rank(const SnapLease& lease, Key k) const
      CBAT_REQUIRES(ebr_capability)
    requires(RPath == ReadPath::kCombined)
  {
    const int s = shard_of(k);
    return lease.prefix[s] + version_rank<Aug>(lease.roots[s], k);
  }
  std::int64_t lease_rank_less(const SnapLease& lease, Key k) const
      CBAT_REQUIRES(ebr_capability)
    requires(RPath == ReadPath::kCombined)
  {
    const int s = shard_of(k);
    return lease.prefix[s] + version_rank_less<Aug>(lease.roots[s], k);
  }

  // Boundary piece of a range aggregate on the leased cut, memoized in
  // the shared range cache under the shard's stamp (bumps flushed here
  // directly: at most two pieces per query).
  AugValue lease_range_piece(const SnapLease& lease, int s, Key lo,
                             Key hi) const CBAT_REQUIRES(ebr_capability)
    requires(RPath == ReadPath::kCombined)
  {
    if (aggregate_cache_enabled()) {
      std::int64_t v;
      if (rc_.cache.load_range(s, lo, hi, lease.stamps[s], &v)) {
        Counters::bump(Counter::kAggCacheHits);
        return v;
      }
      Counters::bump(Counter::kAggCacheMisses);
      const AugValue fresh =
          version_range_aggregate<Aug>(lease.roots[s], lo, hi);
      rc_.cache.store_range(s, lo, hi, lease.stamps[s], fresh);
      return fresh;
    }
    return version_range_aggregate<Aug>(lease.roots[s], lo, hi);
  }

  // Composite answers on the leased cut; mirrors Snapshot's query logic
  // over the lease's POD state.
  ReadRes lease_answer(const SnapLease& lease, typename RBuffer::Op op,
                       Key a, Key b) const CBAT_REQUIRES(ebr_capability)
    requires(RPath == ReadPath::kCombined)
  {
    switch (op) {
      case RBuffer::kSize:
        return {lease.prefix[NumShards], true};
      case RBuffer::kRank:
        return {lease_rank(lease, a), true};
      case RBuffer::kSelect: {
        if (a < 1 || a > lease.prefix[NumShards]) return {0, false};
        const auto it = std::lower_bound(lease.prefix.begin() + 1,
                                         lease.prefix.end(), a);
        const int s = static_cast<int>(it - lease.prefix.begin()) - 1;
        const std::optional<Key> r =
            version_select<Aug>(lease.roots[s], a - lease.prefix[s]);
        return {r.value_or(0), r.has_value()};
      }
      case RBuffer::kRangeCount: {
        if (a > b) return {0, true};
        return {lease_rank(lease, b) - lease_rank_less(lease, a), true};
      }
      case RBuffer::kRangeAggregate: {
        if (a > b) return {Aug::sentinel(), true};
        const int slo = shard_of(a);
        const int shi = shard_of(b);
        if (slo == shi) return {lease_range_piece(lease, slo, a, b), true};
        AugValue acc = lease_range_piece(lease, slo, a, kMaxUserKey);
        for (int s = slo + 1; s < shi; ++s) {
          acc = Aug::combine(acc, lease.roots[s]->aug);
        }
        return {Aug::combine(acc,
                             lease_range_piece(
                                 lease, shi,
                                 std::numeric_limits<Key>::min(), b)),
                true};
      }
      default:
        return {0, false};  // unreachable: only reads are routed here
    }
  }

  // Answers one drained request against the given (pinned) cut.
  static ReadRes answer(const Snapshot& snap, typename RBuffer::Op op, Key a,
                        Key b) CBAT_REQUIRES(ebr_capability) {
    switch (op) {
      case RBuffer::kSize:
        return {snap.size(), true};
      case RBuffer::kRank:
        return {snap.rank(a), true};
      case RBuffer::kSelect: {
        const std::optional<Key> r = snap.select(a);
        return {r.value_or(0), r.has_value()};
      }
      case RBuffer::kRangeCount:
        return {snap.range_count(a, b), true};
      case RBuffer::kRangeAggregate:
        return {snap.range_aggregate(a, b), true};
      default:
        return {0, false};  // unreachable: only reads are published here
    }
  }

  // Caller holds the buffer lock; releases it after the drain (hence
  // CBAT_RELEASE, not REQUIRES: the lock is gone when this returns).
  // Acquires ONE cut and answers the own request plus every drained read
  // against it — the expensive part runs with the lock already free.
  ReadRes run_read_combiner(typename RBuffer::Op op, Key a, Key b) const
      CBAT_RELEASE(rc_.buffer)
    requires(RPath == ReadPath::kCombined)
  {
    typename RBuffer::DrainedRequest reqs[RBuffer::num_slots()];
    const int n = rc_.buffer.drain(
        reqs, std::min(combine_max_batch() - 1,
                       static_cast<int>(RBuffer::num_slots())));
    rc_.buffer.unlock();
    const Snapshot snap(*this);
    for (int i = 0; i < n; ++i) {
      rc_.buffer.complete_read(
          reqs[i].slot, answer(snap, reqs[i].op, reqs[i].key, reqs[i].b));
    }
    Counters::bump(Counter::kLeaseCuts);
    Counters::bump(Counter::kLeaseBatchedReads,
                   static_cast<std::uint64_t>(n) + 1);
    return answer(snap, op, a, b);
  }

  // Caller holds the buffer lock; releases it after the drain.  Its own
  // request is already published (lock inheritance), so the batch is just
  // the drained slots.
  void run_read_combiner_drained_only() const CBAT_RELEASE(rc_.buffer)
    requires(RPath == ReadPath::kCombined)
  {
    typename RBuffer::DrainedRequest reqs[RBuffer::num_slots()];
    const int n = rc_.buffer.drain(
        reqs, std::min(combine_max_batch(),
                       static_cast<int>(RBuffer::num_slots())));
    rc_.buffer.unlock();
    if (n == 0) return;
    const Snapshot snap(*this);
    for (int i = 0; i < n; ++i) {
      rc_.buffer.complete_read(
          reqs[i].slot, answer(snap, reqs[i].op, reqs[i].key, reqs[i].b));
    }
    Counters::bump(Counter::kLeaseCuts);
    Counters::bump(Counter::kLeaseBatchedReads,
                   static_cast<std::uint64_t>(n));
  }

  void repartition(Key keyspace) {
    keyspace_ = std::max<Key>(keyspace, NumShards);
    // Overflow-free ceiling: keyspace_ may be as large as kInf2, where
    // `(keyspace_ + NumShards - 1)` would wrap.
    width_ = keyspace_ / NumShards + (keyspace_ % NumShards != 0 ? 1 : 0);
    if constexpr (Adaptive) {
      // Fresh generation-1 map matching the static division; the plain
      // delete is covered by this function's single-threaded contract
      // (constructor, or key_range_hint on an empty idle set).  The stamp
      // is 1 (not kEpochTbd): the epoch counter starts at 1, so every cut
      // accepts the initial table — it has no predecessor to resolve to.
      ShardMap* nm = new ShardMap;
      for (int i = 0; i + 1 < NumShards; ++i) {
        nm->upper[i] = width_ * (i + 1) - 1;
      }
      nm->upper[NumShards - 1] = kMaxUserKey;
      // relaxed: single-threaded contract (see above); the release store
      // below publishes the table to the first concurrent reader.
      nm->flip_epoch.store(1, std::memory_order_relaxed);
      const ShardMap* old = map_.load(std::memory_order_relaxed);
      map_.store(nm, std::memory_order_release);
      delete old;
    }
  }

  Key keyspace_ = 0;
  Key width_ = 1;
  // Snapshot epoch counter.  Starts at 1 so every assigned stamp is
  // distinguishable from kEpochTbd (0).  Padded: every update's root
  // stamp loads it, every linearizable acquisition fetch_adds it.
  // Mutable: acquisition advances it from const composite queries; it is
  // bookkeeping for the cut, not observable set state.
  mutable Padded<std::atomic<std::uint64_t>> epoch_{{1}};
  // Read-side state, materialized only for ReadPath::kCombined: the
  // forest-level publication buffer for leased cuts and the epoch-stamped
  // aggregate caches.  Mutable for the same reason as epoch_: both are
  // bookkeeping driven by const composite queries.
  struct ReadCombining {
    RBuffer buffer;
    AggregateCache<NumShards> cache;
    // Identity for thread-local snapshot leases (see SnapLease); minted
    // once per forest, never reused.
    const std::uint64_t forest_id = shard_detail::next_forest_id();
    // Bumped (release) after every insert/erase RETURNS; a leased read
    // that loads (acquire) an unchanged value skips per-shard stamp
    // validation entirely — no update has completed since the lease was
    // last validated, so the cut is still exactly what a fresh quiescent
    // acquisition would assemble.  An update whose bump is not yet
    // visible to the reader's load is indistinguishable from one that
    // has not returned (it races the read), which quiescent consistency
    // already permits — the same eventual-visibility contract a direct
    // read's non-atomic root loads rely on.  Single line, bumped only by
    // updates: read-mostly mixes keep it shared across readers.
    Padded<std::atomic<std::uint64_t>> update_seq{{0}};
  };
  struct NoReadCombining {
    [[no_unique_address]] UnusedCapability buffer;
  };
  [[no_unique_address]] mutable std::conditional_t<
      RPath == ReadPath::kCombined, ReadCombining, NoReadCombining>
      rc_;
  // shared: the current boundary table (Adaptive; null otherwise).
  // Swapped only by the migrator holding mig_.gate; loaded under an EBR
  // guard by everyone else (replaced tables are EBR-retired).  Mutable
  // for the same reason as epoch_: const composite queries help-stamp
  // flip_epoch through it.  Read-mostly; a flip rewrites the line anyway.
  mutable std::atomic<const ShardMap*> map_{nullptr};
  // Migration descriptor + controller state (Adaptive only; ~64 KiB,
  // dominated by the dirty-key log).
  [[no_unique_address]] std::conditional_t<Adaptive, Migration, NoMigration>
      mig_;
  // Padded: shards are updated by different threads; their tree roots must
  // not share cache lines.
  std::array<Padded<Inner>, NumShards> shards_;
};

// The shard counts the registry exposes ("Sharded4-BAT", ...); definitions
// live in sharded_set.cpp so the template is compiled once.
extern template class ShardedSet<Bat<SizeAug>, 1>;
extern template class ShardedSet<Bat<SizeAug>, 4>;
extern template class ShardedSet<Bat<SizeAug>, 16>;
extern template class ShardedSet<Bat<SizeAug>, 64>;
extern template class ShardedSet<BatDel<SizeAug>, 16>;
extern template class ShardedSet<Bat<SizeAug>, 4,
                                 SnapshotPolicy::kLinearizable>;
extern template class ShardedSet<Bat<SizeAug>, 16,
                                 SnapshotPolicy::kLinearizable>;
// Read-combined variants over a plain BAT (test-only; the registry's
// "-RC" forests wrap CombinedSet shards, see combine/combined_set.h).
extern template class ShardedSet<Bat<SizeAug>, 4, SnapshotPolicy::kQuiescent,
                                 ReadPath::kCombined>;
extern template class ShardedSet<Bat<SizeAug>, 4,
                                 SnapshotPolicy::kLinearizable,
                                 ReadPath::kCombined>;
// Adaptive variants over a plain BAT (test-only; the registry's "-Adapt"
// forest wraps CombinedSet shards, see combine/combined_set.h).
extern template class ShardedSet<Bat<SizeAug>, 4, SnapshotPolicy::kQuiescent,
                                 ReadPath::kDirect, true>;
extern template class ShardedSet<Bat<SizeAug>, 4,
                                 SnapshotPolicy::kLinearizable,
                                 ReadPath::kDirect, true>;

}  // namespace cbat
