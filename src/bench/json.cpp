#include "bench/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cbat::bench {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  // Shortest representation that survives a parse round trip.
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  // "%g" can produce "1e+300" (valid JSON) but also bare integers like
  // "42" — both parse fine, so no fixup is needed beyond NaN/Inf above.
  return buf;
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    assert(stack_.back() && "value without key inside an object");
    if (counts_.back()++ > 0) out_ += ',';
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(false);
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!stack_.empty() && !stack_.back());
  out_ += '}';
  stack_.pop_back();
  counts_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(true);
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back());
  out_ += ']';
  stack_.pop_back();
  counts_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  assert(!stack_.empty() && !stack_.back() && "key outside an object");
  if (counts_.back()++ > 0) out_ += ',';
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  out_ += json_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null_value() {
  before_value();
  out_ += "null";
  return *this;
}

bool write_file(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const std::size_t n = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool ok = n == contents.size() && std::fclose(f) == 0;
  if (n != contents.size()) std::fclose(f);
  return ok;
}

}  // namespace cbat::bench
