// Minimal dependency-free JSON writer used for the benchmark trajectory
// files (BENCH_*.json).  Produces RFC 8259 output: strings are escaped,
// doubles are emitted with enough digits to round-trip, and non-finite
// doubles degrade to null (JSON has no NaN/Inf literal).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cbat::bench {

// Escapes the characters JSON requires escaped (quote, backslash, control
// characters); everything else — including multi-byte UTF-8 — passes
// through untouched.  Returns the escaped body without surrounding quotes.
std::string json_escape(std::string_view s);

// Shortest decimal representation that parses back to exactly `v`.
// Non-finite values return "null".
std::string json_double(double v);

// Streaming writer.  Usage:
//   JsonWriter w;
//   w.begin_object();
//   w.key("answer"); w.value(42);
//   w.key("runs"); w.begin_array(); w.value("a"); w.end_array();
//   w.end_object();
//   std::string doc = w.take();
// Commas and colons are inserted automatically; mismatched begin/end or a
// key outside an object is a programming error (asserted in debug builds).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null_value();

  // key + value in one call.
  template <class T>
  JsonWriter& kv(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void before_value();

  std::string out_;
  // One entry per open container: true = array, false = object.
  std::vector<bool> stack_;
  // Count of values (arrays) / keys (objects) emitted per open container.
  std::vector<std::size_t> counts_;
  bool pending_key_ = false;
};

// Writes `contents` to `path` atomically enough for our purposes (truncate
// + write + close).  Returns false and leaves errno set on failure.
bool write_file(const std::string& path, const std::string& contents);

}  // namespace cbat::bench
