#include "bench/table.h"

#include <algorithm>
#include <cstdio>

namespace cbat::bench {

Table::Table(std::string title, std::string x_label)
    : title_(std::move(title)), x_label_(std::move(x_label)) {}

void Table::set_columns(const std::vector<std::string>& xs) { columns_ = xs; }

void Table::add_cell(const std::string& series, const std::string& value) {
  for (auto& [name, cells] : rows_) {
    if (name == series) {
      cells.push_back(value);
      return;
    }
  }
  rows_.push_back({series, {value}});
}

void Table::print() const {
  std::printf("\n== %s ==\n", title_.c_str());
  std::size_t w0 = x_label_.size();
  for (const auto& [name, cells] : rows_) w0 = std::max(w0, name.size());
  std::size_t wc = 8;
  for (const auto& c : columns_) wc = std::max(wc, c.size());
  for (const auto& [name, cells] : rows_) {
    for (const auto& c : cells) wc = std::max(wc, c.size());
  }
  std::printf("%-*s", static_cast<int>(w0 + 2), x_label_.c_str());
  for (const auto& c : columns_) {
    std::printf(" %*s", static_cast<int>(wc), c.c_str());
  }
  std::printf("\n");
  for (const auto& [name, cells] : rows_) {
    std::printf("%-*s", static_cast<int>(w0 + 2), name.c_str());
    for (const auto& c : cells) {
      std::printf(" %*s", static_cast<int>(wc), c.c_str());
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

void Table::print_csv() const {
  std::printf("# %s\n%s", title_.c_str(), x_label_.c_str());
  for (const auto& c : columns_) std::printf(",%s", c.c_str());
  std::printf("\n");
  for (const auto& [name, cells] : rows_) {
    std::printf("%s", name.c_str());
    for (const auto& c : cells) std::printf(",%s", c.c_str());
    std::printf("\n");
  }
  std::fflush(stdout);
}

std::string fmt_throughput(double ops_per_sec) {
  char buf[32];
  if (ops_per_sec >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", ops_per_sec / 1e6);
  } else if (ops_per_sec >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fK", ops_per_sec / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", ops_per_sec);
  }
  return buf;
}

std::string fmt_latency_ns(double ns) {
  char buf[32];
  if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  }
  return buf;
}

}  // namespace cbat::bench
