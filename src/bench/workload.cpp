#include "bench/workload.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace cbat::bench {

const char* query_kind_name(QueryKind k) {
  switch (k) {
    case QueryKind::kRange:
      return "range";
    case QueryKind::kRank:
      return "rank";
    case QueryKind::kSelect:
      return "select";
    case QueryKind::kRangeAgg:
      return "range_agg";
  }
  return "unknown";
}

const char* key_dist_name(KeyDist d) {
  switch (d) {
    case KeyDist::kUniform:
      return "uniform";
    case KeyDist::kZipf:
      return "zipf";
    case KeyDist::kSorted:
      return "sorted";
  }
  return "unknown";
}

std::string Workload::mix_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g-%g-%g-%g", insert_pct, delete_pct,
                find_pct, query_pct);
  return buf;
}

OpStream::OpStream(const Workload& w, std::uint64_t seed,
                   std::atomic<std::int64_t>* sorted_counter)
    : w_(w), rng_(seed), sorted_counter_(sorted_counter) {
  if (w.dist == KeyDist::kZipf) {
    zipf_ = std::make_unique<ZipfGenerator>(
        static_cast<std::uint64_t>(w.max_key), w.zipf_theta);
  }
  // Thresholds are rounded *cumulative* percentages, so per-class rounding
  // never accumulates: a 0% class gets equal adjacent thresholds (zero
  // width), and the final class absorbs the remainder exactly.  (Rounding
  // each class's width separately truncated up to 1 below each threshold,
  // leaving a ~2^-32 window in which a nominally 0%-query mix still
  // emitted queries — and could hit structures without order statistics.)
  const double scale = 4294967296.0 / 100.0;  // percent -> 2^32 range
  const auto threshold = [&](double cumulative_pct) {
    const auto t =
        static_cast<std::uint64_t>(std::llround(cumulative_pct * scale));
    return std::min<std::uint64_t>(t, 1ULL << 32);
  };
  t_insert_ = threshold(w.insert_pct);
  t_delete_ = threshold(w.insert_pct + w.delete_pct);
  t_find_ = threshold(w.insert_pct + w.delete_pct + w.find_pct);
  // A mix summing to 100 with no queries must make kQuery unreachable even
  // if the doubles above do not sum to exactly 100.
  if (w.query_pct <= 0) {
    t_find_ = 1ULL << 32;
    if (w.find_pct <= 0) {
      t_delete_ = t_find_;
      if (w.delete_pct <= 0) t_insert_ = t_delete_;
    }
  }
}

OpStream::Op OpStream::op_for(std::uint64_t r) const {
  if (r < t_insert_) return Op::kInsert;
  if (r < t_delete_) return Op::kDelete;
  if (r < t_find_) return Op::kFind;
  return Op::kQuery;
}

OpStream::Op OpStream::next_op() { return op_for(rng_.next() & 0xffffffffULL); }

Key OpStream::next_key() {
  switch (w_.dist) {
    case KeyDist::kUniform:
      return static_cast<Key>(
          rng_.below(static_cast<std::uint64_t>(w_.max_key)));
    case KeyDist::kZipf:
      return static_cast<Key>(zipf_->next(rng_) - 1);
    case KeyDist::kSorted: {
      if (sorted_next_ >= sorted_end_) {
        sorted_next_ = sorted_counter_->fetch_add(100);
        sorted_end_ = sorted_next_ + 100;
      }
      return static_cast<Key>(sorted_next_++);
    }
  }
  return 0;
}

Key OpStream::next_range_lo() {
  // Clamp the nominal range width to the keyspace, then draw lo uniformly
  // over every start that keeps the clamped range in bounds — including
  // max_key - rq itself, which the old `max_key - rq_size` bound skipped.
  // When the range covers the whole keyspace, draw lo over the keyspace
  // instead: the old `hi_bound = 1` fallback pinned every such query to
  // lo = 0, making each one an identical full-tree scan.
  const std::int64_t eff = std::min<std::int64_t>(w_.rq_size, w_.max_key);
  const std::int64_t hi_bound =
      eff < w_.max_key ? w_.max_key - eff + 1 : std::max<Key>(w_.max_key, 1);
  return static_cast<Key>(rng_.below(static_cast<std::uint64_t>(hi_bound)));
}

Key OpStream::next_hot_range_lo() {
  // One of kHotRanges fixed starts, evenly gridded over the valid lo
  // interval (same clamping as next_range_lo).  Every thread derives the
  // identical grid from the workload, so the working set is kHotRanges
  // ranges process-wide — the regime the hot-range aggregate cache is
  // for.  The draw among slots is uniform: all hot ranges equally hot.
  const std::int64_t eff = std::min<std::int64_t>(w_.rq_size, w_.max_key);
  const std::int64_t hi_bound =
      eff < w_.max_key ? w_.max_key - eff + 1 : std::max<Key>(w_.max_key, 1);
  const std::int64_t slot =
      static_cast<std::int64_t>(rng_.below(kHotRanges));
  return static_cast<Key>(slot * ((hi_bound - 1) / (kHotRanges - 1)));
}

}  // namespace cbat::bench
