#include "bench/workload.h"

#include <cmath>
#include <cstdio>

namespace cbat::bench {

const char* query_kind_name(QueryKind k) {
  switch (k) {
    case QueryKind::kRange:
      return "range";
    case QueryKind::kRank:
      return "rank";
    case QueryKind::kSelect:
      return "select";
  }
  return "unknown";
}

const char* key_dist_name(KeyDist d) {
  switch (d) {
    case KeyDist::kUniform:
      return "uniform";
    case KeyDist::kZipf:
      return "zipf";
    case KeyDist::kSorted:
      return "sorted";
  }
  return "unknown";
}

std::string Workload::mix_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g-%g-%g-%g", insert_pct, delete_pct,
                find_pct, query_pct);
  return buf;
}

OpStream::OpStream(const Workload& w, std::uint64_t seed,
                   std::atomic<std::int64_t>* sorted_counter)
    : w_(w), rng_(seed), sorted_counter_(sorted_counter) {
  if (w.dist == KeyDist::kZipf) {
    zipf_ = std::make_unique<ZipfGenerator>(
        static_cast<std::uint64_t>(w.max_key), w.zipf_theta);
  }
  const double scale = 4294967296.0 / 100.0;  // percent -> 2^32 range
  t_insert_ = static_cast<std::uint64_t>(w.insert_pct * scale);
  t_delete_ = t_insert_ + static_cast<std::uint64_t>(w.delete_pct * scale);
  t_find_ = t_delete_ + static_cast<std::uint64_t>(w.find_pct * scale);
}

OpStream::Op OpStream::next_op() {
  const std::uint64_t r = rng_.next() & 0xffffffffULL;
  if (r < t_insert_) return Op::kInsert;
  if (r < t_delete_) return Op::kDelete;
  if (r < t_find_) return Op::kFind;
  return Op::kQuery;
}

Key OpStream::next_key() {
  switch (w_.dist) {
    case KeyDist::kUniform:
      return static_cast<Key>(
          rng_.below(static_cast<std::uint64_t>(w_.max_key)));
    case KeyDist::kZipf:
      return static_cast<Key>(zipf_->next(rng_) - 1);
    case KeyDist::kSorted: {
      if (sorted_next_ >= sorted_end_) {
        sorted_next_ = sorted_counter_->fetch_add(100);
        sorted_end_ = sorted_next_ + 100;
      }
      return static_cast<Key>(sorted_next_++);
    }
  }
  return 0;
}

Key OpStream::next_range_lo() {
  const std::int64_t hi_bound = w_.max_key > w_.rq_size
                                    ? w_.max_key - w_.rq_size
                                    : 1;
  return static_cast<Key>(rng_.below(static_cast<std::uint64_t>(hi_bound)));
}

}  // namespace cbat::bench
