// Benchmark driver: prefill + timed mixed-operation phase, matching the
// paper's protocol (§7 Setup: prefill to half the key range, run the mix
// for a fixed wall-clock duration, report throughput; Figure 9 additionally
// reports per-operation-class latency).  Latency is sampled every 32nd op
// to keep clock reads out of the throughput numbers; each sample lands in
// a per-class log-linear histogram, so results carry true p50/p90/p99
// rather than a lone average.
#pragma once

#include <cstdint>
#include <string>

#include "bench/adapters.h"
#include "bench/latency.h"
#include "bench/workload.h"

namespace cbat::bench {

struct RunConfig {
  Workload workload;
  int threads = 4;
  int duration_ms = 200;
  bool prefill = true;  // fill to max_key/2 before timing (paper default)
  std::uint64_t seed = 12345;
};

struct RunResult {
  std::string structure;
  // Composite-query guarantee the structure reported for this run
  // (api::consistency_name): "linearizable" or "quiescently_consistent".
  // Carried into the JSON config so quiescent numbers are never mistaken
  // for linearizable ones when series are compared.
  std::string consistency;
  RunConfig config;
  double seconds = 0;
  std::int64_t total_ops = 0;
  std::int64_t updates = 0;  // inserts + deletes
  std::int64_t finds = 0;
  std::int64_t queries = 0;
  // Percentile summaries of the sampled per-operation latencies, one per
  // operation class.
  LatencyStats update_latency;
  LatencyStats find_latency;
  LatencyStats query_latency;

  double mops() const { return total_ops / seconds / 1e6; }
  double throughput() const { return total_ops / seconds; }
};

// Fills the structure with uniform random keys from [0, w.max_key) until
// it holds exactly max_key/2 of them (paper §7 Setup).  Threads claim
// bounded batches of successful inserts, so the final size is exact, not
// overshot by in-flight per-thread counts.
void prefill(SetAdapter& set, const Workload& w, int threads,
             std::uint64_t seed);

// Runs one (structure, config) cell.  Creates the structure fresh.
RunResult run_benchmark(const std::string& structure, const RunConfig& cfg);

// Runs on an existing adapter (no construction, optional prefill skip).
RunResult run_on(SetAdapter& set, const RunConfig& cfg);

}  // namespace cbat::bench
