// Workload specification mirroring the paper's experimental grammar (§7):
// an operation mix `i%-d%-f%-q%`, a key distribution (uniform, Zipfian or
// sorted), a maximum key, and a range-query size.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "util/keys.h"
#include "util/random.h"
#include "util/zipf.h"

namespace cbat::bench {

// kRange is a rank-composed range_count over uniformly drawn bounds;
// kRangeAgg is a range_aggregate over a small fixed set of "hot" ranges
// (the leaderboard pattern: the same few windows queried over and over),
// which is what the shard layer's hot-range aggregate cache targets.
enum class QueryKind { kRange, kRank, kSelect, kRangeAgg };

enum class KeyDist { kUniform, kZipf, kSorted };

// Stable lowercase names used in the JSON schema.
const char* query_kind_name(QueryKind k);
const char* key_dist_name(KeyDist d);

struct Workload {
  // Operation mix in percent (may be fractional); must sum to 100.
  double insert_pct = 50;
  double delete_pct = 50;
  double find_pct = 0;
  double query_pct = 0;
  QueryKind query_kind = QueryKind::kRange;

  Key max_key = 100000;       // keys drawn from [0, max_key)
  std::int64_t rq_size = 1000;  // width of range queries
  KeyDist dist = KeyDist::kUniform;
  double zipf_theta = 0.95;

  std::string mix_string() const;
};

// Per-thread operation/key stream.
class OpStream {
 public:
  enum class Op { kInsert, kDelete, kFind, kQuery };

  OpStream(const Workload& w, std::uint64_t seed,
           std::atomic<std::int64_t>* sorted_counter);

  Op next_op();
  // Classifies one raw 32-bit draw against the mix thresholds; next_op()
  // is op_for(rng).  Public so tests can assert exact threshold coverage
  // (a 0% class must be unreachable for *every* r in [0, 2^32)).
  Op op_for(std::uint64_t r) const;
  Key next_key();                 // key for insert/delete/find
  Key next_range_lo();            // lower bound for a range query
  Key next_hot_range_lo();        // lower bound drawn from kHotRanges slots

  // Number of distinct range starts next_hot_range_lo() draws from; the
  // kRangeAgg working set.  Small on purpose — the hot-range cache holds
  // 4 entries per shard, and the pattern being modeled is a handful of
  // dashboard windows, not a range sweep.
  static constexpr int kHotRanges = 8;
  std::int64_t snapshot_size_hint() const { return size_hint_; }
  void set_size_hint(std::int64_t n) { size_hint_ = n; }

 private:
  const Workload& w_;
  Xoshiro256 rng_;
  std::unique_ptr<ZipfGenerator> zipf_;
  // Sorted distribution: threads take batches of 100 keys from a global
  // counter (paper §7, "Workloads").
  std::atomic<std::int64_t>* sorted_counter_;
  std::int64_t sorted_next_ = 0;
  std::int64_t sorted_end_ = 0;
  std::int64_t size_hint_ = 0;  // used to bound select() arguments
  // thresholds in [0, 2^32)
  std::uint64_t t_insert_, t_delete_, t_find_;
};

}  // namespace cbat::bench
