// Console table / CSV output for the figure benches.
#pragma once

#include <string>
#include <vector>

namespace cbat::bench {

// Prints a table: one row per series (structure), one column per x value.
// Used to reproduce the paper's figures as text: the series and axes match
// the plots, so "who wins and by how much" is directly readable.
class Table {
 public:
  Table(std::string title, std::string x_label);

  void set_columns(const std::vector<std::string>& xs);
  void add_cell(const std::string& series, const std::string& value);
  void print() const;
  void print_csv() const;

 private:
  std::string title_;
  std::string x_label_;
  std::vector<std::string> columns_;
  std::vector<std::pair<std::string, std::vector<std::string>>> rows_;
};

// Formats a throughput (ops/sec) the way the paper's axes do.
std::string fmt_throughput(double ops_per_sec);
std::string fmt_latency_ns(double ns);

}  // namespace cbat::bench
