// Uniform set interface over every tree in the repository, used by the
// benchmark driver.  The paper's SetBench plays the same role.
//
// Unaugmented structures implement rank exactly the way the paper
// prescribes for them: by brute-force traversal of a snapshot (their
// range_count already is that traversal).
#pragma once

#include <memory>
#include <string>

#include "btree/verbtree.h"
#include "bundled/bundled_tree.h"
#include "core/bat_tree.h"
#include "frbst/frbst.h"
#include "vcasbst/vcas_bst.h"

namespace cbat::bench {

class SetAdapter {
 public:
  virtual ~SetAdapter() = default;
  virtual bool insert(Key k) = 0;
  virtual bool erase(Key k) = 0;
  virtual bool contains(Key k) = 0;
  virtual std::int64_t range_count(Key lo, Key hi) = 0;
  virtual std::int64_t rank(Key k) = 0;
  virtual Key select_query(std::int64_t i) = 0;
  virtual std::int64_t size() = 0;
  virtual const std::string& name() const = 0;
};

template <class T>
class AdapterFor final : public SetAdapter {
 public:
  explicit AdapterFor(std::string name) : name_(std::move(name)) {}
  bool insert(Key k) override { return t_.insert(k); }
  bool erase(Key k) override { return t_.erase(k); }
  bool contains(Key k) override { return t_.contains(k); }
  std::int64_t range_count(Key lo, Key hi) override {
    return t_.range_count(lo, hi);
  }
  std::int64_t rank(Key k) override { return t_.rank(k); }
  Key select_query(std::int64_t i) override {
    return t_.select(i).value_or(0);
  }
  std::int64_t size() override { return t_.size(); }
  const std::string& name() const override { return name_; }
  T& tree() { return t_; }

 private:
  T t_;
  std::string name_;
};

// Factory keyed by the names used throughout the paper's figures.
inline std::unique_ptr<SetAdapter> make_structure(const std::string& name) {
  if (name == "BAT") return std::make_unique<AdapterFor<Bat<SizeAug>>>(name);
  if (name == "BAT-Del") {
    return std::make_unique<AdapterFor<BatDel<SizeAug>>>(name);
  }
  if (name == "BAT-EagerDel") {
    return std::make_unique<AdapterFor<BatEagerDel<SizeAug>>>(name);
  }
  if (name == "FR-BST") {
    return std::make_unique<AdapterFor<FrBst<SizeAug>>>(name);
  }
  if (name == "VcasBST") return std::make_unique<AdapterFor<VcasBst>>(name);
  if (name == "VerlibBTree") {
    return std::make_unique<AdapterFor<VerBTree>>(name);
  }
  if (name == "BundledCitrusTree") {
    return std::make_unique<AdapterFor<BundledTree>>(name);
  }
  return nullptr;
}

// The cross-structure comparison set used by Figures 6-9 (the paper plots
// BAT-EagerDel, its best variant, against the four baselines; Figures 5
// and 10 additionally include the other BAT variants).
inline const std::vector<std::string>& all_structures() {
  static const std::vector<std::string> v = {
      "BAT-EagerDel", "FR-BST",           "VcasBST",
      "VerlibBTree",  "BundledCitrusTree"};
  return v;
}

}  // namespace cbat::bench
