// Uniform set interface over every tree in the repository, used by the
// benchmark driver.  The paper's SetBench plays the same role.
//
// The actual contract (concepts, type erasure, name -> factory map) lives
// in src/api/ordered_set.h; this header keeps the benchmark-facing aliases
// so driver code and tests read naturally.
//
// Unaugmented structures implement rank exactly the way the paper
// prescribes for them: by brute-force traversal of a snapshot (their
// range_count already is that traversal).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "api/ordered_set.h"

namespace cbat::bench {

using SetAdapter = api::AbstractOrderedSet;

// Instantiates one of the structure names used throughout the paper's
// figures ("BAT", "BAT-Del", "BAT-EagerDel", "FR-BST", "VcasBST",
// "VerlibBTree", "BundledCitrusTree", "ChromaticSet"), or any structure
// registered later through StructureRegistry.  Returns nullptr for
// unknown names.
inline std::unique_ptr<SetAdapter> make_structure(const std::string& name) {
  return api::StructureRegistry::instance().create(name);
}

// The cross-structure comparison set used by Figures 6-9 (the paper plots
// BAT-EagerDel, its best variant, against the four baselines; Figures 5
// and 10 additionally include the other BAT variants).  Computed fresh so
// structures registered or replaced after startup are reflected.
inline std::vector<std::string> all_structures() {
  return api::StructureRegistry::instance().comparison_set();
}

}  // namespace cbat::bench
