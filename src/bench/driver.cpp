#include "bench/driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

namespace cbat::bench {

namespace {

using Clock = std::chrono::steady_clock;

struct ThreadTotals {
  std::int64_t ops = 0;
  std::int64_t updates = 0;
  std::int64_t finds = 0;
  std::int64_t queries = 0;
  LatencyHistogram update_hist;
  LatencyHistogram find_hist;
  LatencyHistogram query_hist;
};

void worker(SetAdapter& set, const RunConfig& cfg, int tid,
            std::atomic<int>& ready, std::atomic<bool>& go,
            std::atomic<bool>& stop, std::atomic<std::int64_t>& sorted_ctr,
            ThreadTotals& out) {
  const Workload& w = cfg.workload;
  // Pre-fault this thread's object pools before the first sampled
  // operation, so cold-allocation jitter stays out of the latency
  // percentiles (the pools are per-thread; prefill warmed other threads).
  set.warm_up(1u << 12);
  OpStream stream(w, cfg.seed + 7919ULL * static_cast<std::uint64_t>(tid + 1),
                  &sorted_ctr);
  stream.set_size_hint(w.max_key / 2);
  ThreadTotals tt;
  // Sample latency on every 32nd operation to keep clock overhead out of
  // the throughput numbers.
  int sample_countdown = 32 + tid;
  // Start barrier: warm-up and stream construction must not eat into the
  // measured window (they produce zero ops, and only some structures
  // implement warm_up — unbarriered they would bias the cross-structure
  // figures).  The driver takes t0 once every worker has checked in.
  ready.fetch_add(1, std::memory_order_release);
  while (!go.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // relaxed: stop polling; one late iteration is harmless and the join
  // below synchronizes the final counts.
  while (!stop.load(std::memory_order_relaxed)) {
    const auto op = stream.next_op();
    const bool sample = --sample_countdown == 0;
    Clock::time_point t0;
    if (sample) t0 = Clock::now();
    switch (op) {
      case OpStream::Op::kInsert:
        set.insert(stream.next_key());
        ++tt.updates;
        break;
      case OpStream::Op::kDelete:
        set.erase(stream.next_key());
        ++tt.updates;
        break;
      case OpStream::Op::kFind:
        set.contains(stream.next_key());
        ++tt.finds;
        break;
      case OpStream::Op::kQuery: {
        switch (w.query_kind) {
          case QueryKind::kRange: {
            const Key lo = stream.next_range_lo();
            set.range_count(lo, lo + static_cast<Key>(w.rq_size) - 1);
            break;
          }
          case QueryKind::kRank:
            set.rank(stream.next_key());
            break;
          case QueryKind::kSelect: {
            const std::int64_t n =
                std::max<std::int64_t>(stream.snapshot_size_hint(), 1);
            set.select_query(1 +
                             static_cast<std::int64_t>(stream.next_key()) % n);
            break;
          }
          case QueryKind::kRangeAgg: {
            const Key lo = stream.next_hot_range_lo();
            set.range_aggregate(lo, lo + static_cast<Key>(w.rq_size) - 1);
            break;
          }
        }
        ++tt.queries;
        break;
      }
    }
    if (sample) {
      const auto ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               t0)
              .count());
      if (op == OpStream::Op::kQuery) {
        tt.query_hist.record(ns);
      } else if (op == OpStream::Op::kFind) {
        tt.find_hist.record(ns);
      } else {
        tt.update_hist.record(ns);
      }
      sample_countdown = 32;
    }
    ++tt.ops;
  }
  out = tt;
}

}  // namespace

void prefill(SetAdapter& set, const Workload& w, int threads,
             std::uint64_t seed) {
  const std::int64_t target = w.max_key / 2;
  // Threads claim batches of successful inserts up front, with the last
  // batch bounded by the remaining target, so the prefilled size is
  // *exactly* target.  (The previous per-thread 256-op local counters were
  // invisible to the other threads' termination checks, overshooting the
  // target by up to threads*256 and skewing small-tree cells.)
  constexpr std::int64_t kBatch = 256;
  std::atomic<std::int64_t> claimed{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      set.warm_up(static_cast<std::size_t>(
          std::max<std::int64_t>(target / threads, 1)));
      Xoshiro256 rng(seed + 1000003ULL * static_cast<std::uint64_t>(t));
      while (true) {
        // relaxed: batch ticket counter; only uniqueness matters and
        // fetch_add is atomic at any ordering.
        const std::int64_t got =
            claimed.fetch_add(kBatch, std::memory_order_relaxed);
        if (got >= target) break;
        const std::int64_t batch = std::min(kBatch, target - got);
        for (std::int64_t done = 0; done < batch;) {
          const Key k = static_cast<Key>(
              rng.below(static_cast<std::uint64_t>(w.max_key)));
          if (set.insert(k)) ++done;
        }
      }
    });
  }
  for (auto& t : ts) t.join();
}

RunResult run_on(SetAdapter& set, const RunConfig& cfg) {
  if (cfg.workload.query_pct > 0 && !set.supports_order_statistics()) {
    std::fprintf(stderr,
                 "warning: %s does not support order statistics; its query "
                 "results in this run are the documented fallbacks\n",
                 set.name().c_str());
  }
  // Per-structure consistency report (api::AbstractOrderedSet::
  // consistency): composite-query cells on a quiescently consistent
  // structure measure a weaker guarantee than the same cells on a
  // linearizable one, so say so next to the numbers.
  if (cfg.workload.query_pct > 0 &&
      set.consistency() == api::Consistency::kQuiescentlyConsistent) {
    std::fprintf(stderr,
                 "note: %s composite queries are quiescently consistent, "
                 "not linearizable (see docs/ARCHITECTURE.md)\n",
                 set.name().c_str());
  }
  // Let keyspace-aware structures (the shard layer) align their key map to
  // the workload before any key goes in, through the unified configure()
  // front door (structures without a use for the hint ignore it).
  api::SetOptions opts;
  opts.key_range_hint = cfg.workload.max_key;
  set.configure(opts);
  if (cfg.prefill) prefill(set, cfg.workload, cfg.threads, cfg.seed ^ 0xabcd);

  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> sorted_ctr{0};
  std::vector<ThreadTotals> totals(cfg.threads);
  std::vector<std::thread> ts;
  for (int t = 0; t < cfg.threads; ++t) {
    ts.emplace_back(worker, std::ref(set), std::cref(cfg), t, std::ref(ready),
                    std::ref(go), std::ref(stop), std::ref(sorted_ctr),
                    std::ref(totals[t]));
  }
  while (ready.load(std::memory_order_acquire) < cfg.threads) {
    std::this_thread::yield();
  }
  const auto t0 = Clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.duration_ms));
  // relaxed: see the worker's stop poll; join() publishes everything.
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : ts) t.join();
  const double secs =
      std::chrono::duration<double>(Clock::now() - t0).count();

  RunResult r;
  r.structure = set.name();
  r.consistency = api::consistency_name(set.consistency());
  r.config = cfg;
  r.seconds = secs;
  LatencyHistogram update_hist, find_hist, query_hist;
  for (const auto& tt : totals) {
    r.total_ops += tt.ops;
    r.updates += tt.updates;
    r.finds += tt.finds;
    r.queries += tt.queries;
    update_hist.merge(tt.update_hist);
    find_hist.merge(tt.find_hist);
    query_hist.merge(tt.query_hist);
  }
  r.update_latency = LatencyStats::from(update_hist);
  r.find_latency = LatencyStats::from(find_hist);
  r.query_latency = LatencyStats::from(query_hist);
  return r;
}

RunResult run_benchmark(const std::string& structure, const RunConfig& cfg) {
  auto set = make_structure(structure);
  if (!set) {
    RunResult r;
    r.structure = "UNKNOWN:" + structure;
    return r;
  }
  return run_on(*set, cfg);
}

}  // namespace cbat::bench
