// Tiny command-line parsing for the bench binaries.
//
// Every scenario accepts:
//   --ms N           per-cell measured duration (default scaled for CI)
//   --threads a,b,c  thread counts to sweep
//   --maxkey N       key-range size
//   --rq N           range-query size
//   --csv            machine-readable table output
//   --json PATH      structured results (schema shared with BENCH_*.json)
//   --smoke          minimal parameters for the CI smoke bench
//   --full           paper-scale parameters (or CBAT_BENCH_FULL=1)
#pragma once

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace cbat::bench {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.push_back(argv[i]);
  }

  bool has(const std::string& flag) const {
    for (const auto& a : args_) {
      if (a == flag) return true;
    }
    return false;
  }

  long get_long(const std::string& flag, long def) const {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == flag && i + 1 < args_.size()) {
        return std::strtol(args_[i + 1].c_str(), nullptr, 10);
      }
      if (args_[i].rfind(flag + "=", 0) == 0) {
        return std::strtol(args_[i].c_str() + flag.size() + 1, nullptr, 10);
      }
    }
    return def;
  }

  double get_double(const std::string& flag, double def) const {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == flag && i + 1 < args_.size()) {
        return std::strtod(args_[i + 1].c_str(), nullptr);
      }
      if (args_[i].rfind(flag + "=", 0) == 0) {
        return std::strtod(args_[i].c_str() + flag.size() + 1, nullptr);
      }
    }
    return def;
  }

  std::vector<long> get_list(const std::string& flag,
                             std::vector<long> def) const {
    std::string raw;
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == flag && i + 1 < args_.size()) raw = args_[i + 1];
      if (args_[i].rfind(flag + "=", 0) == 0) {
        raw = args_[i].substr(flag.size() + 1);
      }
    }
    if (raw.empty()) return def;
    std::vector<long> out;
    const char* p = raw.c_str();
    while (*p) {
      out.push_back(std::strtol(p, const_cast<char**>(&p), 10));
      if (*p == ',') ++p;
    }
    return out;
  }

  std::string get_str(const std::string& flag, std::string def) const {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == flag && i + 1 < args_.size()) return args_[i + 1];
      if (args_[i].rfind(flag + "=", 0) == 0) {
        return args_[i].substr(flag.size() + 1);
      }
    }
    return def;
  }

  // Collects every occurrence of `flag`, splitting each value on commas:
  //   --scenario fig5a --scenario fig8,table3  ->  {fig5a, fig8, table3}
  std::vector<std::string> get_str_list(const std::string& flag) const {
    std::vector<std::string> out;
    auto split_into = [&out](const std::string& raw) {
      std::size_t start = 0;
      while (start <= raw.size()) {
        std::size_t comma = raw.find(',', start);
        if (comma == std::string::npos) comma = raw.size();
        if (comma > start) out.push_back(raw.substr(start, comma - start));
        start = comma + 1;
      }
    };
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == flag && i + 1 < args_.size()) split_into(args_[i + 1]);
      if (args_[i].rfind(flag + "=", 0) == 0) {
        split_into(args_[i].substr(flag.size() + 1));
      }
    }
    return out;
  }

  // Paper-scale mode: longer runs, paper-sized key ranges and thread sweeps.
  bool full_scale() const {
    if (has("--full")) return true;
    const char* env = std::getenv("CBAT_BENCH_FULL");
    return env != nullptr && env[0] == '1';
  }

  // Smoke mode: the smallest parameters that still exercise every cell;
  // used by scripts/bench_smoke.sh and the CI smoke-bench job.  --full
  // wins when both are given.
  bool smoke() const { return !full_scale() && has("--smoke"); }

  const char* mode_name() const {
    if (full_scale()) return "full";
    if (smoke()) return "smoke";
    return "default";
  }

  bool csv() const { return has("--csv"); }

 private:
  std::vector<std::string> args_;
};

}  // namespace cbat::bench
