#include "bench/scenarios.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <thread>

#include "bench/table.h"
#include "chromatic/chromatic_set.h"
#include "combine/combining_buffer.h"
#include "shard/aggregate_cache.h"
#include "core/bat_tree.h"
#include "frbst/frbst.h"
#include "llxscx/llx_scx.h"
#include "reclamation/ebr.h"
#include "util/counters.h"
#include "util/flat_set.h"
#include "util/random.h"
#include "util/zipf.h"

namespace cbat::bench {

namespace {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Context helpers: the paper-scale / CI-scale / smoke-scale parameter
// defaults previously spread across bench/bench_common.h and the binaries.
// Explicit flags always win over the mode defaults.
// ---------------------------------------------------------------------------

long pick(const Args& a, const char* flag, long full, long smoke, long def) {
  if (a.full_scale()) return a.get_long(flag, full);
  if (a.smoke()) return a.get_long(flag, smoke);
  return a.get_long(flag, def);
}

std::vector<long> pick_list(const Args& a, const char* flag,
                            std::vector<long> full, std::vector<long> smoke,
                            std::vector<long> def) {
  if (a.full_scale()) return a.get_list(flag, std::move(full));
  if (a.smoke()) return a.get_list(flag, std::move(smoke));
  return a.get_list(flag, std::move(def));
}

// Best-of-N repetition: scheduler interference only ever slows a run
// down, so keeping the best repetition removes most one-sided noise.
// Smoke mode (the CI regression gate) defaults to 2 repetitions.
int repeats_for(const Args& args) {
  return static_cast<int>(
      args.get_long("--repeat", args.smoke() ? 2 : 1));
}

RunResult run_benchmark_repeated(const std::string& structure,
                                 const RunConfig& cfg, int repeats) {
  RunResult best = run_benchmark(structure, cfg);
  for (int i = 1; i < repeats; ++i) {
    RunResult r = run_benchmark(structure, cfg);
    if (r.throughput() > best.throughput()) best = std::move(r);
  }
  return best;
}

RunRecord& add_run(ScenarioOutput& out, std::string table, std::string x_label,
                   std::string x, std::string series, RunResult r) {
  RunRecord rec;
  rec.table = std::move(table);
  rec.x_label = std::move(x_label);
  rec.x = std::move(x);
  rec.series = std::move(series);
  rec.has_result = true;
  rec.result = std::move(r);
  out.runs.push_back(std::move(rec));
  return out.runs.back();
}

// Runs structure x xvalue sweeps and records one throughput cell each,
// series-major like the old bench_common.h sweep.
void sweep_throughput(ScenarioContext& ctx, const std::string& table,
                      const std::string& x_label,
                      const std::vector<std::string>& structures,
                      const std::vector<long>& xs,
                      const std::function<RunConfig(long)>& config_for) {
  for (const auto& s : structures) {
    for (long x : xs) {
      ctx.record(table, x_label, std::to_string(x), s, s, config_for(x));
    }
  }
}

}  // namespace

std::vector<long> ScenarioContext::thread_sweep() const {
  // Smoke uses a single uniform thread count: mixing 1- and 2-thread
  // cells would break compare_bench.py --normalize's assumption of one
  // machine-speed ratio when the baseline and CI runner core counts
  // differ.
  return pick_list(*args, "--threads", {1, 12, 24, 48, 96, 144, 192}, {2},
                   {1, 2, 4, 8});
}

int ScenarioContext::cell_ms(int ci_default) const {
  // Smoke cells are 150 ms: short enough for a ~30 s full sweep, long
  // enough that scheduler noise stays well inside the CI gate threshold.
  return static_cast<int>(pick(*args, "--ms", 3000, 150, ci_default));
}

long ScenarioContext::fixed_threads() const {
  // Figures 6, 7, 9, 10 and Table 3 fix TT=120 in the paper.
  return pick(*args, "--tt", 120, 2, 4);
}

void ScenarioContext::record(const std::string& table,
                             const std::string& x_label, const std::string& x,
                             const std::string& series,
                             const std::string& structure,
                             const RunConfig& cfg) {
  RunRecord& rec = add_run(
      *out, table, x_label, x, series,
      run_benchmark_repeated(structure, cfg, repeats_for(*args)));
  out->add_cell(table, x_label, x, series,
                fmt_throughput(rec.result.throughput()));
  std::fprintf(stderr, "  [%s %s=%s] %.3f Mop/s\n", series.c_str(),
               x_label.c_str(), x.c_str(), rec.result.mops());
}

// ---------------------------------------------------------------------------
// Figure scenarios (one per paper plot; parameters and comments carried
// over from the former standalone binaries).
// ---------------------------------------------------------------------------

namespace {

// The cross-structure comparison set the paper plots in Figures 6-9
// (BAT-EagerDel, its best variant, against the four baselines); Figure 10
// additionally includes plain BAT, and Figure 5 sweeps the BAT variants.
const std::vector<std::string> kPaperComparisonSet = {
    "BAT-EagerDel", "FR-BST", "VcasBST", "VerlibBTree", "BundledCitrusTree"};
const std::vector<std::string> kBatVariantsAndFrBst = {
    "BAT", "BAT-Del", "BAT-EagerDel", "FR-BST"};

std::vector<std::string> with_plain_bat(std::vector<std::string> set) {
  set.insert(set.begin(), "BAT");
  return set;
}

// Figure 5a: update-only throughput vs thread count, uniform keys
// (50-50-0-0, MK 10M).  Balancing should beat the unbalanced FR-BST, and
// delegation should add ~2x on top once threads contend.
void run_fig5a(ScenarioContext& ctx) {
  const Args& args = *ctx.args;
  const long maxkey = pick(args, "--maxkey", 10000000, 20000, 100000);
  const int ms = ctx.cell_ms();
  sweep_throughput(
      ctx,
      "Figure 5a: MK " + std::to_string(maxkey) +
          ", 50-50-0-0, uniform — throughput (ops/s)",
      "threads", kBatVariantsAndFrBst, ctx.thread_sweep(), [&](long t) {
        RunConfig cfg;
        cfg.workload.insert_pct = 50;
        cfg.workload.delete_pct = 50;
        cfg.workload.max_key = maxkey;
        cfg.threads = static_cast<int>(t);
        cfg.duration_ms = ms;
        return cfg;
      });
}

// Figure 5b: insert-only throughput vs thread count with the *sorted* key
// distribution and no prefill (100-0-0-0).  FR-BST degenerates to a path
// while the BAT variants stay logarithmic.
void run_fig5b(ScenarioContext& ctx) {
  const Args& args = *ctx.args;
  const long maxkey = pick(args, "--maxkey", 10000000, 20000, 100000);
  const int ms = ctx.cell_ms();
  sweep_throughput(
      ctx,
      "Figure 5b: MK " + std::to_string(maxkey) +
          ", 100-0-0-0, sorted keys, no prefill — throughput (ops/s)",
      "threads", kBatVariantsAndFrBst, ctx.thread_sweep(), [&](long t) {
        RunConfig cfg;
        cfg.workload.insert_pct = 100;
        cfg.workload.delete_pct = 0;
        cfg.workload.max_key = maxkey;
        cfg.workload.dist = KeyDist::kSorted;
        cfg.threads = static_cast<int>(t);
        cfg.duration_ms = ms;
        cfg.prefill = false;  // paper: Figure 5b has no prefilling
        return cfg;
      });
}

// Figure 5c: throughput vs thread count for rank, select and range queries
// on BAT-EagerDel (5-5-0-90, RQ 50K, MK 10M).
void run_fig5c(ScenarioContext& ctx) {
  const Args& args = *ctx.args;
  const long maxkey = pick(args, "--maxkey", 10000000, 20000, 100000);
  const long rq = pick(args, "--rq", 50000, 1000, 5000);
  const int ms = ctx.cell_ms();
  const std::string table = "Figure 5c: BAT-EagerDel, RQ " +
                            std::to_string(rq) + ", MK " +
                            std::to_string(maxkey) +
                            ", 5-5-0-90 — throughput (ops/s)";
  const std::pair<const char*, QueryKind> kinds[] = {
      {"Rank", QueryKind::kRank},
      {"RangeQuery", QueryKind::kRange},
      {"Select", QueryKind::kSelect},
  };
  for (const auto& [label, kind] : kinds) {
    for (long t : ctx.thread_sweep()) {
      RunConfig cfg;
      cfg.workload.insert_pct = 5;
      cfg.workload.delete_pct = 5;
      cfg.workload.query_pct = 90;
      cfg.workload.query_kind = kind;
      cfg.workload.rq_size = rq;
      cfg.workload.max_key = maxkey;
      cfg.threads = static_cast<int>(t);
      cfg.duration_ms = ms;
      ctx.record(table, "threads", std::to_string(t), label, "BAT-EagerDel",
                 cfg);
    }
  }
}

// Figure 6: throughput vs range-query size on a mixed workload
// (10-10-40-40, TT 120), for a small (6a) and a large (6b) tree.
void run_fig6(ScenarioContext& ctx) {
  const Args& args = *ctx.args;
  const long tt = ctx.fixed_threads();
  const int ms = ctx.cell_ms();
  const auto rqs =
      pick_list(args, "--rq", {8, 64, 256, 1024, 4096, 16384, 65536},
                {8, 512, 8192}, {8, 64, 512, 4096, 16384});
  const long small_mk =
      pick(args, "--maxkey-small", 100000, 20000, 100000);
  const long large_mk = pick(args, "--maxkey", 10000000, 50000, 400000);

  const std::vector<std::string>& structures = kPaperComparisonSet;

  for (const auto& [fig, maxkey] :
       {std::pair<const char*, long>{"6a (small tree)", small_mk},
        std::pair<const char*, long>{"6b (large tree)", large_mk}}) {
    sweep_throughput(
        ctx,
        std::string("Figure ") + fig + ": TT " + std::to_string(tt) +
            ", MK " + std::to_string(maxkey) +
            ", 10-10-40-40 — throughput (ops/s)",
        "rq_size", structures, rqs, [&, maxkey](long rq) {
          RunConfig cfg;
          cfg.workload.insert_pct = 10;
          cfg.workload.delete_pct = 10;
          cfg.workload.find_pct = 40;
          cfg.workload.query_pct = 40;
          cfg.workload.query_kind = QueryKind::kRange;
          cfg.workload.rq_size = rq;
          cfg.workload.max_key = maxkey;
          cfg.threads = static_cast<int>(tt);
          cfg.duration_ms = ms;
          return cfg;
        });
  }
}

// Figure 7: throughput vs percentage of rank queries, remaining ops split
// evenly between inserts and deletes (TT 120; 7a small, 7b large tree).
void run_fig7(ScenarioContext& ctx) {
  const Args& args = *ctx.args;
  const long tt = ctx.fixed_threads();
  const int ms = ctx.cell_ms();
  const std::vector<double> percents =
      args.smoke() ? std::vector<double>{0.1, 10}
                   : std::vector<double>{0.01, 0.1, 1, 10, 100};
  const long small_mk = pick(args, "--maxkey-small", 100000, 20000, 50000);
  const long large_mk = pick(args, "--maxkey", 10000000, 50000, 400000);

  const std::vector<std::string>& structures = kPaperComparisonSet;

  for (const auto& [fig, maxkey] :
       {std::pair<const char*, long>{"7a (small tree)", small_mk},
        std::pair<const char*, long>{"7b (large tree)", large_mk}}) {
    const std::string table =
        std::string("Figure ") + fig + ": TT " + std::to_string(tt) +
        ", MK " + std::to_string(maxkey) +
        ", (100-x)/2-(100-x)/2-0-x rank — throughput (ops/s)";
    for (const auto& s : structures) {
      for (double p : percents) {
        char xbuf[16];
        std::snprintf(xbuf, sizeof(xbuf), "%g%%", p);
        RunConfig cfg;
        cfg.workload.insert_pct = (100 - p) / 2;
        cfg.workload.delete_pct = (100 - p) / 2;
        cfg.workload.query_pct = p;
        cfg.workload.query_kind = QueryKind::kRank;
        cfg.workload.max_key = maxkey;
        cfg.threads = static_cast<int>(tt);
        cfg.duration_ms = ms;
        ctx.record(table, "rank_pct", xbuf, s, s, cfg);
      }
    }
  }
}

// Figure 8: throughput vs thread count with large range queries: 8a
// low-update (YCSB-B-like) and 8b high-update (YCSB-A-like) mixes.
void run_fig8(ScenarioContext& ctx) {
  const Args& args = *ctx.args;
  const long maxkey = pick(args, "--maxkey", 10000000, 50000, 200000);
  const long rq = pick(args, "--rq", 50000, 2000, 10000);
  const int ms = ctx.cell_ms();

  const std::vector<std::string>& structures = kPaperComparisonSet;

  struct Mix {
    const char* name;
    double i, d, f, q;
  };
  const Mix mixes[] = {
      {"8a (low update)", 2.5, 2.5, 47.5, 47.5},
      {"8b (high update)", 25, 25, 25, 25},
  };
  for (const Mix& m : mixes) {
    sweep_throughput(
        ctx,
        std::string("Figure ") + m.name + ": RQ " + std::to_string(rq) +
            ", MK " + std::to_string(maxkey) + " — throughput (ops/s)",
        "threads", structures, ctx.thread_sweep(), [&](long t) {
          RunConfig cfg;
          cfg.workload.insert_pct = m.i;
          cfg.workload.delete_pct = m.d;
          cfg.workload.find_pct = m.f;
          cfg.workload.query_pct = m.q;
          cfg.workload.query_kind = QueryKind::kRange;
          cfg.workload.rq_size = rq;
          cfg.workload.max_key = maxkey;
          cfg.threads = static_cast<int>(t);
          cfg.duration_ms = ms;
          return cfg;
        });
  }
}

// Figure 9: per-operation-class latency vs range-query size on the
// Figure 6b workload: 9a update latency, 9b range-query latency.  With the
// histogram driver each cell shows "p50 (p99)".
void run_fig9(ScenarioContext& ctx) {
  const Args& args = *ctx.args;
  const long tt = ctx.fixed_threads();
  const long maxkey = pick(args, "--maxkey", 10000000, 50000, 400000);
  const int ms = ctx.cell_ms();
  const auto rqs =
      pick_list(args, "--rq", {8, 64, 256, 1024, 4096, 16384, 65536},
                {8, 512, 8192}, {8, 64, 512, 4096, 16384});

  const std::vector<std::string>& structures = kPaperComparisonSet;

  const std::string t9a = "Figure 9a: TT " + std::to_string(tt) + ", MK " +
                          std::to_string(maxkey) +
                          ", 10-10-40-40 — update latency p50 (p99)";
  const std::string t9b =
      "Figure 9b: same workload — range-query latency p50 (p99)";

  auto cell_text = [](const LatencyStats& s) {
    return fmt_latency_ns(s.p50_ns) + " (" + fmt_latency_ns(s.p99_ns) + ")";
  };
  for (const auto& s : structures) {
    for (long rq : rqs) {
      RunConfig cfg;
      cfg.workload.insert_pct = 10;
      cfg.workload.delete_pct = 10;
      cfg.workload.find_pct = 40;
      cfg.workload.query_pct = 40;
      cfg.workload.query_kind = QueryKind::kRange;
      cfg.workload.rq_size = rq;
      cfg.workload.max_key = maxkey;
      cfg.threads = static_cast<int>(tt);
      cfg.duration_ms = ms;
      const std::string x = std::to_string(rq);
      const RunRecord& rec =
          add_run(*ctx.out, t9a, "rq_size", x, s,
                  run_benchmark_repeated(s, cfg, repeats_for(*ctx.args)));
      const RunResult& r = rec.result;
      ctx.out->add_cell(t9a, "rq_size", x, s, cell_text(r.update_latency));
      ctx.out->add_cell(t9b, "rq_size", x, s, cell_text(r.query_latency));
      std::fprintf(stderr, "  [%s rq=%ld] upd p50=%s rq p50=%s\n", s.c_str(),
                   rq, fmt_latency_ns(r.update_latency.p50_ns).c_str(),
                   fmt_latency_ns(r.query_latency.p50_ns).c_str());
    }
  }
}

// Figure 10: throughput vs data-structure size under the high-update mixed
// workload with Zipfian (theta=0.95) keys.
void run_fig10(ScenarioContext& ctx) {
  const Args& args = *ctx.args;
  const long tt = ctx.fixed_threads();
  const long rq = pick(args, "--rq", 50000, 1000, 5000);
  const int ms = ctx.cell_ms();
  const auto maxkeys =
      pick_list(args, "--maxkey", {100000, 1000000, 10000000},
                {10000, 50000}, {20000, 100000, 400000});

  const std::vector<std::string> structures =
      with_plain_bat(kPaperComparisonSet);

  sweep_throughput(
      ctx,
      "Figure 10: TT " + std::to_string(tt) + ", RQ " + std::to_string(rq) +
          ", 25-25-25-25, Zipfian 0.95 — throughput (ops/s)",
      "max_key", structures, maxkeys, [&](long mk) {
        RunConfig cfg;
        cfg.workload.insert_pct = 25;
        cfg.workload.delete_pct = 25;
        cfg.workload.find_pct = 25;
        cfg.workload.query_pct = 25;
        cfg.workload.query_kind = QueryKind::kRange;
        cfg.workload.rq_size = std::min<long>(rq, mk / 4);
        cfg.workload.max_key = mk;
        cfg.workload.dist = KeyDist::kZipf;
        cfg.workload.zipf_theta = 0.95;
        cfg.threads = static_cast<int>(tt);
        cfg.duration_ms = ms;
        return cfg;
      });
}

// §7 "Why Balancing Improves Throughput": per-Propagate statistics on a
// 25-25-25-25 workload under uniform and Zipfian (0.99) distributions.
void run_table3(ScenarioContext& ctx) {
  const Args& args = *ctx.args;
  const long tt = ctx.fixed_threads();
  const long maxkey = pick(args, "--maxkey", 100000, 20000, 100000);
  const long rq = pick(args, "--rq", 50000, 1000, 5000);
  const int ms = ctx.cell_ms(200);

  const std::vector<std::string>& structures = kBatVariantsAndFrBst;
  struct Dist {
    const char* name;
    KeyDist dist;
    double theta;
  };
  const Dist dists[] = {
      {"uniform", KeyDist::kUniform, 0},
      {"zipf-0.99", KeyDist::kZipf, 0.99},
  };

  const std::string table = "Table 3: propagate statistics (TT " +
                            std::to_string(tt) + ", MK " +
                            std::to_string(maxkey) + ", RQ " +
                            std::to_string(rq) + ", 25-25-25-25)";
  for (const auto& d : dists) {
    for (const auto& s : structures) {
      Counters::reset();
      RunConfig cfg;
      cfg.workload.insert_pct = 25;
      cfg.workload.delete_pct = 25;
      cfg.workload.find_pct = 25;
      cfg.workload.query_pct = 25;
      cfg.workload.query_kind = QueryKind::kRange;
      cfg.workload.rq_size = std::min<long>(rq, maxkey / 4);
      cfg.workload.max_key = maxkey;
      cfg.workload.dist = d.dist;
      cfg.workload.zipf_theta = d.theta;
      cfg.threads = static_cast<int>(tt);
      cfg.duration_ms = ms;
      RunResult r = run_benchmark(s, cfg);
      const auto c = Counters::snapshot();
      const double props = std::max<double>(
          1, static_cast<double>(c[Counter::kPropagateCalls]));
      const double search = static_cast<double>(c[Counter::kSearchPathNodes]);
      const double extra =
          static_cast<double>(c[Counter::kPropagateExtraNodes]);
      const double nodes_per_prop =
          static_cast<double>(c[Counter::kPropagateNodes]) / props;
      const double extra_pct = search > 0 ? 100.0 * extra / search : 0.0;
      const double nil_per_prop =
          static_cast<double>(c[Counter::kNilRefreshes]) / props;
      const double cas_per_prop =
          static_cast<double>(c[Counter::kRefreshCas]) / props;
      const double deleg_per_prop =
          static_cast<double>(c[Counter::kDelegations]) / props;

      const std::string series = std::string(s) + " / " + d.name;
      RunRecord& rec =
          add_run(*ctx.out, table, "dist", d.name, series, std::move(r));
      rec.metrics = {{"nodes_per_prop", nodes_per_prop},
                     {"extra_pct", extra_pct},
                     {"nil_per_prop", nil_per_prop},
                     {"cas_per_prop", cas_per_prop},
                     {"deleg_per_prop", deleg_per_prop}};
      char buf[32];
      auto cell = [&](const char* metric, const char* fmt, double v) {
        std::snprintf(buf, sizeof(buf), fmt, v);
        ctx.out->add_cell(table, "metric", metric, series, buf);
      };
      cell("nodes/prop", "%.2f", nodes_per_prop);
      cell("extra%", "%.2f%%", extra_pct);
      cell("nil/prop", "%.4f", nil_per_prop);
      cell("cas/prop", "%.2f", cas_per_prop);
      cell("deleg/prop", "%.4f", deleg_per_prop);
      std::fprintf(stderr, "  [%s] %.2f nodes/prop, %.2f cas/prop\n",
                   series.c_str(), nodes_per_prop, cas_per_prop);
    }
  }
  Counters::reset();
}

// ---------------------------------------------------------------------------
// Shard-layer scenarios (ROADMAP: sharding).  Both emit the standard
// schema_version-1 JSON document like every figure scenario.
// ---------------------------------------------------------------------------

// shard_sweep: throughput vs shard count under an update-heavy mix with
// cross-shard range queries (45-45-0-10), for uniform and Zipfian keys.
// Sharded1-BAT is the single-shard control; near-linear separation from it
// is the win the shard layer exists for, and the Zipfian series shows it
// shrinking as the hot shard serializes updates.
void run_shard_sweep(ScenarioContext& ctx) {
  const Args& args = *ctx.args;
  const long maxkey = pick(args, "--maxkey", 10000000, 20000, 100000);
  const long rq = pick(args, "--rq", 50000, 1000, 5000);
  const long tt = ctx.fixed_threads();
  const int ms = ctx.cell_ms();
  const auto shard_counts =
      pick_list(args, "--shards", {1, 4, 16, 64}, {1, 16}, {1, 4, 16});

  struct Dist {
    const char* name;
    KeyDist dist;
    double theta;
  };
  const Dist dists[] = {
      {"uniform", KeyDist::kUniform, 0},
      {"zipf-0.95", KeyDist::kZipf, 0.95},
  };

  const std::string table = "shard_sweep: TT " + std::to_string(tt) +
                            ", MK " + std::to_string(maxkey) + ", RQ " +
                            std::to_string(rq) +
                            ", 45-45-0-10 — throughput (ops/s)";
  for (const Dist& d : dists) {
    for (long n : shard_counts) {
      const std::string structure = "Sharded" + std::to_string(n) + "-BAT";
      if (!api::StructureRegistry::instance().contains(structure)) {
        std::fprintf(stderr, "  [skip] %s is not registered\n",
                     structure.c_str());
        continue;
      }
      RunConfig cfg;
      cfg.workload.insert_pct = 45;
      cfg.workload.delete_pct = 45;
      cfg.workload.query_pct = 10;
      cfg.workload.query_kind = QueryKind::kRange;
      cfg.workload.rq_size = std::min<long>(rq, maxkey / 4);
      cfg.workload.max_key = maxkey;
      cfg.workload.dist = d.dist;
      cfg.workload.zipf_theta = d.theta;
      cfg.threads = static_cast<int>(tt);
      cfg.duration_ms = ms;
      ctx.record(table, "shards", std::to_string(n), d.name, structure, cfg);
    }
  }
}

// shard_hotspot: Zipf theta sweep of Sharded16-BAT against a single BAT on
// a pure-update mix.  Contiguous sharding sends the Zipf head keys to one
// shard, so rising skew concentrates updates there and erases the sharding
// win; the crossover theta is the number this scenario exists to plot.
void run_shard_hotspot(ScenarioContext& ctx) {
  const Args& args = *ctx.args;
  const long maxkey = pick(args, "--maxkey", 10000000, 20000, 100000);
  const long tt = ctx.fixed_threads();
  const int ms = ctx.cell_ms();
  const std::vector<double> thetas =
      args.full_scale()
          ? std::vector<double>{0.5, 0.7, 0.8, 0.9, 0.95, 0.99, 1.1}
          : (args.smoke() ? std::vector<double>{0.6, 0.99}
                          : std::vector<double>{0.6, 0.8, 0.99});

  const std::string table = "shard_hotspot: TT " + std::to_string(tt) +
                            ", MK " + std::to_string(maxkey) +
                            ", 50-50-0-0 Zipfian — throughput (ops/s)";
  for (const char* s : {"BAT", "Sharded16-BAT"}) {
    for (double theta : thetas) {
      char xbuf[16];
      std::snprintf(xbuf, sizeof(xbuf), "%g", theta);
      RunConfig cfg;
      cfg.workload.insert_pct = 50;
      cfg.workload.delete_pct = 50;
      cfg.workload.max_key = maxkey;
      cfg.workload.dist = KeyDist::kZipf;
      cfg.workload.zipf_theta = theta;
      cfg.threads = static_cast<int>(tt);
      cfg.duration_ms = ms;
      ctx.record(table, "theta", xbuf, s, s, cfg);
    }
  }
}

// combine_sweep: the combining layer (src/combine/) over a batch-size x
// thread-count x update-share grid, on Zipfian keys so the hot shard that
// erases the sharding win in shard_hotspot is exactly where combining
// engages.  Controls are the same structures without the combining layer;
// each combined cell additionally records per-batch occupancy statistics
// (avg requests per combiner batch, solo/timeout shares) into the
// schema-1 JSON metrics, which scripts/compare_bench.py surfaces so a
// regression in combining *effectiveness* is visible even when raw
// throughput still passes the gate.  NOTE: occupancy > 1 needs truly
// concurrent updates; on a single-hardware-thread host the grid still
// runs (protocol coverage) but shows parity, like shard_sweep's scaling.
void run_combine_sweep(ScenarioContext& ctx) {
  const Args& args = *ctx.args;
  // A small, hot smoke keyspace: the Zipf head concentrates on one shard
  // and key sampling stays cheap, so the combined-vs-control ratio —
  // the acceptance signal — is dominated by tree work, not workload
  // generation.  Cells are longer than the figures' 150 ms for the same
  // reason: per-cell scheduler noise matters more here than in sweeps
  // that only feed the geomean gate.
  const long maxkey = pick(args, "--maxkey", 1000000, 4000, 100000);
  const long tt = ctx.fixed_threads();
  const int ms = static_cast<int>(pick(args, "--ms", 3000, 600, 120));
  // Smoke oversubscribes (16 threads, vs the figures' TT 2): combining's
  // win regime is runnable threads contending for a hot shard, which two
  // threads barely produce; the control pays the extra conflict churn
  // while the combiner serializes it.
  const auto thread_counts =
      args.full_scale()
          ? args.get_list("--threads", {1, 12, 24, 48, 96})
          : args.get_list("--threads", {args.smoke() ? 16L : tt});
  const auto batch_sizes =
      pick_list(args, "--batch", {8, 64}, {8, 64}, {8, 64});
  const double theta = args.get_double("--theta", 1.35);
  // Update share in percent; the rest of the mix is finds.  The >= 80%
  // cells are the ones the combining layer exists for.
  const std::vector<long> update_shares = {50, 80, 100};

  struct Pair {
    const char* control;
    const char* combined;
  };
  const Pair pairs[] = {
      {"BAT", "Combined-BAT"},
      {"Sharded16-BAT", "Sharded16-Combined-BAT"},
  };

  const int saved_max_batch = combine_max_batch();
  char theta_buf[16];
  std::snprintf(theta_buf, sizeof(theta_buf), "%g", theta);
  for (long threads : thread_counts) {
    const std::string table =
        "combine_sweep: TT " + std::to_string(threads) + ", MK " +
        std::to_string(maxkey) + ", Zipfian " + theta_buf +
        ", (x/2)-(x/2)-(100-x)-0 — throughput (ops/s)";
    auto config_for = [&](long share) {
      RunConfig cfg;
      cfg.workload.insert_pct = static_cast<double>(share) / 2;
      cfg.workload.delete_pct = static_cast<double>(share) / 2;
      cfg.workload.find_pct = static_cast<double>(100 - share);
      cfg.workload.max_key = maxkey;
      cfg.workload.dist = KeyDist::kZipf;
      cfg.workload.zipf_theta = theta;
      cfg.threads = static_cast<int>(threads);
      cfg.duration_ms = ms;
      return cfg;
    };
    for (const Pair& p : pairs) {
      for (long share : update_shares) {
        ctx.record(table, "update_pct", std::to_string(share), p.control,
                   p.control, config_for(share));
      }
      for (long b : batch_sizes) {
        const std::string series =
            std::string(p.combined) + "/b" + std::to_string(b);
        for (long share : update_shares) {
          // Best-of-N by hand so the occupancy counters match the kept
          // repetition (record() would mix counters across repeats), with
          // prefill run separately so the gated occupancy metrics cover
          // only the measured phase (prefill's pure-insert combining
          // activity would otherwise dilute them).
          const RunConfig cfg = config_for(share);
          const int repeats = repeats_for(args);
          RunResult best;
          Counters::Snapshot best_counters;
          for (int rep = 0; rep < repeats; ++rep) {
            auto set = make_structure(p.combined);
            // The unified front door (api::SetOptions): the key-range
            // hint plus this cell's combining batch cap in one call.
            api::SetOptions opts;
            opts.key_range_hint = cfg.workload.max_key;
            opts.combine_max_batch = static_cast<int>(b);
            set->configure(opts);
            prefill(*set, cfg.workload, cfg.threads, cfg.seed ^ 0xabcd);
            Counters::reset();
            RunConfig timed = cfg;
            timed.prefill = false;  // already done above
            RunResult r = run_on(*set, timed);
            const auto c = Counters::snapshot();
            if (rep == 0 || r.throughput() > best.throughput()) {
              best = std::move(r);
              best_counters = c;
            }
          }
          const double batches = static_cast<double>(
              best_counters[Counter::kCombineBatches]);
          const double batched_ops = static_cast<double>(
              best_counters[Counter::kCombineBatchedOps]);
          const double solo =
              static_cast<double>(best_counters[Counter::kCombineSolo]);
          const double timeouts =
              static_cast<double>(best_counters[Counter::kCombineTimeouts]);
          const double occupancy =
              batches > 0 ? batched_ops / batches : 0.0;
          const double solo_pct =
              (batched_ops + solo) > 0
                  ? 100.0 * solo / (batched_ops + solo)
                  : 0.0;
          const std::string x = std::to_string(share);
          RunRecord& rec =
              add_run(*ctx.out, table, "update_pct", x, series,
                      std::move(best));
          const double retract_backoffs = static_cast<double>(
              best_counters[Counter::kCombineRetractBackoffs]);
          rec.metrics = {{"batch_occupancy", occupancy},
                         {"combine_solo_pct", solo_pct},
                         {"combine_batches", batches},
                         {"combine_timeouts", timeouts},
                         {"combine_retract_backoffs", retract_backoffs}};
          ctx.out->add_cell(table, "update_pct", x, series,
                            fmt_throughput(rec.result.throughput()));
          std::fprintf(stderr,
                       "  [%s update_pct=%s] %.3f Mop/s, occupancy %.2f, "
                       "solo %.1f%%\n",
                       series.c_str(), x.c_str(), rec.result.mops(),
                       occupancy, solo_pct);
        }
      }
      set_combine_max_batch(saved_max_batch);
    }
  }
  Counters::reset();
}

// snapshot_consistency: acquisition cost of the linearizable cross-shard
// snapshot (epoch fetch_add + per-shard root-history resolution) against
// the default quiescent read-the-roots path.  Each pair runs the same
// composite-query mixes — rank queries, which are pure snapshot
// acquisition plus one descent, so any per-acquisition overhead shows
// directly — on the quiescent structure and its "-Lin" twin; both share
// the same write path (epoch stamping is on in both), so the series
// ratio isolates what linearizability costs at acquisition time.  The
// per-pair geomean ratio is emitted as a metric-only run
// (`lin_over_quiescent_geomean`); the acceptance bar is >= 0.85 on the
// smoke grid (ROADMAP records the measured value).
void run_snapshot_consistency(ScenarioContext& ctx) {
  const Args& args = *ctx.args;
  const long maxkey = pick(args, "--maxkey", 1000000, 20000, 100000);
  const long tt = ctx.fixed_threads();
  const int ms = ctx.cell_ms();
  // Query share in percent; the rest splits evenly into inserts/deletes
  // so epochs keep advancing while snapshots are taken.
  const std::vector<long> query_shares =
      args.get_list("--query-pct", {10, 50, 90});

  struct Pair {
    const char* quiescent;
    const char* lin;
  };
  const Pair pairs[] = {
      {"Sharded16-BAT", "Sharded16-BAT-Lin"},
      {"Sharded16-Combined-BAT", "Sharded16-Combined-BAT-Lin"},
  };

  const std::string table = "snapshot_consistency: TT " + std::to_string(tt) +
                            ", MK " + std::to_string(maxkey) +
                            ", (100-x)/2-(100-x)/2-0-x rank — throughput "
                            "(ops/s)";
  auto config_for = [&](long share) {
    RunConfig cfg;
    cfg.workload.insert_pct = static_cast<double>(100 - share) / 2;
    cfg.workload.delete_pct = static_cast<double>(100 - share) / 2;
    cfg.workload.query_pct = static_cast<double>(share);
    cfg.workload.query_kind = QueryKind::kRank;
    cfg.workload.max_key = maxkey;
    cfg.threads = static_cast<int>(tt);
    cfg.duration_ms = ms;
    return cfg;
  };
  for (const Pair& p : pairs) {
    double log_ratio_sum = 0;
    int cells = 0;
    for (long share : query_shares) {
      const std::string x = std::to_string(share);
      ctx.record(table, "query_pct", x, p.quiescent, p.quiescent,
                 config_for(share));
      const double quiescent_tput =
          ctx.out->runs.back().result.throughput();
      ctx.record(table, "query_pct", x, p.lin, p.lin, config_for(share));
      const double lin_tput = ctx.out->runs.back().result.throughput();
      if (quiescent_tput > 0 && lin_tput > 0) {
        log_ratio_sum += std::log(lin_tput / quiescent_tput);
        ++cells;
      }
    }
    // Metric-only summary row: the linearizable series' geomean
    // throughput relative to its quiescent twin.
    const double geo = cells > 0 ? std::exp(log_ratio_sum / cells) : 0.0;
    RunRecord rec;
    rec.table = table;
    rec.x_label = "pair";
    rec.x = p.lin;
    rec.series = std::string(p.lin) + "/vs-quiescent";
    rec.metrics = {{"lin_over_quiescent_geomean", geo}};
    ctx.out->runs.push_back(std::move(rec));
    std::fprintf(stderr, "  [%s] lin/quiescent geomean %.3f\n", p.lin, geo);
  }
}

// read_burst: the read-side scaling layer (snapshot leasing + epoch-
// stamped aggregate caches) on query-dominated mixes — the regime the
// paper's §6 composite queries target but PR 4's update combining leaves
// untouched.  Two mixes (95/5 rank, 99/1 range_count), and for each
// snapshot policy three series: "direct" (Sharded16-BAT(-Lin), every
// query acquires its own snapshot), "leased" (the "-RC" forest with the
// aggregate caches forced off, so the delta over direct is pure cut
// sharing), and "cached" (the "-RC" forest as shipped).  Each leased/
// cached cell records `lease_shared_pct` (share of leased reads that rode
// someone else's cut) and `agg_cache_hit_rate` (stamp-validated aggregate
// lookups served without recomputation); compare_bench.py gates the
// cached series' hit rate the same way it gates combine_sweep occupancy.
// NOTE: cut sharing needs truly concurrent readers; a single-hardware-
// thread host still runs the grid (protocol coverage) but shows parity.
void run_read_burst(ScenarioContext& ctx) {
  const Args& args = *ctx.args;
  const long maxkey = pick(args, "--maxkey", 1000000, 4000, 100000);
  const int ms = static_cast<int>(pick(args, "--ms", 3000, 600, 120));
  // Oversubscribed in smoke for the same reason as combine_sweep: the
  // win regime is concurrent readers contending for snapshots.
  const auto thread_counts =
      args.full_scale()
          ? args.get_list("--threads", {1, 12, 24, 48, 96})
          : args.get_list("--threads",
                          {args.smoke() ? 16L : ctx.fixed_threads()});

  struct Mix {
    long query_pct;
    QueryKind kind;
    const char* label;
  };
  // The 99/1 mix queries range_aggregate over the hot-range working set
  // (OpStream::kHotRanges fixed windows) rather than uniform range_count:
  // range_count composes from two rank descents and never consults the
  // hot-range cache, while the aggregate path's boundary descents are
  // exactly what the cache memoizes — on the quiescent leased cut and on
  // linearizable per-read snapshots alike.
  const Mix mixes[] = {
      {95, QueryKind::kRank, "95/5 rank"},
      {99, QueryKind::kRangeAgg, "99/1 range-agg"},
  };
  struct Series {
    const char* structure;
    const char* mode;  // RunRecord::read_path
    bool lease;
    bool cache;
  };
  const Series series[] = {
      {"Sharded16-BAT", "direct", false, false},
      {"Sharded16-BAT-Lin", "direct", false, false},
      {"Sharded16-Combined-BAT-RC", "leased", true, false},
      {"Sharded16-Combined-BAT-RC-Lin", "leased", true, false},
      {"Sharded16-Combined-BAT-RC", "cached", true, true},
      {"Sharded16-Combined-BAT-RC-Lin", "cached", true, true},
  };

  const bool saved_lease = lease_reads_enabled();
  const bool saved_cache = aggregate_cache_enabled();
  for (const Mix& mix : mixes) {
    const std::string table =
        "read_burst: MK " + std::to_string(maxkey) + ", " + mix.label +
        " — throughput (ops/s)";
    auto config_for = [&](long threads) {
      RunConfig cfg;
      cfg.workload.insert_pct =
          static_cast<double>(100 - mix.query_pct) / 2;
      cfg.workload.delete_pct =
          static_cast<double>(100 - mix.query_pct) / 2;
      cfg.workload.query_pct = static_cast<double>(mix.query_pct);
      cfg.workload.query_kind = mix.kind;
      cfg.workload.max_key = maxkey;
      cfg.threads = static_cast<int>(threads);
      cfg.duration_ms = ms;
      return cfg;
    };
    for (long threads : thread_counts) {
      const std::string x = std::to_string(threads);
      const RunConfig cfg = config_for(threads);
      // Five rounds minimum in smoke: this scenario is the acceptance
      // gate for the read-side work and the CI host's run-to-run noise
      // (±10-15% between identical rounds) dwarfs the effects under test
      // at two or three.
      const int repeats =
          args.smoke() ? std::max(repeats_for(args), 5) : repeats_for(args);
      // Repetition rounds interleave the series — every series of a round
      // runs back to back, and best-of keeps each series' cleanest round —
      // so slow-host noise (scheduler, thermal, a neighbor's burst) lands
      // on a whole round instead of biasing whichever series ran during
      // it.  Best-of-N is by hand so the read-side counters match the
      // kept repetition; prefill stays outside the counted window (its
      // combining activity is update-side noise here).
      struct Cell {
        bool has = false;
        RunResult best;
        Counters::Snapshot counters;
      };
      Cell cells[std::size(series)];
      for (int rep = 0; rep < repeats; ++rep) {
        for (std::size_t si = 0; si < std::size(series); ++si) {
          const Series& s = series[si];
          auto set = make_structure(s.structure);
          api::SetOptions opts;
          opts.key_range_hint = cfg.workload.max_key;
          opts.lease_reads = s.lease;
          opts.aggregate_cache = s.cache;
          set->configure(opts);
          prefill(*set, cfg.workload, cfg.threads, cfg.seed ^ 0xabcd);
          Counters::reset();
          RunConfig timed = cfg;
          timed.prefill = false;  // already done above
          RunResult r = run_on(*set, timed);
          const auto c = Counters::snapshot();
          Cell& cell = cells[si];
          if (!cell.has || r.throughput() > cell.best.throughput()) {
            cell.has = true;
            cell.best = std::move(r);
            cell.counters = c;
          }
        }
      }
      for (std::size_t si = 0; si < std::size(series); ++si) {
        const Series& s = series[si];
        const bool rc = s.lease || s.cache;
        const std::string label =
            rc ? std::string(s.structure) + "/" + s.mode : s.structure;
        RunRecord& rec = add_run(*ctx.out, table, "threads", x, label,
                                 std::move(cells[si].best));
        rec.read_path = s.mode;
        ctx.out->add_cell(table, "threads", x, label,
                          fmt_throughput(rec.result.throughput()));
        if (!rc) {
          std::fprintf(stderr, "  [%s threads=%s] %.3f Mop/s\n",
                       label.c_str(), x.c_str(), rec.result.mops());
          continue;
        }
        const Counters::Snapshot& bc = cells[si].counters;
        const double hits = static_cast<double>(bc[Counter::kAggCacheHits]);
        const double misses =
            static_cast<double>(bc[Counter::kAggCacheMisses]);
        const double cuts = static_cast<double>(bc[Counter::kLeaseCuts]);
        const double batched =
            static_cast<double>(bc[Counter::kLeaseBatchedReads]);
        const double solo =
            static_cast<double>(bc[Counter::kLeaseSoloReads]);
        const double hit_rate =
            (hits + misses) > 0 ? hits / (hits + misses) : 0.0;
        // Reads that shared a cut someone else acquired or renewed: each
        // cut's acquirer answered itself too, so `cuts` of the batched
        // reads were not shared.
        const double shared_pct =
            (batched + solo) > 0
                ? 100.0 * std::max(0.0, batched - cuts) / (batched + solo)
                : 0.0;
        rec.metrics = {{"lease_shared_pct", shared_pct},
                       {"lease_cuts", cuts}};
        // Emitted only when the cell's read path consulted a cache level
        // at all: the linearizable rank cells never do (their cheapest
        // refill is the plain per-shard aug load — see
        // Snapshot::prefix()), and reporting a synthetic 0.0 for them
        // would trip the hit-rate gate on a path that has no cache to
        // hit.
        if (s.cache && hits + misses > 0) {
          rec.metrics.emplace_back("agg_cache_hit_rate", hit_rate);
        }
        std::fprintf(stderr,
                     "  [%s threads=%s] %.3f Mop/s, shared %.1f%%, "
                     "hit rate %.3f\n",
                     label.c_str(), x.c_str(), rec.result.mops(),
                     shared_pct, hit_rate);
      }
    }
  }
  set_lease_reads(saved_lease);
  set_aggregate_cache(saved_cache);
  Counters::reset();
}

// rebalance: the adaptive shard layer (ShardMap indirection + epoch-cut
// key migration, src/shard/) against the static forest on a pure-update
// Zipfian mix.  Contiguous static sharding sends the Zipf head to shard 0,
// which at theta >= 1.2 absorbs nearly all updates; the adaptive forest
// detects the hot shard from its update-rate counters and migrates key
// ranges to the cool neighbors until no further median split helps.  Each
// adaptive cell records `migrations` / `migrated_keys` / `double_routes` /
// `shard_imbalance` (hot-shard rate over the mean, averaged over policy
// checks) into the schema-1 JSON; scripts/compare_bench.py requires the
// migration metrics on every adaptive run (missing = schema error) and
// gates on the adaptive series not collapsing to the static one at
// theta >= 1.2.  Smoke oversubscribes like combine_sweep: the hot-shard
// penalty is runnable threads convoying on one shard's combiner.
void run_rebalance(ScenarioContext& ctx) {
  const Args& args = *ctx.args;
  // 256K keys: wide enough that 1/16 of the keyspace is a meaningful Zipf
  // tail cut, small enough that a migration's bulk move finishes well
  // inside a smoke cell.  Cells shorter than ~1s hide the adaptive win
  // under the migration transient, so smoke runs a full second.
  const long maxkey = pick(args, "--maxkey", 1048576, 262144, 262144);
  const int ms = static_cast<int>(pick(args, "--ms", 3000, 1200, 400));
  const auto thread_counts =
      args.full_scale()
          ? args.get_list("--threads", {12, 24, 48, 96})
          : args.get_list("--threads", {args.smoke() ? 16L : 8L});
  const std::vector<double> thetas =
      args.full_scale()
          ? std::vector<double>{1.05, 1.2, 1.35, 1.5, 1.65}
          : (args.smoke() ? std::vector<double>{1.2, 1.4, 1.6}
                          : std::vector<double>{1.2, 1.4});

  struct Series {
    const char* structure;
    bool adaptive;
  };
  const Series series[] = {
      {"Sharded16-Combined-BAT", false},
      {"Sharded16-Combined-BAT-Adapt", true},
  };

  for (long threads : thread_counts) {
    const std::string table =
        "rebalance: TT " + std::to_string(threads) + ", MK " +
        std::to_string(maxkey) + ", 50-50-0-0 Zipfian — throughput (ops/s)";
    for (double theta : thetas) {
      char xbuf[16];
      std::snprintf(xbuf, sizeof(xbuf), "%g", theta);
      RunConfig cfg;
      cfg.workload.insert_pct = 50;
      cfg.workload.delete_pct = 50;
      cfg.workload.max_key = maxkey;
      cfg.workload.dist = KeyDist::kZipf;
      cfg.workload.zipf_theta = theta;
      cfg.threads = static_cast<int>(threads);
      cfg.duration_ms = ms;
      for (const Series& s : series) {
        // Best-of-N by hand so the migration counters match the kept
        // repetition; prefill runs outside the counted window (it is
        // uniform, so it neither triggers nor deserves migrations).  At
        // least 3 repetitions even in smoke: a single oversubscribed rep
        // is too noisy for the adaptive-vs-static CI gate.
        const int repeats = std::max(repeats_for(args), 3);
        RunResult best;
        Counters::Snapshot best_counters;
        for (int rep = 0; rep < repeats; ++rep) {
          auto set = make_structure(s.structure);
          api::SetOptions opts;
          opts.key_range_hint = cfg.workload.max_key;
          if (s.adaptive) {
            // A short check period so the rebalancer converges within a
            // smoke cell; the policy thresholds stay at their defaults.
            opts.adaptive_rebalance = true;
            opts.rebalance_check_period = 512;
          }
          set->configure(opts);
          prefill(*set, cfg.workload, cfg.threads, cfg.seed ^ 0xabcd);
          Counters::reset();
          RunConfig timed = cfg;
          timed.prefill = false;  // already done above
          RunResult r = run_on(*set, timed);
          const auto c = Counters::snapshot();
          if (rep == 0 || r.throughput() > best.throughput()) {
            best = std::move(r);
            best_counters = c;
          }
        }
        RunRecord& rec = add_run(*ctx.out, table, "theta", xbuf,
                                 s.structure, std::move(best));
        ctx.out->add_cell(table, "theta", xbuf, s.structure,
                          fmt_throughput(rec.result.throughput()));
        if (!s.adaptive) {
          std::fprintf(stderr, "  [%s theta=%s] %.3f Mop/s\n", s.structure,
                       xbuf, rec.result.mops());
          continue;
        }
        const double migrations = static_cast<double>(
            best_counters[Counter::kShardMigrations]);
        const double moved = static_cast<double>(
            best_counters[Counter::kShardMigratedKeys]);
        const double routes = static_cast<double>(
            best_counters[Counter::kShardDoubleRoutes]);
        const double imb_sum = static_cast<double>(
            best_counters[Counter::kShardImbalanceSumMilli]);
        const double imb_n = static_cast<double>(
            best_counters[Counter::kShardImbalanceSamples]);
        const double imbalance = imb_n > 0 ? imb_sum / 1000.0 / imb_n : 0.0;
        const double aborts = static_cast<double>(
            best_counters[Counter::kShardMigrationAborts]);
        rec.metrics = {{"migrations", migrations},
                       {"migrated_keys", moved},
                       {"double_routes", routes},
                       {"shard_imbalance", imbalance},
                       {"migration_aborts", aborts}};
        std::fprintf(stderr,
                     "  [%s theta=%s] %.3f Mop/s, %g migrations, "
                     "%g keys moved, imbalance %.1fx\n",
                     s.structure, xbuf, rec.result.mops(), migrations,
                     moved, imbalance);
      }
    }
  }
  Counters::reset();
}

// ---------------------------------------------------------------------------
// Micro-kernel scenarios: the former google-benchmark binaries, re-hosted
// on a plain calibrated timing loop so they need no external library and
// share the JSON schema.
// ---------------------------------------------------------------------------

template <class T>
inline void do_not_optimize(const T& v) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "g"(&v) : "memory");
#else
  // volatile: deliberate optimizer barrier (fallback sink for compilers
  // without the asm escape above); never read, never raced.
  static volatile const void* sink;
  sink = &v;
#endif
}

// Runs `fn` in batches until ~target_ms of wall clock has elapsed and
// records one RunRecord + "ns/op" display cell for the kernel.
template <class Fn>
void record_micro(ScenarioContext& ctx, const std::string& table,
                  const std::string& kernel, int target_ms, Fn&& fn) {
  for (int i = 0; i < 64; ++i) fn();  // warmup
  const auto limit = std::chrono::milliseconds(target_ms);
  std::int64_t iters = 0;
  const auto t0 = Clock::now();
  do {
    for (int i = 0; i < 256; ++i) fn();
    iters += 256;
  } while (Clock::now() - t0 < limit);
  const double secs =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const double ns_per_op = secs * 1e9 / static_cast<double>(iters);

  RunRecord rec;
  rec.table = table;
  rec.x_label = "kernel";
  rec.x = kernel;
  rec.series = kernel;
  rec.has_result = true;
  rec.result.structure = kernel;
  rec.result.seconds = secs;
  rec.result.total_ops = iters;
  rec.result.config.threads = 1;
  rec.result.config.duration_ms = target_ms;
  rec.result.config.prefill = false;
  rec.metrics = {{"ns_per_op", ns_per_op}};
  ctx.out->runs.push_back(std::move(rec));
  ctx.out->add_cell(table, "kernel", kernel, "ns/op",
                    fmt_latency_ns(ns_per_op));
  std::fprintf(stderr, "  [%s] %.1f ns/op\n", kernel.c_str(), ns_per_op);
}

// Micro-benchmarks for the building blocks whose costs drive the
// end-to-end numbers: the EBR guard, the Zipf sampler, the flat pointer
// set, Propagate-carrying updates, and the order-statistic queries.
void run_micro_components(ScenarioContext& ctx) {
  const Args& args = *ctx.args;
  const int ms = static_cast<int>(pick(args, "--ms", 500, 60, 100));
  const long n = args.smoke() ? 10000 : 50000;
  const long range = args.smoke() ? 20000 : 100000;
  const std::string table = "Micro: component kernels — ns/op";

  {
    record_micro(ctx, table, "EbrGuard", ms, [] {
      EbrGuard g;
      do_not_optimize(g);
    });
  }
  {
    Xoshiro256 rng(3);
    ZipfGenerator zipf(args.smoke() ? 100000 : 10000000, 0.99);
    record_micro(ctx, table, "ZipfNext", ms,
                 [&] { do_not_optimize(zipf.next(rng)); });
  }
  {
    FlatPtrSet set;
    std::vector<int> storage(64);
    record_micro(ctx, table, "FlatSetInsertClear", ms, [&] {
      for (auto& x : storage) set.insert(&x);
      set.clear();
    });
  }
  auto prefill_tree = [&](auto& t) {
    Xoshiro256 rng(7);
    for (long i = 0; i < n; ++i) {
      t.insert(static_cast<Key>(rng.below(static_cast<std::uint64_t>(range))));
    }
  };
  {
    Bat<SizeAug> t;
    prefill_tree(t);
    Xoshiro256 rng(9);
    record_micro(ctx, table, "BatUpdateWithPropagate", ms, [&] {
      const Key k =
          static_cast<Key>(rng.below(static_cast<std::uint64_t>(range)));
      t.insert(k);
      t.erase(k);
    });
  }
  {
    FrBst<SizeAug> t;
    prefill_tree(t);
    Xoshiro256 rng(9);
    record_micro(ctx, table, "FrBstUpdateWithPropagate", ms, [&] {
      const Key k =
          static_cast<Key>(rng.below(static_cast<std::uint64_t>(range)));
      t.insert(k);
      t.erase(k);
    });
  }
  {
    Bat<SizeAug> t;
    prefill_tree(t);
    Xoshiro256 rng(11);
    record_micro(ctx, table, "BatRank", ms, [&] {
      do_not_optimize(t.rank(
          static_cast<Key>(rng.below(static_cast<std::uint64_t>(range)))));
    });
  }
  {
    Bat<SizeAug> t;
    prefill_tree(t);
    for (long rq : {64L, 1024L, 16384L}) {
      if (rq >= range) continue;
      Xoshiro256 rng(13);
      record_micro(ctx, table, "BatRangeCount/" + std::to_string(rq), ms,
                   [&, rq] {
                     const Key lo = static_cast<Key>(
                         rng.below(static_cast<std::uint64_t>(range - rq)));
                     do_not_optimize(
                         t.range_count(lo, lo + static_cast<Key>(rq) - 1));
                   });
    }
  }
  {
    Bat<SizeAug> t;
    prefill_tree(t);
    const auto sz = std::max<std::int64_t>(t.size(), 1);
    Xoshiro256 rng(15);
    record_micro(ctx, table, "BatSelect", ms, [&] {
      do_not_optimize(t.select(
          1 + static_cast<std::int64_t>(
                  rng.below(static_cast<std::uint64_t>(sz)))));
    });
  }
}

// Micro-benchmarks for the LLX/SCX substrate: an uncontended LLX, a full
// LLX+SCX child swing, and chromatic-tree point operations on top.
void run_micro_llxscx(ScenarioContext& ctx) {
  const Args& args = *ctx.args;
  const int ms = static_cast<int>(pick(args, "--ms", 500, 60, 100));
  const long n = args.smoke() ? 2000 : 10000;
  const long range = 2 * n;
  const std::string table = "Micro: LLX/SCX substrate — ns/op";

  {
    EbrGuard g;
    Node* a = new Node(1, 1, nullptr, nullptr);
    Node* b = new Node(5, 1, nullptr, nullptr);
    Node* p = new Node(5, 1, a, b);
    record_micro(ctx, table, "LlxUncontended", ms, [&] {
      LlxSnap s;
      do_not_optimize(llx(p, &s));
    });
    release_node_info(p);
    release_node_info(a);
    release_node_info(b);
    delete p;
    delete a;
    delete b;
  }
  {
    // Inner scope: Ebr::drain() requires quiescence, so the guard must
    // end before it runs or the epoch never advances past the retired
    // nodes from the measurement loop.
    {
      EbrGuard g;
      Node* cell = new Node(0, 1, nullptr, nullptr);
      Node* right = new Node(100, 1, nullptr, nullptr);
      Node* p = new Node(100, 1, cell, right);
      record_micro(ctx, table, "ScxChildSwing", ms, [&] {
        LlxSnap ps, cs;
        if (llx(p, &ps) != LlxStatus::kOk) return;
        Node* cur = ps.left();
        if (llx(cur, &cs) != LlxStatus::kOk) return;
        Node* next = new Node(cur->key + 1, 1, nullptr, nullptr);
        LlxSnap v[2] = {ps, cs};
        if (scx(v, 2, 1, &p->child[0], next)) {
          Ebr::retire(cur, [](void* q) {
            Node* nn = static_cast<Node*>(q);
            release_node_info(nn);
            delete nn;
          });
        } else {
          release_node_info(next);
          delete next;
        }
      });
      release_node_info(p);
      release_node_info(right);
      Node* last = p->child[0].load();
      release_node_info(last);
      delete last;
      delete p;
      delete right;
    }
    Ebr::drain();
  }
  {
    ChromaticSet set;
    Xoshiro256 rng(1);
    for (long i = 0; i < n; ++i) {
      set.insert(
          static_cast<Key>(rng.below(static_cast<std::uint64_t>(range))));
    }
    record_micro(ctx, table, "ChromaticInsertErase", ms, [&] {
      const Key k =
          static_cast<Key>(rng.below(static_cast<std::uint64_t>(range)));
      set.insert(k);
      set.erase(k);
    });
  }
  {
    ChromaticSet set;
    Xoshiro256 rng(2);
    for (long i = 0; i < n; ++i) {
      set.insert(
          static_cast<Key>(rng.below(static_cast<std::uint64_t>(range))));
    }
    record_micro(ctx, table, "ChromaticContains", ms, [&] {
      do_not_optimize(set.contains(
          static_cast<Key>(rng.below(static_cast<std::uint64_t>(range)))));
    });
  }
}

void register_builtin_scenarios(ScenarioRegistry& reg) {
  reg.add({"fig5a",
           "Figure 5a: update-only throughput vs threads, uniform keys",
           run_fig5a});
  reg.add({"fig5b",
           "Figure 5b: insert-only throughput vs threads, sorted keys, no "
           "prefill",
           run_fig5b});
  reg.add({"fig5c",
           "Figure 5c: rank/select/range query scalability on BAT-EagerDel",
           run_fig5c});
  reg.add({"fig6",
           "Figure 6: throughput vs range-query size (small & large tree)",
           run_fig6});
  reg.add({"fig7",
           "Figure 7: throughput vs rank-query percentage (small & large "
           "tree)",
           run_fig7});
  reg.add({"fig8",
           "Figure 8: throughput vs threads with large range queries "
           "(low/high update)",
           run_fig8});
  reg.add({"fig9",
           "Figure 9: p50/p99 update and range-query latency vs range size",
           run_fig9});
  reg.add({"fig10",
           "Figure 10: throughput vs structure size under Zipfian skew",
           run_fig10});
  reg.add({"table3",
           "Table 3: per-Propagate statistics (nodes, nil fills, CASes, "
           "delegations)",
           run_table3});
  reg.add({"shard_sweep",
           "Shard layer: throughput vs shard count, uniform and Zipfian "
           "keys",
           run_shard_sweep});
  reg.add({"shard_hotspot",
           "Shard layer: Zipf theta sweep showing where a hot shard erases "
           "the win",
           run_shard_hotspot});
  reg.add({"combine_sweep",
           "Combining layer: batch-size x threads x update-share grid with "
           "per-batch occupancy stats",
           run_combine_sweep});
  reg.add({"snapshot_consistency",
           "Shard layer: linearizable (epoch-cut) vs quiescent snapshot "
           "acquisition cost",
           run_snapshot_consistency});
  reg.add({"read_burst",
           "Read-side scaling: leased epoch cuts + epoch-stamped aggregate "
           "caches vs direct snapshots",
           run_read_burst});
  reg.add({"rebalance",
           "Adaptive shard layer: online hot-shard rebalancing vs the "
           "static forest under Zipf skew",
           run_rebalance});
  reg.add({"micro_components",
           "Micro: component kernels (EBR guard, Zipf, flat set, propagate, "
           "queries)",
           run_micro_components});
  reg.add({"micro_llxscx",
           "Micro: LLX/SCX substrate and chromatic point operations",
           run_micro_llxscx});
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry* reg = [] {
    auto* r = new ScenarioRegistry();
    register_builtin_scenarios(*r);
    return r;
  }();
  return *reg;
}

void ScenarioRegistry::add(Scenario s) { scenarios_.push_back(std::move(s)); }

const Scenario* ScenarioRegistry::find(const std::string& name) const {
  for (const auto& s : scenarios_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const auto& s : scenarios_) out.push_back(s.name);
  return out;
}

// ---------------------------------------------------------------------------
// Rendering and JSON emission
// ---------------------------------------------------------------------------

void render_tables(const ScenarioOutput& out, bool csv) {
  std::vector<std::string> order;
  for (const auto& c : out.cells) {
    if (std::find(order.begin(), order.end(), c.table) == order.end()) {
      order.push_back(c.table);
    }
  }
  for (const auto& name : order) {
    std::string x_label;
    std::vector<std::string> columns;
    for (const auto& c : out.cells) {
      if (c.table != name) continue;
      if (x_label.empty()) x_label = c.x_label;
      if (std::find(columns.begin(), columns.end(), c.x) == columns.end()) {
        columns.push_back(c.x);
      }
    }
    Table t(name, x_label);
    t.set_columns(columns);
    for (const auto& c : out.cells) {
      if (c.table == name) t.add_cell(c.series, c.text);
    }
    if (csv) {
      t.print_csv();
    } else {
      t.print();
    }
  }
}

namespace {

void append_latency_json(JsonWriter& w, const LatencyStats& s) {
  w.begin_object();
  w.kv("count", s.count);
  w.kv("mean", s.mean_ns);
  w.kv("p50", s.p50_ns);
  w.kv("p90", s.p90_ns);
  w.kv("p99", s.p99_ns);
  w.kv("max", s.max_ns);
  w.end_object();
}

void append_run_json(JsonWriter& w, const RunRecord& rec) {
  w.begin_object();
  w.kv("table", rec.table);
  w.kv("x_label", rec.x_label);
  w.kv("x", rec.x);
  w.kv("series", rec.series);
  w.kv("read_path", rec.read_path);
  if (rec.has_result) {
    const RunResult& r = rec.result;
    const Workload& wl = r.config.workload;
    w.kv("structure", r.structure);
    // Micro kernels have no structure-level guarantee to report.
    if (!r.consistency.empty()) w.kv("consistency", r.consistency);
    // Static capabilities, straight from the registry's type-derived
    // StructureInfo — consumers (scripts/compare_bench.py) read these
    // instead of parsing structure names.  Absent for micro kernels and
    // any other non-registry series.
    if (const auto info = api::StructureRegistry::instance().info(
            r.structure)) {
      w.key("capabilities");
      w.begin_object();
      w.kv("ranked", info->ranked);
      w.kv("consistency", api::consistency_name(info->consistency));
      w.kv("combining", info->combining);
      w.kv("read_combining", info->read_combining);
      w.kv("adaptive", info->adaptive);
      w.kv("shards", static_cast<std::int64_t>(info->shards));
      w.end_object();
    }
    w.key("config");
    w.begin_object();
    w.kv("mix", wl.mix_string());
    w.kv("insert_pct", wl.insert_pct);
    w.kv("delete_pct", wl.delete_pct);
    w.kv("find_pct", wl.find_pct);
    w.kv("query_pct", wl.query_pct);
    w.kv("query_kind", query_kind_name(wl.query_kind));
    w.kv("dist", key_dist_name(wl.dist));
    w.kv("zipf_theta", wl.zipf_theta);
    w.kv("max_key", static_cast<std::int64_t>(wl.max_key));
    w.kv("rq_size", rec.result.config.workload.rq_size);
    w.kv("threads", r.config.threads);
    w.kv("duration_ms", r.config.duration_ms);
    w.kv("prefill", r.config.prefill);
    w.kv("seed", static_cast<std::uint64_t>(r.config.seed));
    w.end_object();
    w.kv("seconds", r.seconds);
    w.kv("total_ops", r.total_ops);
    w.kv("updates", r.updates);
    w.kv("finds", r.finds);
    w.kv("queries", r.queries);
    w.kv("throughput_ops_per_sec", r.seconds > 0 ? r.throughput() : 0.0);
    w.kv("mops", r.seconds > 0 ? r.mops() : 0.0);
    w.key("latency_ns");
    w.begin_object();
    w.key("update");
    append_latency_json(w, r.update_latency);
    w.key("find");
    append_latency_json(w, r.find_latency);
    w.key("query");
    append_latency_json(w, r.query_latency);
    w.end_object();
  }
  if (!rec.metrics.empty()) {
    w.key("metrics");
    w.begin_object();
    for (const auto& [k, v] : rec.metrics) w.kv(k, v);
    w.end_object();
  }
  w.end_object();
}

}  // namespace

std::string current_git_sha() {
  if (const char* env = std::getenv("CBAT_GIT_SHA")) {
    if (env[0] != '\0') return env;
  }
  std::string sha = "unknown";
#if defined(__unix__) || defined(__APPLE__)
  if (std::FILE* p = ::popen("git rev-parse --short=12 HEAD 2>/dev/null",
                             "r")) {
    char buf[64] = {0};
    if (std::fgets(buf, sizeof(buf), p) != nullptr) {
      std::string s(buf);
      while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) {
        s.pop_back();
      }
      if (!s.empty()) sha = s;
    }
    ::pclose(p);
  }
#endif
  return sha;
}

std::string bench_json_document(
    const std::vector<std::pair<std::string, ScenarioOutput>>& scenarios,
    const Args& args) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema_version", 1);
  w.kv("tool", "cbat_bench");
  w.kv("git_sha", current_git_sha());
  w.kv("mode", args.mode_name());
  w.kv("hardware_threads",
       static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  w.key("scenarios");
  w.begin_array();
  for (const auto& [name, out] : scenarios) {
    w.begin_object();
    w.kv("name", name);
    const Scenario* s = ScenarioRegistry::instance().find(name);
    w.kv("title", s != nullptr ? s->title : "");
    w.key("runs");
    w.begin_array();
    for (const auto& rec : out.runs) append_run_json(w, rec);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::string doc = w.take();
  doc += '\n';
  return doc;
}

// ---------------------------------------------------------------------------
// Shared main
// ---------------------------------------------------------------------------

namespace {

void print_usage(std::FILE* f) {
  std::fprintf(
      f,
      "cbat_bench — unified scenario suite for the paper's figures\n"
      "\n"
      "usage:\n"
      "  cbat_bench --list [--verbose]\n"
      "  cbat_bench --scenario NAME[,NAME...] [options]\n"
      "  cbat_bench --all [options]\n"
      "\n"
      "options:\n"
      "  --smoke          minimal parameters (CI smoke bench)\n"
      "  --full           paper-scale parameters (or CBAT_BENCH_FULL=1)\n"
      "  --json PATH      write structured results (BENCH_*.json schema)\n"
      "  --csv            CSV tables instead of aligned console tables\n"
      "  --ms N           per-cell measured duration override\n"
      "  --threads a,b,c  thread sweep override\n"
      "  --maxkey N       key-range override\n"
      "  --rq N           range-query size override\n"
      "  --tt N           fixed thread count override (figs 6/7/9/10)\n"
      "  --repeat N       best-of-N repetitions per cell (smoke default: "
      "2)\n"
      "  --batch a,b      combining batch-size sweep (combine_sweep)\n"
      "  --theta X        Zipf theta override (combine_sweep)\n"
      "  --query-pct a,b  query-share sweep (snapshot_consistency)\n");
}

}  // namespace

int scenario_main(int argc, char** argv, const char* forced_scenario) {
  Args args(argc, argv);
  ScenarioRegistry& reg = ScenarioRegistry::instance();

  if (forced_scenario == nullptr) {
    if (args.has("--help") || args.has("-h")) {
      print_usage(stdout);
      return 0;
    }
    if (args.has("--list")) {
      for (const auto& s : reg.all()) {
        std::printf("%-18s %s\n", s.name.c_str(), s.title.c_str());
      }
      if (args.has("--verbose")) {
        // The registered structures with their type-derived capabilities
        // (api::StructureInfo) — the same facts the JSON runs record.
        std::printf("\nstructures:\n");
        auto& sr = api::StructureRegistry::instance();
        for (const auto& name : sr.names()) {
          const auto info = sr.info(name);
          if (!info) continue;
          std::printf("  %-32s %s, %s, shards=%d%s%s%s\n", name.c_str(),
                      info->ranked ? "ranked" : "unranked",
                      api::consistency_name(info->consistency),
                      info->shards, info->combining ? ", combining" : "",
                      info->read_combining ? ", read-combining" : "",
                      info->adaptive ? ", adaptive" : "");
        }
      }
      return 0;
    }
  }

  std::vector<std::string> names;
  if (forced_scenario != nullptr) {
    names.push_back(forced_scenario);
  } else if (args.has("--all")) {
    names = reg.names();
  } else {
    names = args.get_str_list("--scenario");
  }
  if (names.empty()) {
    print_usage(stderr);
    return 2;
  }
  for (const auto& n : names) {
    if (reg.find(n) == nullptr) {
      std::fprintf(stderr, "error: unknown scenario '%s'; available:\n",
                   n.c_str());
      for (const auto& s : reg.all()) {
        std::fprintf(stderr, "  %s\n", s.name.c_str());
      }
      return 1;
    }
  }

  // Validate --json before running anything: `--json` as the last
  // argument (forgotten path) must not silently discard the results of a
  // potentially hours-long run.
  const std::string json_path = args.get_str("--json", "");
  if (args.has("--json") && json_path.empty()) {
    std::fprintf(stderr, "error: --json requires a file path\n");
    return 2;
  }

  std::vector<std::pair<std::string, ScenarioOutput>> results;
  for (const auto& n : names) {
    const Scenario* s = reg.find(n);
    std::fprintf(stderr, "== %s (%s mode): %s ==\n", s->name.c_str(),
                 args.mode_name(), s->title.c_str());
    ScenarioOutput out;
    ScenarioContext ctx{&args, &out};
    s->run(ctx);
    render_tables(out, args.csv());
    results.emplace_back(n, std::move(out));
  }

  if (!json_path.empty()) {
    if (!write_file(json_path, bench_json_document(results, args))) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace cbat::bench
