// Scenario registry: every paper figure/table (and the two micro-kernel
// suites) is a named, self-describing scenario.  `cbat_bench --list`
// enumerates them; `cbat_bench --scenario fig8 --smoke --json out.json`
// runs one and emits the shared BENCH_*.json schema.  The old per-figure
// binaries are thin wrappers that call scenario_main() with their name
// forced, so the paper-repro command lines keep working.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench/args.h"
#include "bench/driver.h"
#include "bench/json.h"

namespace cbat::bench {

// One measured cell: a (table, series, x) coordinate in some paper plot,
// plus the full RunResult and any scenario-specific scalar metrics
// (e.g. Table 3's per-Propagate counter ratios, the micros' ns/op).
struct RunRecord {
  std::string table;    // which plot/table of the figure ("Figure 8a ...")
  std::string x_label;  // "threads", "rq_size", "kernel", ...
  std::string x;        // x coordinate, as printed on the axis
  std::string series;   // structure / query kind / kernel name
  // How composite reads were answered in this run: "direct" (every query
  // acquires its own snapshot), "leased" (queries share combiner-acquired
  // epoch cuts, aggregate caches off), or "cached" (leased + epoch-stamped
  // aggregate caches).  Emitted into the schema-1 JSON so baseline diffs
  // can attribute read-side regressions to the right layer.
  std::string read_path = "direct";
  bool has_result = false;
  RunResult result;
  std::vector<std::pair<std::string, double>> metrics;
};

// What the console shows at a coordinate (usually derived from a
// RunRecord, but scenarios may add display-only cells, e.g. Figure 9
// renders one run into both a 9a and a 9b table).
struct DisplayCell {
  std::string table;
  std::string x_label;
  std::string x;
  std::string series;
  std::string text;
};

struct ScenarioOutput {
  std::vector<RunRecord> runs;
  std::vector<DisplayCell> cells;

  void add_cell(std::string table, std::string x_label, std::string x,
                std::string series, std::string text) {
    cells.push_back({std::move(table), std::move(x_label), std::move(x),
                     std::move(series), std::move(text)});
  }
};

struct ScenarioContext {
  const Args* args = nullptr;
  ScenarioOutput* out = nullptr;

  // Paper-scale / CI-scale / smoke-scale knobs shared by the scenarios.
  std::vector<long> thread_sweep() const;
  int cell_ms(int ci_default = 120) const;
  long fixed_threads() const;

  // Runs one benchmark cell, records it into out->runs, and adds a
  // throughput display cell.  Progress goes to stderr exactly like the
  // old binaries.  (Returns nothing on purpose: a reference into
  // out->runs would dangle on the next record() call.)
  void record(const std::string& table, const std::string& x_label,
              const std::string& x, const std::string& series,
              const std::string& structure, const RunConfig& cfg);
};

struct Scenario {
  std::string name;   // CLI name: "fig8", "table3", "micro_components", ...
  std::string title;  // one-line description shown by --list
  std::function<void(ScenarioContext&)> run;
};

class ScenarioRegistry {
 public:
  // Builtin scenarios are registered on first use, so the registry works
  // from static-library contexts without relying on global-initializer
  // order or link-time inclusion tricks.
  static ScenarioRegistry& instance();

  void add(Scenario s);
  const Scenario* find(const std::string& name) const;
  std::vector<std::string> names() const;
  const std::vector<Scenario>& all() const { return scenarios_; }

 private:
  std::vector<Scenario> scenarios_;
};

// Renders the display cells as the familiar per-plot console tables
// (or CSV with --csv), identical in shape to the old binaries' output.
void render_tables(const ScenarioOutput& out, bool csv);

// JSON document shared by --json and the BENCH_*.json trajectory files.
// See README "Benchmarks" for the schema.
std::string bench_json_document(
    const std::vector<std::pair<std::string, ScenarioOutput>>& scenarios,
    const Args& args);

// Short git SHA of the working tree, or "unknown" outside a checkout /
// without git.  Overridable via CBAT_GIT_SHA (used by CI).
std::string current_git_sha();

// Shared main(): `forced_scenario == nullptr` gives the full cbat_bench
// CLI (--list/--scenario/--all); a non-null name runs exactly that
// scenario (the per-figure wrapper binaries).
int scenario_main(int argc, char** argv,
                  const char* forced_scenario = nullptr);

}  // namespace cbat::bench
