// Log-linear latency histogram (HdrHistogram-style bucketing) giving true
// percentiles per operation class instead of the sampled averages the
// driver used to report.  Values are nanoseconds.  Buckets below
// 2^kSubBucketBits are exact; above that, each power-of-two octave is
// split into kSubBuckets sub-buckets, bounding relative error by
// 1/kSubBuckets (~3% with 32 sub-buckets) across the full uint64 range.
//
// record() is O(1) with no allocation, so the driver can record every
// sampled operation from every worker thread and merge() the per-thread
// histograms after the run.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>

namespace cbat::bench {

class LatencyHistogram {
 public:
  static constexpr int kSubBucketBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kBucketCount = (64 - kSubBucketBits + 1) * kSubBuckets;

  static int bucket_index(std::uint64_t ns) {
    if (ns < static_cast<std::uint64_t>(kSubBuckets)) {
      return static_cast<int>(ns);
    }
    const int high = 63 - std::countl_zero(ns);
    const int shift = high - kSubBucketBits;
    const int sub = static_cast<int>((ns >> shift) & (kSubBuckets - 1));
    return (shift + 1) * kSubBuckets + sub;
  }

  // Midpoint of the bucket's value range: the value reported for any
  // percentile that lands in the bucket.
  static double bucket_value(int index) {
    if (index < kSubBuckets) return static_cast<double>(index);
    const int shift = index / kSubBuckets - 1;
    const int sub = index % kSubBuckets;
    const std::uint64_t lo = static_cast<std::uint64_t>(kSubBuckets + sub)
                             << shift;
    const std::uint64_t width = 1ULL << shift;
    return static_cast<double>(lo) + static_cast<double>(width - 1) / 2.0;
  }

  void record(std::uint64_t ns) {
    ++buckets_[bucket_index(ns)];
    ++count_;
    sum_ += static_cast<double>(ns);
    if (ns > max_) max_ = ns;
  }

  void merge(const LatencyHistogram& other) {
    for (int i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_) max_ = other.max_;
  }

  std::int64_t count() const { return count_; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  std::uint64_t max() const { return max_; }

  // The 1-based sample index a percentile query targets:
  // clamp(ceil(p/100 * count), 1, count), computed in exact integer
  // arithmetic.  p is decomposed into a rational with denominator 10^7
  // (covering every percentile anyone writes, e.g. 99.99999), so the
  // ceiling is exact for any count — the old float epsilon hack
  // (`+ 0.9999999`) misrounded once p/100*count outgrew the epsilon's
  // double-precision resolution (count around 2^53).
  static std::int64_t percentile_target(double p, std::int64_t count) {
    if (count <= 0) return 0;
    const auto p_scaled = static_cast<std::int64_t>(std::llround(p * 1e7));
    const unsigned __int128 denom = 1000000000ULL;  // 100 * 10^7
    const unsigned __int128 num =
        static_cast<unsigned __int128>(p_scaled < 0 ? 0 : p_scaled) *
        static_cast<unsigned __int128>(count);
    auto target = static_cast<std::int64_t>((num + denom - 1) / denom);
    if (target < 1) target = 1;
    if (target > count) target = count;
    return target;
  }

  // p in [0, 100].  Returns the bucket-midpoint value at or above which
  // ceil(p/100 * count) recorded samples lie below-or-at.
  double percentile(double p) const {
    if (count_ == 0) return 0.0;
    const std::int64_t target = percentile_target(p, count_);
    std::int64_t seen = 0;
    for (int i = 0; i < kBucketCount; ++i) {
      seen += buckets_[i];
      if (seen >= target) {
        // A bucket midpoint can exceed the largest recorded sample (e.g.
        // a single sample low in a wide bucket); never report p > max.
        return std::min(bucket_value(i), static_cast<double>(max_));
      }
    }
    return static_cast<double>(max_);
  }

 private:
  std::array<std::int64_t, kBucketCount> buckets_{};
  std::int64_t count_ = 0;
  double sum_ = 0;
  std::uint64_t max_ = 0;
};

// The summary the driver attaches to each RunResult, one per operation
// class (update / find / query).
struct LatencyStats {
  std::int64_t count = 0;  // sampled operations, not total operations
  double mean_ns = 0;
  double p50_ns = 0;
  double p90_ns = 0;
  double p99_ns = 0;
  double max_ns = 0;

  static LatencyStats from(const LatencyHistogram& h) {
    LatencyStats s;
    s.count = h.count();
    s.mean_ns = h.mean();
    s.p50_ns = h.percentile(50);
    s.p90_ns = h.percentile(90);
    s.p99_ns = h.percentile(99);
    s.max_ns = static_cast<double>(h.max());
    return s;
  }
};

}  // namespace cbat::bench
