#include "chromatic/chromatic_set.h"

namespace cbat {

ChromaticSet::ChromaticSet() = default;
ChromaticSet::~ChromaticSet() = default;

bool ChromaticSet::insert(Key k) {
  EbrGuard g;
  return tree_.insert(k);
}

bool ChromaticSet::erase(Key k) {
  EbrGuard g;
  return tree_.erase(k);
}

bool ChromaticSet::contains(Key k) const {
  EbrGuard g;
  return tree_.contains(k);
}

std::int64_t ChromaticSet::size() const {
  EbrGuard g;
  return static_cast<std::int64_t>(tree_.size_slow());
}

std::size_t ChromaticSet::size_slow() const { return tree_.size_slow(); }

ChromaticTree<NoVersionPolicy>::InvariantReport ChromaticSet::check_invariants()
    const {
  return tree_.check_invariants();
}

}  // namespace cbat
