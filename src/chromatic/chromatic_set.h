// Plain (unaugmented) chromatic-tree set.
//
// Thin facade over ChromaticTree<NoVersionPolicy> that opens the EBR guard
// per operation.  Used by the LLX/SCX and chromatic-tree tests and as a
// sanity baseline; the augmented trees live in src/core.
#pragma once

#include "chromatic/chromatic_tree.h"

namespace cbat {

class ChromaticSet {
 public:
  ChromaticSet();
  ~ChromaticSet();

  bool insert(Key k);
  bool erase(Key k);
  bool contains(Key k) const;

  // Theta(n) traversal under an EBR guard; satisfies api::OrderedSet.
  std::int64_t size() const;

  // Consistency introspection (api::ConsistencyIntrospectable): size()
  // traverses the live tree, not a snapshot.  Under concurrent
  // *rebalancing* a rotation can move even a long-completed key across
  // the traversal frontier, so the count is best-effort while updates
  // run — strictly weaker than the shard layer's quiescent snapshots,
  // which do pin an immutable cut (docs/ARCHITECTURE.md spells out the
  // difference).  Exact whenever no update is concurrent.  Reported as
  // kQuiescentlyConsistent, the API's weaker-than-linearizable bucket.
  static constexpr bool composite_queries_linearizable() { return false; }

  std::size_t size_slow() const;
  ChromaticTree<NoVersionPolicy>::InvariantReport check_invariants() const;
  ChromaticTree<NoVersionPolicy>& tree() { return tree_; }

 private:
  ChromaticTree<NoVersionPolicy> tree_;
};

}  // namespace cbat
