// Plain (unaugmented) chromatic-tree set.
//
// Thin facade over ChromaticTree<NoVersionPolicy> that opens the EBR guard
// per operation.  Used by the LLX/SCX and chromatic-tree tests and as a
// sanity baseline; the augmented trees live in src/core.
#pragma once

#include "chromatic/chromatic_tree.h"

namespace cbat {

class ChromaticSet {
 public:
  ChromaticSet();
  ~ChromaticSet();

  bool insert(Key k);
  bool erase(Key k);
  bool contains(Key k) const;

  // Theta(n) traversal under an EBR guard; satisfies api::OrderedSet.
  std::int64_t size() const;

  std::size_t size_slow() const;
  ChromaticTree<NoVersionPolicy>::InvariantReport check_invariants() const;
  ChromaticTree<NoVersionPolicy>& tree() { return tree_; }

 private:
  ChromaticTree<NoVersionPolicy> tree_;
};

}  // namespace cbat
