// Lock-free chromatic tree (Brown–Ellen–Ruppert, PPoPP 2014; Nurmi &
// Soisalon-Soininen 1996) — the balanced BST substrate under BAT.
//
// The tree is leaf-oriented: the set's keys live in the leaves; internal
// nodes only direct searches (left subtree holds keys < node.key).  Each
// node carries a weight; the *weighted path invariant* says every
// root-to-leaf path inside the real tree (under root.left) has the same
// weight sum.  A perfectly balanced (red-black) state additionally has no
// "red-red" edge (weight-0 child of a weight-0 parent) and no "overweight"
// node (weight >= 2).  Updates may create at most one such violation each;
// `fix_to_key` repairs them afterwards with local transformations that
// preserve the weighted path invariant.  All structural changes go through
// SCX so they are atomic and lock-free.
//
// Sentinels: the root has key kInf2 and its right child is the leaf
// (kInf2); the rightmost leaf of the real tree is (kInf1).  The root node
// is never replaced, which BAT relies on (stable Root, paper §4).
//
// The Policy template parameter lets BAT apply the paper's Version
// Initialization Rules (Definition 1) whenever the tree allocates a node,
// and retire version objects when nodes are freed.  The plain set uses
// NoVersionPolicy.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "llxscx/llx_scx.h"
#include "reclamation/ebr.h"
#include "reclamation/pool.h"
#include "util/backoff.h"
#include "util/counters.h"
#include "util/keys.h"

namespace cbat {

// Policy with no augmentation: version pointers stay null.
struct NoVersionPolicy {
  static void init_leaf(Node*) {}
  static void init_internal(Node*) {}
  // Insertion patches have both children's versions available at creation
  // (two fresh leaves), so policies may initialize the new internal node's
  // version eagerly instead of leaving it nil; the nil rule (paper
  // Definition 1, rule 3) is only *required* for rebalancing patches,
  // whose subtrees carry arrival points the new node must not miss
  // (paper §4.1).  Eager initialization keeps Propagate from paying a
  // recursive RefreshNil on every insert.
  static void init_internal_for_insert(Node* n, Node*, Node*) {
    init_internal(n);
  }
  static void on_node_free(Node*) {}
};

// Result of a root-to-leaf search.
struct ChromaticSearch {
  Node* gp = nullptr;
  Node* p = nullptr;
  Node* l = nullptr;
  int depth = 0;  // number of edges traversed
};

template <class Policy>
class ChromaticTree {
 public:
  ChromaticTree() {
    Node* sentinel_leaf1 = mk_leaf(kInf1, 1);
    Node* sentinel_leaf2 = mk_leaf(kInf2, 1);
    root_ = mk_internal(kInf2, 1, sentinel_leaf1, sentinel_leaf2);
  }

  ChromaticTree(const ChromaticTree&) = delete;
  ChromaticTree& operator=(const ChromaticTree&) = delete;

  // Requires quiescence: no concurrent operations on any tree sharing the
  // global EBR instance.
  ~ChromaticTree() {
    std::vector<Node*> stack{root_};
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      if (!n->is_leaf()) {
        // relaxed: destructor walk at quiescence; no concurrent access.
        stack.push_back(n->child[0].load(std::memory_order_relaxed));
        stack.push_back(n->child[1].load(std::memory_order_relaxed));
      }
      node_deleter(n);
    }
    Ebr::drain();
  }

  Node* root() const { return root_; }

  // Leaf-oriented search; never blocks, reads only child pointers.
  ChromaticSearch search(Key k) const {
    ChromaticSearch s;
    s.l = root_;
    while (!s.l->is_leaf()) {
      s.gp = s.p;
      s.p = s.l;
      s.l = s.l->child[dir_of(k, s.l)].load(std::memory_order_acquire);
      ++s.depth;
    }
    return s;
  }

  bool contains(Key k) const {
    assert(k <= kMaxUserKey);
    return search(k).l->key == k;
  }

  // CTInsert (paper §3.1).  Returns true iff k was absent.  Caller holds an
  // EbrGuard.
  bool insert(Key k) {
    assert(k <= kMaxUserKey);
    Backoff bo;
    while (true) {
      ChromaticSearch s = search(k);
      if (s.l->key == k) return false;
      LlxSnap ps, ls;
      if (llx(s.p, &ps) != LlxStatus::kOk) {
        bo.pause();
        continue;
      }
      const int d = dir_of(k, s.p);
      if (ps.child(d) != s.l) continue;  // stale search; retry
      if (llx(s.l, &ls) != LlxStatus::kOk) {
        bo.pause();
        continue;
      }
      // Replace leaf l by internal(new leaf(k), copy of l); the internal
      // node absorbs one unit of l's weight so path sums are unchanged.
      Node* nl = mk_leaf(k, 1);
      Node* lc = mk_leaf(s.l->key, 1);
      const std::int32_t iw =
          (s.p == root_) ? 1 : std::max<std::int32_t>(s.l->weight - 1, 0);
      const Key ik = std::max(k, s.l->key);
      Node* ni = (k < s.l->key) ? mk_internal(ik, iw, nl, lc)
                                : mk_internal(ik, iw, lc, nl);
      // relaxed: ni is a fresh node private to this thread; the SCX
      // below publishes it with release ordering.
      Policy::init_internal_for_insert(
          ni, ni->child[0].load(std::memory_order_relaxed),
          ni->child[1].load(std::memory_order_relaxed));
      const bool red_red = (iw == 0 && s.p->weight == 0);
      LlxSnap v[2] = {ps, ls};
      if (scx(v, 2, 1, &s.p->child[d], ni)) {
        retire_node(s.l);
        if (red_red) fix_to_key(k);
        return true;
      }
      dispose_unpublished(ni);
      dispose_unpublished(nl);
      dispose_unpublished(lc);
      bo.pause();
    }
  }

  // CTDelete (paper §3.1).  Returns true iff k was present.  Caller holds
  // an EbrGuard.
  bool erase(Key k) {
    assert(k <= kMaxUserKey);
    Backoff bo;
    while (true) {
      ChromaticSearch s = search(k);
      if (s.l->key != k) return false;
      // A real leaf always has a real parent and grandparent (the rightmost
      // leaf under root.left is the kInf1 sentinel, so a real leaf can never
      // be root.left).
      assert(s.gp != nullptr);
      LlxSnap gps, ps, ls, sibs;
      if (llx(s.gp, &gps) != LlxStatus::kOk) {
        bo.pause();
        continue;
      }
      const int dp = dir_of(k, s.gp);
      if (gps.child(dp) != s.p) continue;
      if (llx(s.p, &ps) != LlxStatus::kOk) {
        bo.pause();
        continue;
      }
      const int dl = dir_of(k, s.p);
      if (ps.child(dl) != s.l) continue;
      Node* sib = ps.child(1 - dl);
      if (llx(sib, &sibs) != LlxStatus::kOk) {
        bo.pause();
        continue;
      }
      if (llx(s.l, &ls) != LlxStatus::kOk) {
        bo.pause();
        continue;
      }
      // The sibling's copy absorbs p's weight.
      const std::int32_t w =
          (s.gp == root_) ? 1 : s.p->weight + sib->weight;
      Node* s2 = clone_with_weight(sib, sibs, w);
      const bool overweight = (w >= 2 && s.gp != root_);
      LlxSnap v[4] = {gps, ps, sibs, ls};
      if (scx(v, 4, 1, &s.gp->child[dp], s2)) {
        retire_node(s.p);
        retire_node(sib);
        retire_node(s.l);
        if (overweight) fix_to_key(k);
        return true;
      }
      dispose_unpublished(s2);
      bo.pause();
    }
  }

  // --- introspection for tests & statistics -----------------------------

  // Number of real keys (sequential; call at quiescence).
  std::size_t size_slow() const {
    std::size_t n = 0;
    count_leaves(root_, n);
    return n;
  }

  struct InvariantReport {
    bool bst_order = true;
    bool leaf_oriented = true;
    bool path_sums_equal = true;
    bool leaves_positive_weight = true;
    std::size_t red_red_violations = 0;
    std::size_t overweight_violations = 0;
    std::size_t real_keys = 0;
    int height = 0;

    bool balanced_clean() const {
      return structurally_ok() && red_red_violations == 0 &&
             overweight_violations == 0;
    }
    bool structurally_ok() const {
      return bst_order && leaf_oriented && path_sums_equal &&
             leaves_positive_weight;
    }
  };

  // Full structural check (sequential; call at quiescence).
  InvariantReport check_invariants() const {
    InvariantReport r;
    // relaxed: sequential checker, called at quiescence per the contract.
    // The real tree lives under root.left; its paths must share one sum.
    Node* top = root_->child[0].load(std::memory_order_relaxed);
    std::int64_t expected_sum = -1;
    check_rec(top, std::numeric_limits<Key>::min(), kInf1, 0, 0, expected_sum,
              r, /*parent_weight=*/1);
    // relaxed: same quiescence contract as above.
    Node* right = root_->child[1].load(std::memory_order_relaxed);
    if (!right->is_leaf() || right->key != kInf2) r.leaf_oriented = false;
    return r;
  }

  // Repairs every violation reachable on the search path of k; exposed so
  // tests can drive rebalancing directly.
  void fix_to_key(Key k) {
    while (true) {
      Node* ggp = nullptr;
      Node* gp = nullptr;
      Node* p = nullptr;
      Node* l = root_;
      bool found = false;
      while (!l->is_leaf()) {
        ggp = gp;
        gp = p;
        p = l;
        l = l->child[dir_of(k, l)].load(std::memory_order_acquire);
        if (l->weight >= 2 && p != root_) {
          try_fix_overweight(k, gp, p, l);
          found = true;
          break;
        }
        if (l->weight == 0 && p->weight == 0) {
          try_fix_red_red(k, ggp, gp, p, l);
          found = true;
          break;
        }
      }
      if (!found) return;  // clean pass: nothing on this path
    }
  }

 private:
  // --- node lifecycle ----------------------------------------------------

  Node* mk_leaf(Key k, std::int32_t w) {
    Node* n = pool_new<Node>(k, w, nullptr, nullptr);
    Policy::init_leaf(n);
    return n;
  }

  Node* mk_internal(Key k, std::int32_t w, Node* left, Node* right) {
    Node* n = pool_new<Node>(k, w, left, right);
    Policy::init_internal(n);
    return n;
  }

  Node* clone_with_weight(Node* n, const LlxSnap& snap, std::int32_t w) {
    if (n->is_leaf()) return mk_leaf(n->key, w);
    return mk_internal(n->key, w, snap.child(0), snap.child(1));
  }

  static void node_deleter(void* p) {
    Node* n = static_cast<Node*>(p);
    Policy::on_node_free(n);
    release_node_info(n);
    pool_delete(n);
  }

  void retire_node(Node* n) { Ebr::retire(n, &node_deleter); }

  // For patch nodes that were never published (failed SCX).
  void dispose_unpublished(Node* n) { node_deleter(n); }

  // --- rebalancing (see DESIGN.md §2 for the case derivations) -----------

  // Weight for a node being installed as a child of `parent`: the node at
  // root.left is pinned to weight 1 (a uniform shift of all real paths).
  std::int32_t clamp_weight(Node* parent, std::int32_t w) const {
    return parent == root_ ? 1 : w;
  }

  bool try_fix_red_red(Key k, Node* ggp, Node* gp, Node* p, Node* l) {
    Counters::bump(Counter::kRebalanceSteps);
    if (ggp == nullptr || gp == nullptr) return false;
    if (gp->weight == 0) return false;  // a higher violation exists; restart
    LlxSnap ggps, gps, ps, ls, ss;
    if (llx(ggp, &ggps) != LlxStatus::kOk) return false;
    const int dgg = dir_of(k, ggp);
    if (ggps.child(dgg) != gp) return false;
    if (llx(gp, &gps) != LlxStatus::kOk) return false;
    const int dgp = dir_of(k, gp);
    if (gps.child(dgp) != p) return false;
    if (llx(p, &ps) != LlxStatus::kOk) return false;
    const int dl = dir_of(k, p);
    if (ps.child(dl) != l) return false;
    Node* s = gps.child(1 - dgp);  // uncle

    if (s->weight == 0) {
      // BLK: recolour.  gp absorbs one unit; p and s become weight 1.
      if (s->is_leaf()) return false;  // red leaf: transient anomaly, retry
      if (llx(s, &ss) != LlxStatus::kOk) return false;
      Node* p2 = mk_internal(p->key, 1, ps.child(0), ps.child(1));
      Node* s2 = mk_internal(s->key, 1, ss.child(0), ss.child(1));
      Node* g2 = (dgp == 0)
                     ? mk_internal(gp->key, clamp_weight(ggp, gp->weight - 1),
                                   p2, s2)
                     : mk_internal(gp->key, clamp_weight(ggp, gp->weight - 1),
                                   s2, p2);
      LlxSnap v[4] = {ggps, gps, ps, ss};
      if (scx(v, 4, 1, &ggp->child[dgg], g2)) {
        retire_node(gp);
        retire_node(p);
        retire_node(s);
        return true;
      }
      dispose_unpublished(g2);
      dispose_unpublished(p2);
      dispose_unpublished(s2);
      return false;
    }

    if (dl == dgp) {
      // RB1: single rotation lifting p over gp.
      Node* g2;
      Node* ptop;
      if (dgp == 0) {
        g2 = mk_internal(gp->key, 0, ps.child(1), s);
        ptop = mk_internal(p->key, clamp_weight(ggp, gp->weight), l, g2);
      } else {
        g2 = mk_internal(gp->key, 0, s, ps.child(0));
        ptop = mk_internal(p->key, clamp_weight(ggp, gp->weight), g2, l);
      }
      LlxSnap v[3] = {ggps, gps, ps};
      if (scx(v, 3, 1, &ggp->child[dgg], ptop)) {
        retire_node(gp);
        retire_node(p);
        return true;
      }
      dispose_unpublished(ptop);
      dispose_unpublished(g2);
      return false;
    }

    // RB2: double rotation lifting l over p and gp (l is the inner child).
    if (llx(l, &ls) != LlxStatus::kOk) return false;
    Node* p2;
    Node* g2;
    Node* ltop;
    if (dgp == 0) {
      p2 = mk_internal(p->key, 0, ps.child(0), ls.child(0));
      g2 = mk_internal(gp->key, 0, ls.child(1), s);
      ltop = mk_internal(l->key, clamp_weight(ggp, gp->weight), p2, g2);
    } else {
      g2 = mk_internal(gp->key, 0, s, ls.child(0));
      p2 = mk_internal(p->key, 0, ls.child(1), ps.child(1));
      ltop = mk_internal(l->key, clamp_weight(ggp, gp->weight), g2, p2);
    }
    LlxSnap v[4] = {ggps, gps, ps, ls};
    if (scx(v, 4, 1, &ggp->child[dgg], ltop)) {
      retire_node(gp);
      retire_node(p);
      retire_node(l);
      return true;
    }
    dispose_unpublished(ltop);
    dispose_unpublished(p2);
    dispose_unpublished(g2);
    return false;
  }

  bool try_fix_overweight(Key k, Node* gp, Node* p, Node* l) {
    Counters::bump(Counter::kRebalanceSteps);
    if (gp == nullptr) return false;
    LlxSnap gps, ps, ls, ss, ns;
    if (llx(gp, &gps) != LlxStatus::kOk) return false;
    const int dp = dir_of(k, gp);
    if (gps.child(dp) != p) return false;
    if (llx(p, &ps) != LlxStatus::kOk) return false;
    const int dl = dir_of(k, p);
    if (ps.child(dl) != l) return false;
    Node* s = ps.child(1 - dl);

    if (s->weight == 0) {
      // RED-SIB: rotate the red sibling above p; l keeps its violation one
      // level deeper but with a new sibling (the near nephew).
      if (s->is_leaf()) return false;  // impossible in a legal state; retry
      if (llx(s, &ss) != LlxStatus::kOk) return false;
      Node* p2;
      Node* stop;
      if (dl == 0) {
        p2 = mk_internal(p->key, 0, l, ss.child(0));
        stop =
            mk_internal(s->key, clamp_weight(gp, p->weight), p2, ss.child(1));
      } else {
        p2 = mk_internal(p->key, 0, ss.child(1), l);
        stop =
            mk_internal(s->key, clamp_weight(gp, p->weight), ss.child(0), p2);
      }
      LlxSnap v[3] = {gps, ps, ss};
      if (scx(v, 3, 1, &gp->child[dp], stop)) {
        retire_node(p);
        retire_node(s);
        return true;
      }
      dispose_unpublished(stop);
      dispose_unpublished(p2);
      return false;
    }

    // Sibling has weight >= 1.
    const bool s_leaf = s->is_leaf();
    if (llx(s, &ss) != LlxStatus::kOk) return false;
    Node* sl = s_leaf ? nullptr : ss.child(dl);      // near nephew
    Node* sr = s_leaf ? nullptr : ss.child(1 - dl);  // far nephew

    const bool can_push =
        s->weight >= 2 || (!s_leaf && sl->weight >= 1 && sr->weight >= 1);
    if (can_push) {
      // PUSH: move one unit of weight from both children up into p.
      if (llx(l, &ls) != LlxStatus::kOk) return false;
      Node* l2 = clone_with_weight(l, ls, l->weight - 1);
      Node* s2 = clone_with_weight(s, ss, s->weight - 1);
      Node* p2 =
          (dl == 0)
              ? mk_internal(p->key, clamp_weight(gp, p->weight + 1), l2, s2)
              : mk_internal(p->key, clamp_weight(gp, p->weight + 1), s2, l2);
      LlxSnap v[4] = {gps, ps, ls, ss};
      if (scx(v, 4, 1, &gp->child[dp], p2)) {
        retire_node(p);
        retire_node(l);
        retire_node(s);
        return true;
      }
      dispose_unpublished(p2);
      dispose_unpublished(l2);
      dispose_unpublished(s2);
      return false;
    }
    if (s_leaf) return false;  // weight-1 leaf sibling of an overweight node
                               // cannot satisfy the path invariant; retry

    if (sr->weight == 0) {
      // W-FAR: single rotation towards l (far nephew is red).  s.weight==1.
      if (sr->is_leaf()) return false;
      if (llx(l, &ls) != LlxStatus::kOk) return false;
      if (llx(sr, &ns) != LlxStatus::kOk) return false;
      Node* l2 = clone_with_weight(l, ls, l->weight - 1);
      Node* sr2 = clone_with_weight(sr, ns, 1);
      Node* p2;
      Node* stop;
      if (dl == 0) {
        p2 = mk_internal(p->key, 1, l2, sl);
        stop = mk_internal(s->key, clamp_weight(gp, p->weight), p2, sr2);
      } else {
        p2 = mk_internal(p->key, 1, sl, l2);
        stop = mk_internal(s->key, clamp_weight(gp, p->weight), sr2, p2);
      }
      LlxSnap v[5] = {gps, ps, ls, ss, ns};
      if (scx(v, 5, 1, &gp->child[dp], stop)) {
        retire_node(p);
        retire_node(l);
        retire_node(s);
        retire_node(sr);
        return true;
      }
      dispose_unpublished(stop);
      dispose_unpublished(p2);
      dispose_unpublished(l2);
      dispose_unpublished(sr2);
      return false;
    }

    if (sl->weight == 0) {
      // W-NEAR: double rotation lifting the near nephew.  s.weight==1.
      if (sl->is_leaf()) return false;
      if (llx(l, &ls) != LlxStatus::kOk) return false;
      if (llx(sl, &ns) != LlxStatus::kOk) return false;
      Node* l2 = clone_with_weight(l, ls, l->weight - 1);
      Node* p2;
      Node* s2;
      Node* sltop;
      if (dl == 0) {
        p2 = mk_internal(p->key, 1, l2, ns.child(0));
        s2 = mk_internal(s->key, 1, ns.child(1), sr);
        sltop = mk_internal(sl->key, clamp_weight(gp, p->weight), p2, s2);
      } else {
        s2 = mk_internal(s->key, 1, sr, ns.child(0));
        p2 = mk_internal(p->key, 1, ns.child(1), l2);
        sltop = mk_internal(sl->key, clamp_weight(gp, p->weight), s2, p2);
      }
      LlxSnap v[5] = {gps, ps, ls, ss, ns};
      if (scx(v, 5, 1, &gp->child[dp], sltop)) {
        retire_node(p);
        retire_node(l);
        retire_node(s);
        retire_node(sl);
        return true;
      }
      dispose_unpublished(sltop);
      dispose_unpublished(p2);
      dispose_unpublished(s2);
      dispose_unpublished(l2);
      return false;
    }
    return false;  // concurrent modification produced a shape we cannot fix
  }

  // --- validation helpers -------------------------------------------------

  void count_leaves(Node* n, std::size_t& acc) const {
    if (n->is_leaf()) {
      if (!is_sentinel_key(n->key)) ++acc;
      return;
    }
    // relaxed: sequential helper for the quiescent checker above.
    count_leaves(n->child[0].load(std::memory_order_relaxed), acc);
    count_leaves(n->child[1].load(std::memory_order_relaxed), acc);
  }

  void check_rec(Node* n, Key lo, Key hi, std::int64_t sum, int depth,
                 std::int64_t& expected_sum, InvariantReport& r,
                 std::int32_t parent_weight) const {
    sum += n->weight;
    r.height = std::max(r.height, depth);
    if (n->weight == 0 && parent_weight == 0) ++r.red_red_violations;
    if (n->weight >= 2) ++r.overweight_violations;
    if (n->is_leaf()) {
      if (n->weight < 1) r.leaves_positive_weight = false;
      if (!is_sentinel_key(n->key)) {
        ++r.real_keys;
        if (n->key < lo || n->key > hi) r.bst_order = false;
      }
      if (expected_sum < 0) expected_sum = sum;
      if (sum != expected_sum) r.path_sums_equal = false;
      return;
    }
    // relaxed: sequential helper for the quiescent checker above.
    Node* c0 = n->child[0].load(std::memory_order_relaxed);
    Node* c1 = n->child[1].load(std::memory_order_relaxed);
    if (c0 == nullptr || c1 == nullptr) {
      r.leaf_oriented = false;
      return;
    }
    check_rec(c0, lo, std::min<Key>(hi, n->key - 1), sum, depth + 1,
              expected_sum, r, n->weight);
    check_rec(c1, std::max<Key>(lo, n->key), hi, sum, depth + 1, expected_sum,
              r, n->weight);
  }

  Node* root_;
};

}  // namespace cbat
