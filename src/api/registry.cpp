#include "api/ordered_set.h"

#include <algorithm>
#include <mutex>

#include "btree/verbtree.h"
#include "bundled/bundled_tree.h"
#include "chromatic/chromatic_set.h"
#include "combine/combined_set.h"
#include "combine/combining_buffer.h"
#include "core/bat_tree.h"
#include "shard/aggregate_cache.h"
#include "frbst/frbst.h"
#include "reclamation/ebr.h"
#include "shard/sharded_set.h"
#include "vcasbst/vcas_bst.h"

namespace cbat::api {

// The registry is the single place the whole-repository contract is
// enforced; a structure that stops satisfying its concept fails right here.
static_assert(RankedSet<Bat<SizeAug>>);
static_assert(RankedSet<BatDel<SizeAug>>);
static_assert(RankedSet<BatEagerDel<SizeAug>>);
static_assert(RankedSet<FrBst<SizeAug>>);
static_assert(RankedSet<VcasBst>);
static_assert(RankedSet<VerBTree>);
static_assert(RankedSet<BundledTree>);
static_assert(OrderedSet<ChromaticSet> && !RankedSet<ChromaticSet>);
// The shard layer composes BATs and must satisfy the same contract as one,
// plus the key-range hint the driver uses to align the shard map.
static_assert(RankedSet<ShardedSet<Bat<SizeAug>, 16>>);
static_assert(KeyRangeHintable<ShardedSet<Bat<SizeAug>, 16>>);
static_assert(RankedSet<ShardedSet<BatDel<SizeAug>, 16>>);
static_assert(!KeyRangeHintable<Bat<SizeAug>>);
// The combining layer wraps a BAT without weakening its contract, and the
// sharded-combined forest keeps the shard layer's key-range hint.
static_assert(RankedSet<CombinedSet<Bat<SizeAug>>>);
static_assert(CombinableInner<Bat<SizeAug>>);
static_assert(RankedSet<ShardedSet<CombinedSet<Bat<SizeAug>>, 16>>);
static_assert(KeyRangeHintable<ShardedSet<CombinedSet<Bat<SizeAug>>, 16>>);
// Consistency introspection: the shard layer reports its composite-query
// guarantee per snapshot policy (quiescent by default, linearizable for
// the epoch-stamped "-Lin" variants); the epoch source reaches a BAT both
// directly and through the combining layer.
static_assert(ConsistencyIntrospectable<ShardedSet<Bat<SizeAug>, 16>>);
static_assert(!ShardedSet<Bat<SizeAug>, 16>::composite_queries_linearizable());
static_assert(ShardedSet<Bat<SizeAug>, 16, SnapshotPolicy::kLinearizable>::
                  composite_queries_linearizable());
static_assert(EpochStampedInner<Bat<SizeAug>>);
static_assert(EpochStampedInner<CombinedSet<Bat<SizeAug>>>);
static_assert(RankedSet<ShardedSet<Bat<SizeAug>, 16,
                                   SnapshotPolicy::kLinearizable>>);
static_assert(RankedSet<ShardedSet<CombinedSet<Bat<SizeAug>>, 16,
                                   SnapshotPolicy::kLinearizable>>);
// Single trees keep the default: no hook, composite queries linearizable.
static_assert(!ConsistencyIntrospectable<Bat<SizeAug>>);
// The read-combined forests keep the full contract; leasing and caching
// inherit the underlying cut's consistency, never weaken it, so the "-RC"
// twins report exactly their policy's guarantee.
static_assert(RankedSet<ShardedSet<CombinedSet<Bat<SizeAug>>, 16,
                                   SnapshotPolicy::kQuiescent,
                                   ReadPath::kCombined>>);
static_assert(KeyRangeHintable<ShardedSet<CombinedSet<Bat<SizeAug>>, 16,
                                          SnapshotPolicy::kQuiescent,
                                          ReadPath::kCombined>>);
static_assert(RankedSet<ShardedSet<CombinedSet<Bat<SizeAug>>, 16,
                                   SnapshotPolicy::kLinearizable,
                                   ReadPath::kCombined>>);
static_assert(!ShardedSet<CombinedSet<Bat<SizeAug>>, 16,
                          SnapshotPolicy::kQuiescent,
                          ReadPath::kCombined>::composite_queries_linearizable());
static_assert(ShardedSet<CombinedSet<Bat<SizeAug>>, 16,
                         SnapshotPolicy::kLinearizable,
                         ReadPath::kCombined>::composite_queries_linearizable());
static_assert(ShardedSet<CombinedSet<Bat<SizeAug>>, 16,
                         SnapshotPolicy::kQuiescent,
                         ReadPath::kCombined>::read_path() ==
              ReadPath::kCombined);
// The adaptive forests keep the whole contract — ranked, hintable,
// consistency-introspectable — and additionally report their rebalancer
// through the capability hooks the registry derives StructureInfo from.
using Adapt16 = ShardedSet<CombinedSet<Bat<SizeAug>>, 16,
                           SnapshotPolicy::kQuiescent, ReadPath::kDirect,
                           /*Adaptive=*/true>;
using Adapt16Lin = ShardedSet<CombinedSet<Bat<SizeAug>>, 16,
                              SnapshotPolicy::kLinearizable,
                              ReadPath::kDirect, /*Adaptive=*/true>;
static_assert(RankedSet<Adapt16> && KeyRangeHintable<Adapt16>);
static_assert(RankedSet<Adapt16Lin>);
static_assert(Adapt16::adaptive_rebalancing());
static_assert(!Adapt16::composite_queries_linearizable());
static_assert(Adapt16Lin::composite_queries_linearizable());
// Capability hooks: combining comes from the inner CombinedSet, read
// combining only from the forest-level "-RC" path, adaptivity only from
// the Adaptive parameter — names no longer carry any of this.
static_assert(Adapt16::combines_updates());
static_assert(!Adapt16::combines_reads());
static_assert(!ShardedSet<Bat<SizeAug>, 16>::combines_updates());
static_assert(!ShardedSet<Bat<SizeAug>, 16>::adaptive_rebalancing());
static_assert(CombinedSet<Bat<SizeAug>>::combines_updates());
static_assert(ShardedSet<CombinedSet<Bat<SizeAug>>, 16,
                         SnapshotPolicy::kQuiescent,
                         ReadPath::kCombined>::combines_reads());

namespace {
std::mutex& registry_mutex() {
  static std::mutex mu;
  return mu;
}
}  // namespace

StructureRegistry& StructureRegistry::instance() {
  static StructureRegistry r;
  return r;
}

StructureRegistry::StructureRegistry() {
  // The eight names used throughout the paper's figures and tables.
  register_type<Bat<SizeAug>>("BAT", /*in_comparison=*/false);
  register_type<BatDel<SizeAug>>("BAT-Del", /*in_comparison=*/false);
  register_type<BatEagerDel<SizeAug>>("BAT-EagerDel", /*in_comparison=*/true);
  register_type<FrBst<SizeAug>>("FR-BST", /*in_comparison=*/true);
  register_type<VcasBst>("VcasBST", /*in_comparison=*/true);
  register_type<VerBTree>("VerlibBTree", /*in_comparison=*/true);
  register_type<BundledTree>("BundledCitrusTree", /*in_comparison=*/true);
  register_type<ChromaticSet>("ChromaticSet", /*in_comparison=*/false);
  // The sharded BAT forests (shard layer).  Not in the paper's comparison
  // set — they have their own scenarios (shard_sweep, shard_hotspot).
  register_type<ShardedSet<Bat<SizeAug>, 1>>("Sharded1-BAT");
  register_type<ShardedSet<Bat<SizeAug>, 4>>("Sharded4-BAT");
  register_type<ShardedSet<Bat<SizeAug>, 16>>("Sharded16-BAT");
  register_type<ShardedSet<Bat<SizeAug>, 64>>("Sharded64-BAT");
  register_type<ShardedSet<BatDel<SizeAug>, 16>>("Sharded16-BAT-Del");
  // The combining layer (combine_sweep scenario): a combined single BAT
  // and the sharded forest whose shards each own a combining buffer.
  register_type<CombinedSet<Bat<SizeAug>>>("Combined-BAT");
  register_type<ShardedSet<CombinedSet<Bat<SizeAug>>, 16>>(
      "Sharded16-Combined-BAT");
  // Linearizable-snapshot forests (snapshot_consistency scenario): same
  // write path as their quiescent counterparts — epoch stamping is on in
  // both — but snapshot acquisition is the two-phase epoch cut, so every
  // cross-shard composite query linearizes.
  register_type<ShardedSet<Bat<SizeAug>, 16, SnapshotPolicy::kLinearizable>>(
      "Sharded16-BAT-Lin");
  register_type<
      ShardedSet<CombinedSet<Bat<SizeAug>>, 16, SnapshotPolicy::kLinearizable>>(
      "Sharded16-Combined-BAT-Lin");
  // Read-combined forests (read_burst scenario): composite reads publish
  // alongside updates, lease shared epoch cuts, and validate against the
  // epoch-stamped per-shard aggregate caches.  Same write path as the
  // non-RC twins.
  register_type<ShardedSet<CombinedSet<Bat<SizeAug>>, 16,
                           SnapshotPolicy::kQuiescent, ReadPath::kCombined>>(
      "Sharded16-Combined-BAT-RC");
  register_type<ShardedSet<CombinedSet<Bat<SizeAug>>, 16,
                           SnapshotPolicy::kLinearizable,
                           ReadPath::kCombined>>("Sharded16-Combined-BAT-RC-Lin");
  // Adaptive forests (rebalance scenario): same combined write path as
  // "Sharded16-Combined-BAT", plus the online hot-shard rebalancer.  The
  // rebalancing knobs arrive through configure(SetOptions).
  register_type<Adapt16>("Sharded16-Combined-BAT-Adapt");
  register_type<Adapt16Lin>("Sharded16-Combined-BAT-Adapt-Lin");
}

bool AbstractOrderedSet::configure(const SetOptions& o) {
  bool ok = true;
  if (o.key_range_hint.has_value()) {
    ok = set_key_range_hint(*o.key_range_hint) && ok;
  }
  if (o.combine_max_batch.has_value()) {
    // 1 is the documented "disable combining" setting; zero or negative
    // batches are malformed (a drain that may apply nothing would wedge
    // waiters), so reject them instead of storing a nonsense knob.
    if (*o.combine_max_batch <= 0) {
      ok = false;
    } else {
      set_combine_max_batch(*o.combine_max_batch);
    }
  }
  if (o.delegation_timeout.has_value()) {
    // The spin budget is a per-instantiation static on BatTree; apply it
    // to every variant the registry instantiates so the knob stays
    // process-wide as documented.
    Bat<SizeAug>::set_delegation_timeout(*o.delegation_timeout);
    BatDel<SizeAug>::set_delegation_timeout(*o.delegation_timeout);
    BatEagerDel<SizeAug>::set_delegation_timeout(*o.delegation_timeout);
  }
  if (o.lease_reads.has_value()) set_lease_reads(*o.lease_reads);
  if (o.aggregate_cache.has_value()) set_aggregate_cache(*o.aggregate_cache);
  if (o.ebr_limbo_high_water.has_value()) {
    // 0 means "guardrail off"; a negative mark is malformed (no limbo
    // population can be below zero, so it would arm a dead trigger).
    if (*o.ebr_limbo_high_water < 0) {
      ok = false;
    } else {
      set_ebr_limbo_high_water(*o.ebr_limbo_high_water);
    }
  }
  // The rebalancing fields need a structure with the matching setters;
  // SetModel's override applies them before delegating here.
  if (o.adaptive_rebalance.has_value() || o.rebalance_hot_factor.has_value() ||
      o.rebalance_check_period.has_value()) {
    ok = false;
  }
  return ok;
}

void StructureRegistry::register_structure(std::string name, Entry entry) {
  std::lock_guard<std::mutex> g(registry_mutex());
  static int next_order = 0;
  // Re-registering a name (tests shadowing a builtin with an instrumented
  // double) keeps its position so figure series ordering stays stable.
  const auto it = entries_.find(name);
  entry.order = it != entries_.end() ? it->second.order : next_order++;
  entries_[std::move(name)] = std::move(entry);
}

std::unique_ptr<AbstractOrderedSet> StructureRegistry::create(
    const std::string& name) const {
  Factory f;
  {
    std::lock_guard<std::mutex> g(registry_mutex());
    const auto it = entries_.find(name);
    if (it == entries_.end()) return nullptr;
    f = it->second.factory;
  }
  return f();
}

bool StructureRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> g(registry_mutex());
  return entries_.count(name) > 0;
}

bool StructureRegistry::is_ranked(const std::string& name) const {
  std::lock_guard<std::mutex> g(registry_mutex());
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second.ranked;
}

std::optional<StructureInfo> StructureRegistry::info(
    const std::string& name) const {
  std::lock_guard<std::mutex> g(registry_mutex());
  const auto it = entries_.find(name);
  if (it == entries_.end()) return std::nullopt;
  return it->second.info;
}

std::vector<std::string> StructureRegistry::names() const {
  std::lock_guard<std::mutex> g(registry_mutex());
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

std::vector<std::string> StructureRegistry::comparison_set() const {
  std::lock_guard<std::mutex> g(registry_mutex());
  std::vector<std::pair<int, std::string>> picked;
  for (const auto& [name, entry] : entries_) {
    if (entry.in_comparison) picked.emplace_back(entry.order, name);
  }
  std::sort(picked.begin(), picked.end());
  std::vector<std::string> out;
  out.reserve(picked.size());
  for (auto& [order, name] : picked) out.push_back(std::move(name));
  return out;
}

}  // namespace cbat::api
