// Unified ordered-set API layer.
//
// Every structure in the repository — the three BAT variants, the FR-BST,
// and the three baselines — implements the same abstract set-with-order-
// statistics interface.  This header pins that contract down twice:
//
//   * statically, as the C++20 concepts `OrderedSet` and `RankedSet`, which
//     the registry enforces at registration time (a structure that drifts
//     from the contract stops compiling, not stops agreeing at runtime);
//   * dynamically, as `AbstractOrderedSet`, the type-erased interface the
//     benchmark driver and the integration tests program against (the role
//     SetBench's abstract set plays for the paper).
//
// `StructureRegistry` maps the structure names used by the paper's figures
// ("BAT-EagerDel", "FR-BST", ...) to factories.  Adding a new structure to
// every benchmark and cross-structure test is one `register_type` call; see
// README.md.
#pragma once

#include <cmath>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/keys.h"

namespace cbat::api {

// Minimal mutable ordered-set contract: membership plus an exact size.
template <class S>
concept OrderedSet = requires(S s, const S cs, Key k) {
  { s.insert(k) } -> std::same_as<bool>;
  { s.erase(k) } -> std::same_as<bool>;
  { cs.contains(k) } -> std::same_as<bool>;
  { cs.size() } -> std::convertible_to<std::int64_t>;
};

// Order-statistic extension (paper §1.1): rank, select, and range count.
// The augmented trees answer these in O(log n) from one snapshot; the
// baselines answer them by traversing a snapshot, as the paper prescribes.
template <class S>
concept RankedSet = OrderedSet<S> &&
    requires(const S cs, Key k, std::int64_t i) {
      { cs.range_count(k, k) } -> std::convertible_to<std::int64_t>;
      { cs.rank(k) } -> std::convertible_to<std::int64_t>;
      { cs.select(i) } -> std::convertible_to<std::optional<Key>>;
    };

// Optional extension: structures that partition or pre-size by key range
// (the shard layer) accept an advisory hint that keys will be drawn from
// [0, max_key).  Returns whether the hint was applied; implementations may
// ignore it (e.g. once populated).
template <class S>
concept KeyRangeHintable = requires(S s, Key k) {
  { s.key_range_hint(k) } -> std::same_as<bool>;
};

// Consistency guarantee of a structure's composite queries — the
// operations that read more than one key's state at once (size, rank,
// select, range_count, range_aggregate, range collection).  Point
// operations (insert/erase/contains) are linearizable for every
// registered structure; composite queries are where guarantees diverge:
//
//   * kLinearizable: the query takes effect at one instant between its
//     invocation and response; any update completed before the query
//     began is included, none begun after it ends is.  Every single-tree
//     structure gives this (queries run on one atomic root snapshot), as
//     do ShardedSet's epoch-stamped "-Lin" variants.
//   * kQuiescentlyConsistent: the API's weaker-than-linearizable bucket.
//     For ShardedSet's default snapshot mode this means: the query
//     observes a state containing every update completed before it began
//     and none begun after it ended, but updates *concurrent with the
//     query* may be observed inconsistently across shards (a later
//     update seen, an earlier one missed).  Individual structures may be
//     weaker still (ChromaticSet's size() traverses the live tree); the
//     per-structure table in docs/ARCHITECTURE.md states each exact
//     guarantee — consistency() only promises "not linearizable" here.
//
// The full per-structure, per-operation-class table lives in
// docs/ARCHITECTURE.md ("Consistency guarantees").
enum class Consistency { kLinearizable, kQuiescentlyConsistent };

inline const char* consistency_name(Consistency c) {
  return c == Consistency::kLinearizable ? "linearizable"
                                         : "quiescently_consistent";
}

// Optional introspection: structures whose composite queries are weaker
// than linearizable say so through a static hook; everything else defaults
// to linearizable (the repository-wide contract for single trees).
template <class S>
concept ConsistencyIntrospectable = requires {
  { S::composite_queries_linearizable() } -> std::convertible_to<bool>;
};

// One bag of tuning knobs for every structure, applied through
// AbstractOrderedSet::configure.  Each field is optional; a disengaged
// field means "leave that knob alone".  This replaces the accumulated
// ad-hoc setters (set_key_range_hint on the abstract set plus the
// process-wide set_combine_max_batch / set_delegation_timeout /
// set_lease_reads / set_aggregate_cache free functions) as the single
// front door the benchmark driver and the examples go through; the old
// setters remain as thin deprecated wrappers so existing callers and
// tests keep working.
//
// Scope caveat, inherited from the knobs themselves: everything except
// key_range_hint and the rebalancing fields is PROCESS-WIDE (the knobs
// gate layers, not instances), so configure() on one structure adjusts
// every structure sharing the process.  The benchmark harness already
// relies on exactly that to toggle layers between series.
struct SetOptions {
  // Advisory: keys will be drawn from [0, key_range_hint).  Per instance.
  std::optional<Key> key_range_hint;
  // Max requests one flat-combining drain applies (<= 1 disables
  // combining).  Process-wide.
  std::optional<int> combine_max_batch;
  // Spin budget (iterations) for delegation waits, combining publication
  // waits, and read-lease waits; 0 means never wait.  Process-wide.
  std::optional<std::uint64_t> delegation_timeout;
  // Snapshot leasing for composite reads ("-RC" forests).  Process-wide.
  std::optional<bool> lease_reads;
  // Epoch-stamped per-shard aggregate caches.  Process-wide.
  std::optional<bool> aggregate_cache;
  // EBR limbo-pressure guardrail: when a thread's unreclaimed limbo bags
  // hold at least this many objects, its next retire forces an epoch
  // advance + sweep and counts an ebr_pressure_events.  0 disables the
  // guardrail; negative is malformed (rejected).  Process-wide.
  std::optional<std::int64_t> ebr_limbo_high_water;
  // Online hot-shard rebalancing ("-Adapt" forests only).  Per instance.
  std::optional<bool> adaptive_rebalance;
  // A shard migrates when its update rate exceeds this multiple (> 1) of
  // the mean.  Per instance.
  std::optional<double> rebalance_hot_factor;
  // Updates between two rebalance-policy checks on one thread.  Per
  // instance.
  std::optional<std::uint32_t> rebalance_check_period;
};

// Static capabilities of a registered structure, derived from its type at
// registration (never parsed back out of its name).  The benchmark
// records these in every run's JSON config and `cbat_bench --list
// --verbose` prints them.
struct StructureInfo {
  bool ranked = false;          // order statistics (RankedSet)
  Consistency consistency = Consistency::kLinearizable;  // composite queries
  bool combining = false;       // updates go through flat combining
  bool read_combining = false;  // composite reads lease shared cuts
  bool adaptive = false;        // online hot-shard rebalancing
  int shards = 1;               // forest width (1 = single tree)
};

// Type-erased view of a registered structure.
//
// Thread-safety contract: every operation is safe to call from any number
// of threads concurrently with any other, with no external locking.  Point
// operations and single-structure queries are linearizable; composite
// queries give the guarantee reported by consistency().  All operations
// are non-blocking toward *other* threads' progress except where a
// concrete structure documents bounded waiting (the combining layer's
// publication spin and delegation's WaitForDelegatee, both bounded by
// set_delegation_timeout and falling back to solo execution).
class AbstractOrderedSet {
 public:
  virtual ~AbstractOrderedSet() = default;

  virtual bool insert(Key k) = 0;
  virtual bool erase(Key k) = 0;
  virtual bool contains(Key k) = 0;
  virtual std::int64_t size() = 0;

  // Order statistics.  Meaningful only when supports_order_statistics();
  // structures registered without them (the plain chromatic set) answer
  // range_count/rank with 0 and select_query with kInf2.
  virtual bool supports_order_statistics() const = 0;
  virtual std::int64_t range_count(Key lo, Key hi) = 0;
  virtual std::int64_t rank(Key k) = 0;
  virtual Key select_query(std::int64_t i) = 0;

  // Aggregate over [lo, hi] for structures whose augmentation exposes an
  // int64 aggregate (every SizeAug structure: the aggregate IS the
  // count).  Structures without one answer with range_count — identical
  // for SizeAug, and the benchmarks only issue this against SizeAug
  // structures.  Separate from range_count because the shard layer
  // serves it through a different path (boundary descents memoized in
  // the hot-range aggregate cache) than the rank-composed range_count.
  virtual std::int64_t range_aggregate(Key lo, Key hi) {
    return range_count(lo, hi);
  }

  // Applies every engaged field of `o` that this structure (or the
  // process-wide layer knobs) can honor; returns true iff ALL engaged
  // fields were applied.  The base implementation (registry.cpp) handles
  // the generic fields — key_range_hint via the virtual below, the four
  // layer knobs via their process-wide slots — and reports false for the
  // rebalancing fields; SetModel overrides it to forward those to
  // structures that expose the matching setters.  This is the preferred
  // configuration front door; see SetOptions.
  virtual bool configure(const SetOptions& o);

  // Deprecated: use configure({.key_range_hint = max_key}).  Advisory:
  // keys will be drawn from [0, max_key); structures without a use for it
  // (all the single trees) keep the no-op default.  Returns whether it
  // was applied.
  virtual bool set_key_range_hint(Key /*max_key*/) { return false; }

  // The guarantee this structure's composite queries (size/rank/select/
  // range_*) give under concurrent updates; see the Consistency enum.  The
  // benchmark driver reports it per run (stderr note + the JSON config's
  // "consistency" field) so quiescently-consistent numbers are never
  // mistaken for linearizable ones.
  virtual Consistency consistency() const {
    return Consistency::kLinearizable;
  }

  // Advisory: the calling thread expects to run about this many updates.
  // Structures backed by per-thread object pools pre-fault their free
  // lists so a fresh thread's first operations do not pay cold allocation
  // (first-touch jitter pollutes latency percentiles).  The benchmark
  // driver calls this from every prefill and worker thread before its
  // first operation; the default is a no-op.
  virtual void warm_up(std::size_t /*expected_updates*/) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  std::string name_;
};

// Bridges a concrete structure type into AbstractOrderedSet.  The concept
// split is resolved here, at compile time: RankedSet types get real order
// statistics, plain OrderedSet types get the documented fallbacks.
template <OrderedSet T>
class SetModel final : public AbstractOrderedSet {
 public:
  bool insert(Key k) override { return t_.insert(k); }
  bool erase(Key k) override { return t_.erase(k); }
  bool contains(Key k) override { return t_.contains(k); }
  std::int64_t size() override { return t_.size(); }

  bool supports_order_statistics() const override { return RankedSet<T>; }
  std::int64_t range_count(Key lo, Key hi) override {
    if constexpr (RankedSet<T>) return t_.range_count(lo, hi);
    return 0;
  }
  std::int64_t rank(Key k) override {
    if constexpr (RankedSet<T>) return t_.rank(k);
    return 0;
  }
  Key select_query(std::int64_t i) override {
    if constexpr (RankedSet<T>) return t_.select(i).value_or(0);
    return kInf2;
  }
  std::int64_t range_aggregate(Key lo, Key hi) override {
    if constexpr (requires(const T ct) {
                    {
                      ct.range_aggregate(lo, hi)
                    } -> std::convertible_to<std::int64_t>;
                  }) {
      return t_.range_aggregate(lo, hi);
    } else if constexpr (RankedSet<T>) {
      return t_.range_count(lo, hi);
    } else {
      return 0;
    }
  }

  bool set_key_range_hint(Key max_key) override {
    if constexpr (KeyRangeHintable<T>) return t_.key_range_hint(max_key);
    return false;
  }

  // Generic fields go through the base (process-wide knobs + the hint);
  // the rebalancing fields bind to the concrete type's setters when it
  // has them — the concept detection mirrors every other bridge here.
  bool configure(const SetOptions& o) override {
    SetOptions rest = o;
    rest.adaptive_rebalance.reset();
    rest.rebalance_hot_factor.reset();
    rest.rebalance_check_period.reset();
    bool ok = AbstractOrderedSet::configure(rest);
    if (o.adaptive_rebalance.has_value()) {
      if constexpr (requires(T t, bool on) { t.set_adaptive_enabled(on); }) {
        t_.set_adaptive_enabled(*o.adaptive_rebalance);
      } else {
        ok = false;
      }
    }
    if (o.rebalance_hot_factor.has_value()) {
      // The policy compares against hot_factor * mean rate: NaN/inf never
      // triggers, <= 1.0 makes every shard "hot" — both malformed.
      if (!std::isfinite(*o.rebalance_hot_factor) ||
          *o.rebalance_hot_factor <= 1.0) {
        ok = false;
      } else if constexpr (requires(T t, double f) {
                             t.set_rebalance_hot_factor(f);
                           }) {
        t_.set_rebalance_hot_factor(*o.rebalance_hot_factor);
      } else {
        ok = false;
      }
    }
    if (o.rebalance_check_period.has_value()) {
      // Zero would ask for a policy check on every update.
      if (*o.rebalance_check_period == 0) {
        ok = false;
      } else if constexpr (requires(T t, std::uint32_t p) {
                             t.set_rebalance_check_period(p);
                           }) {
        t_.set_rebalance_check_period(*o.rebalance_check_period);
      } else {
        ok = false;
      }
    }
    return ok;
  }

  Consistency consistency() const override {
    if constexpr (ConsistencyIntrospectable<T>) {
      return T::composite_queries_linearizable()
                 ? Consistency::kLinearizable
                 : Consistency::kQuiescentlyConsistent;
    }
    return Consistency::kLinearizable;
  }

  void warm_up(std::size_t expected_updates) override {
    if constexpr (requires(T t) { t.warm_up(expected_updates); }) {
      t_.warm_up(expected_updates);
    }
  }

  T& tree() { return t_; }

 private:
  T t_;
};

// Name -> factory map for every structure in the repository.  The builtin
// structures (the eight names the paper's figures use) are registered the
// first time instance() runs; user structures can be added at any point.
class StructureRegistry {
 public:
  using Factory = std::function<std::unique_ptr<AbstractOrderedSet>()>;

  struct Entry {
    Factory factory;
    bool ranked = false;       // satisfies RankedSet (order statistics)
    bool in_comparison = false;  // member of the Figures 6-9 comparison set
    int order = 0;             // registration order; fixes plot ordering
    StructureInfo info;        // type-derived capabilities (register_type)
  };

  static StructureRegistry& instance();

  // Registers `name`; replaces any previous registration of the same name
  // (tests use this to shadow a builtin with an instrumented double).
  void register_structure(std::string name, Entry entry);

  // Registers a concrete type under `name`.  The concept check happens
  // here: T must at least be an OrderedSet, and `ranked` is derived from
  // the type rather than trusted from the caller.
  template <OrderedSet T>
  void register_type(const std::string& name, bool in_comparison = false) {
    Entry e;
    e.factory = [name] {
      auto s = std::make_unique<SetModel<T>>();
      s->set_name(name);
      return std::unique_ptr<AbstractOrderedSet>(std::move(s));
    };
    e.ranked = RankedSet<T>;
    e.in_comparison = in_comparison;
    // Capabilities come from the TYPE, through the same static hooks the
    // layers already expose — never parsed back out of the name (the old
    // scheme; it broke the moment a name stopped encoding a property).
    e.info.ranked = e.ranked;
    if constexpr (ConsistencyIntrospectable<T>) {
      e.info.consistency = T::composite_queries_linearizable()
                               ? Consistency::kLinearizable
                               : Consistency::kQuiescentlyConsistent;
    }
    if constexpr (requires {
                    { T::combines_updates() } -> std::convertible_to<bool>;
                  }) {
      e.info.combining = T::combines_updates();
    }
    if constexpr (requires {
                    { T::combines_reads() } -> std::convertible_to<bool>;
                  }) {
      e.info.read_combining = T::combines_reads();
    }
    if constexpr (requires {
                    { T::adaptive_rebalancing() } -> std::convertible_to<bool>;
                  }) {
      e.info.adaptive = T::adaptive_rebalancing();
    }
    if constexpr (requires {
                    { T::num_shards() } -> std::convertible_to<int>;
                  }) {
      e.info.shards = T::num_shards();
    }
    register_structure(name, std::move(e));
  }

  // Instantiates `name`, or returns nullptr if it is not registered.
  std::unique_ptr<AbstractOrderedSet> create(const std::string& name) const;

  bool contains(const std::string& name) const;
  bool is_ranked(const std::string& name) const;

  // The registered structure's static capabilities, or nullopt if the
  // name is unknown.
  std::optional<StructureInfo> info(const std::string& name) const;

  // All registered names, sorted.
  std::vector<std::string> names() const;

  // The cross-structure comparison set used by Figures 6-9 (the paper
  // plots BAT-EagerDel, its best variant, against the four baselines;
  // Figures 5 and 10 additionally include the other BAT variants).
  std::vector<std::string> comparison_set() const;

 private:
  StructureRegistry();  // registers the builtin structures

  std::map<std::string, Entry> entries_;
};

}  // namespace cbat::api
