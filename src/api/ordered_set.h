// Unified ordered-set API layer.
//
// Every structure in the repository — the three BAT variants, the FR-BST,
// and the three baselines — implements the same abstract set-with-order-
// statistics interface.  This header pins that contract down twice:
//
//   * statically, as the C++20 concepts `OrderedSet` and `RankedSet`, which
//     the registry enforces at registration time (a structure that drifts
//     from the contract stops compiling, not stops agreeing at runtime);
//   * dynamically, as `AbstractOrderedSet`, the type-erased interface the
//     benchmark driver and the integration tests program against (the role
//     SetBench's abstract set plays for the paper).
//
// `StructureRegistry` maps the structure names used by the paper's figures
// ("BAT-EagerDel", "FR-BST", ...) to factories.  Adding a new structure to
// every benchmark and cross-structure test is one `register_type` call; see
// README.md.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/keys.h"

namespace cbat::api {

// Minimal mutable ordered-set contract: membership plus an exact size.
template <class S>
concept OrderedSet = requires(S s, const S cs, Key k) {
  { s.insert(k) } -> std::same_as<bool>;
  { s.erase(k) } -> std::same_as<bool>;
  { cs.contains(k) } -> std::same_as<bool>;
  { cs.size() } -> std::convertible_to<std::int64_t>;
};

// Order-statistic extension (paper §1.1): rank, select, and range count.
// The augmented trees answer these in O(log n) from one snapshot; the
// baselines answer them by traversing a snapshot, as the paper prescribes.
template <class S>
concept RankedSet = OrderedSet<S> &&
    requires(const S cs, Key k, std::int64_t i) {
      { cs.range_count(k, k) } -> std::convertible_to<std::int64_t>;
      { cs.rank(k) } -> std::convertible_to<std::int64_t>;
      { cs.select(i) } -> std::convertible_to<std::optional<Key>>;
    };

// Optional extension: structures that partition or pre-size by key range
// (the shard layer) accept an advisory hint that keys will be drawn from
// [0, max_key).  Returns whether the hint was applied; implementations may
// ignore it (e.g. once populated).
template <class S>
concept KeyRangeHintable = requires(S s, Key k) {
  { s.key_range_hint(k) } -> std::same_as<bool>;
};

// Consistency guarantee of a structure's composite queries — the
// operations that read more than one key's state at once (size, rank,
// select, range_count, range_aggregate, range collection).  Point
// operations (insert/erase/contains) are linearizable for every
// registered structure; composite queries are where guarantees diverge:
//
//   * kLinearizable: the query takes effect at one instant between its
//     invocation and response; any update completed before the query
//     began is included, none begun after it ends is.  Every single-tree
//     structure gives this (queries run on one atomic root snapshot), as
//     do ShardedSet's epoch-stamped "-Lin" variants.
//   * kQuiescentlyConsistent: the API's weaker-than-linearizable bucket.
//     For ShardedSet's default snapshot mode this means: the query
//     observes a state containing every update completed before it began
//     and none begun after it ended, but updates *concurrent with the
//     query* may be observed inconsistently across shards (a later
//     update seen, an earlier one missed).  Individual structures may be
//     weaker still (ChromaticSet's size() traverses the live tree); the
//     per-structure table in docs/ARCHITECTURE.md states each exact
//     guarantee — consistency() only promises "not linearizable" here.
//
// The full per-structure, per-operation-class table lives in
// docs/ARCHITECTURE.md ("Consistency guarantees").
enum class Consistency { kLinearizable, kQuiescentlyConsistent };

inline const char* consistency_name(Consistency c) {
  return c == Consistency::kLinearizable ? "linearizable"
                                         : "quiescently_consistent";
}

// Optional introspection: structures whose composite queries are weaker
// than linearizable say so through a static hook; everything else defaults
// to linearizable (the repository-wide contract for single trees).
template <class S>
concept ConsistencyIntrospectable = requires {
  { S::composite_queries_linearizable() } -> std::convertible_to<bool>;
};

// Type-erased view of a registered structure.
//
// Thread-safety contract: every operation is safe to call from any number
// of threads concurrently with any other, with no external locking.  Point
// operations and single-structure queries are linearizable; composite
// queries give the guarantee reported by consistency().  All operations
// are non-blocking toward *other* threads' progress except where a
// concrete structure documents bounded waiting (the combining layer's
// publication spin and delegation's WaitForDelegatee, both bounded by
// set_delegation_timeout and falling back to solo execution).
class AbstractOrderedSet {
 public:
  virtual ~AbstractOrderedSet() = default;

  virtual bool insert(Key k) = 0;
  virtual bool erase(Key k) = 0;
  virtual bool contains(Key k) = 0;
  virtual std::int64_t size() = 0;

  // Order statistics.  Meaningful only when supports_order_statistics();
  // structures registered without them (the plain chromatic set) answer
  // range_count/rank with 0 and select_query with kInf2.
  virtual bool supports_order_statistics() const = 0;
  virtual std::int64_t range_count(Key lo, Key hi) = 0;
  virtual std::int64_t rank(Key k) = 0;
  virtual Key select_query(std::int64_t i) = 0;

  // Aggregate over [lo, hi] for structures whose augmentation exposes an
  // int64 aggregate (every SizeAug structure: the aggregate IS the
  // count).  Structures without one answer with range_count — identical
  // for SizeAug, and the benchmarks only issue this against SizeAug
  // structures.  Separate from range_count because the shard layer
  // serves it through a different path (boundary descents memoized in
  // the hot-range aggregate cache) than the rank-composed range_count.
  virtual std::int64_t range_aggregate(Key lo, Key hi) {
    return range_count(lo, hi);
  }

  // Advisory: keys will be drawn from [0, max_key).  The benchmark driver
  // calls this before prefilling; structures without a use for it (all the
  // single trees) keep the no-op default.  Returns whether it was applied.
  virtual bool set_key_range_hint(Key /*max_key*/) { return false; }

  // The guarantee this structure's composite queries (size/rank/select/
  // range_*) give under concurrent updates; see the Consistency enum.  The
  // benchmark driver reports it per run (stderr note + the JSON config's
  // "consistency" field) so quiescently-consistent numbers are never
  // mistaken for linearizable ones.
  virtual Consistency consistency() const {
    return Consistency::kLinearizable;
  }

  // Advisory: the calling thread expects to run about this many updates.
  // Structures backed by per-thread object pools pre-fault their free
  // lists so a fresh thread's first operations do not pay cold allocation
  // (first-touch jitter pollutes latency percentiles).  The benchmark
  // driver calls this from every prefill and worker thread before its
  // first operation; the default is a no-op.
  virtual void warm_up(std::size_t /*expected_updates*/) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  std::string name_;
};

// Bridges a concrete structure type into AbstractOrderedSet.  The concept
// split is resolved here, at compile time: RankedSet types get real order
// statistics, plain OrderedSet types get the documented fallbacks.
template <OrderedSet T>
class SetModel final : public AbstractOrderedSet {
 public:
  bool insert(Key k) override { return t_.insert(k); }
  bool erase(Key k) override { return t_.erase(k); }
  bool contains(Key k) override { return t_.contains(k); }
  std::int64_t size() override { return t_.size(); }

  bool supports_order_statistics() const override { return RankedSet<T>; }
  std::int64_t range_count(Key lo, Key hi) override {
    if constexpr (RankedSet<T>) return t_.range_count(lo, hi);
    return 0;
  }
  std::int64_t rank(Key k) override {
    if constexpr (RankedSet<T>) return t_.rank(k);
    return 0;
  }
  Key select_query(std::int64_t i) override {
    if constexpr (RankedSet<T>) return t_.select(i).value_or(0);
    return kInf2;
  }
  std::int64_t range_aggregate(Key lo, Key hi) override {
    if constexpr (requires(const T ct) {
                    {
                      ct.range_aggregate(lo, hi)
                    } -> std::convertible_to<std::int64_t>;
                  }) {
      return t_.range_aggregate(lo, hi);
    } else if constexpr (RankedSet<T>) {
      return t_.range_count(lo, hi);
    } else {
      return 0;
    }
  }

  bool set_key_range_hint(Key max_key) override {
    if constexpr (KeyRangeHintable<T>) return t_.key_range_hint(max_key);
    return false;
  }

  Consistency consistency() const override {
    if constexpr (ConsistencyIntrospectable<T>) {
      return T::composite_queries_linearizable()
                 ? Consistency::kLinearizable
                 : Consistency::kQuiescentlyConsistent;
    }
    return Consistency::kLinearizable;
  }

  void warm_up(std::size_t expected_updates) override {
    if constexpr (requires(T t) { t.warm_up(expected_updates); }) {
      t_.warm_up(expected_updates);
    }
  }

  T& tree() { return t_; }

 private:
  T t_;
};

// Name -> factory map for every structure in the repository.  The builtin
// structures (the eight names the paper's figures use) are registered the
// first time instance() runs; user structures can be added at any point.
class StructureRegistry {
 public:
  using Factory = std::function<std::unique_ptr<AbstractOrderedSet>()>;

  struct Entry {
    Factory factory;
    bool ranked = false;       // satisfies RankedSet (order statistics)
    bool in_comparison = false;  // member of the Figures 6-9 comparison set
    int order = 0;             // registration order; fixes plot ordering
  };

  static StructureRegistry& instance();

  // Registers `name`; replaces any previous registration of the same name
  // (tests use this to shadow a builtin with an instrumented double).
  void register_structure(std::string name, Entry entry);

  // Registers a concrete type under `name`.  The concept check happens
  // here: T must at least be an OrderedSet, and `ranked` is derived from
  // the type rather than trusted from the caller.
  template <OrderedSet T>
  void register_type(const std::string& name, bool in_comparison = false) {
    Entry e;
    e.factory = [name] {
      auto s = std::make_unique<SetModel<T>>();
      s->set_name(name);
      return std::unique_ptr<AbstractOrderedSet>(std::move(s));
    };
    e.ranked = RankedSet<T>;
    e.in_comparison = in_comparison;
    register_structure(name, std::move(e));
  }

  // Instantiates `name`, or returns nullptr if it is not registered.
  std::unique_ptr<AbstractOrderedSet> create(const std::string& name) const;

  bool contains(const std::string& name) const;
  bool is_ranked(const std::string& name) const;

  // All registered names, sorted.
  std::vector<std::string> names() const;

  // The cross-structure comparison set used by Figures 6-9 (the paper
  // plots BAT-EagerDel, its best variant, against the four baselines;
  // Figures 5 and 10 additionally include the other BAT variants).
  std::vector<std::string> comparison_set() const;

 private:
  StructureRegistry();  // registers the builtin structures

  std::map<std::string, Entry> entries_;
};

}  // namespace cbat::api
