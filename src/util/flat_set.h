// Open-addressing set of pointers with O(1) amortized clear.
//
// Propagate (paper Fig. 3) keeps a per-call `refreshed` set of Node*.  The
// set is consulted on every step of the downward traversal, so it must be
// cheap: open addressing, power-of-two capacity, and "clear by version
// stamp" so that clearing between Propagate calls costs O(1).
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace cbat {

class FlatPtrSet {
 public:
  explicit FlatPtrSet(std::size_t initial_capacity = 64) {
    init(initial_capacity);
  }

  void clear() {
    ++stamp_;
    size_ = 0;
    if (stamp_ == 0) {  // stamp wrapped: really wipe
      std::memset(stamps_.data(), 0, stamps_.size() * sizeof(stamps_[0]));
      stamp_ = 1;
    }
  }

  bool contains(const void* p) const {
    std::size_t i = slot(p);
    while (stamps_[i] == stamp_) {
      if (keys_[i] == p) return true;
      i = (i + 1) & mask_;
    }
    return false;
  }

  // Inserts p; returns true if newly inserted.
  bool insert(const void* p) {
    if (size_ * 2 >= keys_.size()) grow();
    std::size_t i = slot(p);
    while (stamps_[i] == stamp_) {
      if (keys_[i] == p) return false;
      i = (i + 1) & mask_;
    }
    keys_[i] = p;
    stamps_[i] = stamp_;
    ++size_;
    return true;
  }

  std::size_t size() const { return size_; }

 private:
  void init(std::size_t cap) {
    std::size_t c = 16;
    while (c < cap) c <<= 1;
    keys_.assign(c, nullptr);
    stamps_.assign(c, 0);
    mask_ = c - 1;
    stamp_ = 1;
    size_ = 0;
  }

  void grow() {
    std::vector<const void*> old_keys = std::move(keys_);
    std::vector<std::uint32_t> old_stamps = std::move(stamps_);
    const std::uint32_t old_stamp = stamp_;
    init(old_keys.size() * 2);
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_stamps[i] == old_stamp) insert(old_keys[i]);
    }
  }

  std::size_t slot(const void* p) const {
    auto h = reinterpret_cast<std::uintptr_t>(p);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h) & mask_;
  }

  std::vector<const void*> keys_;
  std::vector<std::uint32_t> stamps_;
  std::size_t mask_ = 0;
  std::uint32_t stamp_ = 1;
  std::size_t size_ = 0;
};

}  // namespace cbat
