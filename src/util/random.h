// Small fast PRNGs for workload generation and randomized tests.
//
// xoshiro256** by Blackman & Vigna: fast, high quality, and cheap enough to
// sit inside a benchmark loop without perturbing what we measure.
#pragma once

#include <cstdint>

namespace cbat {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform value in [0, bound). Lemire-style multiply-shift reduction; the
  // slight modulo bias of the plain version is irrelevant for workloads but
  // we keep the unbiased fast path anyway.
  std::uint64_t below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  // Uniform value in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  double uniform01() {
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace cbat
