// Cache-line padding helpers.
//
// Shared per-thread slots (epoch announcements, statistics counters) are
// padded to a cache line each so that writes by one thread do not invalidate
// lines read by others (false sharing).
#pragma once

#include <cstddef>

namespace cbat {

inline constexpr std::size_t kCacheLine = 128;  // covers adjacent-line prefetch

template <class T>
struct alignas(kCacheLine) Padded {
  T value{};

  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
  T& operator*() { return value; }
  const T& operator*() const { return value; }
};

}  // namespace cbat
