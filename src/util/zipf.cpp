#include "util/zipf.h"

#include <cmath>

namespace cbat {

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_num_elements_ = h_integral(static_cast<double>(n) + 0.5);
  s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

double ZipfGenerator::h(double x) const {
  return std::exp(-theta_ * std::log(x));
}

double ZipfGenerator::h_integral(double x) const {
  const double log_x = std::log(x);
  // integral of x^-theta; helper handles theta ~ 1 smoothly via expm1/log1p.
  const double t = (1.0 - theta_) * log_x;
  double v;
  if (std::fabs(t) > 1e-8) {
    v = std::expm1(t) / (1.0 - theta_);
  } else {
    v = log_x * (1.0 + t / 2.0 + t * t / 6.0);
  }
  return v;
}

double ZipfGenerator::h_integral_inverse(double x) const {
  double t = x * (1.0 - theta_);
  if (t < -1.0) t = -1.0;  // clamp against rounding
  double v;
  if (std::fabs(t) > 1e-8) {
    v = std::log1p(t) / (1.0 - theta_);
  } else {
    v = x * (1.0 - x * (1.0 - theta_) / 2.0 +
             x * x * (1.0 - theta_) * (1.0 - theta_) / 3.0);
  }
  return std::exp(v);
}

std::uint64_t ZipfGenerator::next(Xoshiro256& rng) const {
  while (true) {
    const double u =
        h_integral_num_elements_ +
        rng.uniform01() * (h_integral_x1_ - h_integral_num_elements_);
    const double x = h_integral_inverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    // Accept k either via the cheap squeeze (k close enough to x) or the
    // exact rejection test against the hat function.
    if (kd - x <= s_ || u >= h_integral(kd + 0.5) - h(kd)) {
      return k;
    }
  }
}

}  // namespace cbat
