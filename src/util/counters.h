// Per-thread event counters for the paper's §7 statistics.
//
// The paper reports, per Propagate call: nodes visited beyond the initial
// search path, nil versions filled in, CASes attempted, and delegations.
// Counters are plain per-thread slots (padded; no synchronization on the hot
// path) aggregated on demand by `snapshot()`.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "util/padded.h"
#include "util/thread_registry.h"

namespace cbat {

enum class Counter : int {
  kPropagateCalls = 0,
  kPropagateNodes,       // nodes refreshed or traversed by Propagate
  kPropagateExtraNodes,  // nodes beyond the initial root-to-leaf search path
  kSearchPathNodes,      // nodes on the initial search path
  kRefreshCas,           // CAS attempts on version pointers
  kRefreshCasFail,
  kNilRefreshes,         // RefreshNil version installs
  kDelegations,
  kDelegationTimeouts,
  kScxAttempts,
  kScxFailures,
  kRebalanceSteps,
  // Combining layer (src/combine/): batches applied by a combiner, total
  // requests those batches carried (occupancy = ops / batches), updates
  // that ran solo (no combining), and waiters that timed out and retracted.
  kCombineBatches,
  kCombineBatchedOps,
  kCombineSolo,
  kCombineTimeouts,
  // Read-side layer (src/shard/aggregate_cache.h + snapshot leasing):
  // per-shard aggregate-cache lookups that validated against the pinned
  // root's stamp (hit) or had to recompute (miss); leased cuts acquired by
  // read combiners, total composite reads answered from leased cuts, and
  // composite reads that ran direct (lease off, buffer full, or timeout).
  kAggCacheHits,
  kAggCacheMisses,
  kLeaseCuts,
  kLeaseBatchedReads,
  kLeaseSoloReads,
  // Adaptive shard layer (src/shard/): completed boundary migrations, keys
  // bulk-moved by them, updates that were double-routed into the dirty
  // log while a copy was in flight, and the controller's imbalance
  // samples (hottest shard's rate over the mean, in milli-units, summed —
  // divide by the sample count for the average the bench reports).
  kShardMigrations,
  kShardMigratedKeys,
  kShardDoubleRoutes,
  kShardImbalanceSumMilli,
  kShardImbalanceSamples,
  // Robustness layer (PR 9): backoff pauses taken by combining slot-waiters
  // (each pause is one exponential step of util/backoff.h, charged against
  // the delegation budget), EBR limbo bags crossing the high-water mark and
  // triggering an inline reclaim attempt, and migrations that faulted
  // before the map flip and rolled back to the old map.
  kCombineRetractBackoffs,
  kEbrPressureEvents,
  kShardMigrationAborts,
  kNumCounters
};

class Counters {
 public:
  static constexpr int kN = static_cast<int>(Counter::kNumCounters);

  static void bump(Counter c, std::uint64_t n = 1) {
    slot()[static_cast<int>(c)] += n;
  }

  struct Snapshot {
    std::array<std::uint64_t, kN> v{};
    std::uint64_t operator[](Counter c) const { return v[static_cast<int>(c)]; }
  };

  // Sums all thread slots (approximate while threads run; exact at quiescence).
  static Snapshot snapshot();

  // Zeroes all slots; call only while no worker threads run.
  static void reset();

 private:
  static std::uint64_t* slot();
};

}  // namespace cbat
