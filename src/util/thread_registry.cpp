#include "util/thread_registry.h"

#include <cstdio>
#include <cstdlib>

namespace cbat {

namespace {

// RAII owner of a slot, stored thread_local so the slot frees at thread exit.
struct SlotOwner {
  int id = -1;
  ~SlotOwner();
};

thread_local SlotOwner tl_slot;

}  // namespace

struct ThreadSlot {
  static int ensure() {
    if (tl_slot.id < 0) tl_slot.id = ThreadRegistry::instance().acquire();
    return tl_slot.id;
  }
  static void release(int id) { ThreadRegistry::instance().release(id); }
};

namespace {
SlotOwner::~SlotOwner() {
  if (id >= 0) ThreadSlot::release(id);
}
}  // namespace

ThreadRegistry& ThreadRegistry::instance() {
  static ThreadRegistry reg;
  return reg;
}

int ThreadRegistry::thread_id() { return ThreadSlot::ensure(); }

int ThreadRegistry::acquire() {
  for (int i = 0; i < kMaxThreads; ++i) {
    bool expected = false;
    if (used_[i].compare_exchange_strong(expected, true,
                                         std::memory_order_seq_cst)) {
      int hw = high_water_.load(std::memory_order_seq_cst);
      while (hw < i + 1 &&
             !high_water_.compare_exchange_weak(hw, i + 1,
                                                std::memory_order_seq_cst)) {
      }
      return i;
    }
  }
  std::fprintf(stderr, "cbat: more than %d concurrent threads\n", kMaxThreads);
  std::abort();
}

void ThreadRegistry::release(int id) {
  used_[id].store(false, std::memory_order_release);
}

}  // namespace cbat
