// Deterministic fault injection (see fault.h for the model and contract).
//
// This TU is always part of cbat_core; without -DCBAT_FAULT_INJECTION=ON
// the header never declares the API and this file compiles to nothing, so
// the default build carries no injection code at all.
#include "util/fault.h"

#if defined(CBAT_FAULT_INJECTION) && CBAT_FAULT_INJECTION

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/backoff.h"

namespace cbat {
namespace {

// splitmix64: the usual 64-bit finalizer; good enough to decorrelate
// (seed, thread, site) without any cross-thread state.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const char* s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (; *s != '\0'; ++s) h = (h ^ static_cast<unsigned char>(*s)) * 0x100000001b3ULL;
  return h;
}

std::mutex g_mu;  // guards sites_seen() and budgets() below

std::set<std::string>& sites_seen() {
  static std::set<std::string> s;
  return s;
}

struct SiteBudget {
  std::string name;
  std::uint32_t forced = 0;
};

std::vector<SiteBudget>& budgets() {
  static std::vector<SiteBudget> v;
  return v;
}

FaultPlan g_plan;  // written only while disarmed (header contract)

// shared: the armed flag and plan epoch are read on every instrumented
// operation from all worker threads and written only from the test driver;
// false sharing between them is irrelevant off the product hot path.
std::atomic<bool> g_armed{false};
// shared: see g_armed.
std::atomic<std::uint64_t> g_epoch{0};
// shared: statistics totals, read by tests after workers join.
std::atomic<std::uint64_t> g_injections{0};
// shared: see g_injections.
std::atomic<std::uint64_t> g_forced{0};

// Stable small integer per thread: unlike std::thread::id it is assigned in
// first-use order, so a single-threaded run draws the same per-thread seed
// on every execution of the same binary.
std::uint32_t thread_index() {
  // shared: monotone id source, touched once per thread lifetime.
  static std::atomic<std::uint32_t> next{0};
  // relaxed: unique tickets only; no ordering with anything else.
  thread_local std::uint32_t mine = next.fetch_add(1, std::memory_order_relaxed);
  return mine;
}

struct ThreadRng {
  std::uint64_t epoch = ~0ULL;
  std::uint64_t state = 0;
  // Site literals this thread already registered under the current plan
  // (pointer cache: one slow-path registration per site per thread).
  std::vector<const char*> registered;
};

ThreadRng& rng() {
  thread_local ThreadRng r;
  return r;
}

// Draws the next pseudo-random word for a visit to `site`, reseeding when a
// new plan was armed.  The per-thread stream depends only on (plan seed,
// thread index), so re-arming the identical plan replays the identical
// stream; the site hash decorrelates co-located fault points.
std::uint64_t draw(const char* site) {
  ThreadRng& r = rng();
  const std::uint64_t e = g_epoch.load(std::memory_order_acquire);
  if (r.epoch != e) {
    r.epoch = e;
    r.state = mix(g_plan.seed ^ (0x9e3779b97f4a7c15ULL * (thread_index() + 1)));
    r.registered.clear();
  }
  r.state = mix(r.state);
  return r.state ^ fnv1a(site);
}

void register_site(const char* site) {
  ThreadRng& r = rng();
  if (std::find(r.registered.begin(), r.registered.end(), site) !=
      r.registered.end()) {
    return;
  }
  r.registered.push_back(site);
  std::lock_guard<std::mutex> lk(g_mu);
  sites_seen().insert(site);
}

bool site_enabled(const char* site) {
  return g_plan.only_site == nullptr || std::strcmp(g_plan.only_site, site) == 0;
}

// Consumes one unit of `site`'s forced-failure budget; false once spent.
bool take_budget(const char* site) {
  std::lock_guard<std::mutex> lk(g_mu);
  for (SiteBudget& b : budgets()) {
    if (b.name == site) {
      if (b.forced >= g_plan.max_fails_per_site) return false;
      ++b.forced;
      return true;
    }
  }
  budgets().push_back(SiteBudget{site, 1});
  return g_plan.max_fails_per_site > 0;
}

}  // namespace

void fault_arm(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lk(g_mu);
  g_plan = plan;
  sites_seen().clear();
  budgets().clear();
  // relaxed: totals are plain statistics; the epoch/armed stores below
  // publish the new plan.
  g_injections.store(0, std::memory_order_relaxed);
  g_forced.store(0, std::memory_order_relaxed);
  g_epoch.fetch_add(1, std::memory_order_acq_rel);
  g_armed.store(true, std::memory_order_release);
}

void fault_disarm() { g_armed.store(false, std::memory_order_release); }

bool fault_armed() { return g_armed.load(std::memory_order_acquire); }

std::uint64_t fault_injections() {
  // relaxed: read at quiescence by tests.
  return g_injections.load(std::memory_order_relaxed);
}

std::uint64_t fault_forced_failures() {
  // relaxed: read at quiescence by tests.
  return g_forced.load(std::memory_order_relaxed);
}

std::vector<std::string> fault_sites_seen() {
  std::lock_guard<std::mutex> lk(g_mu);
  return std::vector<std::string>(sites_seen().begin(), sites_seen().end());
}

namespace fault_detail {

void point(const char* site) {
  if (!g_armed.load(std::memory_order_acquire)) return;
  register_site(site);
  if (!site_enabled(site)) return;
  const std::uint64_t r = draw(site);
  if (g_plan.delay_permil != 0 && (r & 1023u) < g_plan.delay_permil) {
    // Short bounded spin: long enough to stretch a seqlock window or a
    // phase boundary past a concurrent reader, short enough to keep the
    // chaos suite fast.
    const std::uint32_t spins = 64 + static_cast<std::uint32_t>((r >> 20) & 2047u);
    for (std::uint32_t i = 0; i < spins; ++i) cpu_relax();
    // relaxed: statistics only.
    g_injections.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (g_plan.yield_permil != 0 && ((r >> 10) & 1023u) < g_plan.yield_permil) {
    std::this_thread::yield();
    // relaxed: statistics only.
    g_injections.fetch_add(1, std::memory_order_relaxed);
  }
}

bool should_fail(const char* site) {
  if (!g_armed.load(std::memory_order_acquire)) return false;
  register_site(site);
  if (!site_enabled(site)) return false;
  if (g_plan.fail_permil == 0) return false;
  const std::uint64_t r = draw(site);
  if ((r & 1023u) >= g_plan.fail_permil) return false;
  if (!take_budget(site)) return false;
  // relaxed: statistics only.
  g_injections.fetch_add(1, std::memory_order_relaxed);
  // relaxed: statistics only.
  g_forced.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace fault_detail

}  // namespace cbat

#endif  // CBAT_FAULT_INJECTION
