// Global thread registry.
//
// Every concurrency-sensitive component (EBR, statistics counters,
// per-thread scratch space) needs a small dense integer id per thread.
// Threads acquire a slot the first time they touch the library and release
// it at thread exit, so slots are recycled across benchmark phases.
#pragma once

#include <atomic>
#include <cstdint>

namespace cbat {

inline constexpr int kMaxThreads = 288;  // > paper's 192 hyperthreads

class ThreadRegistry {
 public:
  static ThreadRegistry& instance();

  // Dense id of the calling thread, registering it if needed.
  static int thread_id();

  // Upper bound (exclusive) over ids ever handed out; scan limit for EBR.
  int max_id() const { return high_water_.load(std::memory_order_seq_cst); }

 private:
  friend struct ThreadSlot;
  ThreadRegistry() = default;

  int acquire();
  void release(int id);

  // shared: touched once per thread lifetime (acquire/release of a
  // slot); false sharing on this cold path is irrelevant.
  std::atomic<bool> used_[kMaxThreads] = {};
  std::atomic<int> high_water_{0};
};

}  // namespace cbat
