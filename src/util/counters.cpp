#include "util/counters.h"

#include <cstring>

namespace cbat {

namespace {
Padded<std::array<std::uint64_t, Counters::kN>> g_slots[kMaxThreads];
}  // namespace

std::uint64_t* Counters::slot() {
  return g_slots[ThreadRegistry::thread_id()]->data();
}

Counters::Snapshot Counters::snapshot() {
  Snapshot s;
  const int n = ThreadRegistry::instance().max_id();
  for (int t = 0; t < n; ++t) {
    for (int c = 0; c < kN; ++c) s.v[c] += g_slots[t]->at(c);
  }
  return s;
}

void Counters::reset() {
  const int n = ThreadRegistry::instance().max_id();
  for (int t = 0; t < n; ++t) g_slots[t]->fill(0);
}

}  // namespace cbat
