// Key type and sentinel values shared by every tree in the library.
//
// All trees in this repository store sets of 64-bit integer keys.  The
// chromatic tree and the FR-BST are leaf-oriented and keep a couple of
// sentinel nodes with "infinite" keys at the top of the tree (paper §3.1),
// so the largest two representable keys are reserved.
#pragma once

#include <cstdint>
#include <limits>

namespace cbat {

using Key = std::int64_t;

// Sentinel keys: INF2 > INF1 > every user key.
inline constexpr Key kInf2 = std::numeric_limits<Key>::max();
inline constexpr Key kInf1 = std::numeric_limits<Key>::max() - 1;

// Largest key a caller may insert.
inline constexpr Key kMaxUserKey = kInf1 - 1;

inline constexpr bool is_sentinel_key(Key k) { return k >= kInf1; }

}  // namespace cbat
