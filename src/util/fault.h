// Deterministic fault injection for the concurrency protocols.
//
// Mirrors thread_annotations.h: a macro layer that compiles to nothing in
// normal builds.  Configure with -DCBAT_FAULT_INJECTION=ON to turn the two
// macros into calls; otherwise CBAT_FAULT_POINT expands to ((void)0) and
// CBAT_FAULT_FORCE to false, so every instrumented branch folds away and
// the default build pays no perf tax (the smoke-bench gate enforces it).
//
// Sites are named string literals ("pool.alloc_fail", "mig.sealed", ...).
// scripts/check_concurrency.py enforces that every site name is globally
// unique, so a seeded plan can target exactly one protocol step.
//
//   CBAT_FAULT_POINT(site)   benign perturbation hook: the armed plan may
//                            inject a scheduler yield or a short spin delay
//                            here.  Use at protocol steps whose *timing*
//                            matters (phase boundaries, seqlock windows).
//
//   CBAT_FAULT_FORCE(site)   failure hook: evaluates to true when the armed
//                            plan forces the failure path at this site
//                            (allocation failure, CAS retry, publisher
//                            timeout, ...).  The caller owns the recovery;
//                            the plan's per-site budget guarantees the
//                            forced path is bounded, so retry loops always
//                            terminate.
//
// Determinism: decisions are pure functions of (plan seed, caller thread id,
// site name hash, visit number) — a single-threaded run with a fixed plan
// injects the identical fault sequence every time.  Multi-threaded runs are
// deterministic per thread; interleavings still vary, which is the point of
// the chaos suite.
//
// Arm/disarm contract: fault_arm()/fault_disarm() may only be called while
// no worker thread is inside an instrumented operation (test setup and
// teardown).  The armed flag itself is atomic, so a stale read during the
// transition merely skips or applies one injection — never tears the plan.
#pragma once

#if defined(CBAT_FAULT_INJECTION) && CBAT_FAULT_INJECTION

#include <cstdint>
#include <string>
#include <vector>

namespace cbat {

struct FaultPlan {
  // Seed folded into each thread's PRNG and each site's name hash.
  std::uint64_t seed = 1;
  // Injection probabilities in 1/1024 units per visit to a fault point.
  std::uint32_t yield_permil = 0;  // CBAT_FAULT_POINT: std::this_thread::yield
  std::uint32_t delay_permil = 0;  // CBAT_FAULT_POINT: short bounded spin
  std::uint32_t fail_permil = 0;   // CBAT_FAULT_FORCE: take the failure path
  // Hard cap on forced failures per site, process-wide across threads.
  // This is what keeps retry-with-backoff loops terminating: once a site
  // exhausts its budget, CBAT_FAULT_FORCE reports false forever (until the
  // next fault_arm).  Keep it well below Pool's allocation retry cap.
  std::uint32_t max_fails_per_site = 48;
  // Restrict injection to one exact site name; nullptr targets all sites.
  const char* only_site = nullptr;
};

// Installs `plan` and starts injecting.  Resets all per-site budgets, the
// injection totals, and the sites-seen registry.
void fault_arm(const FaultPlan& plan);

// Stops injecting.  Counters and the sites-seen registry survive until the
// next fault_arm so tests can assert on them after joining workers.
void fault_disarm();

bool fault_armed();

// Total injections performed since the last fault_arm (yields + delays +
// forced failures), and the forced-failure subtotal.
std::uint64_t fault_injections();
std::uint64_t fault_forced_failures();

// Names of every site visited (armed or filtered, injected or not) since
// the last fault_arm, sorted.  The chaos suite uses this to prove the plan
// matrix actually reached the instrumented layers.
std::vector<std::string> fault_sites_seen();

namespace fault_detail {
void point(const char* site);
bool should_fail(const char* site);
}  // namespace fault_detail

}  // namespace cbat

#define CBAT_FAULT_POINT(site) ::cbat::fault_detail::point(site)
#define CBAT_FAULT_FORCE(site) ::cbat::fault_detail::should_fail(site)

#else  // !CBAT_FAULT_INJECTION

#define CBAT_FAULT_POINT(site) ((void)0)
#define CBAT_FAULT_FORCE(site) false

#endif  // CBAT_FAULT_INJECTION
