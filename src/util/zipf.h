// Zipfian sampler over {1..n} with exponent theta.
//
// The paper's size-scalability experiment (Figure 10) and the propagate
// statistics (§7) draw keys from Zipfian distributions with parameters 0.95
// and 0.99.  We use the rejection-inversion sampler of Hörmann & Derflinger,
// which needs O(1) state (no O(n) table) and is exact.
#pragma once

#include <cstdint>

#include "util/random.h"

namespace cbat {

class ZipfGenerator {
 public:
  // n: number of distinct items; theta: skew (0 = uniform-ish, ~1 = heavy).
  ZipfGenerator(std::uint64_t n, double theta);

  // Returns a value in [1, n]; item 1 is the most popular.
  std::uint64_t next(Xoshiro256& rng) const;

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double h(double x) const;
  double h_integral(double x) const;
  double h_integral_inverse(double x) const;

  std::uint64_t n_;
  double theta_;
  double h_integral_x1_;
  double h_integral_num_elements_;
  double s_;
};

}  // namespace cbat
