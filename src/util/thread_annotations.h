// Clang Thread Safety Analysis attribute macros.
//
// Wraps the `thread_safety` attribute family so annotations compile away on
// non-clang compilers (GCC builds see empty macros and pay nothing).  Under
// clang with -Wthread-safety (-DCBAT_THREAD_SAFETY=ON adds
// -Werror=thread-safety) the analysis statically checks that:
//
//   * functions annotated CBAT_REQUIRES(cap) are only called while `cap`
//     is held,
//   * CBAT_ACQUIRE/CBAT_RELEASE pairs balance along every control path,
//   * data annotated CBAT_GUARDED_BY(mu) is only touched under `mu`.
//
// The repo's central use is the EBR-guard capability (see reclamation/ebr.h):
// every function that dereferences a raw `Version*` is
// CBAT_REQUIRES(ebr_capability), so guardless traversal is a compile error.
//
// Analysis caveats the annotations in this repo are written around:
//   * TSA is intraprocedural; annotated primitives are trusted (an ACQUIRE
//     function's body need not visibly acquire anything).
//   * Scoped capabilities are tracked for named local variables, not for
//     member subobjects — classes holding a guard member assert the
//     capability instead (see ebr_assert_held()).
//   * A function that releases a held capability mid-body must be annotated
//     RELEASE, not REQUIRES (REQUIRES expects the capability still held at
//     exit).
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define CBAT_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CBAT_THREAD_ANNOTATION_(x)  // no-op off clang
#endif

// Class annotations ---------------------------------------------------------

// Marks a class as a capability (lock-like object) named `x` in diagnostics.
#define CBAT_CAPABILITY(x) CBAT_THREAD_ANNOTATION_(capability(x))

// Marks an RAII class whose constructor acquires and destructor releases a
// capability (std::lock_guard shape).
#define CBAT_SCOPED_CAPABILITY CBAT_THREAD_ANNOTATION_(scoped_lockable)

// Data annotations ----------------------------------------------------------

// Data member may only be accessed while holding the given capability.
#define CBAT_GUARDED_BY(x) CBAT_THREAD_ANNOTATION_(guarded_by(x))

// Pointer member: the *pointee* may only be accessed while holding `x`.
#define CBAT_PT_GUARDED_BY(x) CBAT_THREAD_ANNOTATION_(pt_guarded_by(x))

// Function annotations ------------------------------------------------------

// Caller must hold the capability; the function does not release it.
#define CBAT_REQUIRES(...) \
  CBAT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

// Caller must hold the capability in shared (reader) mode.
#define CBAT_REQUIRES_SHARED(...) \
  CBAT_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// Function acquires the capability (caller must not already hold it).
#define CBAT_ACQUIRE(...) \
  CBAT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

// Function releases the capability (caller must hold it).
#define CBAT_RELEASE(...) \
  CBAT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

// Function attempts the acquisition; holds it iff the return value equals
// the first argument.
#define CBAT_TRY_ACQUIRE(...) \
  CBAT_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// Caller must NOT hold the capability (deadlock / re-entrancy guard).
#define CBAT_EXCLUDES(...) CBAT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Asserts (without runtime effect here) that the capability is held; used
// where a guard is provably held through a member object or a protocol that
// TSA cannot see.  Every call site carries a `// guard:` comment saying why.
#define CBAT_ASSERT_CAPABILITY(x) \
  CBAT_THREAD_ANNOTATION_(assert_capability(x))

// Function returns a reference to the capability guarding its result.
#define CBAT_RETURN_CAPABILITY(x) CBAT_THREAD_ANNOTATION_(lock_returned(x))

// Opts a function out of the analysis entirely (deliberate protocol
// violations in tests, e.g. probing that a held try-lock fails).
#define CBAT_NO_THREAD_SAFETY_ANALYSIS \
  CBAT_THREAD_ANNOTATION_(no_thread_safety_analysis)
