// Exponential backoff for CAS retry loops.
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace cbat {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

class Backoff {
 public:
  explicit Backoff(std::uint32_t max_spins = 1024)
      : limit_(1), max_(max_spins) {}

  // Returns the number of relax spins performed so wait loops can charge
  // backoff cost against a spin budget (e.g. the delegation timeout).
  std::uint32_t pause() {
    const std::uint32_t spun = limit_;
    for (std::uint32_t i = 0; i < limit_; ++i) cpu_relax();
    if (limit_ < max_) limit_ *= 2;
    // Give the scheduler a chance once contention persists; essential when
    // threads outnumber cores (our test machines are small).
    if (limit_ >= max_) std::this_thread::yield();
    return spun;
  }

  void reset() { limit_ = 1; }

 private:
  std::uint32_t limit_;
  std::uint32_t max_;
};

}  // namespace cbat
