// A single-word seqlock, factored out of shard/aggregate_cache.h so the
// write side can be a Thread Safety Analysis capability: publishing without
// first claiming the writer token (try_write) is a compile error under
// -DCBAT_THREAD_SAFETY=ON.
//
// Protocol (even = stable, odd = writer in flight):
//
//   writer:  try_write()  — relaxed CAS seq -> seq|1, then a release fence;
//                           on success the caller owns the entry and stores
//                           the payload with relaxed atomic stores
//            end_write()  — release-store seq+1 (back to even), publishing
//                           the payload
//
//   reader:  s = read_begin()           — acquire load
//            if (!is_stable(s)) miss    — writer in flight
//            ... relaxed payload loads ...
//            if (!read_validate(s)) miss — acquire fence + relaxed re-check
//
// The payload itself stays in the client and is deliberately NOT
// CBAT_GUARDED_BY the seqlock: readers access it *racily* and then validate,
// which is the whole point of the protocol.  Payload fields must be atomics
// (relaxed is enough; the fences above order them) so the racy reads are not
// UB.  Only the write side is a capability.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/thread_annotations.h"

namespace cbat {

class CBAT_CAPABILITY("seqlock") Seqlock {
 public:
  // ---- reader side ----

  // First half of an optimistic read; pair with read_validate().
  std::uint64_t read_begin() const {
    return seq_.load(std::memory_order_acquire);
  }

  static constexpr bool is_stable(std::uint64_t s) { return (s & 1) == 0; }

  // True iff no writer intervened since read_begin() returned s1.  The
  // acquire fence orders the caller's relaxed payload loads before the
  // re-check.
  bool read_validate(std::uint64_t s1) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    // relaxed: the fence above provides the ordering; this load only has to
    // observe a value, any later write changes it and fails the compare.
    return seq_.load(std::memory_order_relaxed) == s1;
  }

  // ---- writer side ----

  // Claims the writer token (seq -> odd).  Fails if a writer is already in
  // flight or the CAS is contended; callers treat failure as "someone else
  // is publishing, skip".  On success the trailing release fence orders the
  // caller's subsequent relaxed payload stores after the claim.
  bool try_write() CBAT_TRY_ACQUIRE(true) {
    // relaxed: claim visibility is carried by the fence below and by
    // end_write()'s release store; the CAS only needs atomicity.
    std::uint64_t s = seq_.load(std::memory_order_relaxed);
    if (!is_stable(s)) return false;
    if (!seq_.compare_exchange_strong(s, s + 1, std::memory_order_relaxed)) {
      return false;
    }
    std::atomic_thread_fence(std::memory_order_release);
    return true;
  }

  // Publishes: seq back to even with a release store.  Caller must hold the
  // writer token (enforced by TSA).
  void end_write() CBAT_RELEASE() {
    // relaxed: reads back our own claim (only the token holder reaches
    // here), so coherence alone suffices.
    const std::uint64_t s = seq_.load(std::memory_order_relaxed);
    seq_.store(s + 1, std::memory_order_release);
  }

 private:
  // shared: the sequence word deliberately shares its line with the
  // payload it versions — the reader wants both in one cache fill (see
  // the packed-row note in aggregate_cache.h).
  std::atomic<std::uint64_t> seq_{0};
};

}  // namespace cbat
