// Version objects and PropStatus (paper §3.2, §4, Appendix A Fig. 11).
//
// Every tree node points at a Version holding the current value of its
// supplementary fields.  Versions are immutable once published and point to
// the child versions they were computed from, so the versions themselves
// form a BST (the *version tree*) mirroring the node tree; reading the
// root's version pointer therefore yields an atomic snapshot on which any
// sequential query can run unmodified.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/augmentations.h"
#include "reclamation/ebr.h"
#include "util/keys.h"

namespace cbat {

// Synchronization cell for the delegation optimization (§5): one per
// Propagate call; versions record the PropStatus of the Propagate whose
// Refresh created them so a beaten Refresh knows whom to wait for.
struct PropStatus {
  // shared: one short-lived cell per Propagate; waiters spin on done by
  // design, and padding would defeat the pool's size-class reuse.
  std::atomic<bool> done{false};
  std::atomic<PropStatus*> delegatee{nullptr};
};

// Sentinel for a root version whose epoch stamp has not been assigned yet
// (vcas-style deferred timestamping; see the epoch helpers below).  Real
// stamps are >= 1, so value-initialized versions start unstamped.
inline constexpr std::uint64_t kEpochTbd = 0;

template <Augmentation Aug>
struct Version {
  using Value = typename Aug::Value;

  Version* left;   // child versions; null iff this is a leaf version
  Version* right;
  Key key;         // key of the node this version was created for
  Value aug;       // the supplementary fields
  PropStatus* status;  // Propagate that installed this version (may be null)

  // Root-history fields, used only by versions installed at a tree's root
  // node when an epoch source is attached (BatTree::set_epoch_source; the
  // shard layer's linearizable snapshots).  `prev_root` links to the root
  // version this one replaced (written before publication, immutable
  // after); `epoch` is the global-counter stamp assigned *after* the
  // install — mutable so readers can help-finalize it through const
  // snapshot pointers.  Both stay zero/null on non-root versions.
  //
  // Deliberate tradeoff: these 16 bytes ride on EVERY version, including
  // the interior/leaf versions that never use them, rather than splitting
  // roots into an extended record — the refresh path, the retire path,
  // and the pools would all have to distinguish two version types flowing
  // through one CAS slot (returning an extended record to the plain pool
  // corrupts both free lists).  The smoke gate showed the uniform layout
  // inside measurement noise on the unstamped single-tree figures.
  Version* prev_root = nullptr;
  // shared: per-version stamp, written at most once past kEpochTbd;
  // padding every version would double the dominant allocation.
  mutable std::atomic<std::uint64_t> epoch{kEpochTbd};

  bool is_leaf() const { return left == nullptr; }
};

// Finalizes v's epoch stamp if still unassigned and returns the stamp.
// The counter value is read only after `v` is known (program order), which
// is what keeps stamps monotone along a root's prev_root chain: a version
// can only be help-stamped by threads that saw it installed, and every
// stamp CAS that completed before that install used a smaller-or-equal
// counter value.  First CAS wins; losers return the established stamp.
template <Augmentation Aug>
std::uint64_t version_epoch(const Version<Aug>* v,
                            const std::atomic<std::uint64_t>& counter)
    CBAT_REQUIRES(ebr_capability) {
  std::uint64_t s = v->epoch.load(std::memory_order_acquire);
  if (s != kEpochTbd) return s;
  const std::uint64_t now = counter.load(std::memory_order_seq_cst);
  if (v->epoch.compare_exchange_strong(s, now, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
    return now;
  }
  return s;
}

// Unique-stamp finalize: like version_epoch, but draws the stamp from a
// fetch_add on the counter, so no two versions ever carry the same stamp
// (losing helpers waste a counter value — a gap, never a duplicate).  This
// is what makes stamp-compare validation sound for the aggregate caches
// (src/shard/aggregate_cache.h): with load-based stamps two roots installed
// between counter advances share a value, and a cache keyed on the stamp
// alone could serve one root's aggregate for the other.  The linearizable-
// snapshot invariant is preserved: a stamp assigned before an acquisition's
// fetch_add is <= the epoch that fetch_add returns (the stamp's own
// fetch_add already advanced the counter past it), and a stamp assigned
// after it is strictly greater.  Every stamper of a given forest must use
// the same mode — BatTree::set_epoch_source carries the choice.
template <Augmentation Aug>
std::uint64_t version_epoch_unique(const Version<Aug>* v,
                                   std::atomic<std::uint64_t>& counter)
    CBAT_REQUIRES(ebr_capability) {
  std::uint64_t s = v->epoch.load(std::memory_order_acquire);
  if (s != kEpochTbd) return s;
  const std::uint64_t now = counter.fetch_add(1, std::memory_order_seq_cst) + 1;
  if (v->epoch.compare_exchange_strong(s, now, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
    return now;
  }
  return s;
}

// Introspection: the stamp as currently assigned, without helping to
// finalize it (kEpochTbd while unassigned).  Tests and diagnostics only —
// a reader that needs a *final* stamp must use version_epoch[_unique].
template <Augmentation Aug>
std::uint64_t version_epoch_peek(const Version<Aug>* v)
    CBAT_REQUIRES(ebr_capability) {
  return v->epoch.load(std::memory_order_acquire);
}

// Resolves a root version against snapshot epoch `e`: walks the root
// history backward to the newest root stamped at or before `e`, helping to
// finalize unassigned stamps on the way.  Safe under an EBR guard taken
// before `e` was acquired: a stamp observed to be > `e` (or helped past it)
// was assigned after the guard began, and a superseded root is only
// retired after its stamp is final, so every prev_root this walk
// dereferences was retired — if at all — inside the guard's epoch.
template <Augmentation Aug>
const Version<Aug>* version_resolve_epoch(
    const Version<Aug>* v, std::uint64_t e,
    const std::atomic<std::uint64_t>& counter) CBAT_REQUIRES(ebr_capability) {
  while (v->prev_root != nullptr && version_epoch(v, counter) > e) {
    v = v->prev_root;
  }
  return v;
}

// version_resolve_epoch for unique-stamp forests: identical walk, but any
// helping along the way must mint unique stamps too (a load-mode helper
// inside a unique forest could duplicate a fetch_add-minted stamp).
template <Augmentation Aug>
const Version<Aug>* version_resolve_epoch_unique(
    const Version<Aug>* v, std::uint64_t e,
    std::atomic<std::uint64_t>& counter) CBAT_REQUIRES(ebr_capability) {
  while (v->prev_root != nullptr && version_epoch_unique(v, counter) > e) {
    v = v->prev_root;
  }
  return v;
}

}  // namespace cbat
