// Version objects and PropStatus (paper §3.2, §4, Appendix A Fig. 11).
//
// Every tree node points at a Version holding the current value of its
// supplementary fields.  Versions are immutable once published and point to
// the child versions they were computed from, so the versions themselves
// form a BST (the *version tree*) mirroring the node tree; reading the
// root's version pointer therefore yields an atomic snapshot on which any
// sequential query can run unmodified.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/augmentations.h"
#include "util/keys.h"

namespace cbat {

// Synchronization cell for the delegation optimization (§5): one per
// Propagate call; versions record the PropStatus of the Propagate whose
// Refresh created them so a beaten Refresh knows whom to wait for.
struct PropStatus {
  std::atomic<bool> done{false};
  std::atomic<PropStatus*> delegatee{nullptr};
};

template <Augmentation Aug>
struct Version {
  using Value = typename Aug::Value;

  Version* left;   // child versions; null iff this is a leaf version
  Version* right;
  Key key;         // key of the node this version was created for
  Value aug;       // the supplementary fields
  PropStatus* status;  // Propagate that installed this version (may be null)

  bool is_leaf() const { return left == nullptr; }
};

}  // namespace cbat
