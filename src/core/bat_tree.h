// BAT — the lock-free Balanced Augmented Tree (paper §4, §5, §6).
//
// An update first runs the chromatic-tree routine (CTInsert/CTDelete, with
// the Version Initialization Rules of Definition 1 applied to every node it
// allocates), then calls Propagate to carry the update's effect on the
// supplementary fields up to the root.  Queries read Root.version once and
// run sequential algorithms on the resulting immutable snapshot
// (version_queries.h).
//
// Three variants, selected by the Delegation template parameter:
//   kNone     — plain BAT (paper Fig. 3): double refresh per node.
//   kDel      — BAT-Del (Fig. 13): delegate after a failed double refresh.
//   kEagerDel — BAT-EagerDel (Fig. 14): delegate after a single failure,
//               with the children-version stability re-check.
// Both delegation schemes use the PropStatus chain of Appendix A and can be
// made non-blocking with a wait timeout (§5); the timeout defaults to on.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "chromatic/chromatic_tree.h"
#include "core/version.h"
#include "core/version_queries.h"
#include "reclamation/ebr.h"
#include "util/backoff.h"
#include "util/counters.h"
#include "util/fault.h"
#include "util/flat_set.h"

namespace cbat {

enum class Delegation { kNone, kDel, kEagerDel };

// One request of a combined update batch (src/combine/).  `tag` is opaque
// to the tree — the combining layer uses it to route results back to the
// publication slots; the tree only fills `result`.
struct BatchOp {
  Key key;
  bool is_insert;
  bool result;
  int tag;
};

namespace detail {

// Version Initialization Rules (Definition 1): leaves get a ready version
// (size 1, or 0 for sentinels); new internal nodes get nil so their
// supplementary fields are recomputed from current information when needed
// (this is what makes rotations safe, §4.1).
// Runs inside the chromatic layer's SCX machinery, always within the
// EbrGuard the enclosing BatTree operation opened.  The chromatic layer is
// outside the thread-safety-annotation boundary (see
// util/thread_annotations.h), so these callbacks are not CBAT_REQUIRES-
// annotated — the guard obligation is enforced at BatTree's public API.
template <Augmentation Aug>
struct BatVersionPolicy {
  using V = Version<Aug>;

  static void init_leaf(Node* n) {
    auto* v = pool_new<V>(
        nullptr, nullptr, n->key,
        is_sentinel_key(n->key) ? Aug::sentinel() : Aug::leaf(n->key), nullptr);
    n->version.store(v, std::memory_order_release);
  }

  static void init_internal(Node* n) {
    // relaxed: the node is thread-private until its SCX publishes it, and
    // the SCX's release store covers this initialization.
    n->version.store(nullptr, std::memory_order_relaxed);
  }

  // Insert patches: both children are freshly made leaves whose versions
  // are final, so the internal node's version is computable immediately and
  // reflects exactly the operations that will have arrived at it when the
  // insertion's SCX succeeds (Definition 7, part 2).  Rotation patches must
  // stay nil (§4.1); they go through init_internal above.
  static void init_internal_for_insert(Node* n, Node* left, Node* right) {
    // relaxed: left/right are freshly made leaves still private to this
    // thread; their versions were stored by the same thread in init_leaf.
    auto* vl = static_cast<V*>(left->version.load(std::memory_order_relaxed));
    auto* vr = static_cast<V*>(right->version.load(std::memory_order_relaxed));
    auto* v =
        pool_new<V>(vl, vr, n->key, Aug::combine(vl->aug, vr->aug), nullptr);
    n->version.store(v, std::memory_order_release);
  }

  // §6: a node's final version is retired immediately before the node is
  // freed — new operations can no longer reach it, while older snapshots
  // that still can are protected by their own epoch.
  static void on_node_free(Node* n) {
    auto* v = static_cast<V*>(n->version.load(std::memory_order_acquire));
    if (v != nullptr) pool_retire(v);
  }
};

}  // namespace detail

template <Augmentation Aug, Delegation Del = Delegation::kNone>
class BatTree {
 public:
  using AugType = Aug;
  using AugValue = typename Aug::Value;
  using V = Version<Aug>;

  BatTree() {
    // The root is internal, so Definition 1 leaves its version nil; fill it
    // so queries always find a snapshot at Root.version.
    EbrGuard g;
    refresh_nil(tree_.root());
  }

  // --- updates (paper Fig. 3 Insert/Delete) ------------------------------

  bool insert(Key k) {
    EbrGuard g;
    const bool result = tree_.insert(k);
    propagate(k);  // even unsuccessful updates must propagate (§4)
    return result;
  }

  bool erase(Key k) {
    EbrGuard g;
    const bool result = tree_.erase(k);
    propagate(k);
    return result;
  }

  // Bulk update path for the combining layer (src/combine/): applies every
  // request under ONE EbrGuard, then runs ONE merged Propagate over the
  // union of the search paths, so key-adjacent updates share their descent
  // prefix and the whole batch pays a single top-level root refresh/CAS
  // instead of one per update.  `ops` must be sorted by key (duplicates
  // allowed; they are applied in the given order).  Fills op.result.
  //
  // Linearization: each request takes effect (becomes visible to
  // version-tree queries) no later than the batch's root refresh, which
  // happens before the combiner reports any result — so every request
  // linearizes between its publication and its response, exactly like a
  // solo update.
  void apply_batch(BatchOp* ops, int n) {
    if (n <= 0) return;
    EbrGuard g;
    // Perturbation inside the guard: a delay here stretches the pinned
    // epoch across the whole batch, pressuring EBR (limbo growth) and any
    // concurrent migration quiescence wait.
    CBAT_FAULT_POINT("bat.apply_batch");
    for (int i = 0; i < n; ++i) {
      ops[i].result =
          ops[i].is_insert ? tree_.insert(ops[i].key) : tree_.erase(ops[i].key);
    }
    if (n == 1) {
      propagate(ops[0].key);
      return;
    }
    // Dedup: one bottom-up refresh of a key's path covers every update on
    // that path that landed before the Propagate started (§4), so each
    // distinct key is propagated once.
    Scratch& s = scratch();
    s.batch_keys.clear();
    for (int i = 0; i < n; ++i) {
      if (s.batch_keys.empty() || s.batch_keys.back() != ops[i].key) {
        s.batch_keys.push_back(ops[i].key);
      }
    }
    propagate_batch(s.batch_keys.data(),
                    static_cast<int>(s.batch_keys.size()));
  }

  // --- queries (linearized at the read of Root.version) ------------------

  bool contains(Key k) const {
    EbrGuard g;
    return version_contains<Aug>(root_version(), k);
  }

  std::int64_t size() const
    requires SizedAugmentation<Aug>
  {
    EbrGuard g;
    return version_size<Aug>(root_version());
  }

  // Number of keys <= k.
  std::int64_t rank(Key k) const
    requires SizedAugmentation<Aug>
  {
    EbrGuard g;
    return version_rank<Aug>(root_version(), k);
  }

  // i-th smallest key (1-based).
  std::optional<Key> select(std::int64_t i) const
    requires SizedAugmentation<Aug>
  {
    EbrGuard g;
    return version_select<Aug>(root_version(), i);
  }

  // Number of keys in [lo, hi].
  std::int64_t range_count(Key lo, Key hi) const
    requires SizedAugmentation<Aug>
  {
    EbrGuard g;
    return version_range_count<Aug>(root_version(), lo, hi);
  }

  // Aggregate of the augmentation over keys in [lo, hi].
  AugValue range_aggregate(Key lo, Key hi) const {
    EbrGuard g;
    return version_range_aggregate<Aug>(root_version(), lo, hi);
  }

  // Largest key <= k / smallest key >= k (paper §8's predecessor queries).
  std::optional<Key> floor(Key k) const {
    EbrGuard g;
    return version_floor<Aug>(root_version(), k);
  }
  std::optional<Key> ceiling(Key k) const {
    EbrGuard g;
    return version_ceiling<Aug>(root_version(), k);
  }

  // i-th smallest key within [lo, hi] (1-based).
  std::optional<Key> select_in_range(Key lo, Key hi, std::int64_t i) const
    requires SizedAugmentation<Aug>
  {
    EbrGuard g;
    return version_select_in_range<Aug>(root_version(), lo, hi, i);
  }

  // All keys in [lo, hi], in order (limit = 0 means unlimited).
  std::vector<Key> range_collect(Key lo, Key hi, std::size_t limit = 0) const {
    EbrGuard g;
    std::vector<Key> out;
    version_collect_range<Aug>(root_version(), lo, hi, &out, limit);
    return out;
  }

  // RAII snapshot for composite queries: all reads through one Snapshot see
  // the same version tree.  Keeps an epoch pinned; keep it short-lived.
  // A scoped capability: constructing a *named* Snapshot holds
  // ebr_capability for its scope, which is what licenses the version_*
  // calls its query methods make.
  class CBAT_SCOPED_CAPABILITY Snapshot {
   public:
    explicit Snapshot(const BatTree& t) CBAT_ACQUIRE(ebr_capability) {
      // guard: guard_ is constructed before this body runs; TSA does not
      // track member-subobject guards, so assert the capability it pinned.
      ebr_assert_held();
      root_ = t.root_version();
    }
    ~Snapshot() CBAT_RELEASE() {}
    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;

    bool contains(Key k) const CBAT_REQUIRES(ebr_capability) {
      return version_contains<Aug>(root_, k);
    }
    std::int64_t size() const CBAT_REQUIRES(ebr_capability)
      requires SizedAugmentation<Aug>
    {
      return version_size<Aug>(root_);
    }
    std::int64_t rank(Key k) const CBAT_REQUIRES(ebr_capability)
      requires SizedAugmentation<Aug>
    {
      return version_rank<Aug>(root_, k);
    }
    std::int64_t rank_less(Key k) const CBAT_REQUIRES(ebr_capability)
      requires SizedAugmentation<Aug>
    {
      return version_rank_less<Aug>(root_, k);
    }
    std::optional<Key> select(std::int64_t i) const
        CBAT_REQUIRES(ebr_capability)
      requires SizedAugmentation<Aug>
    {
      return version_select<Aug>(root_, i);
    }
    std::optional<Key> select_in_range(Key lo, Key hi, std::int64_t i) const
        CBAT_REQUIRES(ebr_capability)
      requires SizedAugmentation<Aug>
    {
      return version_select_in_range<Aug>(root_, lo, hi, i);
    }
    std::optional<Key> floor(Key k) const CBAT_REQUIRES(ebr_capability) {
      return version_floor<Aug>(root_, k);
    }
    std::optional<Key> ceiling(Key k) const CBAT_REQUIRES(ebr_capability) {
      return version_ceiling<Aug>(root_, k);
    }
    std::int64_t range_count(Key lo, Key hi) const
        CBAT_REQUIRES(ebr_capability)
      requires SizedAugmentation<Aug>
    {
      return version_range_count<Aug>(root_, lo, hi);
    }
    AugValue range_aggregate(Key lo, Key hi) const
        CBAT_REQUIRES(ebr_capability) {
      return version_range_aggregate<Aug>(root_, lo, hi);
    }
    std::vector<Key> keys(Key lo = std::numeric_limits<Key>::min(),
                          Key hi = kMaxUserKey) const
        CBAT_REQUIRES(ebr_capability) {
      std::vector<Key> out;
      version_collect_range<Aug>(root_, lo, hi, &out);
      return out;
    }
    const V* root() const CBAT_REQUIRES(ebr_capability) { return root_; }

   private:
    EbrGuard guard_;
    const V* root_ = nullptr;
  };

  // --- configuration & introspection --------------------------------------

  // Attaches the global epoch counter that root installations stamp
  // (cross-shard linearizable snapshots; the shard layer owns the counter
  // and calls this once per shard before any update runs).  With a source
  // attached, every top-level root refresh links the new root version to
  // the one it replaced (`prev_root`) and the stamps follow the vcas
  // discipline: the superseded root's stamp is finalized before the
  // install CAS, the new root is stamped right after it, and Propagate
  // help-finalizes the current root's stamp before returning — so an
  // update's stamp is always assigned no later than its response, and
  // stamps are monotone along every root's prev_root chain.  Null (the
  // default) disables stamping; standalone trees pay only a dead branch.
  //
  // `unique_stamps` switches stamp finalization from a counter load to a
  // fetch_add (version_epoch_unique), guaranteeing no two root versions
  // ever share a stamp.  Forests that validate epoch-stamped aggregate
  // caches by stamp comparison (ReadPath::kCombined; see
  // src/shard/aggregate_cache.h) require it; everyone else keeps the
  // cheaper load-based stamps.  The mode must match the resolve walk the
  // snapshot layer uses (version_resolve_epoch vs ..._unique).
  void set_epoch_source(std::atomic<std::uint64_t>* counter,
                        bool unique_stamps = false) {
    epoch_source_ = counter;
    unique_epoch_stamps_ = unique_stamps;
  }

  // Spin budget a delegating Propagate waits before resuming on its own
  // (making the scheme non-blocking, §5).  0 disables the timeout.  The
  // combining layer (src/combine/) reuses the same budget for how long a
  // waiter spins on its publication slot — there, 0 means "never wait"
  // (every update runs solo), the combining analogue of non-blocking.
  static void set_delegation_timeout(std::uint64_t spins) {
    delegation_timeout_spins_ = spins;
  }
  static std::uint64_t delegation_timeout() {
    return delegation_timeout_spins_;
  }

  // Pre-faults the calling thread's pool free lists for the object types
  // this tree allocates on the update path (~one Node patch set plus
  // ~path-length Versions per update).  Caps are modest: steady state
  // recycles through the EBR, so only the initial working set matters.
  void warm_up(std::size_t expected_updates) {
    const auto cap = [expected_updates](std::size_t mult, std::size_t limit) {
      return std::min(expected_updates * mult, limit);
    };
    pool_reserve<V>(cap(4, 1u << 12));
    pool_reserve<Node>(cap(4, 1u << 11));
    pool_reserve<ScxRecord>(cap(1, 1u << 10));
    if constexpr (Del != Delegation::kNone) {
      pool_reserve<PropStatus>(cap(1, 1u << 8));
    }
  }

  // The current root version (for tests).
  const V* root_version_unsafe() const CBAT_REQUIRES(ebr_capability) {
    return root_version();
  }

  ChromaticTree<detail::BatVersionPolicy<Aug>>& node_tree() { return tree_; }
  const ChromaticTree<detail::BatVersionPolicy<Aug>>& node_tree() const {
    return tree_;
  }

 private:
  V* root_version() const CBAT_REQUIRES(ebr_capability) {
    // The root node is never replaced and its version is set in the
    // constructor and only ever CAS'd non-nil -> non-nil afterwards.
    return static_cast<V*>(
        tree_.root()->version.load(std::memory_order_acquire));
  }

  static V* version_of(const Node* n) CBAT_REQUIRES(ebr_capability) {
    return static_cast<V*>(n->version.load(std::memory_order_acquire));
  }

  // --- Refresh machinery (paper Fig. 3 lines 49-69; Fig. 12) -------------

  // Reads x's version, first fixing it if nil (recursive refresh).
  V* read_version(Node* x) CBAT_REQUIRES(ebr_capability) {
    V* v = version_of(x);
    if (v == nullptr) {
      refresh_nil(x);
      v = version_of(x);
    }
    return v;
  }

  // Recursive refresh: only ever changes a version pointer nil -> non-nil
  // (the separation from top-level refreshes matters for delegation
  // correctness and reclamation, §5/§6).
  void refresh_nil(Node* x) CBAT_REQUIRES(ebr_capability) {
    Node* xl;
    V* vl;
    do {
      xl = x->child[0].load(std::memory_order_acquire);
      vl = read_version(xl);
    } while (x->child[0].load(std::memory_order_acquire) != xl);
    Node* xr;
    V* vr;
    do {
      xr = x->child[1].load(std::memory_order_acquire);
      vr = read_version(xr);
    } while (x->child[1].load(std::memory_order_acquire) != xr);
    auto* nv =
        pool_new<V>(vl, vr, x->key, Aug::combine(vl->aug, vr->aug), nullptr);
    void* expected = nullptr;
    if (x->version.compare_exchange_strong(expected, nv,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      Counters::bump(Counter::kNilRefreshes);
    } else {
      pool_delete(nv);  // never published
    }
  }

  struct RefreshResult {
    bool success = false;
    PropStatus* blocker = nullptr;  // status of the Refresh that beat us
    V* vl = nullptr;                // child versions we read
    V* vr = nullptr;
    V* old = nullptr;               // the version we replaced (on success)
  };

  // Top-level refresh: changes the version pointer non-nil -> non-nil.
  RefreshResult refresh(Node* x, PropStatus* ps)
      CBAT_REQUIRES(ebr_capability) {
    for (;;) {
      RefreshResult r;
      V* old = read_version(x);
      const bool stamped_root = x == tree_.root() && epoch_source_ != nullptr;
      // Epoch discipline: a root version must carry its final stamp before a
      // successor replaces it (keeps prev_root chains stamp-monotone and
      // lets snapshot walks stop at the first stamp <= their epoch).
      if (stamped_root) stamp_epoch(old);
      Node* xl;
      do {
        xl = x->child[0].load(std::memory_order_acquire);
        r.vl = read_version(xl);
      } while (x->child[0].load(std::memory_order_acquire) != xl);
      Node* xr;
      do {
        xr = x->child[1].load(std::memory_order_acquire);
        r.vr = read_version(xr);
      } while (x->child[1].load(std::memory_order_acquire) != xr);
      // Stretching the read-to-CAS window here raises the *organic* CAS
      // failure rate under concurrency — the honest way to exercise the
      // blocker/help protocol.
      CBAT_FAULT_POINT("bat.refresh_build");
      auto* nv = pool_new<V>(r.vl, r.vr, x->key,
                             Aug::combine(r.vl->aug, r.vr->aug), ps);
      if (stamped_root) nv->prev_root = old;
      Counters::bump(Counter::kRefreshCas);
      // Forced CAS-retry drill: discard the built version as if a racing
      // refresh had won, and redo the whole read-build-CAS cycle.  It must
      // be a retry, not a skip: callers (refresh_double) rely on SOME
      // refresh installing the children's state, and with no real winner
      // there is no blocker to inherit the obligation.
      if (CBAT_FAULT_FORCE("bat.refresh_cas")) {
        pool_delete(nv);  // never published
        Counters::bump(Counter::kRefreshCasFail);
        continue;
      }
      void* expected = old;
      if (x->version.compare_exchange_strong(expected, nv,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
        if (stamped_root) stamp_epoch(nv);
        r.success = true;
        r.old = old;
        return r;
      }
      pool_delete(nv);  // never published
      Counters::bump(Counter::kRefreshCasFail);
      r.blocker = static_cast<V*>(expected)->status;
      return r;
    }
  }

  // --- Propagate (Fig. 3 / Fig. 13 / Fig. 14) ----------------------------

  struct Scratch {
    std::vector<Node*> stack;
    FlatPtrSet refreshed;
    std::vector<V*> to_retire;
    // Batch propagate only: per-stack-entry exclusive upper bound of the
    // entry's subtree, and the deduped key list (owned by apply_batch).
    std::vector<Key> stack_hi;
    std::vector<Key> batch_keys;
  };

  static Scratch& scratch() {
    thread_local Scratch s;
    return s;
  }

  void propagate(Key k) CBAT_REQUIRES(ebr_capability) {
    Counters::bump(Counter::kPropagateCalls);
    Scratch& s = scratch();
    s.stack.clear();
    s.refreshed.clear();
    s.to_retire.clear();
    Node* const root = tree_.root();
    s.stack.push_back(root);

    PropStatus* ps = nullptr;
    if constexpr (Del != Delegation::kNone) ps = pool_new<PropStatus>();

    bool first_descent = true;
    bool delegated = false;
    while (true) {
      // Walk down from the top of the stack until the child on k's search
      // path has already been refreshed or is a leaf (Fig. 3 lines 37-41).
      Node* next = s.stack.back();
      while (true) {
        next = next->child[dir_of(k, next)].load(std::memory_order_acquire);
        if (s.refreshed.contains(next) || next->is_leaf()) break;
        s.stack.push_back(next);
        Counters::bump(first_descent ? Counter::kSearchPathNodes
                                     : Counter::kPropagateExtraNodes);
      }
      first_descent = false;
      Node* top = s.stack.back();
      s.stack.pop_back();
      Counters::bump(Counter::kPropagateNodes);

      if (!refresh_one(top, ps, s, &delegated)) {
        // Delegated: our remaining work completes with the delegatee.
        break;
      }
      s.refreshed.insert(top);
      if (top == root) break;
    }

    // Epoch discipline: before this update reports (or releases delegated
    // waiters via the done flag), the root version covering it — installed
    // by us or by the refresh that beat us — must carry its final stamp,
    // so no snapshot acquired after our response can place us later than
    // its cut.  Must also precede the retire flush below: a snapshot walk
    // dereferences a prev_root only while stamps read above its epoch, so
    // a superseded root may be retired only once the head is stamped.
    if (epoch_source_ != nullptr) {
      stamp_epoch(root_version());
    }
    if (ps != nullptr) {
      ps->done.store(true, std::memory_order_release);
      // §6: safe to retire at the end of the creating Propagate even while
      // reachable — only operations already running can still read it.
      pool_retire(ps);
    }
    // §6: once the Propagate has reached the root (itself or through its
    // delegatee), every version it replaced is unreachable from the current
    // version tree; older snapshots are protected by their epochs.
    for (V* v : s.to_retire) pool_retire(v);
    (void)delegated;
  }

  // Merged Propagate over a batch of strictly-increasing keys: refreshes
  // the union of the search paths in post-order (every node after all its
  // descendants on any path), so each key's path is refreshed bottom-up —
  // the per-key requirement of §4 — while shared prefixes, and in
  // particular the root CAS, are paid once for the whole batch.
  //
  // The in-order sweep works off subtree upper bounds: pushing child c of
  // x in direction 0 bounds c's subtree by x.key (left subtrees hold keys
  // < x.key).  Bounds shrink monotonically along a path, so when moving
  // from key k to the next key k' > k, exactly the stack entries whose
  // bound is <= k' are off k''s path; they are popped and refreshed now
  // (post-order), and the entries above them — the shared prefix — are
  // deferred to a later key.  Like the single-key loop, the sweep
  // re-descends after every refresh so rotation patches (nil versions)
  // installed concurrently below an entry are picked up before the entry
  // itself is refreshed.
  //
  // Uses the plain double refresh for every node (correct for all
  // variants, §4.1); delegation stays a single-key optimization because a
  // delegatee only covers the contended node's own root path, not the
  // batch's remaining sibling subtrees.
  void propagate_batch(const Key* keys, int n)
      CBAT_REQUIRES(ebr_capability) {
    Counters::bump(Counter::kPropagateCalls);
    Scratch& s = scratch();
    s.stack.clear();
    s.stack_hi.clear();
    s.refreshed.clear();
    s.to_retire.clear();
    Node* const root = tree_.root();
    s.stack.push_back(root);
    s.stack_hi.push_back(kInf2);

    bool first_descent = true;
    for (int i = 0; i < n; ++i) {
      const Key k = keys[i];
      // kInf2 exceeds every subtree bound, so the last key drains the
      // whole stack (root included).
      const Key next_key = (i + 1 < n) ? keys[i + 1] : kInf2;
      while (true) {
        // Walk down from the top of the stack along k's search path until
        // the child has already been refreshed or is a leaf.
        Node* x = s.stack.back();
        Key hi = s.stack_hi.back();
        while (true) {
          const int d = dir_of(k, x);
          Node* c = x->child[d].load(std::memory_order_acquire);
          if (s.refreshed.contains(c) || c->is_leaf()) break;
          hi = (d == 0) ? std::min(hi, x->key) : hi;
          s.stack.push_back(c);
          s.stack_hi.push_back(hi);
          x = c;
          Counters::bump(first_descent ? Counter::kSearchPathNodes
                                       : Counter::kPropagateExtraNodes);
        }
        first_descent = false;
        // Entries whose subtree can still contain next_key are shared
        // prefix: defer them so the batch stays post-order.
        if (s.stack_hi.back() > next_key) break;
        Node* top = s.stack.back();
        s.stack.pop_back();
        s.stack_hi.pop_back();
        Counters::bump(Counter::kPropagateNodes);
        refresh_double(top, s);
        s.refreshed.insert(top);
        if (top == root) break;  // only reached while draining the last key
      }
    }
    // Same epoch discipline as the single-key Propagate: finalize the
    // covering root's stamp before the batch reports and before any
    // superseded root is retired.
    if (epoch_source_ != nullptr) {
      stamp_epoch(root_version());
    }
    for (V* v : s.to_retire) pool_retire(v);
  }

  // The plain double refresh (Fig. 3 lines 43-45): if our refresh CAS
  // lost, one more refresh is guaranteed to have started after our update
  // arrived at the child, so its result covers us.
  void refresh_double(Node* top, Scratch& s) CBAT_REQUIRES(ebr_capability) {
    RefreshResult r = refresh(top, nullptr);
    if (r.success) {
      s.to_retire.push_back(r.old);
      return;
    }
    r = refresh(top, nullptr);
    if (r.success) s.to_retire.push_back(r.old);
  }

  // Refreshes `top` according to the variant.  Returns false iff the
  // propagate delegated its remaining work (and has already waited).
  bool refresh_one(Node* top, PropStatus* ps, Scratch& s, bool* delegated)
      CBAT_REQUIRES(ebr_capability) {
    if constexpr (Del == Delegation::kNone) {
      (void)ps;
      refresh_double(top, s);
      return true;
    } else if constexpr (Del == Delegation::kDel) {
      RefreshResult r = refresh(top, ps);
      if (r.success) {
        s.to_retire.push_back(r.old);
        return true;
      }
      r = refresh(top, ps);
      if (r.success) {
        s.to_retire.push_back(r.old);
        return true;
      }
      if (!top->is_finalized() && r.blocker != nullptr) {
        ps->delegatee.store(r.blocker, std::memory_order_release);
        if (wait_for_delegatee(r.blocker)) {
          *delegated = true;
          return false;
        }
        // Timed out: resume propagating ourselves (non-blocking mode).
        ps->delegatee.store(nullptr, std::memory_order_release);
        return refresh_one(top, ps, s, delegated);
      }
      return true;
    } else {  // kEagerDel (Fig. 14)
      while (true) {
        RefreshResult r = refresh(top, ps);
        if (!r.success) {
          if (!top->is_finalized() && r.blocker != nullptr) {
            ps->delegatee.store(r.blocker, std::memory_order_release);
            if (wait_for_delegatee(r.blocker)) {
              *delegated = true;
              return false;
            }
            ps->delegatee.store(nullptr, std::memory_order_release);
          }
          continue;  // retry the refresh
        }
        s.to_retire.push_back(r.old);
        // Stability check: keep refreshing until the children's versions
        // did not change across the successful refresh, which guarantees we
        // saw every arrival point a beaten Refresh was propagating (§5).
        Node* xl = top->child[0].load(std::memory_order_acquire);
        Node* xr = top->child[1].load(std::memory_order_acquire);
        if (version_of(xl) == r.vl && version_of(xr) == r.vr) return true;
      }
    }
  }

  // Follows the delegation chain to its head and spins on its done flag
  // (Fig. 12 WaitForDelegatee).  Returns false on timeout.
  bool wait_for_delegatee(PropStatus* d) {
    Counters::bump(Counter::kDelegations);
    const std::uint64_t limit = delegation_timeout_spins_;
    std::uint64_t spins = 0;
    while (!d->done.load(std::memory_order_acquire)) {
      PropStatus* next = d->delegatee.load(std::memory_order_acquire);
      if (next != nullptr) {
        d = next;
        continue;
      }
      cpu_relax();
      if ((++spins & 63) == 0) std::this_thread::yield();
      if (limit != 0 && spins > limit) {
        Counters::bump(Counter::kDelegationTimeouts);
        return false;
      }
    }
    return true;
  }

  // Finalizes a root version's stamp in the mode the attached source
  // selected (see set_epoch_source).  Caller has checked epoch_source_.
  std::uint64_t stamp_epoch(const V* v) const CBAT_REQUIRES(ebr_capability) {
    return unique_epoch_stamps_ ? version_epoch_unique<Aug>(v, *epoch_source_)
                                : version_epoch<Aug>(v, *epoch_source_);
  }

  static inline std::uint64_t delegation_timeout_spins_ = 1u << 16;

  // Global epoch counter for root stamping; null (default) disables it.
  // Set once, before the tree sees concurrent updates (see the setter).
  std::atomic<std::uint64_t>* epoch_source_ = nullptr;
  bool unique_epoch_stamps_ = false;

  ChromaticTree<detail::BatVersionPolicy<Aug>> tree_;
};

// The three variants evaluated in the paper.
template <Augmentation Aug = SizeAug>
using Bat = BatTree<Aug, Delegation::kNone>;
template <Augmentation Aug = SizeAug>
using BatDel = BatTree<Aug, Delegation::kDel>;
template <Augmentation Aug = SizeAug>
using BatEagerDel = BatTree<Aug, Delegation::kEagerDel>;

}  // namespace cbat
