// Read-only queries over an immutable version tree (paper §3.2, §4, Fig. 3).
//
// A query reads the root's version pointer once and then runs a *sequential*
// algorithm on the immutable snapshot, "unaffected by concurrent updates".
// These helpers implement the queries the paper evaluates: membership
// (Find), rank, select, range count, plus generic range aggregation and key
// collection.  All cost O(height) except collection, which additionally
// pays for the keys it reports.
//
// The caller must keep the snapshot alive (hold an EbrGuard) for the
// duration of the query; BatTree's public methods and Snapshot handle do so.
// Statically enforced: every query is CBAT_REQUIRES(ebr_capability), so a
// guardless call fails to compile under -DCBAT_THREAD_SAFETY=ON.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/version.h"

namespace cbat {

// Standard BST search on the version tree (paper Fig. 3, Find).
template <Augmentation Aug>
bool version_contains(const Version<Aug>* v, Key k)
    CBAT_REQUIRES(ebr_capability) {
  while (!v->is_leaf()) {
    v = (k < v->key) ? v->left : v->right;
  }
  return v->key == k;
}

// Number of keys in the whole snapshot.
template <SizedAugmentation Aug>
std::int64_t version_size(const Version<Aug>* root)
    CBAT_REQUIRES(ebr_capability) {
  return Aug::size_of(root->aug);
}

// Number of keys <= k (the paper's rank query).
template <SizedAugmentation Aug>
std::int64_t version_rank(const Version<Aug>* v, Key k)
    CBAT_REQUIRES(ebr_capability) {
  std::int64_t acc = 0;
  while (!v->is_leaf()) {
    if (k < v->key) {
      v = v->left;
    } else {
      acc += Aug::size_of(v->left->aug);
      v = v->right;
    }
  }
  if (!is_sentinel_key(v->key) && v->key <= k) acc += Aug::size_of(v->aug);
  return acc;
}

// Number of keys strictly less than k.
template <SizedAugmentation Aug>
std::int64_t version_rank_less(const Version<Aug>* v, Key k)
    CBAT_REQUIRES(ebr_capability) {
  std::int64_t acc = 0;
  while (!v->is_leaf()) {
    if (k <= v->key) {
      v = v->left;
    } else {
      acc += Aug::size_of(v->left->aug);
      v = v->right;
    }
  }
  if (!is_sentinel_key(v->key) && v->key < k) acc += Aug::size_of(v->aug);
  return acc;
}

// The i-th smallest key, 1-based (the paper's select query).
template <SizedAugmentation Aug>
std::optional<Key> version_select(const Version<Aug>* v, std::int64_t i)
    CBAT_REQUIRES(ebr_capability) {
  if (i < 1 || i > Aug::size_of(v->aug)) return std::nullopt;
  while (!v->is_leaf()) {
    const std::int64_t ls = Aug::size_of(v->left->aug);
    if (i <= ls) {
      v = v->left;
    } else {
      i -= ls;
      v = v->right;
    }
  }
  return v->key;
}

// Number of keys in [lo, hi]; two root-to-leaf descents (paper §7 "range
// queries ... traverse two paths").
template <SizedAugmentation Aug>
std::int64_t version_range_count(const Version<Aug>* root, Key lo, Key hi)
    CBAT_REQUIRES(ebr_capability) {
  if (lo > hi) return 0;
  return version_rank<Aug>(root, hi) - version_rank_less<Aug>(root, lo);
}

namespace detail {

template <Augmentation Aug>
typename Aug::Value range_agg_rec(const Version<Aug>* v, Key lo, Key hi,
                                  Key vmin, Key vmax)
    CBAT_REQUIRES(ebr_capability) {
  if (hi < vmin || vmax < lo) return Aug::sentinel();
  if (lo <= vmin && vmax <= hi) return v->aug;
  if (v->is_leaf()) {
    return (lo <= v->key && v->key <= hi) ? v->aug : Aug::sentinel();
  }
  return Aug::combine(
      range_agg_rec<Aug>(v->left, lo, hi, vmin, v->key - 1),
      range_agg_rec<Aug>(v->right, lo, hi, v->key, vmax));
}

}  // namespace detail

// Aggregate of the augmentation over keys in [lo, hi]: descends at most two
// boundary paths, summing fully-contained subtrees by their stored value.
// Requires lo/hi to be user keys (sentinels contribute the identity).
template <Augmentation Aug>
typename Aug::Value version_range_aggregate(const Version<Aug>* root, Key lo,
                                            Key hi)
    CBAT_REQUIRES(ebr_capability) {
  if (lo > hi) return Aug::sentinel();
  return detail::range_agg_rec<Aug>(root, lo, hi,
                                    std::numeric_limits<Key>::min(), kInf2);
}

// Appends all keys in [lo, hi] to out, in order; stops after limit keys if
// limit > 0.  Cost Theta(reported + height).
template <Augmentation Aug>
void version_collect_range(const Version<Aug>* v, Key lo, Key hi,
                           std::vector<Key>* out, std::size_t limit = 0)
    CBAT_REQUIRES(ebr_capability) {
  if (limit > 0 && out->size() >= limit) return;
  if (v->is_leaf()) {
    if (!is_sentinel_key(v->key) && lo <= v->key && v->key <= hi) {
      out->push_back(v->key);
    }
    return;
  }
  if (lo < v->key) version_collect_range<Aug>(v->left, lo, hi, out, limit);
  if (hi >= v->key) version_collect_range<Aug>(v->right, lo, hi, out, limit);
}

// Largest key <= k, if any (the predecessor-style query of paper §8).
// Two chained descents: remember the last left subtree we skipped past,
// then resolve its rightmost leaf only if the main descent missed.
template <Augmentation Aug>
std::optional<Key> version_floor(const Version<Aug>* v, Key k)
    CBAT_REQUIRES(ebr_capability) {
  const Version<Aug>* cand = nullptr;  // subtree entirely <= k, if any
  while (!v->is_leaf()) {
    if (k < v->key) {
      v = v->left;
    } else {
      cand = v->left;
      v = v->right;
    }
  }
  if (!is_sentinel_key(v->key) && v->key <= k) return v->key;
  if (cand == nullptr) return std::nullopt;
  // cand hangs left of a node with key <= k, so its rightmost leaf is a
  // real key < kInf1 (sentinels live only on the tree's far right spine).
  while (!cand->is_leaf()) cand = cand->right;
  return cand->key;
}

// Smallest key >= k, if any.
template <Augmentation Aug>
std::optional<Key> version_ceiling(const Version<Aug>* v, Key k)
    CBAT_REQUIRES(ebr_capability) {
  const Version<Aug>* cand = nullptr;  // subtree entirely >= k, if any
  while (!v->is_leaf()) {
    if (k < v->key) {
      cand = v->right;
      v = v->left;
    } else {
      v = v->right;
    }
  }
  if (!is_sentinel_key(v->key) && v->key >= k) return v->key;
  if (cand == nullptr) return std::nullopt;
  while (!cand->is_leaf()) cand = cand->left;
  // The candidate's minimum can still be a sentinel (the kInf1 leaf sits in
  // the rightmost real subtree); that means no real key >= k exists.
  if (is_sentinel_key(cand->key)) return std::nullopt;
  return cand->key;
}

// i-th smallest key within [lo, hi] (1-based): a composite order-statistic
// query answered with two rank descents plus one select descent, all on the
// same snapshot.
template <SizedAugmentation Aug>
std::optional<Key> version_select_in_range(const Version<Aug>* root, Key lo,
                                           Key hi, std::int64_t i)
    CBAT_REQUIRES(ebr_capability) {
  if (lo > hi || i < 1) return std::nullopt;
  const std::int64_t before = version_rank_less<Aug>(root, lo);
  const std::int64_t inside = version_rank<Aug>(root, hi) - before;
  if (i > inside) return std::nullopt;
  return version_select<Aug>(root, before + i);
}

// --- validation helpers (used by tests) ------------------------------------

// Checks paper Invariant 24 (v.aug == combine(children)) and the BST order
// of the version tree.  Returns false on any violation.
template <Augmentation Aug>
bool version_tree_valid(const Version<Aug>* v, Key lo, Key hi)
    CBAT_REQUIRES(ebr_capability) {
  if (v->is_leaf()) {
    if (v->right != nullptr) return false;
    return v->key >= lo && v->key <= hi;
  }
  if (v->right == nullptr) return false;
  if (!(v->aug == Aug::combine(v->left->aug, v->right->aug))) return false;
  return version_tree_valid<Aug>(v->left, lo,
                                 std::min<Key>(hi, v->key - 1)) &&
         version_tree_valid<Aug>(v->right, std::max<Key>(lo, v->key), hi);
}

}  // namespace cbat
