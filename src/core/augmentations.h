// Augmentation policies for BAT and FR-BST.
//
// The paper's scheme supports *generic* augmentation functions: any value
// computable from a node's key and its children's supplementary fields
// (§1.1, Definition 1 uses subtree size as the running example).  An
// augmentation policy supplies:
//
//   using Value   — the supplementary field type (copyable, trivial enough
//                   to live inside immutable Version objects);
//   Value leaf(Key k)  — value of a leaf holding key k;
//   Value sentinel()   — value of a sentinel leaf.  Must be the identity of
//                        combine() so sentinels contribute nothing;
//   Value combine(l,r) — value of an internal node from its children.
//
// Policies that additionally expose `size_of(Value) -> int64` unlock the
// order-statistic queries (rank, select, range count).
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>

#include "util/keys.h"

namespace cbat {

template <class Aug>
concept Augmentation = requires(Key k, const typename Aug::Value& v) {
  { Aug::leaf(k) } -> std::convertible_to<typename Aug::Value>;
  { Aug::sentinel() } -> std::convertible_to<typename Aug::Value>;
  { Aug::combine(v, v) } -> std::convertible_to<typename Aug::Value>;
};

template <class Aug>
concept SizedAugmentation = Augmentation<Aug> &&
    requires(const typename Aug::Value& v) {
      { Aug::size_of(v) } -> std::convertible_to<std::int64_t>;
    };

// Subtree sizes: the paper's running example; enables order statistics.
struct SizeAug {
  using Value = std::int64_t;
  static Value leaf(Key) { return 1; }
  static Value sentinel() { return 0; }
  static Value combine(Value l, Value r) { return l + r; }
  static std::int64_t size_of(Value v) { return v; }
};

// Sum of keys: an aggregation query ("sum of values", §1).  Sums wrap
// modulo 2^64 (combine must stay total and associative for every key
// distribution; signed overflow would be UB).
struct KeySumAug {
  using Value = std::int64_t;
  static Value leaf(Key k) { return k; }
  static Value sentinel() { return 0; }
  static Value combine(Value l, Value r) {
    return static_cast<Value>(static_cast<std::uint64_t>(l) +
                              static_cast<std::uint64_t>(r));
  }
};

// Min/max key in the subtree: a non-abelian-group augmentation, i.e. one
// that the SP/KYAA schemes (related work, §2) cannot express but FR/BAT can.
struct MinMaxAug {
  struct Value {
    Key min;
    Key max;
    bool operator==(const Value&) const = default;
  };
  static Value leaf(Key k) { return {k, k}; }
  static Value sentinel() {
    return {std::numeric_limits<Key>::max(), std::numeric_limits<Key>::min()};
  }
  static Value combine(const Value& l, const Value& r) {
    return {std::min(l.min, r.min), std::max(l.max, r.max)};
  }
};

// Composition: carry two augmentations at once.  Inherits order-statistic
// support from A when A is sized.
template <class A, class B>
struct PairAug {
  struct Value {
    typename A::Value first;
    typename B::Value second;
    bool operator==(const Value&) const = default;
  };
  static Value leaf(Key k) { return {A::leaf(k), B::leaf(k)}; }
  static Value sentinel() { return {A::sentinel(), B::sentinel()}; }
  static Value combine(const Value& l, const Value& r) {
    return {A::combine(l.first, r.first), B::combine(l.second, r.second)};
  }
  static std::int64_t size_of(const Value& v)
    requires SizedAugmentation<A>
  {
    return A::size_of(v.first);
  }
};

// Size + sum: the workhorse for the analytics example.
using SizeSumAug = PairAug<SizeAug, KeySumAug>;

}  // namespace cbat
