// Flat-combining publication buffer (ROADMAP: shard-aware batching +
// read-side scaling).
//
// A fixed, cache-line-padded array of request slots plus a combiner lock.
// Threads that find the lock busy publish their request into a free slot
// and spin on that slot alone; whichever thread holds the lock drains
// every published request, applies the whole batch, and writes each result
// back into its slot.  For updates one combiner pass pays one EBR guard,
// one shared descent prefix, and one top-level root CAS for N inserts and
// erases (BatTree::apply_batch) — the costs the paper's delegation schemes
// cannot amortize across *distinct* keys.
//
// Slots carry either an update ({key, is_insert} -> bool) or a read-only
// composite op ({op, a, b} -> {int64 value, bool ok}): size, rank, select,
// range_count, or range_aggregate.  A combiner that drains reads acquires
// ONE pinned snapshot (an epoch cut at the shard layer, a pinned root at
// the tree layer) and answers the whole read burst against it — snapshot
// leasing, the read-side analogue of batched Propagate.  The publication
// protocol, combiner election, and retract-on-timeout machinery below are
// shared verbatim by both request classes; only the payload and the
// response width differ.
//
// Per-slot request/response protocol (state machine, one atomic word):
//
//   kEmpty --CAS(publisher)--> kWriting --store--> kPending
//   kPending --CAS(combiner)--> kTaken --store--> kDone
//   kPending --CAS(publisher timeout)--> kEmpty          (retract: go solo)
//   kDone --store(publisher)--> kEmpty                   (response consumed)
//
// The publisher owns the slot payload in kWriting/kDone, the combiner owns
// it in kTaken; every handoff is an acquire/release edge on `state`, so the
// payload itself needs no atomics.  A publisher that times out retracts
// with a CAS — if the CAS loses, a combiner already took the request and
// the publisher must wait for kDone (the combiner is applying it; applying
// it again solo would double-execute the update).
//
// Combining is cooperative, not blocking: a publisher whose spin budget
// runs out executes solo (the inner tree is safe under concurrent solo
// updates), so a stalled combiner delays at most the requests it already
// claimed.
//
// Thread-safety contract.  Publisher-side calls (publish, publish_read,
// slot_state, try_retract, take_result, take_read_result) are safe from
// any thread at any time; a
// publisher may only retract/consume the slot index its own publish
// returned.  drain() — the only touch of the scan cursor — requires
// holding the buffer lock (try_lock/unlock); the lock's acquire/release
// edges are what order the cursor and the claimed payloads.
// complete/complete_read require a *claimed* (kTaken) slot, not the lock:
// read combiners answer their drained batch after unlocking, and the
// claim CAS's acquire edge is what hands the payload over.  The buffer is
// itself a thread-safety capability (util/thread_annotations.h): under
// -DCBAT_THREAD_SAFETY=ON, calling drain() without the lock is a compile
// error.  Blocking behavior: nothing here waits unboundedly — publish
// is one bounded slot sweep, drain one bounded sweep gated by the
// in-flight count, and the only spinning (a publisher awaiting kDone)
// lives in CombinedSet, bounded by set_delegation_timeout with
// retract-or-solo fallback, except after a combiner claimed the request,
// when exactly that combiner will complete it.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/fault.h"
#include "util/keys.h"
#include "util/padded.h"
#include "util/thread_annotations.h"
#include "util/thread_registry.h"

namespace cbat {

// Process-wide cap on how many requests one combiner pass may apply as a
// single batch (its own plus drained ones).  <= 1 disables combining
// entirely — every update runs solo.  A knob rather than a template
// parameter so benchmarks (combine_sweep) can sweep it on the registry's
// type-erased structures.
inline std::atomic<int>& combine_max_batch_slot() {
  // shared: process-wide knob, read-mostly; padding buys nothing.
  static std::atomic<int> v{64};
  return v;
}
inline int combine_max_batch() {
  // relaxed: tuning knob; any recently-written value is acceptable and no
  // other data is published through it.
  return combine_max_batch_slot().load(std::memory_order_relaxed);
}
inline void set_combine_max_batch(int n) {
  // relaxed: see combine_max_batch().
  combine_max_batch_slot().store(n, std::memory_order_relaxed);
}

// Process-wide switch for publish-based query combining (CombinedSet's
// composite reads and the shard layer's leased epoch cuts).  Off, every
// composite read runs direct on its own snapshot; semantics are identical
// either way — the knob exists so the read_burst benchmark can attribute
// the leasing win separately from the aggregate caches.
inline std::atomic<bool>& lease_reads_slot() {
  // shared: process-wide knob, read-mostly; padding buys nothing.
  static std::atomic<bool> v{true};
  return v;
}
inline bool lease_reads_enabled() {
  // relaxed: tuning knob; see combine_max_batch().
  return lease_reads_slot().load(std::memory_order_relaxed);
}
inline void set_lease_reads(bool on) {
  // relaxed: tuning knob; see combine_max_batch().
  lease_reads_slot().store(on, std::memory_order_relaxed);
}

template <int NumSlots = 64>
class CBAT_CAPABILITY("combining buffer") CombiningBuffer {
  static_assert(NumSlots >= 1);

 public:
  enum State : std::uint32_t {
    kEmpty = 0,
    kWriting = 1,
    kPending = 2,
    kTaken = 3,
    kDone = 4,
  };

  // What a slot asks for.  kUpdate is the original insert/erase request
  // (disambiguated by is_insert); the rest are the read-only composite
  // ops.  Operand use: rank(a), select(a), range_count(a, b),
  // range_aggregate(a, b); size ignores both.
  enum Op : std::uint8_t {
    kUpdate = 0,
    kSize,
    kRank,
    kSelect,
    kRangeCount,
    kRangeAggregate,
  };

  // Wide response for read ops: `ok` is the engaged bit for optional
  // answers (select past the end) and always true for the counting ops.
  struct ReadResult {
    std::int64_t value;
    bool ok;
  };

  struct DrainedRequest {
    int slot;
    Op op;
    Key key;  // update key; read operand `a`
    Key b;    // read operand `b` (range hi); unused otherwise
    bool is_insert;
  };

  // --- combiner election --------------------------------------------------

  bool try_lock() CBAT_TRY_ACQUIRE(true) {
    // relaxed: contention pre-check only; the exchange below is the
    // acquiring access, and a stale false merely skips one election try.
    return !ctl_->lock.load(std::memory_order_relaxed) &&
           !ctl_->lock.exchange(true, std::memory_order_acquire);
  }
  void unlock() CBAT_RELEASE() {
    ctl_->lock.store(false, std::memory_order_release);
  }

  // --- publisher side -----------------------------------------------------

  // Claims a free slot and publishes an update (key, is_insert).  Returns
  // the slot index, or -1 if the buffer is full (caller goes solo).
  // Probing starts at a per-thread offset so concurrent publishers do not
  // fight over slot 0.
  int publish(Key key, bool is_insert) {
    return publish_request(kUpdate, key, 0, is_insert);
  }

  // Publishes a read-only composite op; same protocol and return contract
  // as publish().  The caller's fallback on -1 (and on retract timeout) is
  // a direct read instead of a solo update.
  int publish_read(Op op, Key a, Key b) {
    return publish_request(op, a, b, false);
  }

  std::uint32_t slot_state(int slot) const {
    return slots_[slot]->state.load(std::memory_order_acquire);
  }

  // Timeout path: retract an unclaimed request.  False means a combiner
  // already took it — the publisher must keep waiting for kDone.
  bool try_retract(int slot) {
    CBAT_FAULT_POINT("combine.retract");
    std::uint32_t expected = kPending;
    if (slots_[slot]->state.compare_exchange_strong(
            expected, kEmpty, std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      // relaxed: the count is an approximate gate (see drain); no data is
      // published through it.
      in_flight_->fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  // Consumes the response of a kDone slot and frees it.
  bool take_result(int slot) {
    Slot& s = *slots_[slot];
    const bool r = s.result;
    s.state.store(kEmpty, std::memory_order_release);
    // relaxed: approximate gate (see drain).
    in_flight_->fetch_sub(1, std::memory_order_relaxed);
    return r;
  }

  // Read-op counterpart of take_result.
  ReadResult take_read_result(int slot) {
    Slot& s = *slots_[slot];
    const ReadResult r{s.value, s.ok};
    s.state.store(kEmpty, std::memory_order_release);
    // relaxed: approximate gate (see drain).
    in_flight_->fetch_sub(1, std::memory_order_relaxed);
    return r;
  }

  // --- combiner side (caller must hold the lock) ---------------------------

  // Claims up to `max` pending requests (kPending -> kTaken) into `out`.
  // The sweep starts where the previous drain left off (a cursor guarded
  // by the combiner lock): with `max` below NumSlots a fixed scan origin
  // would claim high-index slots systematically last, starving publishers
  // whose thread id maps there into full-budget spins and solo fallback.
  // REQUIRES(this): the scan cursor lives in ctl_ and is ordered only by
  // the combiner lock's acquire/release edges, so the lock obligation is
  // carried on the function (TSA cannot guard a nested-struct member
  // through the enclosing buffer's capability).
  int drain(DrainedRequest* out, int max) CBAT_REQUIRES(this) {
    CBAT_FAULT_POINT("combine.drain");
    // Uncontended fast path: nothing published, nothing awaiting pickup —
    // skip the O(NumSlots) cache-line sweep that would otherwise tax
    // every solo-speed update.  The count is incremented before a slot
    // can reach kPending and decremented only after its response is
    // consumed (or the request retracted), so a zero read here means no
    // request is pending (up to propagation of a publication racing this
    // very load).  A skipped-over racing request is only *delayed*, never
    // stuck: its publisher re-reads the slot, and on finding the lock
    // free drains the buffer itself — its own increment is sequenced
    // before that drain — or times out into solo execution.
    if (in_flight_->load(std::memory_order_acquire) == 0) return 0;
    const int start = ctl_->next_scan;
    int n = 0;
    for (int i = 0; i < NumSlots; ++i) {
      if (n >= max) {
        ctl_->next_scan = (start + i) % NumSlots;
        return n;
      }
      const int idx = (start + i) % NumSlots;
      Slot& s = *slots_[idx];
      std::uint32_t expected = kPending;
      // relaxed: cheap pre-check; the claiming CAS's acquire edge is what
      // hands the payload over.
      if (s.state.load(std::memory_order_relaxed) != kPending) continue;
      // Forced claim skip: the request stays kPending, so its publisher is
      // picked up by a later drain or retracts and runs solo — the protocol
      // only strands a waiter if a *claimed* (kTaken) slot is abandoned,
      // which injection therefore never does.
      if (CBAT_FAULT_FORCE("combine.claim")) continue;
      // relaxed: failure order — a lost claim publishes nothing.
      if (s.state.compare_exchange_strong(expected, kTaken,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
        out[n++] = {idx, s.op, s.key, s.b, s.is_insert};
      }
    }
    return n;
  }

  // Writes the response of a claimed update and hands the slot back to
  // its publisher.
  void complete(int slot, bool result) {
    Slot& s = *slots_[slot];
    s.result = result;
    s.state.store(kDone, std::memory_order_release);
  }

  // Read-op counterpart of complete.
  void complete_read(int slot, ReadResult r) {
    Slot& s = *slots_[slot];
    s.value = r.value;
    s.ok = r.ok;
    s.state.store(kDone, std::memory_order_release);
  }

  static constexpr int num_slots() { return NumSlots; }

  // True when some request is published (or claimed and not yet consumed)
  // — the gate for lease elision: a would-be combiner that sees no burst
  // answers on its own snapshot without touching the lock at all.  Same
  // sequencing argument as drain's empty short circuit: a publisher this
  // load races is only delayed (it elects itself or times out), never
  // stranded.
  bool has_pending() const {
    return in_flight_->load(std::memory_order_acquire) != 0;
  }

 private:
  int publish_request(Op op, Key a, Key b, bool is_insert) {
    CBAT_FAULT_POINT("combine.publish");
    // Forced publication failure: identical to the buffer-full return, so
    // the caller's existing fallback (solo update / direct read) covers it.
    if (CBAT_FAULT_FORCE("combine.publish_full")) return -1;
    const int start = ThreadRegistry::thread_id() % NumSlots;
    for (int i = 0; i < NumSlots; ++i) {
      Slot& s = *slots_[(start + i) % NumSlots];
      std::uint32_t expected = kEmpty;
      // relaxed: cheap pre-check; the claiming CAS provides the edge.
      if (s.state.load(std::memory_order_relaxed) == kEmpty &&
          s.state.compare_exchange_strong(expected, kWriting,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
        // Count the request before it becomes visible: a kPending slot
        // always has a nonzero count, so drain's empty-buffer short
        // circuit can only over-see, never miss, a published request.
        // relaxed: the kPending release store below sequences the count
        // with the publication; the gate itself tolerates staleness.
        in_flight_->fetch_add(1, std::memory_order_relaxed);
        s.op = op;
        s.key = a;
        s.b = b;
        s.is_insert = is_insert;
        s.state.store(kPending, std::memory_order_release);
        return (start + i) % NumSlots;
      }
    }
    return -1;
  }

  struct Slot {
    // shared: the slot array is indexed per-thread and Padded at the
    // array level (see slots_ below); in-struct padding would double it.
    std::atomic<std::uint32_t> state{kEmpty};
    Op op = kUpdate;
    Key key = 0;
    Key b = 0;
    bool is_insert = false;
    // Response: `result` answers updates, {value, ok} answers reads.  The
    // state machine's acquire/release edges on `state` cover all of them.
    bool result = false;
    std::int64_t value = 0;
    bool ok = false;
  };

  // Combiner election plus the drain cursor; `next_scan` is read and
  // written only while `lock` is held, so the lock's acquire/release
  // edges order it (statically: only drain(), which is CBAT_REQUIRES the
  // buffer capability, touches it).
  struct Ctl {
    std::atomic<bool> lock{false};  // shared: lock word, padded via ctl_
    int next_scan = 0;
  };

  // The control word, the in-flight request count, and every slot live on
  // their own cache line: publishers spin on their slot, the combiner
  // sweeps, and none of it may false-share.
  Padded<Ctl> ctl_{};
  // Approximate published-request count gating drain's slot sweep.  It
  // over-counts (a request stays counted from publication until its
  // response is consumed) but never under-counts a kPending slot.
  Padded<std::atomic<int>> in_flight_{};
  Padded<Slot> slots_[NumSlots];
};

}  // namespace cbat
