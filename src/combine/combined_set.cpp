#include "combine/combined_set.h"

namespace cbat {

// The registry-visible combined structures, compiled once for every user:
// the standalone combined BAT and the sharded forest whose 16 shards each
// own a private combining buffer.
template class CombinedSet<Bat<SizeAug>>;
template class ShardedSet<CombinedSet<Bat<SizeAug>>, 16>;
// Linearizable-snapshot variant ("Sharded16-Combined-BAT-Lin"): the epoch
// source reaches the inner BATs through CombinedSet's passthrough, so
// combined batches stamp exactly like solo updates.
template class ShardedSet<CombinedSet<Bat<SizeAug>>, 16,
                          SnapshotPolicy::kLinearizable>;
// Read-combined ("-RC") forests: composite reads lease shared epoch cuts
// through each shard's buffer and validate against the per-shard aggregate
// caches; unique stamps are switched on by the ShardedSet constructor.
template class ShardedSet<CombinedSet<Bat<SizeAug>>, 16,
                          SnapshotPolicy::kQuiescent, ReadPath::kCombined>;
template class ShardedSet<CombinedSet<Bat<SizeAug>>, 16,
                          SnapshotPolicy::kLinearizable, ReadPath::kCombined>;
// Adaptive ("-Adapt") forests: the combined shards plus the online
// hot-shard rebalancer (ShardMap indirection + epoch-cut migration).
template class ShardedSet<CombinedSet<Bat<SizeAug>>, 16,
                          SnapshotPolicy::kQuiescent, ReadPath::kDirect,
                          true>;
template class ShardedSet<CombinedSet<Bat<SizeAug>>, 16,
                          SnapshotPolicy::kLinearizable, ReadPath::kDirect,
                          true>;

}  // namespace cbat
