// CombinedSet — per-structure update combining over a BAT (ROADMAP:
// shard-aware batching).
//
// Every BAT update pays an EBR guard entry, a root-to-leaf descent, and a
// root-refresh CAS even when delegation (paper §5) amortizes the *refresh
// conflicts*.  CombinedSet amortizes all three across concurrent updates:
// one thread (the combiner) claims the buffer lock, drains every published
// insert/erase, sorts the batch by key, and applies it through
// BatTree::apply_batch — one guard, shared descent prefixes, one top-level
// Propagate per batch.  Waiters spin on their publication slot, bounded by
// the inner tree's set_delegation_timeout budget, and fall back to solo
// execution on timeout, so progress never depends on the combiner.
//
// Used two ways (both registered): standalone as "Combined-BAT", and as
// the per-shard inner structure of "Sharded16-Combined-BAT", where each
// shard owns a private buffer and combining captures exactly the updates
// that PR 3's keyspace partitioning already routes to one root.
//
// Queries bypass the buffer entirely — they are reads on the inner BAT's
// version tree and keep its snapshot semantics: every query (point,
// single-key order statistic, or composite) runs on one atomic root
// version, so CombinedSet's whole query surface stays linearizable (see
// docs/ARCHITECTURE.md "Consistency guarantees").  A published-but-
// unapplied update is an in-flight operation: it is allowed to be
// invisible until its batch's root refresh, which always happens before
// its response — each request linearizes between publication and
// response, exactly like a solo update.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "combine/combining_buffer.h"
#include "core/bat_tree.h"
#include "shard/sharded_set.h"
#include "util/counters.h"

namespace cbat {

// What the combining layer needs from the wrapped tree: point updates, the
// bulk path, the waiter spin budget, and (for the shard layer on top) the
// pinned-root view.
template <class T>
concept CombinableInner =
    requires(T t, const T ct, Key k, BatchOp* ops, int n) {
      typename T::AugType;
      { t.insert(k) } -> std::same_as<bool>;
      { t.erase(k) } -> std::same_as<bool>;
      { ct.contains(k) } -> std::same_as<bool>;
      { t.apply_batch(ops, n) };
      { T::delegation_timeout() } -> std::convertible_to<std::uint64_t>;
      { ct.root_version_unsafe() };
    };

template <class Inner = Bat<SizeAug>>
  requires CombinableInner<Inner>
class CombinedSet {
 public:
  using Aug = typename Inner::AugType;
  using AugType = Aug;
  using AugValue = typename Aug::Value;
  using V = typename Inner::V;
  using Buffer = CombiningBuffer<64>;

  // --- updates: the combining protocol ------------------------------------

  bool insert(Key k) { return update(k, /*is_insert=*/true); }
  bool erase(Key k) { return update(k, /*is_insert=*/false); }

  // --- queries: straight reads on the inner version tree ------------------

  bool contains(Key k) const { return inner_.contains(k); }
  std::int64_t size() const
    requires SizedAugmentation<Aug>
  {
    return inner_.size();
  }
  std::int64_t rank(Key k) const
    requires SizedAugmentation<Aug>
  {
    return inner_.rank(k);
  }
  std::optional<Key> select(std::int64_t i) const
    requires SizedAugmentation<Aug>
  {
    return inner_.select(i);
  }
  std::int64_t range_count(Key lo, Key hi) const
    requires SizedAugmentation<Aug>
  {
    return inner_.range_count(lo, hi);
  }
  AugValue range_aggregate(Key lo, Key hi) const {
    return inner_.range_aggregate(lo, hi);
  }
  std::optional<Key> floor(Key k) const { return inner_.floor(k); }
  std::optional<Key> ceiling(Key k) const { return inner_.ceiling(k); }
  std::vector<Key> range_collect(Key lo, Key hi, std::size_t limit = 0) const {
    return inner_.range_collect(lo, hi, limit);
  }

  const V* root_version_unsafe() const { return inner_.root_version_unsafe(); }

  // Epoch-source passthrough for the shard layer's linearizable snapshots:
  // a combined batch stamps once per root CAS, exactly like a solo update,
  // and every response (combined or solo) is preceded by that stamp.
  void set_epoch_source(std::atomic<std::uint64_t>* counter)
    requires requires(Inner t, std::atomic<std::uint64_t>* c) {
      t.set_epoch_source(c);
    }
  {
    inner_.set_epoch_source(counter);
  }

  void warm_up(std::size_t expected_updates) {
    inner_.warm_up(expected_updates);
  }

  Inner& inner() { return inner_; }
  const Inner& inner() const { return inner_; }

 private:
  bool update(Key k, bool is_insert) {
    const std::uint64_t budget = Inner::delegation_timeout();
    const int max_batch = combine_max_batch();
    // budget 0: the waiter may not wait at all, so publishing is useless —
    // every update runs solo (combining off, the non-blocking boundary).
    if (budget == 0 || max_batch <= 1) return solo(k, is_insert);

    // Fast path: free lock — combine inline, own request rides in the
    // batch without touching a slot.
    if (buffer_.try_lock()) {
      const bool r = run_combiner(k, is_insert, max_batch);
      buffer_.unlock();
      return r;
    }

    const int slot = buffer_.publish(k, is_insert);
    if (slot < 0) return solo(k, is_insert);  // buffer full: shed load

    std::uint64_t spins = 0;
    bool may_time_out = true;
    while (true) {
      const auto st = buffer_.slot_state(slot);
      if (st == Buffer::kDone) return buffer_.take_result(slot);
      if (st == Buffer::kPending && buffer_.try_lock()) {
        // The previous combiner finished without our request: drain the
        // buffer ourselves (our own slot included — the response comes
        // back through it like any other).
        run_combiner_drained_only(max_batch);
        buffer_.unlock();
        continue;
      }
      cpu_relax();
      if ((++spins & 63) == 0) std::this_thread::yield();
      if (may_time_out && spins > budget) {
        if (buffer_.try_retract(slot)) {
          Counters::bump(Counter::kCombineTimeouts);
          return solo(k, is_insert);
        }
        // A combiner claimed the request in the meantime; from here on
        // only it may produce the response.
        may_time_out = false;
      }
    }
  }

  bool solo(Key k, bool is_insert) {
    Counters::bump(Counter::kCombineSolo);
    return is_insert ? inner_.insert(k) : inner_.erase(k);
  }

  struct BatchScratch {
    std::vector<BatchOp> ops;
    typename Buffer::DrainedRequest reqs[Buffer::num_slots()];
  };
  static BatchScratch& batch_scratch() {
    thread_local BatchScratch s;
    return s;
  }

  // Caller holds the buffer lock.  Applies {own request} + drained
  // requests as one sorted batch; returns the own request's result.
  bool run_combiner(Key k, bool is_insert, int max_batch) {
    BatchScratch& s = batch_scratch();
    s.ops.clear();
    s.ops.push_back({k, is_insert, false, /*tag=*/-1});
    collect_drained(s, max_batch - 1);
    apply_and_complete(s);
    for (const BatchOp& op : s.ops) {
      if (op.tag < 0) return op.result;
    }
    return false;  // unreachable: the own request is always in the batch
  }

  // Caller holds the buffer lock.  A waiter that inherited the lock: its
  // request is already published, so the batch is just the drained slots.
  void run_combiner_drained_only(int max_batch) {
    BatchScratch& s = batch_scratch();
    s.ops.clear();
    collect_drained(s, max_batch);
    if (s.ops.empty()) return;
    apply_and_complete(s);
  }

  void collect_drained(BatchScratch& s, int max) {
    const int n = buffer_.drain(
        s.reqs, std::min(max, static_cast<int>(Buffer::num_slots())));
    for (int i = 0; i < n; ++i) {
      s.ops.push_back({s.reqs[i].key, s.reqs[i].is_insert, false,
                       /*tag=*/s.reqs[i].slot});
    }
  }

  void apply_and_complete(BatchScratch& s) {
    // Stable: requests on the same key keep their publication-scan order.
    std::stable_sort(
        s.ops.begin(), s.ops.end(),
        [](const BatchOp& a, const BatchOp& b) { return a.key < b.key; });
    inner_.apply_batch(s.ops.data(), static_cast<int>(s.ops.size()));
    for (const BatchOp& op : s.ops) {
      if (op.tag >= 0) buffer_.complete(op.tag, op.result);
    }
    Counters::bump(Counter::kCombineBatches);
    Counters::bump(Counter::kCombineBatchedOps, s.ops.size());
  }

  Inner inner_;
  Buffer buffer_;
};

// The registry-visible combined structures; compiled once in
// combined_set.cpp.
extern template class CombinedSet<Bat<SizeAug>>;
extern template class ShardedSet<CombinedSet<Bat<SizeAug>>, 16>;
extern template class ShardedSet<CombinedSet<Bat<SizeAug>>, 16,
                                 SnapshotPolicy::kLinearizable>;

}  // namespace cbat
