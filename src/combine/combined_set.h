// CombinedSet — per-structure update combining over a BAT (ROADMAP:
// shard-aware batching).
//
// Every BAT update pays an EBR guard entry, a root-to-leaf descent, and a
// root-refresh CAS even when delegation (paper §5) amortizes the *refresh
// conflicts*.  CombinedSet amortizes all three across concurrent updates:
// one thread (the combiner) claims the buffer lock, drains every published
// insert/erase, sorts the batch by key, and applies it through
// BatTree::apply_batch — one guard, shared descent prefixes, one top-level
// Propagate per batch.  Waiters spin on their publication slot, bounded by
// the inner tree's set_delegation_timeout budget, and fall back to solo
// execution on timeout, so progress never depends on the combiner.
//
// Used two ways (both registered): standalone as "Combined-BAT", and as
// the per-shard inner structure of "Sharded16-Combined-BAT", where each
// shard owns a private buffer and combining captures exactly the updates
// that PR 3's keyspace partitioning already routes to one root.
//
// Composite queries (size/rank/select/range_count/range_aggregate)
// publish into the SAME buffer alongside updates (PR 4's deferred
// "combining for queries"): the combiner first applies the drained
// updates as one batch, then pins ONE root version — one epoch cut — and
// answers the whole read burst against it.  Point queries (contains,
// floor, ceiling) and key collection stay direct.  Every query still runs
// on one atomic root version, so CombinedSet's whole query surface stays
// linearizable (see docs/ARCHITECTURE.md "Consistency guarantees"): a
// leased read linearizes at the shared cut's root pin, which lies between
// its publication and its response, exactly like a solo read's own pin.
// A published-but-unapplied update is an in-flight operation: it is
// allowed to be invisible until its batch's root refresh, which always
// happens before its response — each request linearizes between
// publication and response, exactly like a solo update.  Read combining
// is gated by the same knobs as update combining (set_combine_max_batch,
// the delegation budget) plus set_lease_reads, and a read whose spin
// budget runs out retracts and answers directly — progress never depends
// on a combiner.
#pragma once

#include <algorithm>
#include <atomic>
#include <concepts>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "combine/combining_buffer.h"
#include "core/bat_tree.h"
#include "core/version_queries.h"
#include "shard/sharded_set.h"
#include "util/backoff.h"
#include "util/counters.h"
#include "util/fault.h"

namespace cbat {

// What the combining layer needs from the wrapped tree: point updates, the
// bulk path, the waiter spin budget, and (for the shard layer on top) the
// pinned-root view.
template <class T>
concept CombinableInner =
    requires(T t, const T ct, Key k, BatchOp* ops, int n) {
      typename T::AugType;
      { t.insert(k) } -> std::same_as<bool>;
      { t.erase(k) } -> std::same_as<bool>;
      { ct.contains(k) } -> std::same_as<bool>;
      { t.apply_batch(ops, n) };
      { T::delegation_timeout() } -> std::convertible_to<std::uint64_t>;
      { ct.root_version_unsafe() };
    };

template <class Inner = Bat<SizeAug>>
  requires CombinableInner<Inner>
class CombinedSet {
 public:
  using Aug = typename Inner::AugType;
  using AugType = Aug;
  using AugValue = typename Aug::Value;
  using V = typename Inner::V;
  using Buffer = CombiningBuffer<64>;
  using ReadRes = typename Buffer::ReadResult;

  // Composite reads ride the buffer only when they fit its wide response
  // slot: a sized augmentation whose aggregate value is the slot's int64.
  // Anything else keeps the direct per-query snapshot path.
  static constexpr bool kCombineReads =
      SizedAugmentation<Aug> && std::same_as<AugValue, std::int64_t>;

  // --- updates: the combining protocol ------------------------------------

  bool insert(Key k) { return update(k, /*is_insert=*/true); }
  bool erase(Key k) { return update(k, /*is_insert=*/false); }

  // Deliberate bypass of the combining protocol: apply directly on the
  // inner tree, which is safe under concurrent combined batches (it is
  // the same concurrent-solo path the retract-on-timeout fallback uses).
  // For callers that KNOW combining cannot pay — the shard layer routes
  // updates from read-dominated threads here, where batch occupancy is ~1
  // and the combiner lock is pure convoy (see ShardedSet::regime_update).
  // Not counted as kCombineSolo: that counter means "timed out waiting
  // for a combiner", and these never waited.
  bool insert_solo(Key k) { return inner_.insert(k); }
  bool erase_solo(Key k) { return inner_.erase(k); }

  // Bulk passthrough for the adaptive shard layer's migrator: the batch
  // bypasses the combining buffer exactly like the *_solo updates (it is
  // the same concurrent-solo path, safe under in-flight combined
  // batches).  Ops must be sorted by key.
  void apply_batch(BatchOp* ops, int n) { inner_.apply_batch(ops, n); }

  // --- queries ------------------------------------------------------------
  //
  // Point queries are straight reads on the inner version tree.  Composite
  // queries publish into the combining buffer when read leasing is on
  // (kCombineReads structures only): the combiner answers the whole burst
  // against one pinned root, so N concurrent composite reads cost one EBR
  // guard and one root load instead of N.

  bool contains(Key k) const { return inner_.contains(k); }
  std::int64_t size() const
    requires SizedAugmentation<Aug>
  {
    if constexpr (kCombineReads) return query_op(Buffer::kSize, 0, 0).value;
    return inner_.size();
  }
  std::int64_t rank(Key k) const
    requires SizedAugmentation<Aug>
  {
    if constexpr (kCombineReads) return query_op(Buffer::kRank, k, 0).value;
    return inner_.rank(k);
  }
  std::optional<Key> select(std::int64_t i) const
    requires SizedAugmentation<Aug>
  {
    if constexpr (kCombineReads) {
      const ReadRes r = query_op(Buffer::kSelect, static_cast<Key>(i), 0);
      if (!r.ok) return std::nullopt;
      return static_cast<Key>(r.value);
    }
    return inner_.select(i);
  }
  std::int64_t range_count(Key lo, Key hi) const
    requires SizedAugmentation<Aug>
  {
    if constexpr (kCombineReads) {
      return query_op(Buffer::kRangeCount, lo, hi).value;
    }
    return inner_.range_count(lo, hi);
  }
  AugValue range_aggregate(Key lo, Key hi) const {
    if constexpr (kCombineReads) {
      return query_op(Buffer::kRangeAggregate, lo, hi).value;
    }
    return inner_.range_aggregate(lo, hi);
  }
  std::optional<Key> floor(Key k) const { return inner_.floor(k); }
  std::optional<Key> ceiling(Key k) const { return inner_.ceiling(k); }
  std::vector<Key> range_collect(Key lo, Key hi, std::size_t limit = 0) const {
    return inner_.range_collect(lo, hi, limit);
  }

  const V* root_version_unsafe() const CBAT_REQUIRES(ebr_capability) {
    return inner_.root_version_unsafe();
  }

  // Epoch-source passthrough for the shard layer's linearizable snapshots:
  // a combined batch stamps once per root CAS, exactly like a solo update,
  // and every response (combined or solo) is preceded by that stamp.  The
  // shard layer's aggregate caches additionally request unique
  // (fetch_add-minted) stamps — see version_epoch_unique.
  void set_epoch_source(std::atomic<std::uint64_t>* counter,
                        bool unique_stamps = false)
    requires requires(Inner t, std::atomic<std::uint64_t>* c) {
      t.set_epoch_source(c);
    }
  {
    inner_.set_epoch_source(counter, unique_stamps);
  }

  // Capability hooks for the registry's StructureInfo: updates here go
  // through the flat-combining protocol (ShardedSet forwards this from
  // its inner, so "Sharded*-Combined-*" forests report it too), and
  // composite reads combine when the augmentation allows it.
  static constexpr bool combines_updates() { return true; }
  static constexpr bool combines_reads() { return kCombineReads; }

  // Spin budget forwarded from the inner tree so the shard layer's leased
  // read path (ShardedSet lease_budget) sees one consistent knob.
  static std::uint64_t delegation_timeout() {
    return Inner::delegation_timeout();
  }

  void warm_up(std::size_t expected_updates) {
    inner_.warm_up(expected_updates);
  }

  Inner& inner() { return inner_; }
  const Inner& inner() const { return inner_; }

 private:
  bool update(Key k, bool is_insert) {
    const std::uint64_t budget = Inner::delegation_timeout();
    const int max_batch = combine_max_batch();
    // budget 0: the waiter may not wait at all, so publishing is useless —
    // every update runs solo (combining off, the non-blocking boundary).
    if (budget == 0 || max_batch <= 1) return solo(k, is_insert);

    // Fast path: free lock — combine inline, own request rides in the
    // batch without touching a slot.
    if (buffer_.try_lock()) {
      // Combiner-fault drill: a combiner that dies right after election
      // must release the lock BEFORE claiming any slot — lock inheritance
      // (the kPending + try_lock branch below) then drains the buffer, so
      // no waiter is stranded.  The faulted thread falls through to the
      // publish path like any non-elected thread.
      if (!CBAT_FAULT_FORCE("combine.elected")) {
        return run_combiner(k, is_insert, max_batch);  // unlocks internally
      }
      buffer_.unlock();
    }

    const int slot = buffer_.publish(k, is_insert);
    if (slot < 0) return solo(k, is_insert);  // buffer full: shed load

    std::uint64_t spins = 0;
    std::uint64_t pauses = 0;
    Backoff bo;
    bool may_time_out = true;
    while (true) {
      const auto st = buffer_.slot_state(slot);
      if (st == Buffer::kDone) {
        if (pauses != 0) {
          Counters::bump(Counter::kCombineRetractBackoffs, pauses);
        }
        return buffer_.take_result(slot);
      }
      if (st == Buffer::kPending && buffer_.try_lock()) {
        // The previous combiner finished without our request: drain the
        // buffer ourselves (our own slot included — the response comes
        // back through it like any other).
        run_combiner_drained_only(max_batch);
        continue;
      }
      // Bounded exponential backoff instead of a hot spin on the slot
      // line; pause() reports its spin count, so the delegation budget
      // still bounds total wall time before the retract-or-solo fallback.
      spins += bo.pause();
      ++pauses;
      if (may_time_out &&
          (spins > budget || CBAT_FAULT_FORCE("combine.update_wait"))) {
        if (buffer_.try_retract(slot)) {
          Counters::bump(Counter::kCombineTimeouts);
          if (pauses != 0) {
            Counters::bump(Counter::kCombineRetractBackoffs, pauses);
          }
          return solo(k, is_insert);
        }
        // A combiner claimed the request in the meantime; from here on
        // only it may produce the response.
        may_time_out = false;
      }
    }
  }

  bool solo(Key k, bool is_insert) {
    Counters::bump(Counter::kCombineSolo);
    return is_insert ? inner_.insert(k) : inner_.erase(k);
  }

  struct BatchScratch {
    std::vector<BatchOp> ops;
    typename Buffer::DrainedRequest reqs[Buffer::num_slots()];
    // Drained read requests, split out of `reqs` by collect_drained;
    // answered against one pinned root after the update batch applies.
    typename Buffer::DrainedRequest reads[Buffer::num_slots()];
    int num_reads = 0;
  };
  static BatchScratch& batch_scratch() {
    thread_local BatchScratch s;
    return s;
  }

  // Caller holds the buffer lock; releases it after the update batch
  // (CBAT_RELEASE, not REQUIRES: the lock is gone when this returns).
  // Applies {own request} + drained updates as one sorted batch, then
  // answers drained reads against one pinned root — lock-free, their
  // slots are already claimed; returns the own request's result.
  bool run_combiner(Key k, bool is_insert, int max_batch)
      CBAT_RELEASE(buffer_) {
    BatchScratch& s = batch_scratch();
    s.ops.clear();
    s.num_reads = 0;
    s.ops.push_back({k, is_insert, false, /*tag=*/-1});
    collect_drained(s, max_batch - 1);
    apply_and_complete(s);
    buffer_.unlock();
    answer_drained_reads(s);
    for (const BatchOp& op : s.ops) {
      if (op.tag < 0) return op.result;
    }
    return false;  // unreachable: the own request is always in the batch
  }

  // Caller holds the buffer lock; releases it after the update batch.  A
  // waiter that inherited the lock: its request is already published, so
  // the batch is just the drained slots.
  void run_combiner_drained_only(int max_batch) CBAT_RELEASE(buffer_) {
    BatchScratch& s = batch_scratch();
    s.ops.clear();
    s.num_reads = 0;
    collect_drained(s, max_batch);
    if (!s.ops.empty()) apply_and_complete(s);
    buffer_.unlock();
    answer_drained_reads(s);
  }

  void collect_drained(BatchScratch& s, int max) CBAT_REQUIRES(buffer_) {
    const int n = buffer_.drain(
        s.reqs, std::min(max, static_cast<int>(Buffer::num_slots())));
    for (int i = 0; i < n; ++i) {
      if (s.reqs[i].op == Buffer::kUpdate) {
        s.ops.push_back({s.reqs[i].key, s.reqs[i].is_insert, false,
                         /*tag=*/s.reqs[i].slot});
      } else {
        s.reads[s.num_reads++] = s.reqs[i];
      }
    }
  }

  void apply_and_complete(BatchScratch& s) CBAT_REQUIRES(buffer_) {
    // Stable: requests on the same key keep their publication-scan order.
    std::stable_sort(
        s.ops.begin(), s.ops.end(),
        [](const BatchOp& a, const BatchOp& b) { return a.key < b.key; });
    inner_.apply_batch(s.ops.data(), static_cast<int>(s.ops.size()));
    for (const BatchOp& op : s.ops) {
      if (op.tag >= 0) buffer_.complete(op.tag, op.result);
    }
    Counters::bump(Counter::kCombineBatches);
    Counters::bump(Counter::kCombineBatchedOps, s.ops.size());
  }

  // --- read leasing (kCombineReads only) ----------------------------------

  // Answers drained reads against ONE pinned root — the leased cut.
  // Ordering: called after apply_and_complete, so a read drained together
  // with updates observes them; each read linearizes at this root pin,
  // which lies between its publication and its response.
  void answer_drained_reads(BatchScratch& s) {
    if constexpr (kCombineReads) {
      if (s.num_reads == 0) return;
      EbrGuard g;
      const V* r = inner_.root_version_unsafe();
      for (int i = 0; i < s.num_reads; ++i) {
        buffer_.complete_read(
            s.reads[i].slot,
            answer_on(r, s.reads[i].op, s.reads[i].key, s.reads[i].b));
      }
      Counters::bump(Counter::kLeaseCuts);
      Counters::bump(Counter::kLeaseBatchedReads,
                     static_cast<std::uint64_t>(s.num_reads));
    }
  }

  // Composite-read analogue of update(): combine inline on a free lock,
  // else publish and spin with the same inherit-the-lock / retract-on-
  // timeout protocol.  Logically const — the set is unchanged — but a
  // combiner pass may apply *other threads'* published updates on their
  // behalf, hence the const_cast into the internally synchronized core.
  ReadRes query_op(typename Buffer::Op op, Key a, Key b) const
    requires kCombineReads
  {
    return const_cast<CombinedSet*>(this)->query_op_mut(op, a, b);
  }

  ReadRes query_op_mut(typename Buffer::Op op, Key a, Key b)
    requires kCombineReads
  {
    const std::uint64_t budget = Inner::delegation_timeout();
    const int max_batch = combine_max_batch();
    if (!lease_reads_enabled() || budget == 0 || max_batch <= 1) {
      return direct_query(op, a, b);
    }

    // Lease elision: no published requests means no burst to share a root
    // pin with (and no stranded updates to help), so answer on an own pin
    // without touching the lock.  See CombiningBuffer::has_pending for
    // why a racing publisher is only delayed, never stuck.
    if (!buffer_.has_pending()) return direct_query(op, a, b);

    if (buffer_.try_lock()) {
      // Same combiner-fault drill as update(): release before claiming,
      // fall through to publish (see the comment there).
      if (!CBAT_FAULT_FORCE("combine.read_elected")) {
        return run_query_combiner(op, a, b, max_batch);  // unlocks internally
      }
      buffer_.unlock();
    }

    const int slot = buffer_.publish_read(op, a, b);
    if (slot < 0) return direct_query(op, a, b);  // buffer full: shed load

    std::uint64_t spins = 0;
    std::uint64_t pauses = 0;
    Backoff bo;
    bool may_time_out = true;
    while (true) {
      const auto st = buffer_.slot_state(slot);
      if (st == Buffer::kDone) {
        if (pauses != 0) {
          Counters::bump(Counter::kCombineRetractBackoffs, pauses);
        }
        return buffer_.take_read_result(slot);
      }
      if (st == Buffer::kPending && buffer_.try_lock()) {
        run_combiner_drained_only(max_batch);
        continue;
      }
      // Bounded exponential backoff; see update() for the budget account.
      spins += bo.pause();
      ++pauses;
      if (may_time_out &&
          (spins > budget || CBAT_FAULT_FORCE("combine.read_wait"))) {
        if (buffer_.try_retract(slot)) {
          Counters::bump(Counter::kCombineTimeouts);
          if (pauses != 0) {
            Counters::bump(Counter::kCombineRetractBackoffs, pauses);
          }
          return direct_query(op, a, b);
        }
        may_time_out = false;
      }
    }
  }

  // Caller holds the buffer lock; releases it after any drained update
  // batch.  Then pins one root and answers the drained reads plus the own
  // request against it, lock-free.
  ReadRes run_query_combiner(typename Buffer::Op op, Key a, Key b,
                             int max_batch) CBAT_RELEASE(buffer_)
    requires kCombineReads
  {
    BatchScratch& s = batch_scratch();
    s.ops.clear();
    s.num_reads = 0;
    collect_drained(s, max_batch - 1);
    if (!s.ops.empty()) apply_and_complete(s);
    buffer_.unlock();
    EbrGuard g;
    const V* r = inner_.root_version_unsafe();
    for (int i = 0; i < s.num_reads; ++i) {
      buffer_.complete_read(
          s.reads[i].slot,
          answer_on(r, s.reads[i].op, s.reads[i].key, s.reads[i].b));
    }
    Counters::bump(Counter::kLeaseCuts);
    Counters::bump(Counter::kLeaseBatchedReads,
                   static_cast<std::uint64_t>(s.num_reads) + 1);
    return answer_on(r, op, a, b);
  }

  ReadRes direct_query(typename Buffer::Op op, Key a, Key b)
    requires kCombineReads
  {
    Counters::bump(Counter::kLeaseSoloReads);
    EbrGuard g;
    return answer_on(inner_.root_version_unsafe(), op, a, b);
  }

  // One pinned root answers any composite op; caller holds an EBR guard
  // covering `r`.
  static ReadRes answer_on(const V* r, typename Buffer::Op op, Key a, Key b)
      CBAT_REQUIRES(ebr_capability)
    requires kCombineReads
  {
    switch (op) {
      case Buffer::kSize:
        return {version_size<Aug>(r), true};
      case Buffer::kRank:
        return {version_rank<Aug>(r, a), true};
      case Buffer::kSelect: {
        const std::optional<Key> k =
            version_select<Aug>(r, static_cast<std::int64_t>(a));
        return {k ? static_cast<std::int64_t>(*k) : 0, k.has_value()};
      }
      case Buffer::kRangeCount:
        return {version_range_count<Aug>(r, a, b), true};
      case Buffer::kRangeAggregate:
        return {version_range_aggregate<Aug>(r, a, b), true};
      case Buffer::kUpdate:
        break;  // never published through the read path
    }
    return {0, false};
  }

  Inner inner_;
  Buffer buffer_;
};

// The registry-visible combined structures; compiled once in
// combined_set.cpp.
extern template class CombinedSet<Bat<SizeAug>>;
extern template class ShardedSet<CombinedSet<Bat<SizeAug>>, 16>;
extern template class ShardedSet<CombinedSet<Bat<SizeAug>>, 16,
                                 SnapshotPolicy::kLinearizable>;
// The "-RC" read-combined forests: leased epoch cuts + epoch-stamped
// aggregate caches on top of the combined shards.
extern template class ShardedSet<CombinedSet<Bat<SizeAug>>, 16,
                                 SnapshotPolicy::kQuiescent,
                                 ReadPath::kCombined>;
extern template class ShardedSet<CombinedSet<Bat<SizeAug>>, 16,
                                 SnapshotPolicy::kLinearizable,
                                 ReadPath::kCombined>;
// The "-Adapt" adaptive forests: online hot-shard rebalancing on top of
// the combined shards.
extern template class ShardedSet<CombinedSet<Bat<SizeAug>>, 16,
                                 SnapshotPolicy::kQuiescent,
                                 ReadPath::kDirect, true>;
extern template class ShardedSet<CombinedSet<Bat<SizeAug>>, 16,
                                 SnapshotPolicy::kLinearizable,
                                 ReadPath::kDirect, true>;

}  // namespace cbat
