// google-benchmark micro-benchmarks for the building blocks whose costs
// drive the end-to-end numbers: version-tree queries, Propagate/Refresh,
// the Zipf sampler, the EBR guard, and the flat pointer set.
#include <benchmark/benchmark.h>

#include "core/bat_tree.h"
#include "frbst/frbst.h"
#include "reclamation/ebr.h"
#include "util/flat_set.h"
#include "util/random.h"
#include "util/zipf.h"

namespace {

using namespace cbat;

void BM_EbrGuard(benchmark::State& state) {
  for (auto _ : state) {
    EbrGuard g;
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_EbrGuard);

void BM_ZipfNext(benchmark::State& state) {
  Xoshiro256 rng(3);
  ZipfGenerator zipf(10000000, 0.99);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.next(rng));
}
BENCHMARK(BM_ZipfNext);

void BM_FlatSetInsertClear(benchmark::State& state) {
  FlatPtrSet set;
  std::vector<int> storage(64);
  for (auto _ : state) {
    for (auto& x : storage) set.insert(&x);
    set.clear();
  }
}
BENCHMARK(BM_FlatSetInsertClear);

template <class Tree>
void prefill_tree(Tree& t, int n, Key range) {
  Xoshiro256 rng(7);
  for (int i = 0; i < n; ++i) {
    t.insert(static_cast<Key>(rng.below(static_cast<std::uint64_t>(range))));
  }
}

void BM_BatUpdateWithPropagate(benchmark::State& state) {
  Bat<SizeAug> t;
  prefill_tree(t, 50000, 100000);
  Xoshiro256 rng(9);
  for (auto _ : state) {
    const Key k = static_cast<Key>(rng.below(100000));
    t.insert(k);
    t.erase(k);
  }
}
BENCHMARK(BM_BatUpdateWithPropagate);

void BM_FrBstUpdateWithPropagate(benchmark::State& state) {
  FrBst<SizeAug> t;
  prefill_tree(t, 50000, 100000);
  Xoshiro256 rng(9);
  for (auto _ : state) {
    const Key k = static_cast<Key>(rng.below(100000));
    t.insert(k);
    t.erase(k);
  }
}
BENCHMARK(BM_FrBstUpdateWithPropagate);

void BM_BatRank(benchmark::State& state) {
  Bat<SizeAug> t;
  prefill_tree(t, 50000, 100000);
  Xoshiro256 rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.rank(static_cast<Key>(rng.below(100000))));
  }
}
BENCHMARK(BM_BatRank);

void BM_BatRangeCount(benchmark::State& state) {
  Bat<SizeAug> t;
  prefill_tree(t, 50000, 100000);
  Xoshiro256 rng(13);
  const Key rq = static_cast<Key>(state.range(0));
  for (auto _ : state) {
    const Key lo = static_cast<Key>(rng.below(100000 - rq));
    benchmark::DoNotOptimize(t.range_count(lo, lo + rq - 1));
  }
}
BENCHMARK(BM_BatRangeCount)->Arg(64)->Arg(1024)->Arg(16384);

void BM_BatSelect(benchmark::State& state) {
  Bat<SizeAug> t;
  prefill_tree(t, 50000, 100000);
  Xoshiro256 rng(15);
  const auto n = t.size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        t.select(1 + static_cast<std::int64_t>(rng.below(n))));
  }
}
BENCHMARK(BM_BatSelect);

}  // namespace

BENCHMARK_MAIN();
