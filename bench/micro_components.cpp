// Thin wrapper: keeps the paper-repro command line `micro_components`
// working.  The scenario lives in src/bench/scenarios.cpp ("micro_components").
#include "bench/scenarios.h"

int main(int argc, char** argv) {
  return cbat::bench::scenario_main(argc, argv, "micro_components");
}
