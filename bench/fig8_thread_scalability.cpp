// Thin wrapper: keeps the paper-repro command line `fig8_thread_scalability`
// working.  The scenario lives in src/bench/scenarios.cpp ("fig8").
#include "bench/scenarios.h"

int main(int argc, char** argv) {
  return cbat::bench::scenario_main(argc, argv, "fig8");
}
