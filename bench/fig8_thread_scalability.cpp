// Figure 8: throughput vs thread count with range queries of size 50K
// (MK 10M): 8a low-update (2.5-2.5-47.5-47.5, YCSB-B-like) and 8b
// high-update (25-25-25-25, YCSB-A-like).  BAT-EagerDel should beat the
// closest unaugmented competitor by a wide factor at every thread count.
#include "bench_common.h"

using namespace cbat::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const bool full = args.full_scale();
  const long maxkey = args.get_long("--maxkey", full ? 10000000 : 200000);
  const long rq = args.get_long("--rq", full ? 50000 : 10000);
  const int ms = default_ms(args);
  const auto threads = default_thread_sweep(args);

  const std::vector<std::string> structures = {
      "BAT-EagerDel", "FR-BST", "VcasBST", "VerlibBTree",
      "BundledCitrusTree"};

  struct Mix {
    const char* name;
    double i, d, f, q;
  };
  const Mix mixes[] = {
      {"8a (low update)", 2.5, 2.5, 47.5, 47.5},
      {"8b (high update)", 25, 25, 25, 25},
  };
  for (const Mix& m : mixes) {
    Table table(std::string("Figure ") + m.name + ": RQ " +
                    std::to_string(rq) + ", MK " + std::to_string(maxkey) +
                    " — throughput (ops/s)",
                "threads");
    sweep_throughput(
        table, structures, threads,
        [&](long t) {
          RunConfig cfg;
          cfg.workload.insert_pct = m.i;
          cfg.workload.delete_pct = m.d;
          cfg.workload.find_pct = m.f;
          cfg.workload.query_pct = m.q;
          cfg.workload.query_kind = QueryKind::kRange;
          cfg.workload.rq_size = rq;
          cfg.workload.max_key = maxkey;
          cfg.threads = static_cast<int>(t);
          cfg.duration_ms = ms;
          return cfg;
        },
        args.csv());
  }
  return 0;
}
