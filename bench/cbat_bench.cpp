// Unified benchmark CLI: `cbat_bench --list` enumerates the paper's
// scenarios; `--scenario NAME [--smoke|--full] [--json out.json]` runs
// them.  See src/bench/scenarios.cpp for the scenario definitions.
#include "bench/scenarios.h"

int main(int argc, char** argv) {
  return cbat::bench::scenario_main(argc, argv);
}
