// Thin wrapper: keeps the paper-repro command line `fig5c_query_scalability`
// working.  The scenario lives in src/bench/scenarios.cpp ("fig5c").
#include "bench/scenarios.h"

int main(int argc, char** argv) {
  return cbat::bench::scenario_main(argc, argv, "fig5c");
}
