// Figure 5c: throughput vs thread count for rank, select and range queries
// on BAT-EagerDel (5-5-0-90, RQ 50K, MK 10M).  Rank and select descend one
// path; range queries descend two, so they run slower but all three scale.
#include "bench_common.h"

using namespace cbat::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const bool full = args.full_scale();
  const long maxkey = args.get_long("--maxkey", full ? 10000000 : 100000);
  const long rq = args.get_long("--rq", full ? 50000 : 5000);
  const int ms = default_ms(args);
  const auto threads = default_thread_sweep(args);

  Table table("Figure 5c: BAT-EagerDel, RQ " + std::to_string(rq) + ", MK " +
                  std::to_string(maxkey) +
                  ", 5-5-0-90 — throughput (ops/s)",
              "threads");
  std::vector<std::string> cols;
  for (long t : threads) cols.push_back(std::to_string(t));
  table.set_columns(cols);

  const std::pair<const char*, QueryKind> kinds[] = {
      {"Rank", QueryKind::kRank},
      {"RangeQuery", QueryKind::kRange},
      {"Select", QueryKind::kSelect},
  };
  for (const auto& [label, kind] : kinds) {
    for (long t : threads) {
      RunConfig cfg;
      cfg.workload.insert_pct = 5;
      cfg.workload.delete_pct = 5;
      cfg.workload.query_pct = 90;
      cfg.workload.query_kind = kind;
      cfg.workload.rq_size = rq;
      cfg.workload.max_key = maxkey;
      cfg.threads = static_cast<int>(t);
      cfg.duration_ms = ms;
      const RunResult r = run_benchmark("BAT-EagerDel", cfg);
      table.add_cell(label, fmt_throughput(r.throughput()));
      std::fprintf(stderr, "  [%s x=%ld] %.3f Mop/s\n", label, t, r.mops());
    }
  }
  if (args.csv()) {
    table.print_csv();
  } else {
    table.print();
  }
  return 0;
}
