// Thin wrapper: keeps the paper-repro command line `fig9_isolated_latency`
// working.  The scenario lives in src/bench/scenarios.cpp ("fig9").
#include "bench/scenarios.h"

int main(int argc, char** argv) {
  return cbat::bench::scenario_main(argc, argv, "fig9");
}
