// Figure 9: average per-operation latency vs range-query size on the mixed
// workload of Figure 6b (10-10-40-40, TT 120, MK 10M): 9a update latency,
// 9b range-query latency.  BAT's update latency should stay flat; its
// range-query latency should stay flat while unaugmented trees grow
// linearly, crossing around RQ ~2000.
#include "bench_common.h"

using namespace cbat::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const bool full = args.full_scale();
  const long tt = default_fixed_threads(args);
  const long maxkey = args.get_long("--maxkey", full ? 10000000 : 400000);
  const int ms = default_ms(args);
  const auto rqs = args.get_list(
      "--rq", full ? std::vector<long>{8, 64, 256, 1024, 4096, 16384, 65536}
                   : std::vector<long>{8, 64, 512, 4096, 16384});

  const std::vector<std::string> structures = {
      "BAT-EagerDel", "FR-BST", "VcasBST", "VerlibBTree",
      "BundledCitrusTree"};

  Table upd("Figure 9a: TT " + std::to_string(tt) + ", MK " +
                std::to_string(maxkey) +
                ", 10-10-40-40 — average update latency",
            "rq_size");
  Table qry("Figure 9b: same workload — average range-query latency",
            "rq_size");
  std::vector<std::string> cols;
  for (long rq : rqs) cols.push_back(std::to_string(rq));
  upd.set_columns(cols);
  qry.set_columns(cols);

  for (const auto& s : structures) {
    for (long rq : rqs) {
      RunConfig cfg;
      cfg.workload.insert_pct = 10;
      cfg.workload.delete_pct = 10;
      cfg.workload.find_pct = 40;
      cfg.workload.query_pct = 40;
      cfg.workload.query_kind = QueryKind::kRange;
      cfg.workload.rq_size = rq;
      cfg.workload.max_key = maxkey;
      cfg.threads = static_cast<int>(tt);
      cfg.duration_ms = ms;
      const RunResult r = run_benchmark(s, cfg);
      upd.add_cell(s, fmt_latency_ns(r.update_latency_ns));
      qry.add_cell(s, fmt_latency_ns(r.query_latency_ns));
      std::fprintf(stderr, "  [%s rq=%ld] upd=%s rq=%s\n", s.c_str(), rq,
                   fmt_latency_ns(r.update_latency_ns).c_str(),
                   fmt_latency_ns(r.query_latency_ns).c_str());
    }
  }
  if (args.csv()) {
    upd.print_csv();
    qry.print_csv();
  } else {
    upd.print();
    qry.print();
  }
  return 0;
}
