// Shared sweep scaffolding for the figure benches.
//
// Default parameters are scaled to finish quickly on a small machine while
// preserving the *shapes* the paper reports; pass --full (or set
// CBAT_BENCH_FULL=1) for paper-scale runs.  Every binary prints one table
// per paper plot, with the same series and x axis.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/args.h"
#include "bench/driver.h"
#include "bench/table.h"

namespace cbat::bench {

inline std::vector<long> default_thread_sweep(const Args& args) {
  if (args.full_scale()) {
    return args.get_list("--threads", {1, 12, 24, 48, 96, 144, 192});
  }
  return args.get_list("--threads", {1, 2, 4, 8});
}

inline int default_ms(const Args& args, int ci_default = 120) {
  if (args.full_scale()) return static_cast<int>(args.get_long("--ms", 3000));
  return static_cast<int>(args.get_long("--ms", ci_default));
}

inline long default_fixed_threads(const Args& args) {
  // Figures 6, 7, 9 and 10 fix TT=120 in the paper.
  if (args.full_scale()) return args.get_long("--tt", 120);
  return args.get_long("--tt", 4);
}

// Runs structure x xvalue sweeps and fills a table with throughput cells.
inline void sweep_throughput(
    Table& table, const std::vector<std::string>& structures,
    const std::vector<long>& xs,
    const std::function<RunConfig(long)>& config_for,
    bool csv) {
  std::vector<std::string> cols;
  cols.reserve(xs.size());
  for (long x : xs) cols.push_back(std::to_string(x));
  table.set_columns(cols);
  for (const auto& s : structures) {
    for (long x : xs) {
      const RunResult r = run_benchmark(s, config_for(x));
      table.add_cell(s, fmt_throughput(r.throughput()));
      std::fprintf(stderr, "  [%s x=%ld] %.3f Mop/s\n", s.c_str(), x,
                   r.mops());
    }
  }
  if (csv) {
    table.print_csv();
  } else {
    table.print();
  }
}

}  // namespace cbat::bench
