// Figure 10: throughput vs data-structure size (max key sweep) under the
// high-update mixed workload with Zipfian (theta=0.95) keys (25-25-25-25,
// RQ 50K, TT 120).  Includes plain BAT alongside BAT-EagerDel to show
// delegation still helps under skew.
#include "bench_common.h"

using namespace cbat::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const bool full = args.full_scale();
  const long tt = default_fixed_threads(args);
  const long rq = args.get_long("--rq", full ? 50000 : 5000);
  const int ms = default_ms(args);
  const auto maxkeys = args.get_list(
      "--maxkey", full ? std::vector<long>{100000, 1000000, 10000000}
                       : std::vector<long>{20000, 100000, 400000});

  const std::vector<std::string> structures = {
      "BAT",     "BAT-EagerDel", "FR-BST",
      "VcasBST", "VerlibBTree",  "BundledCitrusTree"};

  Table table("Figure 10: TT " + std::to_string(tt) + ", RQ " +
                  std::to_string(rq) +
                  ", 25-25-25-25, Zipfian 0.95 — throughput (ops/s)",
              "max_key");
  sweep_throughput(
      table, structures, maxkeys,
      [&](long mk) {
        RunConfig cfg;
        cfg.workload.insert_pct = 25;
        cfg.workload.delete_pct = 25;
        cfg.workload.find_pct = 25;
        cfg.workload.query_pct = 25;
        cfg.workload.query_kind = QueryKind::kRange;
        cfg.workload.rq_size = std::min<long>(rq, mk / 4);
        cfg.workload.max_key = mk;
        cfg.workload.dist = KeyDist::kZipf;
        cfg.workload.zipf_theta = 0.95;
        cfg.threads = static_cast<int>(tt);
        cfg.duration_ms = ms;
        return cfg;
      },
      args.csv());
  return 0;
}
