// Thin wrapper: keeps the paper-repro command line `fig10_size_scalability`
// working.  The scenario lives in src/bench/scenarios.cpp ("fig10").
#include "bench/scenarios.h"

int main(int argc, char** argv) {
  return cbat::bench::scenario_main(argc, argv, "fig10");
}
