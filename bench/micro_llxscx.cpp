// google-benchmark micro-benchmarks for the LLX/SCX substrate: the cost of
// an uncontended LLX, a full LLX+SCX child swing, and chromatic-tree point
// operations that sit on top of them.
#include <benchmark/benchmark.h>

#include "chromatic/chromatic_set.h"
#include "llxscx/llx_scx.h"
#include "reclamation/ebr.h"
#include "util/random.h"

namespace {

using namespace cbat;

void BM_LlxUncontended(benchmark::State& state) {
  EbrGuard g;
  Node* a = new Node(1, 1, nullptr, nullptr);
  Node* b = new Node(5, 1, nullptr, nullptr);
  Node* p = new Node(5, 1, a, b);
  for (auto _ : state) {
    LlxSnap s;
    benchmark::DoNotOptimize(llx(p, &s));
  }
  release_node_info(p);
  release_node_info(a);
  release_node_info(b);
  delete p;
  delete a;
  delete b;
}
BENCHMARK(BM_LlxUncontended);

void BM_ScxChildSwing(benchmark::State& state) {
  EbrGuard g;
  Node* cell = new Node(0, 1, nullptr, nullptr);
  Node* right = new Node(100, 1, nullptr, nullptr);
  Node* p = new Node(100, 1, cell, right);
  for (auto _ : state) {
    LlxSnap ps, cs;
    if (llx(p, &ps) != LlxStatus::kOk) continue;
    Node* cur = ps.left();
    if (llx(cur, &cs) != LlxStatus::kOk) continue;
    Node* next = new Node(cur->key + 1, 1, nullptr, nullptr);
    LlxSnap v[2] = {ps, cs};
    if (scx(v, 2, 1, &p->child[0], next)) {
      Ebr::retire(cur, [](void* q) {
        Node* n = static_cast<Node*>(q);
        release_node_info(n);
        delete n;
      });
    } else {
      release_node_info(next);
      delete next;
    }
  }
  release_node_info(p);
  release_node_info(right);
  Node* last = p->child[0].load();
  release_node_info(last);
  delete last;
  delete p;
  delete right;
  Ebr::drain();
}
BENCHMARK(BM_ScxChildSwing);

void BM_ChromaticInsertErase(benchmark::State& state) {
  ChromaticSet set;
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) set.insert(static_cast<Key>(rng.below(20000)));
  for (auto _ : state) {
    const Key k = static_cast<Key>(rng.below(20000));
    set.insert(k);
    set.erase(k);
  }
}
BENCHMARK(BM_ChromaticInsertErase);

void BM_ChromaticContains(benchmark::State& state) {
  ChromaticSet set;
  Xoshiro256 rng(2);
  for (int i = 0; i < 10000; ++i) set.insert(static_cast<Key>(rng.below(20000)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.contains(static_cast<Key>(rng.below(20000))));
  }
}
BENCHMARK(BM_ChromaticContains);

}  // namespace

BENCHMARK_MAIN();
