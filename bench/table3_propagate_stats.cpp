// §7 "Why Balancing Improves Throughput": per-Propagate statistics on a
// 25-25-25-25 workload (MK 100K, RQ 50K) under uniform and Zipfian (0.99)
// key distributions:
//   * nodes traversed per Propagate beyond the initial search path
//     (paper: ~6.4% uniform / ~5.9% Zipf for BAT),
//   * nil versions filled per Propagate (paper: 0.075 / 0.03),
//   * version-CAS attempts per Propagate (paper: 22.2 BAT, 13.9 EagerDel,
//     26.8 FR-BST on 120 threads),
//   * delegations per Propagate for the delegating variants.
#include <cstdio>

#include "bench_common.h"
#include "util/counters.h"

using namespace cbat::bench;
using cbat::Counter;
using cbat::Counters;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const bool full = args.full_scale();
  const long tt = default_fixed_threads(args);
  const long maxkey = args.get_long("--maxkey", 100000);
  const long rq = args.get_long("--rq", full ? 50000 : 5000);
  const int ms = default_ms(args, 200);

  const std::vector<std::string> structures = {"BAT", "BAT-Del",
                                               "BAT-EagerDel", "FR-BST"};
  struct Dist {
    const char* name;
    KeyDist dist;
    double theta;
  };
  const Dist dists[] = {
      {"uniform", KeyDist::kUniform, 0},
      {"zipf-0.99", KeyDist::kZipf, 0.99},
  };

  std::printf(
      "\n== Propagate statistics (TT %ld, MK %ld, RQ %ld, 25-25-25-25) ==\n",
      tt, maxkey, rq);
  std::printf("%-14s %-10s %10s %10s %10s %10s %10s\n", "structure", "dist",
              "nodes/prop", "extra%", "nil/prop", "cas/prop", "deleg/prop");
  for (const auto& d : dists) {
    for (const auto& s : structures) {
      Counters::reset();
      RunConfig cfg;
      cfg.workload.insert_pct = 25;
      cfg.workload.delete_pct = 25;
      cfg.workload.find_pct = 25;
      cfg.workload.query_pct = 25;
      cfg.workload.query_kind = QueryKind::kRange;
      cfg.workload.rq_size = std::min<long>(rq, maxkey / 4);
      cfg.workload.max_key = maxkey;
      cfg.workload.dist = d.dist;
      cfg.workload.zipf_theta = d.theta;
      cfg.threads = static_cast<int>(tt);
      cfg.duration_ms = ms;
      run_benchmark(s, cfg);
      const auto c = Counters::snapshot();
      const double props =
          std::max<double>(1, static_cast<double>(c[Counter::kPropagateCalls]));
      const double search = static_cast<double>(c[Counter::kSearchPathNodes]);
      const double extra =
          static_cast<double>(c[Counter::kPropagateExtraNodes]);
      std::printf("%-14s %-10s %10.2f %9.2f%% %10.4f %10.2f %10.4f\n",
                  s.c_str(), d.name,
                  static_cast<double>(c[Counter::kPropagateNodes]) / props,
                  search > 0 ? 100.0 * extra / search : 0.0,
                  static_cast<double>(c[Counter::kNilRefreshes]) / props,
                  static_cast<double>(c[Counter::kRefreshCas]) / props,
                  static_cast<double>(c[Counter::kDelegations]) / props);
      std::fflush(stdout);
    }
  }
  Counters::reset();
  return 0;
}
