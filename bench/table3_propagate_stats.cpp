// Thin wrapper: keeps the paper-repro command line `table3_propagate_stats`
// working.  The scenario lives in src/bench/scenarios.cpp ("table3").
#include "bench/scenarios.h"

int main(int argc, char** argv) {
  return cbat::bench::scenario_main(argc, argv, "table3");
}
