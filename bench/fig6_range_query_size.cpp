// Thin wrapper: keeps the paper-repro command line `fig6_range_query_size`
// working.  The scenario lives in src/bench/scenarios.cpp ("fig6").
#include "bench/scenarios.h"

int main(int argc, char** argv) {
  return cbat::bench::scenario_main(argc, argv, "fig6");
}
