// Figure 6: throughput vs range-query size on a mixed workload
// (10-10-40-40, TT 120), for a small (6a: MK 100K) and a large (6b: MK 10M)
// tree.  Augmented trees (BAT, FR-BST) should stay flat as the range grows;
// the unaugmented trees pay Θ(range) per query and fall off, crossing over
// around RQ 2K-10K.
#include "bench_common.h"

using namespace cbat::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const bool full = args.full_scale();
  const long tt = default_fixed_threads(args);
  const int ms = default_ms(args);
  const auto rqs = args.get_list(
      "--rq", full ? std::vector<long>{8, 64, 256, 1024, 4096, 16384, 65536}
                   : std::vector<long>{8, 64, 512, 4096, 16384});

  const long small_mk = args.get_long("--maxkey-small", 100000);
  const long large_mk =
      args.get_long("--maxkey", full ? 10000000 : 400000);

  const std::vector<std::string> structures = {
      "BAT-EagerDel", "FR-BST", "VcasBST", "VerlibBTree",
      "BundledCitrusTree"};

  for (const auto& [fig, maxkey] :
       {std::pair<const char*, long>{"6a (small tree)", small_mk},
        std::pair<const char*, long>{"6b (large tree)", large_mk}}) {
    Table table(std::string("Figure ") + fig + ": TT " + std::to_string(tt) +
                    ", MK " + std::to_string(maxkey) +
                    ", 10-10-40-40 — throughput (ops/s)",
                "rq_size");
    sweep_throughput(
        table, structures, rqs,
        [&](long rq) {
          RunConfig cfg;
          cfg.workload.insert_pct = 10;
          cfg.workload.delete_pct = 10;
          cfg.workload.find_pct = 40;
          cfg.workload.query_pct = 40;
          cfg.workload.query_kind = QueryKind::kRange;
          cfg.workload.rq_size = rq;
          cfg.workload.max_key = maxkey;
          cfg.threads = static_cast<int>(tt);
          cfg.duration_ms = ms;
          return cfg;
        },
        args.csv());
  }
  return 0;
}
