// Figure 7: throughput vs percentage of rank queries, remaining ops split
// evenly between inserts and deletes (TT 120; 7a MK 100K, 7b MK 10M).
// Unaugmented trees answer rank by scanning ~half the keys, so even a tiny
// rank percentage sinks them on large trees; BAT wins beyond 0.15%-11%
// depending on size.
#include "bench_common.h"

using namespace cbat::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const bool full = args.full_scale();
  const long tt = default_fixed_threads(args);
  const int ms = default_ms(args);
  const double percents[] = {0.01, 0.1, 1, 10, 100};

  const long small_mk = args.get_long("--maxkey-small", full ? 100000 : 50000);
  const long large_mk = args.get_long("--maxkey", full ? 10000000 : 400000);

  const std::vector<std::string> structures = {
      "BAT-EagerDel", "FR-BST", "VcasBST", "VerlibBTree",
      "BundledCitrusTree"};

  for (const auto& [fig, maxkey] :
       {std::pair<const char*, long>{"7a (small tree)", small_mk},
        std::pair<const char*, long>{"7b (large tree)", large_mk}}) {
    Table table(std::string("Figure ") + fig + ": TT " + std::to_string(tt) +
                    ", MK " + std::to_string(maxkey) +
                    ", (100-x)/2-(100-x)/2-0-x rank — throughput (ops/s)",
                "rank_pct");
    std::vector<std::string> cols;
    for (double p : percents) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%g%%", p);
      cols.push_back(buf);
    }
    table.set_columns(cols);
    for (const auto& s : structures) {
      for (double p : percents) {
        RunConfig cfg;
        cfg.workload.insert_pct = (100 - p) / 2;
        cfg.workload.delete_pct = (100 - p) / 2;
        cfg.workload.query_pct = p;
        cfg.workload.query_kind = QueryKind::kRank;
        cfg.workload.max_key = maxkey;
        cfg.threads = static_cast<int>(tt);
        cfg.duration_ms = ms;
        const RunResult r = run_benchmark(s, cfg);
        table.add_cell(s, fmt_throughput(r.throughput()));
        std::fprintf(stderr, "  [%s x=%g%%] %.3f Mop/s\n", s.c_str(), p,
                     r.mops());
      }
    }
    if (args.csv()) {
      table.print_csv();
    } else {
      table.print();
    }
  }
  return 0;
}
