// Thin wrapper: keeps the paper-repro command line `fig7_rank_percentage`
// working.  The scenario lives in src/bench/scenarios.cpp ("fig7").
#include "bench/scenarios.h"

int main(int argc, char** argv) {
  return cbat::bench::scenario_main(argc, argv, "fig7");
}
