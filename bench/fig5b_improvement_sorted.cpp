// Figure 5b: insert-only throughput vs thread count with the *sorted* key
// distribution and no prefill (100-0-0-0).  This isolates the benefit of
// balancing: FR-BST degenerates to a path (propagates traverse ~n nodes)
// while the BAT variants stay logarithmic.
#include "bench_common.h"

using namespace cbat::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const long maxkey =
      args.get_long("--maxkey", args.full_scale() ? 10000000 : 100000);
  const int ms = default_ms(args);
  const auto threads = default_thread_sweep(args);

  Table table("Figure 5b: MK " + std::to_string(maxkey) +
                  ", 100-0-0-0, sorted keys, no prefill — throughput (ops/s)",
              "threads");
  sweep_throughput(
      table, {"BAT", "BAT-Del", "BAT-EagerDel", "FR-BST"}, threads,
      [&](long t) {
        RunConfig cfg;
        cfg.workload.insert_pct = 100;
        cfg.workload.delete_pct = 0;
        cfg.workload.max_key = maxkey;
        cfg.workload.dist = KeyDist::kSorted;
        cfg.threads = static_cast<int>(t);
        cfg.duration_ms = ms;
        cfg.prefill = false;  // paper: Figure 5b has no prefilling
        return cfg;
      },
      args.csv());
  return 0;
}
