// Thin wrapper: keeps the paper-repro command line `fig5b_improvement_sorted`
// working.  The scenario lives in src/bench/scenarios.cpp ("fig5b").
#include "bench/scenarios.h"

int main(int argc, char** argv) {
  return cbat::bench::scenario_main(argc, argv, "fig5b");
}
