// Thin wrapper: keeps the paper-repro command line `fig5a_improvement_uniform`
// working.  The scenario lives in src/bench/scenarios.cpp ("fig5a").
#include "bench/scenarios.h"

int main(int argc, char** argv) {
  return cbat::bench::scenario_main(argc, argv, "fig5a");
}
