// Figure 5a: update-only throughput vs thread count, uniform keys
// (50-50-0-0, MK 10M).  Compares the BAT variants against FR-BST: balancing
// should beat the unbalanced tree, and delegation should add ~2x on top
// once threads contend.
#include "bench_common.h"

using namespace cbat::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const long maxkey =
      args.get_long("--maxkey", args.full_scale() ? 10000000 : 100000);
  const int ms = default_ms(args);
  const auto threads = default_thread_sweep(args);

  Table table("Figure 5a: MK " + std::to_string(maxkey) +
                  ", 50-50-0-0, uniform — throughput (ops/s)",
              "threads");
  sweep_throughput(
      table, {"BAT", "BAT-Del", "BAT-EagerDel", "FR-BST"}, threads,
      [&](long t) {
        RunConfig cfg;
        cfg.workload.insert_pct = 50;
        cfg.workload.delete_pct = 50;
        cfg.workload.max_key = maxkey;
        cfg.threads = static_cast<int>(t);
        cfg.duration_ms = ms;
        return cfg;
      },
      args.csv());
  return 0;
}
