#!/usr/bin/env bash
# Tier-1 verification: configure, build everything, run the full ctest
# suite.  Exits nonzero on the first failure.
#
#   scripts/verify.sh                # full suite
#   scripts/verify.sh --unit         # fast unit tests only (ctest -L unit)
#   scripts/verify.sh --filter RE    # tests matching RE only (ctest -R RE)
#   scripts/verify.sh --lint         # repo lints only, no build (markdown
#                                    # hygiene + the concurrency lint and
#                                    # its fixture self-test)
#   scripts/verify.sh --chaos        # fault-injection build (the chaos
#                                    # suite plus the protocol tests it
#                                    # perturbs, under ASan by default;
#                                    # CBAT_SANITIZE=thread for the TSan
#                                    # leg)
#
# Environment (used by the CI matrix; all optional):
#   BUILD_DIR          build tree                       (default: build)
#   CMAKE_BUILD_TYPE   passed to cmake when set (e.g. Release, Debug)
#   CBAT_SANITIZE      passed to cmake when set (e.g. address,undefined)
#
# The label split mirrors CMakeLists.txt: "unit" tests are fast
# single-structure tests, "integration" tests cross structures or run
# multi-second stress loops.
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--lint" ]]; then
  python3 scripts/check_markdown.py
  python3 scripts/check_concurrency.py
  python3 scripts/check_concurrency.py --self-test
  exit 0
fi

if [[ "${1:-}" == "--chaos" ]]; then
  # Chaos leg: the fault hooks compiled in (-DCBAT_FAULT_INJECTION=ON)
  # and the suites the injected faults exercise, sanitized.  The rollback
  # and allocation-failure paths only exist when faults can fire, so this
  # is the only build in which ASan/TSan ever see them.
  BUILD_DIR="${BUILD_DIR:-build-chaos}"
  CBAT_SANITIZE="${CBAT_SANITIZE:-address,undefined}"
  CMAKE_ARGS=(-DCBAT_FAULT_INJECTION=ON -DCBAT_SANITIZE="$CBAT_SANITIZE")
  if [[ -n "${CMAKE_BUILD_TYPE:-}" ]]; then
    CMAKE_ARGS+=(-DCMAKE_BUILD_TYPE="$CMAKE_BUILD_TYPE")
  fi
  cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
  cmake --build "$BUILD_DIR" -j
  ctest --test-dir "$BUILD_DIR" --output-on-failure --no-tests=error \
    -j "$(nproc)" -R 'fault_injection|sharded_set|combining|ebr'
  python3 scripts/check_markdown.py
  python3 scripts/check_concurrency.py
  exit 0
fi

LABEL_ARGS=()
if [[ "${1:-}" == "--unit" ]]; then
  LABEL_ARGS=(-L unit)
  shift
elif [[ "${1:-}" == "--filter" ]]; then
  [[ $# -ge 2 ]] || { echo "verify.sh: --filter needs a regex" >&2; exit 2; }
  LABEL_ARGS=(-R "$2")
  shift 2
fi

BUILD_DIR="${BUILD_DIR:-build}"
CMAKE_ARGS=()
if [[ -n "${CMAKE_BUILD_TYPE:-}" ]]; then
  CMAKE_ARGS+=(-DCMAKE_BUILD_TYPE="$CMAKE_BUILD_TYPE")
fi
if [[ -n "${CBAT_SANITIZE:-}" ]]; then
  CMAKE_ARGS+=(-DCBAT_SANITIZE="$CBAT_SANITIZE")
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j
# Note: a bare `ctest -j` would swallow the next argument as its value.
# --no-tests=error keeps a stale --filter regex (or label) from going
# vacuously green.
ctest --test-dir "$BUILD_DIR" --output-on-failure --no-tests=error \
  -j "$(nproc)" "${LABEL_ARGS[@]}" "$@"

# Docs hygiene (the clang-format analogue for markdown): lint plus an
# internal-link/anchor check over README.md, ROADMAP.md, and docs/ —
# docs/ARCHITECTURE.md's consistency table is part of the verified
# surface.  The concurrency lint rides along (it also runs as a ctest
# entry, but a --filter run can skip that).  Skipped only where python3
# is unavailable; CI always has it.
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/check_markdown.py
  python3 scripts/check_concurrency.py
else
  echo "verify.sh: python3 not found; skipping repo lints" >&2
fi
