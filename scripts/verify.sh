#!/usr/bin/env bash
# Tier-1 verification: configure, build everything, run the full ctest
# suite.  Exits nonzero on the first failure.
#
#   scripts/verify.sh            # full suite
#   scripts/verify.sh --unit     # fast unit tests only (ctest -L unit)
#
# The label split mirrors CMakeLists.txt: "unit" tests are fast
# single-structure tests, "integration" tests cross structures or run
# multi-second stress loops.
set -euo pipefail

cd "$(dirname "$0")/.."

LABEL_ARGS=()
if [[ "${1:-}" == "--unit" ]]; then
  LABEL_ARGS=(-L unit)
  shift
fi

cmake -B build -S .
cmake --build build -j
# Note: a bare `ctest -j` would swallow the next argument as its value.
ctest --test-dir build --output-on-failure -j "$(nproc)" "${LABEL_ARGS[@]}" "$@"
