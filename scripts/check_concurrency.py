#!/usr/bin/env python3
"""Concurrency lint for the C++ sources (the static half of PR 8).

Stdlib-only, in the check_markdown.py mold (CI and verify.sh both run it;
no pip installs).  Rules:

  * relaxed-justified: every `memory_order_relaxed` must carry a
    `// relaxed:` justification on the same line or within the preceding
    JUSTIFY_WINDOW lines — the audit trail for why the site needs no
    ordering.  An unjustified site is either missing its argument or is a
    real ordering bug; both should fail the build.
  * no-volatile: `volatile` is not a concurrency primitive; use
    std::atomic.  Escapes: `asm volatile` (an instruction qualifier, not a
    memory annotation) and a `// volatile:` justification for deliberate
    optimizer barriers (e.g. the benchmark sink).
  * no-consume: `memory_order_consume` is unimplementable-as-specified
    and demoted to acquire by every compiler; never introduce it.
  * shared-atomics-padded: a `std::atomic` declaration in a header is a
    cross-thread contact point, so it must sit in a `Padded`/`alignas`
    wrapper or carry a `// shared:` comment (same window) arguing why
    false sharing is acceptable at that site.
  * retire-scoped: `retire(`/`ebr_retire(` calls may appear only in
    reclamation-aware files (src/reclamation/ itself plus the explicit
    allowlist below) — scattering retirement sites is how use-after-free
    protocols rot.
  * fault-point-unique: every CBAT_FAULT_POINT/CBAT_FAULT_FORCE site
    name must be unique across the whole repo.  Site names key the
    fault planner's per-site budgets and only_site filters (and the
    chaos suite's coverage ledger), so two protocol sites sharing a
    name silently conflate their injection schedules.

Self-test: `--self-test` runs every rule against the fixture files under
tests/static_analysis/fixtures/, asserting that each good_* fixture passes
and each bad_* fixture fails with the expected rule id.  Exit 0 iff clean.

    python3 scripts/check_concurrency.py              # lint the repo
    python3 scripts/check_concurrency.py --self-test  # fixture suite
    python3 scripts/check_concurrency.py FILE...      # explicit files
"""

import os
import re
import sys

# Directories swept in repo mode (tests are covered too: a test that
# races or leaks an unjustified relaxed site is still repo code).
DEFAULT_DIRS = ["src", "bench", "tests", "examples"]
CXX_EXTS = (".h", ".hpp", ".cc", ".cpp")

# How many preceding lines may carry a `// relaxed:` / `// shared:`
# justification.  6 covers one small comment block plus a multi-line
# statement group sharing a single justification.
JUSTIFY_WINDOW = 6

# Files allowed to call retire()/ebr_retire() outside src/reclamation/:
# each runs a reclamation protocol of its own and documents it.
RETIRE_ALLOWLIST = {
    "src/core/bat_tree.h",             # version/root retirement (§6)
    "src/chromatic/chromatic_tree.h",  # node/version unlink sites
    "src/frbst/frbst.h",               # baseline tree unlink sites
    "src/llxscx/llx_scx.cpp",          # SCX descriptor retirement
    "src/vcasbst/vcas.h",              # vCAS version chains
    "src/vcasbst/vcas_bst.h",          # vCAS-BST node unlinks
    "src/shard/sharded_set.h",         # ShardMap flip retirement
    "src/bench/scenarios.cpp",         # reclamation_churn scenario
    "tests/ebr_test.cpp",              # tests the reclamation layer
    "tests/llxscx_test.cpp",           # exercises SCX retirement
    "tests/reclamation_lifecycle_test.cpp",
}

RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")
CONSUME_RE = re.compile(r"\bmemory_order_consume\b")
VOLATILE_RE = re.compile(r"\bvolatile\b")
# Member/namespace declarations of std::atomic<...> data.  References
# and pointers to atomics are not declarations of the shared word itself
# (the pointee's declaration site is where padding is decided); a paren
# without a brace is a call or a function signature, not a data member.
ATOMIC_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:static\s+)?(?:inline\s+)?"
    r"(?:std::)?atomic<")
ATOMIC_NOT_DECL_RE = re.compile(r"atomic<[^;]*>\s*[&*]")
RETIRE_RE = re.compile(r"\b(?:ebr_)?retire(?:_impl)?\s*\(")
# Fault-injection sites (src/util/fault.h).  Only literal-named
# invocations count: the macro definitions and doc examples use an
# unquoted `site` placeholder and are not site declarations.
FAULT_SITE_RE = re.compile(r'CBAT_FAULT_(?:POINT|FORCE)\(\s*"([^"]+)"')


def _window_has(lines, i, token):
    """True if lines[i] or any of the JUSTIFY_WINDOW preceding lines
    contains `token`."""
    lo = max(0, i - JUSTIFY_WINDOW)
    return any(token in lines[j] for j in range(lo, i + 1))


def lint_file(path, errors, fault_sites=None):
    """Lints one file.  `fault_sites` is the site-name ledger for the
    fault-point-unique rule (name -> first declaration site); the caller
    shares one dict across the whole sweep so duplicates are caught
    across files, not just within one."""
    if fault_sites is None:
        fault_sites = {}
    with open(path, "r", encoding="utf-8") as f:
        lines = f.read().splitlines()
    rel = path.replace(os.sep, "/")
    in_reclamation = rel.startswith("src/reclamation/")
    retire_ok = in_reclamation or rel in RETIRE_ALLOWLIST
    for i, line in enumerate(lines):
        n = i + 1
        if RELAXED_RE.search(line) and not _window_has(lines, i, "relaxed:"):
            errors.append(
                f"{rel}:{n}: [relaxed-justified] memory_order_relaxed "
                f"without a '// relaxed:' justification within "
                f"{JUSTIFY_WINDOW} lines")
        if CONSUME_RE.search(line):
            errors.append(
                f"{rel}:{n}: [no-consume] memory_order_consume is "
                f"forbidden (demoted to acquire everywhere; use acquire)")
        if VOLATILE_RE.search(line):
            stripped = re.sub(r"\basm\s+volatile\b", "", line)
            if VOLATILE_RE.search(stripped) and \
                    not _window_has(lines, i, "volatile:"):
                errors.append(
                    f"{rel}:{n}: [no-volatile] volatile is not a "
                    f"concurrency primitive (std::atomic, or justify an "
                    f"optimizer barrier with '// volatile:')")
        if rel.endswith((".h", ".hpp")) and ATOMIC_DECL_RE.match(line) \
                and not ATOMIC_NOT_DECL_RE.search(line) \
                and not ("(" in line and "{" not in line):
            if "Padded" not in line and "alignas" not in line and \
                    not _window_has(lines, i, "shared:"):
                errors.append(
                    f"{rel}:{n}: [shared-atomics-padded] header atomic "
                    f"outside a Padded/alignas wrapper needs a "
                    f"'// shared:' justification within "
                    f"{JUSTIFY_WINDOW} lines")
        if not retire_ok and RETIRE_RE.search(line):
            errors.append(
                f"{rel}:{n}: [retire-scoped] retire() outside a "
                f"reclamation-aware file (extend RETIRE_ALLOWLIST only "
                f"with a documented protocol)")
        for site in FAULT_SITE_RE.findall(line):
            if site in fault_sites:
                first = fault_sites[site]
                errors.append(
                    f"{rel}:{n}: [fault-point-unique] fault site "
                    f"\"{site}\" already declared at {first} — site "
                    f"names key per-site budgets and only_site filters, "
                    f"so every site needs its own name")
            else:
                fault_sites[site] = f"{rel}:{n}"


def repo_files():
    files = []
    for d in DEFAULT_DIRS:
        if not os.path.isdir(d):
            continue
        for root, _dirs, names in os.walk(d):
            # The lint fixtures and negative-compile TUs violate the
            # rules on purpose; the self-test covers them instead.
            if "static_analysis" in root.replace(os.sep, "/"):
                continue
            files.extend(os.path.join(root, x) for x in sorted(names)
                         if x.endswith(CXX_EXTS))
    return files


def self_test():
    fixture_dir = os.path.join("tests", "static_analysis", "fixtures")
    cases = sorted(os.listdir(fixture_dir))
    failures = []
    seen_rules = set()
    for name in cases:
        if not name.endswith(CXX_EXTS):
            continue
        path = os.path.join(fixture_dir, name)
        errors = []
        # Fresh site ledger per fixture: the duplicate the bad fixture
        # plants is in-file, and fixtures must not interfere.
        lint_file(path, errors, fault_sites={})
        if name.startswith("good_"):
            if errors:
                failures.append(f"{name}: expected clean, got: {errors}")
        elif name.startswith("bad_"):
            # bad_<rule-with-underscores>.h must trip exactly that rule.
            rule = name[len("bad_"):].rsplit(".", 1)[0].replace("_", "-")
            seen_rules.add(rule)
            if not errors:
                failures.append(f"{name}: expected a [{rule}] finding, "
                                f"got a clean pass")
            elif not any(f"[{rule}]" in e for e in errors):
                failures.append(f"{name}: expected [{rule}], got: {errors}")
    expected_rules = {"relaxed-justified", "no-volatile", "no-consume",
                      "shared-atomics-padded", "retire-scoped",
                      "fault-point-unique"}
    for rule in sorted(expected_rules - seen_rules):
        failures.append(f"missing bad_* fixture for rule [{rule}]")
    for f in failures:
        print(f"check_concurrency self-test: {f}", file=sys.stderr)
    print(f"check_concurrency self-test: {len(cases)} fixture(s), "
          f"{len(failures)} failure(s)")
    return 1 if failures else 0


def main(argv):
    os.chdir(os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
    if len(argv) > 1 and argv[1] == "--self-test":
        return self_test()
    files = argv[1:] or repo_files()
    errors = []
    # One ledger for the whole sweep: fault-point-unique is a repo-wide
    # invariant (the site namespace is global), not a per-file one.
    fault_sites = {}
    for f in files:
        if not os.path.exists(f):
            errors.append(f"{f}: no such file")
            continue
        lint_file(f, errors, fault_sites)
    for e in errors:
        print(f"check_concurrency: {e}", file=sys.stderr)
    print(f"check_concurrency: {len(files)} file(s), "
          f"{len(errors)} problem(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
