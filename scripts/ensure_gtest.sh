#!/usr/bin/env bash
# CI helper: some distro images ship libgtest-dev as sources only.  The
# root CMakeLists does find_package(GTest REQUIRED) unconditionally, so
# build the static libs from /usr/src/googletest when none are installed.
set -euo pipefail

if ls /usr/lib/*/libgtest.a /usr/lib/libgtest.a 2>/dev/null | grep -q .; then
  echo "ensure_gtest: prebuilt libgtest.a found"
  exit 0
fi
if [[ ! -d /usr/src/googletest ]]; then
  echo "ensure_gtest: no prebuilt libs and no /usr/src/googletest" >&2
  exit 1
fi
cmake -S /usr/src/googletest -B /tmp/gtest-build
cmake --build /tmp/gtest-build -j
sudo cmake --install /tmp/gtest-build
