#!/usr/bin/env python3
"""Validate and compare cbat_bench JSON results (BENCH_*.json schema).

Modes:
  compare_bench.py --check current.json
      Schema validation only: every run must carry throughput and
      p50/p99 latency fields.  Exit 0 iff the file is well-formed.

  compare_bench.py baseline.json current.json [--threshold 0.30]
                   [--normalize] [--geomean] [--scenarios fig5a,fig8,...]
                   [--min-ops-per-sec 1000]
      Matches runs by (scenario, table, series, x) and fails (exit 1) if
      throughput regressed by more than the threshold.
      --normalize first divides out the median current/baseline ratio, so
      a uniformly slower machine (e.g. a different CI runner class) does
      not trip the gate while a structure-specific regression still does.
      --geomean gates on the per-(scenario, series) geometric mean across
      x values instead of individual cells — much more robust to
      scheduler noise in short smoke runs, which is what CI uses.
      --scenarios restricts the gate to the named scenarios (others stay
      in the report but cannot fail the comparison).

Exit codes: 0 ok, 1 regression found, 2 schema/usage error.
"""

import argparse
import json
import math
import statistics
import sys

REQUIRED_TOP = ("schema_version", "git_sha", "mode", "scenarios")
REQUIRED_RUN = ("table", "x_label", "x", "series")
REQUIRED_LATENCY_PCTS = ("p50", "p99")


def fail_schema(msg):
    print(f"compare_bench: schema error: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail_schema(f"{path}: {e}")


def validate(doc, path):
    for key in REQUIRED_TOP:
        if key not in doc:
            fail_schema(f"{path}: missing top-level key '{key}'")
    if doc["schema_version"] != 1:
        fail_schema(f"{path}: unsupported schema_version {doc['schema_version']}")
    n_runs = 0
    for sc in doc["scenarios"]:
        if "name" not in sc or "runs" not in sc:
            fail_schema(f"{path}: scenario missing name/runs")
        for run in sc["runs"]:
            for key in REQUIRED_RUN:
                if key not in run:
                    fail_schema(
                        f"{path}: run in '{sc['name']}' missing '{key}'"
                    )
            # Runs carrying a measurement must expose throughput and
            # percentile latency; metric-only rows (none today) may not.
            if "throughput_ops_per_sec" in run:
                lat = run.get("latency_ns")
                if not isinstance(lat, dict):
                    fail_schema(
                        f"{path}: run '{run['series']}' has no latency_ns"
                    )
                for cls in ("update", "find", "query"):
                    if cls not in lat:
                        fail_schema(
                            f"{path}: run '{run['series']}' missing "
                            f"latency_ns.{cls}"
                        )
                    for pct in REQUIRED_LATENCY_PCTS:
                        if pct not in lat[cls]:
                            fail_schema(
                                f"{path}: run '{run['series']}' missing "
                                f"latency_ns.{cls}.{pct}"
                            )
                # Adaptive structures must account for what the
                # rebalancer did: a measured run whose capabilities
                # advertise `adaptive` without a `migrations` metric
                # means the bench driver stopped recording the
                # controller's counters — the exact blind spot the
                # adaptive gate exists to close.
                if run.get("capabilities", {}).get("adaptive"):
                    if "migrations" not in run.get("metrics", {}):
                        fail_schema(
                            f"{path}: adaptive run '{run['series']}' "
                            f"carries no metrics.migrations"
                        )
                n_runs += 1
    return n_runs


def indexed_runs(doc):
    out = {}
    for sc in doc["scenarios"]:
        for run in sc["runs"]:
            tput = run.get("throughput_ops_per_sec")
            if tput is None:
                continue
            key = (sc["name"], run["table"], run["series"], run["x"])
            out[key] = float(tput)
    return out


# Occupancy below this excess over 1.0 cannot be *ratio*-gated: on
# low-core hosts batches beyond the combiner's own request come from rare
# lock-collision events (one per scheduler preemption), so the excess is
# pure scheduling noise and a ratio against it would amplify that noise
# into spurious failures.  Such series are still reported, and still
# subject to the collapse check below — a current occupancy of exactly
# 1.0 (zero requests ever drained over a whole scenario) or 0.0 (no
# batches at all) cannot be produced by scheduler noise, only by a
# combining-protocol regression, so it fails regardless of the floor.
MIN_GATEABLE_OCCUPANCY_EXCESS = 0.05


def indexed_occupancy(doc, scenarios=None):
    """Per-(scenario, series) mean of the combining layer's batch-occupancy
    metric (avg requests per combiner batch, >= 1 when combining ran),
    restricted to `scenarios` when given (the gate's scenario set)."""
    groups = {}
    for sc in doc["scenarios"]:
        if scenarios is not None and sc["name"] not in scenarios:
            continue
        for run in sc["runs"]:
            occ = run.get("metrics", {}).get("batch_occupancy")
            if occ is None:
                continue
            groups.setdefault((sc["name"], run["series"]), []).append(
                float(occ))
    return {k: sum(v) / len(v) for k, v in groups.items()}


def report_occupancy(base_doc, cur_doc, drop_threshold, scenarios):
    """Surfaces combining effectiveness next to the throughput gate.

    Occupancy is compared on its *excess* over 1.0 (a batch always carries
    at least the combiner's own request, so `occ - 1` is the part combining
    actually contributed).  Only series whose baseline excess is at least
    MIN_GATEABLE_OCCUPANCY_EXCESS can fail the gate.  Returns the list of
    regressions beyond drop_threshold (empty when the flag is unset)."""
    base = indexed_occupancy(base_doc, scenarios)
    cur = indexed_occupancy(cur_doc, scenarios)
    # Mirror the throughput gate's dropped-scenario check: a baseline
    # series whose occupancy metric vanished from the current run (renamed
    # series, renamed metric key, metrics no longer emitted) must not
    # silently un-gate itself.
    missing = sorted(set(base) - set(cur))
    if missing and drop_threshold is not None:
        fail_schema(
            "baseline combining series carry no batch_occupancy in the "
            "current run (renamed series or dropped metrics? refresh "
            "bench/baselines/): "
            + ",".join("/".join(k) for k in missing))
    shared = sorted(set(base) & set(cur))
    if not shared:
        return []
    print("compare_bench: combining batch occupancy (avg requests/batch):")
    regressions = []
    for key in shared:
        b, c = base[key], cur[key]
        line = f"  {key[0]}/{key[1]}: {b:.3f} -> {c:.3f}"
        if drop_threshold is not None and b > 1.0 and c <= 1.0:
            # Collapse: combining stopped draining requests entirely.
            line += "  REGRESSED (occupancy collapsed to no combining)"
            regressions.append((key, b, c))
        elif drop_threshold is not None and \
                b - 1.0 >= MIN_GATEABLE_OCCUPANCY_EXCESS:
            excess_ratio = (c - 1.0) / (b - 1.0)
            if excess_ratio < 1.0 - drop_threshold:
                line += f"  REGRESSED (excess {excess_ratio - 1.0:+.0%})"
                regressions.append((key, b, c))
        elif drop_threshold is not None:
            line += "  (excess below ratio-gate floor)"
        print(line)
    return regressions


def indexed_hit_rate(doc, scenarios=None):
    """Per-(scenario, series) mean of the read layer's aggregate-cache
    hit-rate metric, restricted to `scenarios` when given.  Runs without
    the metric (cells whose query mix never consults a cache — e.g. the
    linearizable rank cells, whose prefix sums are refilled straight from
    pinned roots) simply do not contribute; a series is indexed only if at
    least one of its runs carried the metric."""
    groups = {}
    for sc in doc["scenarios"]:
        if scenarios is not None and sc["name"] not in scenarios:
            continue
        for run in sc["runs"]:
            rate = run.get("metrics", {}).get("agg_cache_hit_rate")
            if rate is None:
                continue
            groups.setdefault((sc["name"], run["series"]), []).append(
                float(rate))
    return {k: sum(v) / len(v) for k, v in groups.items()}


def report_hit_rate(base_doc, cur_doc, drop_threshold, scenarios):
    """Surfaces aggregate-cache effectiveness next to the throughput gate.

    A cache whose hit rate collapses stops contributing while the cached
    series' throughput may still pass the (noisy) throughput gate — the
    same failure mode the occupancy gate closes for update combining.
    Gated on the absolute drop in hit rate: the metric is already a
    bounded ratio, so a fractional-of-baseline gate (occupancy's shape)
    would over-trigger near 1.0 and under-trigger near 0.  Returns the
    regressions beyond drop_threshold (empty when the flag is unset)."""
    base = indexed_hit_rate(base_doc, scenarios)
    cur = indexed_hit_rate(cur_doc, scenarios)
    # A baseline series whose metric vanished entirely (renamed series or
    # key, metric no longer emitted) must not silently un-gate itself.
    missing = sorted(set(base) - set(cur))
    if missing and drop_threshold is not None:
        fail_schema(
            "baseline cached series carry no agg_cache_hit_rate in the "
            "current run (renamed series or dropped metrics? refresh "
            "bench/baselines/): "
            + ",".join("/".join(k) for k in missing))
    shared = sorted(set(base) & set(cur))
    if not shared:
        return []
    print("compare_bench: aggregate-cache hit rate:")
    regressions = []
    for key in shared:
        b, c = base[key], cur[key]
        line = f"  {key[0]}/{key[1]}: {b:.3f} -> {c:.3f}"
        if drop_threshold is not None and b - c > drop_threshold:
            line += f"  REGRESSED (hit rate fell {b - c:+.2f})"
            regressions.append((key, b, c))
        print(line)
    return regressions


# Cells below this Zipf skew are excluded from the adaptive gate: with a
# near-uniform key stream no shard is hot enough that migrating a
# boundary should pay, so adaptive-vs-static there is pure noise.  The
# paper's regime of interest (and the scenario's smoke grid) starts at
# theta = 1.2.
MIN_GATEABLE_THETA = 1.2


def report_adaptive(cur_doc, floor, scenarios):
    """Gates the adaptive shard layer on not collapsing to the static one.

    For every scenario cell that ran both an adaptive series
    (capabilities.adaptive) and its static twin (same name minus the
    "-Adapt" infix) at theta >= MIN_GATEABLE_THETA, compares the
    adaptive/static geomean throughput ratio against `floor` and
    requires the adaptive cells to have actually migrated
    (metrics.migrations > 0 somewhere in the gated set).  This is a
    current-run property, not a baseline comparison: a noise-tolerant
    floor (< 1.0) catches the controller silently never firing or
    migrations thrashing throughput away, while leaving headroom for
    scheduler jitter on oversubscribed runners.  Returns a list of
    failure strings (empty when the flag is unset or nothing gated)."""
    pairs = []  # (label, static_tput, adaptive_tput, migrations)
    for sc in cur_doc["scenarios"]:
        if scenarios is not None and sc["name"] not in scenarios:
            continue
        for run in sc["runs"]:
            caps = run.get("capabilities", {})
            if not caps.get("adaptive") or \
                    "throughput_ops_per_sec" not in run:
                continue
            try:
                theta = float(run["x"])
            except (TypeError, ValueError):
                continue
            if theta < MIN_GATEABLE_THETA - 1e-9:
                continue
            static_name = run["series"].replace("-Adapt", "")
            twin = next(
                (r for r in sc["runs"]
                 if r["series"] == static_name and r["table"] == run["table"]
                 and r["x"] == run["x"]
                 and "throughput_ops_per_sec" in r), None)
            if twin is None:
                continue
            pairs.append((
                f"{sc['name']}/{run['series']} x={run['x']}",
                float(twin["throughput_ops_per_sec"]),
                float(run["throughput_ops_per_sec"]),
                float(run.get("metrics", {}).get("migrations", 0.0)),
            ))
    if not pairs:
        if floor is not None and scenarios is not None:
            # The gate was requested but found nothing to gate — the
            # adaptive series was renamed or the scenario stopped
            # running paired cells.  Silently passing would un-gate it.
            fail_schema(
                "--adaptive-floor set but no adaptive/static cell pairs "
                f"at theta >= {MIN_GATEABLE_THETA} in the gated scenarios")
        return []
    ratio = math.exp(
        sum(math.log(a / s) for _, s, a, _ in pairs) / len(pairs))
    migrations = sum(m for _, _, _, m in pairs)
    print(f"compare_bench: adaptive vs static (theta >= "
          f"{MIN_GATEABLE_THETA}): geomean ratio {ratio:.3f} over "
          f"{len(pairs)} cell(s), {migrations:.0f} migrations")
    for label, s, a, m in pairs:
        print(f"  {label}: {s:,.0f} -> {a:,.0f} ops/s "
              f"({a / s - 1.0:+.1%}, migrations={m:.0f})")
    failures = []
    if floor is not None:
        if migrations <= 0:
            failures.append(
                "adaptive series performed zero migrations across all "
                "gated cells (controller never fired)")
        if ratio < floor:
            failures.append(
                f"adaptive/static geomean throughput ratio {ratio:.3f} "
                f"fell below the collapse floor {floor:.2f}")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", nargs="?", help="baseline BENCH_*.json")
    ap.add_argument("current", nargs="?", help="current BENCH_*.json")
    ap.add_argument("--check", metavar="FILE",
                    help="schema-validate one file and exit")
    ap.add_argument("--threshold", type=float, default=0.30,
                    help="max tolerated fractional regression (default 0.30)")
    ap.add_argument("--normalize", action="store_true",
                    help="divide out the median current/baseline ratio "
                         "before applying the threshold")
    ap.add_argument("--geomean", action="store_true",
                    help="gate on per-(scenario, series) geometric means "
                         "instead of individual cells")
    ap.add_argument("--scenarios", metavar="A,B,...",
                    help="restrict the gate to these scenario names")
    ap.add_argument("--min-ops-per-sec", type=float, default=1000.0,
                    help="ignore cells whose baseline throughput is below "
                         "this (too noisy to gate on)")
    ap.add_argument("--occupancy-drop", type=float, default=None,
                    metavar="FRAC",
                    help="fail if a series' combining batch occupancy "
                         "(its excess over the always-present own request) "
                         "drops by more than this fraction; occupancy is "
                         "always reported either way")
    ap.add_argument("--hit-rate-drop", type=float, default=None,
                    metavar="ABS",
                    help="fail if a series' aggregate-cache hit rate falls "
                         "by more than this absolute amount below the "
                         "baseline; hit rates are always reported either "
                         "way")
    ap.add_argument("--adaptive-floor", type=float, default=None,
                    metavar="RATIO",
                    help="fail if the current run's adaptive series "
                         "collapse onto their static twins: requires "
                         "adaptive/static geomean throughput >= RATIO at "
                         "theta >= 1.2 and at least one recorded "
                         "migration; the comparison is always reported "
                         "either way")
    args = ap.parse_args()

    if args.check:
        n = validate(load(args.check), args.check)
        print(f"compare_bench: {args.check}: schema OK ({n} measured runs)")
        return 0

    if not args.baseline or not args.current:
        ap.error("need BASELINE and CURRENT (or --check FILE)")

    base_doc = load(args.baseline)
    cur_doc = load(args.current)
    validate(base_doc, args.baseline)
    validate(cur_doc, args.current)
    base = indexed_runs(base_doc)
    cur = indexed_runs(cur_doc)

    gated = None
    if args.scenarios:
        gated = set(s for s in args.scenarios.split(",") if s)
        unknown = gated - set(k[0] for k in base)
        if unknown:
            # A typo or a renamed scenario silently un-gating itself is
            # exactly the failure mode this flag exists to prevent.
            fail_schema(
                f"--scenarios names not present in {args.baseline}: "
                f"{','.join(sorted(unknown))}"
            )

    def in_gate(key):
        return (gated is None or key[0] in gated) and \
            base[key] >= args.min_ops_per_sec

    # A gated cell whose current throughput collapsed to zero is the
    # worst possible regression, not a skippable cell.
    dead = [k for k in base
            if k in cur and in_gate(k) and cur[k] <= 0]
    if dead:
        print(f"compare_bench: FAIL — {len(dead)} cell(s) report zero "
              f"throughput in current run:", file=sys.stderr)
        for k in dead[:20]:
            print(f"  {'/'.join(k[:3])} x={k[3]}", file=sys.stderr)
        return 1

    matched = {
        k: (base[k], cur[k])
        for k in base
        if k in cur and in_gate(k) and cur[k] > 0
    }

    # Every gated scenario with baseline cells must still produce
    # comparable cells — otherwise (e.g. a renamed table title or smoke
    # default) the scenario would silently drop out of the gate.
    gated_in_base = set(k[0] for k in base if in_gate(k))
    gated_in_matched = set(k[0] for k in matched)
    dropped = gated_in_base - gated_in_matched
    if dropped:
        fail_schema(
            "gated scenario(s) have no comparable cells against the "
            f"baseline (renamed tables or changed smoke defaults? refresh "
            f"bench/baselines/): {','.join(sorted(dropped))}"
        )
    if args.geomean:
        groups = {}
        for (scenario, _table, series, _x), (b, c) in matched.items():
            groups.setdefault((scenario, series), []).append((b, c))
        matched = {
            (scenario, "geomean", series, "*"): (
                math.exp(sum(math.log(b) for b, _ in pairs) / len(pairs)),
                math.exp(sum(math.log(c) for _, c in pairs) / len(pairs)),
            )
            for (scenario, series), pairs in groups.items()
        }
    missing = sorted(set(base) - set(cur))
    if missing:
        print(f"compare_bench: warning: {len(missing)} baseline cell(s) "
              f"absent from current run (first: {missing[0]})",
              file=sys.stderr)
    if not matched:
        fail_schema("no comparable cells between baseline and current")

    scale = 1.0
    if args.normalize:
        scale = statistics.median(c / b for b, c in matched.values())
        print(f"compare_bench: normalizing by median ratio {scale:.3f} "
              f"(current machine vs baseline machine)")
        if scale <= 0:
            fail_schema("non-positive normalization ratio")

    regressions = []
    for key, (b, c) in sorted(matched.items()):
        ratio = (c / scale) / b
        if ratio < 1.0 - args.threshold:
            regressions.append((key, b, c, ratio))

    worst = min(matched.items(), key=lambda kv: (kv[1][1] / scale) / kv[1][0])
    best = max(matched.items(), key=lambda kv: (kv[1][1] / scale) / kv[1][0])
    print(f"compare_bench: {len(matched)} cells compared "
          f"(threshold {args.threshold:.0%}"
          f"{', normalized' if args.normalize else ''})")
    for label, (key, (b, c)) in (("worst", worst), ("best", best)):
        print(f"  {label}: {'/'.join(key[:3])} x={key[3]}: "
              f"{b:,.0f} -> {c:,.0f} ops/s "
              f"({(c / scale) / b - 1.0:+.1%} after scaling)")

    # Combining effectiveness rides along with the throughput gate: a
    # protocol regression can halve batch occupancy while throughput noise
    # still passes, so surface (and optionally gate) it here.
    occ_regressions = report_occupancy(base_doc, cur_doc,
                                       args.occupancy_drop, gated)
    hit_regressions = report_hit_rate(base_doc, cur_doc,
                                      args.hit_rate_drop, gated)
    adaptive_failures = report_adaptive(cur_doc, args.adaptive_floor, gated)

    if regressions:
        print(f"compare_bench: FAIL — {len(regressions)} cell(s) regressed "
              f"more than {args.threshold:.0%}:", file=sys.stderr)
        for key, b, c, ratio in regressions[:20]:
            print(f"  {'/'.join(key[:3])} x={key[3]}: "
                  f"{b:,.0f} -> {c:,.0f} ops/s ({ratio - 1.0:+.1%})",
                  file=sys.stderr)
        return 1
    if occ_regressions:
        print(f"compare_bench: FAIL — {len(occ_regressions)} series lost "
              f"more than {args.occupancy_drop:.0%} of their combining "
              f"batch occupancy:", file=sys.stderr)
        for key, b, c in occ_regressions[:20]:
            print(f"  {key[0]}/{key[1]}: {b:.2f} -> {c:.2f}",
                  file=sys.stderr)
        return 1
    if hit_regressions:
        print(f"compare_bench: FAIL — {len(hit_regressions)} series' "
              f"aggregate-cache hit rate fell more than "
              f"{args.hit_rate_drop:.2f} below baseline:", file=sys.stderr)
        for key, b, c in hit_regressions[:20]:
            print(f"  {key[0]}/{key[1]}: {b:.3f} -> {c:.3f}",
                  file=sys.stderr)
        return 1
    if adaptive_failures:
        print(f"compare_bench: FAIL — adaptive shard layer collapsed:",
              file=sys.stderr)
        for msg in adaptive_failures:
            print(f"  {msg}", file=sys.stderr)
        return 1
    print("compare_bench: OK — no regression beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
