#!/usr/bin/env bash
# Smoke-scale benchmark run: every scenario at --smoke parameters, one
# JSON file out.  Used by the CI smoke-bench job and for refreshing the
# committed baseline (bench/baselines/BENCH_smoke.json).  --all includes
# the shard-layer scenarios (shard_sweep is regression-gated alongside
# the figure scenarios; shard_hotspot stays informational) and the
# combining layer's combine_sweep (gated on throughput, with its
# batch-occupancy metrics surfaced by compare_bench.py).
#
#   scripts/bench_smoke.sh [OUT.json]       # default: BENCH_smoke.json
#
# Environment:
#   BUILD_DIR        build tree to use/create          (default: build)
#   BENCH_SCENARIOS  comma-separated subset to run     (default: --all)
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_smoke.json}"
BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j --target cbat_bench

SELECT=(--all)
if [[ -n "${BENCH_SCENARIOS:-}" ]]; then
  SELECT=(--scenario "$BENCH_SCENARIOS")
fi

"$BUILD_DIR"/cbat_bench "${SELECT[@]}" --smoke --json "$OUT"
python3 scripts/compare_bench.py --check "$OUT"
echo "bench_smoke: wrote $OUT"
