#!/usr/bin/env python3
"""Markdown hygiene for README.md, ROADMAP.md, and docs/.

Stdlib-only (CI and verify.sh both run it; no pip installs).  Checks:

  * internal links resolve: [text](RELATIVE/PATH) must name an existing
    file or directory (resolved against the linking file's directory),
    and [text](PATH#anchor) / [text](#anchor) must name a heading that
    GitHub-slugifies to that anchor in the target file;
  * lint: no hard tabs, no trailing whitespace, file ends with exactly
    one trailing newline.

External links (scheme://) are reported as a count but never fetched —
the job must not depend on the network.  Exit 0 iff everything passes.

    python3 scripts/check_markdown.py            # default file set
    python3 scripts/check_markdown.py A.md B.md  # explicit files
"""

import os
import re
import sys

DEFAULT_FILES = ["README.md", "ROADMAP.md"]
DEFAULT_DIRS = ["docs"]

# Inline links: [text](target).  Images share the syntax ("![alt](...)");
# the optional leading "!" is consumed so nested "[" in alt text cannot
# desync the scan.  Reference-style links are rare here and unchecked.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")


def github_slug(heading):
    """GitHub's anchor algorithm: lowercase, drop everything but word
    characters/spaces/hyphens, spaces to hyphens (markup stripped first)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # inline code
    text = re.sub(r"!?\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links
    text = re.sub(r"[*_]", "", text)                     # emphasis
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(path):
    anchors = {}
    in_fence = False
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if not m:
                continue
            slug = github_slug(m.group(2))
            # Duplicate headings get -1, -2, ... suffixes on GitHub.
            n = anchors.get(slug, -1) + 1
            anchors[slug] = n
            if n:
                anchors[f"{slug}-{n}"] = 0
    return set(anchors)


def lint(path, errors):
    with open(path, "r", encoding="utf-8") as f:
        content = f.read()
    for i, line in enumerate(content.splitlines(), 1):
        if "\t" in line:
            errors.append(f"{path}:{i}: hard tab")
        if line != line.rstrip():
            errors.append(f"{path}:{i}: trailing whitespace")
    if content and not content.endswith("\n"):
        errors.append(f"{path}: missing trailing newline")
    if content.endswith("\n\n"):
        errors.append(f"{path}: multiple trailing newlines")


def check_links(path, errors, external):
    base = os.path.dirname(path)
    in_fence = False
    with open(path, "r", encoding="utf-8") as f:
        for i, line in enumerate(f, 1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                target = m.group(1)
                if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # scheme://
                    external.append(target)
                    continue
                ref, _, anchor = target.partition("#")
                dest = path if not ref else os.path.normpath(
                    os.path.join(base, ref))
                if ref and not os.path.exists(dest):
                    errors.append(f"{path}:{i}: dead link '{target}' "
                                  f"({dest} does not exist)")
                    continue
                if anchor:
                    if not dest.endswith(".md"):
                        continue  # anchors into non-markdown: unchecked
                    if anchor not in heading_anchors(dest):
                        errors.append(f"{path}:{i}: dead anchor "
                                      f"'{target}' (no heading slugs to "
                                      f"'#{anchor}' in {dest})")


def main(argv):
    os.chdir(os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
    files = argv[1:]
    if not files:
        files = [f for f in DEFAULT_FILES if os.path.exists(f)]
        for d in DEFAULT_DIRS:
            for root, _dirs, names in os.walk(d):
                files.extend(os.path.join(root, n) for n in sorted(names)
                             if n.endswith(".md"))
    errors, external = [], []
    for f in files:
        if not os.path.exists(f):
            errors.append(f"{f}: no such file")
            continue
        lint(f, errors)
        check_links(f, errors, external)
    for e in errors:
        print(f"check_markdown: {e}", file=sys.stderr)
    print(f"check_markdown: {len(files)} file(s), "
          f"{len(external)} external link(s) skipped, "
          f"{len(errors)} problem(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
