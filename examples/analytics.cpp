// Analytics: generic augmentation beyond sizes.
//
// BAT supports *generic* augmentation functions (the paper's headline
// generality claim): here a composed augmentation tracks subtree sizes and
// key sums simultaneously, turning the tree into a concurrent order
// statistic + windowed-aggregate index over a stream of readings.  A second
// tree shows a min/max augmentation — something schemes restricted to
// abelian-group aggregations (SP, KYAA in the paper's related work) cannot
// express, because max has no inverse.
//
// Build & run:  ./build/examples/analytics
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/bat_tree.h"
#include "util/random.h"

using cbat::Key;

int main() {
  // Readings: values in [0, 10^6).  SizeSumAug = PairAug<SizeAug, KeySumAug>.
  cbat::BatEagerDel<cbat::SizeSumAug> readings;
  cbat::BatEagerDel<cbat::MinMaxAug> extremes;

  std::atomic<bool> stop{false};
  std::vector<std::thread> sensors;
  for (int s = 0; s < 3; ++s) {
    sensors.emplace_back([&, s] {
      cbat::Xoshiro256 rng(7 + s);
      // relaxed: stop polling; one late iteration is harmless.
      while (!stop.load(std::memory_order_relaxed)) {
        const Key v = static_cast<Key>(rng.below(1000000));
        readings.insert(v);
        extremes.insert(v);
        if (rng.below(4) == 0) {  // occasionally retract a reading
          const Key old = static_cast<Key>(rng.below(1000000));
          readings.erase(old);
          extremes.erase(old);
        }
      }
    });
  }

  for (int round = 1; round <= 5; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));

    // One O(log n) descent returns both the count and the sum of every
    // reading in the window — and the two are mutually consistent because
    // they come from the same stored aggregate.
    const Key lo = 250000, hi = 750000;
    const auto agg = readings.range_aggregate(lo, hi);
    const double avg =
        agg.first > 0 ? static_cast<double>(agg.second) / agg.first : 0.0;
    std::printf(
        "round %d: window [%lld, %lld]: count=%lld sum=%lld avg=%.1f\n",
        round, static_cast<long long>(lo), static_cast<long long>(hi),
        static_cast<long long>(agg.first), static_cast<long long>(agg.second),
        avg);

    // Min/max over an arbitrary range from the non-invertible augmentation.
    const auto mm = extremes.range_aggregate(100000, 200000);
    if (mm.min <= mm.max) {
      std::printf("         extremes in [100000, 200000]: min=%lld max=%lld\n",
                  static_cast<long long>(mm.min),
                  static_cast<long long>(mm.max));
    }
  }

  stop = true;
  for (auto& t : sensors) t.join();
  std::printf("final: %lld distinct readings indexed\n",
              static_cast<long long>(readings.size()));
  return 0;
}
