// Quickstart: the BAT public API in two minutes.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "api/ordered_set.h"
#include "core/bat_tree.h"

int main() {
  // A lock-free balanced augmented tree with subtree sizes (the default
  // augmentation), using the eager-delegation variant — the paper's
  // best-performing configuration.
  cbat::BatEagerDel<cbat::SizeAug> set;

  // Plain set operations, safe to call from any number of threads.
  for (cbat::Key k : {50, 20, 80, 10, 30, 70, 90}) set.insert(k);
  set.erase(30);

  std::printf("contains(20) = %s\n", set.contains(20) ? "yes" : "no");
  std::printf("size()       = %lld\n", static_cast<long long>(set.size()));

  // What augmentation buys you: order-statistic queries in O(log n), each
  // answered from one atomic snapshot of the tree.
  std::printf("rank(50)     = %lld   (keys <= 50)\n",
              static_cast<long long>(set.rank(50)));
  if (auto third = set.select(3)) {
    std::printf("select(3)    = %lld   (3rd smallest)\n",
                static_cast<long long>(*third));
  }
  std::printf("count[25,85] = %lld\n",
              static_cast<long long>(set.range_count(25, 85)));

  // Multi-query consistency: a Snapshot pins one version tree, so every
  // answer refers to the same instant even while other threads update.
  {
    cbat::BatEagerDel<cbat::SizeAug>::Snapshot snap(set);
    const auto n = snap.size();
    const auto median = snap.select((n + 1) / 2);
    std::printf("snapshot: n=%lld median=%lld rank(median)=%lld\n",
                static_cast<long long>(n),
                static_cast<long long>(median.value_or(-1)),
                static_cast<long long>(snap.rank(*median)));
  }

  // Listing a range costs O(log n + answer).
  std::printf("keys in [15, 75]:");
  for (cbat::Key k : set.range_collect(15, 75)) {
    std::printf(" %lld", static_cast<long long>(k));
  }
  std::printf("\n");

  // The same structure through the unified API layer: every tree in the
  // repository registers itself in the StructureRegistry under the name the
  // paper's figures use, behind one type-erased interface.  This is how the
  // benchmarks and cross-structure tests stay structure-agnostic.
  auto& registry = cbat::api::StructureRegistry::instance();
  std::printf("registered structures:");
  for (const auto& name : registry.names()) std::printf(" %s", name.c_str());
  std::printf("\n");
  auto erased = registry.create("BAT-EagerDel");
  for (cbat::Key k : {3, 1, 2}) erased->insert(k);
  std::printf("via registry: %s has %lld keys, rank(2)=%lld\n",
              erased->name().c_str(), static_cast<long long>(erased->size()),
              static_cast<long long>(erased->rank(2)));

  // Tuning goes through one front door: configure() takes a SetOptions
  // bag and applies every engaged field the structure can honor.  Here
  // the adaptive sharded forest aligns its shard map to the keyspace and
  // turns on online hot-shard rebalancing; configure() returns false if
  // any engaged field could not be applied (e.g. the same options on a
  // non-adaptive structure).
  auto forest = registry.create("Sharded16-Combined-BAT-Adapt");
  cbat::api::SetOptions opts;
  opts.key_range_hint = 1 << 20;
  opts.adaptive_rebalance = true;
  const bool applied = forest->configure(opts);
  if (const auto info = registry.info(forest->name())) {
    std::printf("%s: shards=%d adaptive=%s, configure -> %s\n",
                forest->name().c_str(), info->shards,
                info->adaptive ? "yes" : "no", applied ? "ok" : "refused");
  }
  return 0;
}
