// Snapshot audit: the multiversioning bonus (paper §1.1, §3.2).
//
// BAT's augmentation scheme gives atomic snapshots for free: a query reads
// Root.version once and owns an immutable view of the whole set.  This
// example runs a bank-style invariant audit: accounts are encoded as keys,
// transfers move value by deleting one encoded key and inserting another,
// and an auditor repeatedly verifies that the *sum* of all balances never
// changes — which only holds if its view is atomic.
//
// Encoding: key = account_id * 10^7 + balance; one key per account.
//
// Build & run:  ./build/examples/snapshot_audit
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/bat_tree.h"
#include "util/random.h"

using cbat::Key;

namespace {
constexpr Key kEnc = 10000000;  // balance < 10^7
constexpr int kAccounts = 256;
constexpr Key kInitialBalance = 1000;

Key encode(int account, Key balance) { return account * kEnc + balance; }
}  // namespace

int main() {
  // KeySumAug: the root aggregate is the sum of all keys; since every key
  // is account*kEnc + balance and accounts are fixed, total balance is
  // recoverable from one O(1) root read... but we compute it with a range
  // aggregate per account block to exercise the query path too.
  cbat::BatEagerDel<cbat::SizeSumAug> bank;
  for (int a = 0; a < kAccounts; ++a) bank.insert(encode(a, kInitialBalance));
  const long long expected_total =
      static_cast<long long>(kAccounts) * kInitialBalance;

  std::atomic<bool> stop{false};
  std::atomic<long> transfers{0};
  std::vector<std::thread> tellers;
  for (int t = 0; t < 3; ++t) {
    tellers.emplace_back([&, t] {
      cbat::Xoshiro256 rng(31 + t);
      // relaxed: stop polling; one late iteration is harmless.
      while (!stop.load(std::memory_order_relaxed)) {
        const int from = static_cast<int>(rng.below(kAccounts));
        const int to = static_cast<int>(rng.below(kAccounts));
        if (from == to) continue;
        // Read current balances from a snapshot, then apply the transfer as
        // four set updates.  Retry if someone else touched the accounts.
        cbat::BatEagerDel<cbat::SizeSumAug>::Snapshot snap(bank);
        const auto from_keys =
            snap.range_aggregate(from * kEnc, from * kEnc + kEnc - 1);
        const auto to_keys =
            snap.range_aggregate(to * kEnc, to * kEnc + kEnc - 1);
        if (from_keys.first != 1 || to_keys.first != 1) continue;
        const Key from_bal = from_keys.second - from * kEnc;
        const Key to_bal = to_keys.second - to * kEnc;
        const Key amount = 1 + static_cast<Key>(rng.below(50));
        if (from_bal < amount) continue;
        // Optimistic concurrency: erase(old) fails if another teller won.
        if (!bank.erase(encode(from, from_bal))) continue;
        if (!bank.erase(encode(to, to_bal))) {
          bank.insert(encode(from, from_bal));  // roll back
          continue;
        }
        bank.insert(encode(from, from_bal - amount));
        bank.insert(encode(to, to_bal + amount));
        // relaxed: statistics counter, read after join().
        transfers.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  int violations = 0;
  for (int audit = 1; audit <= 8; ++audit) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    cbat::BatEagerDel<cbat::SizeSumAug>::Snapshot snap(bank);
    const auto agg = snap.range_aggregate(0, kAccounts * kEnc);
    // Transfers may be mid-flight (2-4 updates), so the account count can
    // differ transiently, but each audit sees a *consistent* snapshot: sum
    // of balances of fully-present accounts plus in-flight amounts is
    // conserved only when all accounts are present.
    if (agg.first == kAccounts) {
      long long sum_balances = agg.second;
      for (int a = 0; a < kAccounts; ++a) {
        sum_balances -= static_cast<long long>(a) * kEnc;
      }
      const bool ok = (sum_balances == expected_total);
      if (!ok) ++violations;
      std::printf("audit %d: %ld transfers, accounts=%lld, total=%lld (%s)\n",
                  audit, transfers.load(), static_cast<long long>(agg.first),
                  sum_balances, ok ? "conserved" : "VIOLATION");
    } else {
      std::printf("audit %d: transfer in flight (%lld accounts visible)\n",
                  audit, static_cast<long long>(agg.first));
    }
  }

  stop = true;
  for (auto& t : tellers) t.join();
  std::printf("%s\n", violations == 0 ? "all audits conserved the total"
                                      : "AUDIT FAILURES DETECTED");
  return violations == 0 ? 0 : 1;
}
