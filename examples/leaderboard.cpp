// Leaderboard: concurrent order-statistic queries under a write-heavy load.
//
// The motivating workload from the paper's introduction: a score set that
// many threads update while others ask "what percentile is score X?"
// (rank) and "what score is rank R?" (select).  With an unaugmented
// concurrent set those queries would scan half the structure; BAT answers
// them in O(log n) from an atomic snapshot.
//
// Build & run:  ./build/examples/leaderboard
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/bat_tree.h"
#include "util/random.h"

using cbat::Key;

int main() {
  cbat::BatEagerDel<cbat::SizeAug> scores;
  constexpr Key kMaxScore = 1000000;
  constexpr int kWriters = 3;

  // Seed the board.
  {
    cbat::Xoshiro256 rng(1);
    for (int i = 0; i < 50000; ++i) {
      scores.insert(static_cast<Key>(rng.below(kMaxScore)));
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<long> updates{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      cbat::Xoshiro256 rng(100 + w);
      // relaxed: stop polling; one late iteration is harmless.
      while (!stop.load(std::memory_order_relaxed)) {
        const Key k = static_cast<Key>(rng.below(kMaxScore));
        if (rng.below(2) == 0) {
          scores.insert(k);
        } else {
          scores.erase(k);
        }
        // relaxed: statistics counter, read after join().
        updates.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // The query thread prints a live percentile table; every line comes from
  // one consistent snapshot, even though writers never pause.
  for (int round = 1; round <= 5; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    cbat::BatEagerDel<cbat::SizeAug>::Snapshot snap(scores);
    const auto n = snap.size();
    std::printf("round %d: %lld scores, %ld updates applied so far\n", round,
                static_cast<long long>(n), updates.load());
    for (int pct : {50, 90, 99}) {
      const auto idx = std::max<std::int64_t>(1, n * pct / 100);
      const auto score = snap.select(idx);
      std::printf("  p%-2d score = %7lld   (rank check: %lld/%lld)\n", pct,
                  static_cast<long long>(score.value_or(-1)),
                  static_cast<long long>(snap.rank(*score)),
                  static_cast<long long>(n));
    }
    // How good is a score of 900000?
    const auto better = n - snap.rank(900000);
    std::printf("  score 900000 beats all but %lld players\n",
                static_cast<long long>(better));
  }

  stop = true;
  for (auto& t : writers) t.join();
  return 0;
}
