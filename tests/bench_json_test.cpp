// Unit tests for the dependency-free JSON writer, the latency histogram's
// percentile math, and the round-trippability of the BENCH_*.json schema.
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "bench/json.h"
#include "bench/latency.h"
#include "bench/scenarios.h"
#include "mini_json.h"

namespace cbat::bench {
namespace {

using cbat::testjson::parse;
using cbat::testjson::Value;

TEST(JsonEscape, EscapesWhatJsonRequires) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak\ttab\rcr"),
            "line\\nbreak\\ttab\\rcr");
  EXPECT_EQ(json_escape(std::string("nul\x01" "byte")), "nul\\u0001byte");
  EXPECT_EQ(json_escape("b\bf\f"), "b\\bf\\f");
  // Multi-byte UTF-8 passes through untouched.
  EXPECT_EQ(json_escape("λ → ∞"), "λ → ∞");
}

TEST(JsonWriter, WritesNestedStructure) {
  JsonWriter w;
  w.begin_object();
  w.kv("name", "fig8");
  w.kv("threads", 4);
  w.kv("mops", 1.5);
  w.kv("ok", true);
  w.key("none");
  w.null_value();
  w.key("xs");
  w.begin_array();
  w.value(1).value(2).value(3);
  w.end_array();
  w.key("nested");
  w.begin_object();
  w.kv("a", "b");
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"fig8\",\"threads\":4,\"mops\":1.5,\"ok\":true,"
            "\"none\":null,\"xs\":[1,2,3],\"nested\":{\"a\":\"b\"}}");
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("a");
  w.begin_array();
  w.end_array();
  w.key("o");
  w.begin_object();
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"a\":[],\"o\":{}}");
}

TEST(JsonDouble, RoundTripsAndHandlesNonFinite) {
  for (double v : {0.0, 1.0, -1.0, 0.1, 1.5, 1e-9, 1e300, 123456.789,
                   3.141592653589793}) {
    const std::string s = json_double(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
  EXPECT_EQ(json_double(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_double(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonWriter, Int64Extremes) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<std::int64_t>::min());
  w.value(std::numeric_limits<std::int64_t>::max());
  w.value(std::numeric_limits<std::uint64_t>::max());
  w.end_array();
  EXPECT_EQ(w.str(),
            "[-9223372036854775808,9223372036854775807,"
            "18446744073709551615]");
}

TEST(JsonWriter, OutputParsesBackToSameValues) {
  JsonWriter w;
  w.begin_object();
  w.kv("s", "quote \" and \\ and \n end");
  w.kv("i", 42);
  w.kv("d", 0.25);
  w.key("a");
  w.begin_array();
  w.value("x");
  w.value(false);
  w.null_value();
  w.end_array();
  w.end_object();

  const auto v = parse(w.str());
  EXPECT_EQ(v->at("s").str, "quote \" and \\ and \n end");
  EXPECT_EQ(v->at("i").num, 42);
  EXPECT_EQ(v->at("d").num, 0.25);
  EXPECT_EQ(v->at("a").item(0).str, "x");
  EXPECT_EQ(v->at("a").item(1).b, false);
  EXPECT_TRUE(v->at("a").item(2).is_null());
}

// ---------------------------------------------------------------------------
// Latency histogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 32; ++v) h.record(v);
  // 32 samples 0..31; every value below kSubBuckets has its own bucket.
  EXPECT_EQ(h.count(), 32);
  EXPECT_DOUBLE_EQ(h.percentile(100), 31);
  EXPECT_DOUBLE_EQ(h.percentile(50), 15);  // 16th of 32 samples
  EXPECT_DOUBLE_EQ(h.mean(), 15.5);
  EXPECT_EQ(h.max(), 31u);
}

TEST(LatencyHistogram, BucketIndexIsMonotoneAndContinuous) {
  int prev = LatencyHistogram::bucket_index(0);
  EXPECT_EQ(prev, 0);
  for (std::uint64_t v = 1; v <= 8192; ++v) {
    const int idx = LatencyHistogram::bucket_index(v);
    EXPECT_GE(idx, prev) << v;
    EXPECT_LE(idx - prev, 1) << v;  // adjacent values never skip a bucket
    prev = idx;
  }
  for (std::uint64_t v = 8192; v < (1ULL << 62); v *= 2) {
    EXPECT_LT(LatencyHistogram::bucket_index(v),
              LatencyHistogram::bucket_index(v * 2));
  }
  // The top of the range still maps inside the table.
  EXPECT_LT(LatencyHistogram::bucket_index(
                std::numeric_limits<std::uint64_t>::max()),
            LatencyHistogram::kBucketCount);
}

TEST(LatencyHistogram, PercentilesOnUniformDistribution) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 100000; ++v) h.record(v);
  // Log-linear buckets with 32 sub-buckets bound relative error by ~3%;
  // allow 5% slack.
  EXPECT_NEAR(h.percentile(50), 50000, 2500);
  EXPECT_NEAR(h.percentile(90), 90000, 4500);
  EXPECT_NEAR(h.percentile(99), 99000, 5000);
  EXPECT_DOUBLE_EQ(h.mean(), 50000.5);
  EXPECT_EQ(h.max(), 100000u);
  EXPECT_EQ(h.count(), 100000);
}

TEST(LatencyHistogram, PercentilesOnBimodalDistribution) {
  LatencyHistogram h;
  for (int i = 0; i < 900; ++i) h.record(100);
  for (int i = 0; i < 100; ++i) h.record(1000000);
  EXPECT_NEAR(h.percentile(50), 100, 5);
  EXPECT_NEAR(h.percentile(90), 100, 5);
  EXPECT_NEAR(h.percentile(99), 1000000, 40000);
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, both;
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    (v % 2 == 0 ? a : b).record(v * 17);
    both.record(v * 17);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_DOUBLE_EQ(a.mean(), both.mean());
  EXPECT_DOUBLE_EQ(a.percentile(50), both.percentile(50));
  EXPECT_DOUBLE_EQ(a.percentile(99), both.percentile(99));
  EXPECT_EQ(a.max(), both.max());
}

TEST(LatencyStats, SummarizesHistogram) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const LatencyStats s = LatencyStats::from(h);
  EXPECT_EQ(s.count, 1000);
  EXPECT_NEAR(s.p50_ns, 500, 25);
  EXPECT_NEAR(s.p90_ns, 900, 45);
  EXPECT_NEAR(s.p99_ns, 990, 50);
  EXPECT_LE(s.p50_ns, s.p90_ns);
  EXPECT_LE(s.p90_ns, s.p99_ns);
  EXPECT_DOUBLE_EQ(s.mean_ns, 500.5);
  EXPECT_DOUBLE_EQ(s.max_ns, 1000);
}

TEST(LatencyHistogram, PercentileNeverExceedsMax) {
  LatencyHistogram h;
  h.record(1000001);  // lands low in a wide log-linear bucket
  EXPECT_DOUBLE_EQ(h.percentile(50), 1000001);
  EXPECT_DOUBLE_EQ(h.percentile(99), 1000001);
  h.record(3);
  EXPECT_LE(h.percentile(99), static_cast<double>(h.max()));
}

TEST(LatencyHistogram, EmptyHistogramIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0);
}

TEST(LatencyHistogram, PercentileBoundaries) {
  LatencyHistogram one;
  one.record(7);
  // count=1: every percentile is the single sample.
  EXPECT_DOUBLE_EQ(one.percentile(0), 7);
  EXPECT_DOUBLE_EQ(one.percentile(50), 7);
  EXPECT_DOUBLE_EQ(one.percentile(100), 7);

  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 10; ++v) h.record(v);
  // p=0 clamps to the first sample, p=100 to the last.
  EXPECT_DOUBLE_EQ(h.percentile(0), 1);
  EXPECT_DOUBLE_EQ(h.percentile(100), 10);
  // Exact-integer targets: p/100*count integral must not round up.
  EXPECT_DOUBLE_EQ(h.percentile(10), 1);   // target exactly 1
  EXPECT_DOUBLE_EQ(h.percentile(50), 5);   // target exactly 5
  EXPECT_DOUBLE_EQ(h.percentile(90), 9);   // target exactly 9
  // Fractional targets take the ceiling.
  EXPECT_DOUBLE_EQ(h.percentile(51), 6);   // ceil(5.1) = 6
  EXPECT_DOUBLE_EQ(h.percentile(0.1), 1);  // ceil(0.01) = 1
}

TEST(LatencyHistogram, PercentileTargetIsExactIntegerCeiling) {
  using H = LatencyHistogram;
  // Small exact cases.
  EXPECT_EQ(H::percentile_target(0, 100), 1);    // clamped up to 1
  EXPECT_EQ(H::percentile_target(100, 100), 100);
  EXPECT_EQ(H::percentile_target(50, 100), 50);  // exact, no round-up
  EXPECT_EQ(H::percentile_target(50, 101), 51);  // ceil(50.5)
  EXPECT_EQ(H::percentile_target(99, 1), 1);
  EXPECT_EQ(H::percentile_target(99.99, 10000), 9999);
  EXPECT_EQ(H::percentile_target(99.99, 10001), 10000);  // ceil(10000.0001)
  EXPECT_EQ(H::percentile_target(100, 0), 0);
  // Counts beyond double's integer resolution (2^53): the old
  // float-epsilon hack (int(p/100*count + 0.9999999)) loses the epsilon
  // and misses the ceiling here.
  const std::int64_t big = (1LL << 54) + 2;
  EXPECT_EQ(H::percentile_target(50, big), (1LL << 53) + 1);
  EXPECT_EQ(H::percentile_target(100, big), big);
  EXPECT_EQ(H::percentile_target(25, (1LL << 54) + 4), (1LL << 52) + 1);
}

// ---------------------------------------------------------------------------
// Schema round trip: a synthetic RunRecord through bench_json_document and
// back through the parser, checking the fields scripts/compare_bench.py
// keys on.
// ---------------------------------------------------------------------------

TEST(BenchJsonSchema, DocumentRoundTrips) {
  ScenarioOutput out;
  RunRecord rec;
  rec.table = "Figure 8a (low update)";
  rec.x_label = "threads";
  rec.x = "4";
  rec.series = "BAT-EagerDel";
  rec.has_result = true;
  rec.result.structure = "BAT-EagerDel";
  rec.result.seconds = 0.5;
  rec.result.total_ops = 1000000;
  rec.result.updates = 250000;
  rec.result.finds = 250000;
  rec.result.queries = 500000;
  rec.result.config.threads = 4;
  rec.result.config.duration_ms = 500;
  rec.result.config.workload.query_kind = QueryKind::kRange;
  rec.result.config.workload.dist = KeyDist::kZipf;
  rec.result.update_latency = {100, 220.5, 200, 400, 900, 1500};
  rec.result.query_latency = {100, 5000, 4500, 9000, 20000, 30000};
  rec.metrics = {{"cas_per_prop", 22.2}};
  out.runs.push_back(rec);

  // Second run: the read-combined fields ISSUE 6 added — a non-default
  // read_path, the hot-range query kind, and the cache hit-rate metric
  // compare_bench.py gates on.
  RunRecord rc = rec;
  rc.series = "Sharded16-Combined-BAT-RC/cached";
  rc.read_path = "cached";
  rc.result.config.workload.query_kind = QueryKind::kRangeAgg;
  rc.metrics = {{"agg_cache_hit_rate", 0.97}, {"lease_shared_pct", 41.5}};
  out.runs.push_back(rc);

  char fake_argv0[] = "test";
  char smoke[] = "--smoke";
  char* argv[] = {fake_argv0, smoke};
  Args args(2, argv);
  setenv("CBAT_GIT_SHA", "deadbeef1234", 1);
  const std::string doc =
      bench_json_document({{"fig8", std::move(out)}}, args);
  unsetenv("CBAT_GIT_SHA");

  const auto v = parse(doc);
  EXPECT_EQ(v->at("schema_version").num, 1);
  EXPECT_EQ(v->at("tool").str, "cbat_bench");
  EXPECT_EQ(v->at("git_sha").str, "deadbeef1234");
  EXPECT_EQ(v->at("mode").str, "smoke");
  const Value& sc = v->at("scenarios").item(0);
  EXPECT_EQ(sc.at("name").str, "fig8");
  EXPECT_FALSE(sc.at("title").str.empty());
  const Value& run = sc.at("runs").item(0);
  EXPECT_EQ(run.at("table").str, "Figure 8a (low update)");
  EXPECT_EQ(run.at("x").str, "4");
  EXPECT_EQ(run.at("series").str, "BAT-EagerDel");
  EXPECT_DOUBLE_EQ(run.at("throughput_ops_per_sec").num, 2000000);
  EXPECT_DOUBLE_EQ(run.at("mops").num, 2);
  EXPECT_EQ(run.at("config").at("query_kind").str, "range");
  EXPECT_EQ(run.at("config").at("dist").str, "zipf");
  EXPECT_EQ(run.at("config").at("threads").num, 4);
  const Value& lat = run.at("latency_ns");
  EXPECT_DOUBLE_EQ(lat.at("update").at("p50").num, 200);
  EXPECT_DOUBLE_EQ(lat.at("update").at("p99").num, 900);
  EXPECT_DOUBLE_EQ(lat.at("query").at("p90").num, 9000);
  EXPECT_DOUBLE_EQ(lat.at("find").at("count").num, 0);
  EXPECT_DOUBLE_EQ(run.at("metrics").at("cas_per_prop").num, 22.2);
  // Every run carries a read_path; the default is "direct".
  EXPECT_EQ(run.at("read_path").str, "direct");

  const Value& rcr = sc.at("runs").item(1);
  EXPECT_EQ(rcr.at("series").str, "Sharded16-Combined-BAT-RC/cached");
  EXPECT_EQ(rcr.at("read_path").str, "cached");
  EXPECT_EQ(rcr.at("config").at("query_kind").str, "range_agg");
  EXPECT_DOUBLE_EQ(rcr.at("metrics").at("agg_cache_hit_rate").num, 0.97);
  EXPECT_DOUBLE_EQ(rcr.at("metrics").at("lease_shared_pct").num, 41.5);
}

}  // namespace
}  // namespace cbat::bench
