// Algebraic laws every augmentation policy must satisfy for the paper's
// propagation scheme to be correct:
//
//   1. combine is associative — propagation may re-associate subtree
//      aggregates in any order as rebalancing rotates internal nodes;
//   2. sentinel() is a two-sided identity of combine — sentinel leaves
//      must contribute nothing to any aggregate;
//   3. for SizedAugmentations, size_of agrees with the number of leaves
//      folded into the value, for every association order.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include "core/augmentations.h"
#include "util/keys.h"

namespace cbat {
namespace {

// Deterministic key sample: mixes small, adjacent, negative, and
// near-sentinel keys so identity/associativity failures that depend on
// magnitude or sign would surface.
std::vector<Key> sample_keys() {
  std::vector<Key> keys = {0, 1, 2, -1, -1000, 1000, 123456789,
                           kMaxUserKey, kMaxUserKey - 1, -kMaxUserKey};
  std::mt19937_64 rng(2026);
  std::uniform_int_distribution<Key> d(-kMaxUserKey, kMaxUserKey);
  for (int i = 0; i < 200; ++i) keys.push_back(d(rng));
  return keys;
}

template <Augmentation Aug>
void check_sentinel_identity() {
  const auto id = Aug::sentinel();
  for (Key k : sample_keys()) {
    const auto v = Aug::leaf(k);
    EXPECT_EQ(Aug::combine(id, v), v) << "left identity failed, key " << k;
    EXPECT_EQ(Aug::combine(v, id), v) << "right identity failed, key " << k;
  }
  EXPECT_EQ(Aug::combine(id, id), id);
}

template <Augmentation Aug>
void check_associativity() {
  const auto keys = sample_keys();
  for (std::size_t i = 0; i + 2 < keys.size(); ++i) {
    const auto a = Aug::leaf(keys[i]);
    const auto b = Aug::leaf(keys[i + 1]);
    const auto c = Aug::leaf(keys[i + 2]);
    EXPECT_EQ(Aug::combine(Aug::combine(a, b), c),
              Aug::combine(a, Aug::combine(b, c)))
        << "associativity failed at keys " << keys[i] << ", " << keys[i + 1]
        << ", " << keys[i + 2];
  }
}

// Folds the leaf values of `keys` left-to-right and in a balanced-tree
// order; both must agree, and for sized augmentations both must report
// exactly keys.size() leaves.
template <Augmentation Aug>
typename Aug::Value fold_left(const std::vector<Key>& keys) {
  auto acc = Aug::sentinel();
  for (Key k : keys) acc = Aug::combine(acc, Aug::leaf(k));
  return acc;
}

template <Augmentation Aug>
typename Aug::Value fold_balanced(const std::vector<Key>& keys,
                                  std::size_t lo, std::size_t hi) {
  if (lo == hi) return Aug::sentinel();
  if (hi - lo == 1) return Aug::leaf(keys[lo]);
  const std::size_t mid = lo + (hi - lo) / 2;
  return Aug::combine(fold_balanced<Aug>(keys, lo, mid),
                      fold_balanced<Aug>(keys, mid, hi));
}

template <Augmentation Aug>
void check_fold_order_independence() {
  const auto keys = sample_keys();
  EXPECT_EQ(fold_left<Aug>(keys), fold_balanced<Aug>(keys, 0, keys.size()));
}

TEST(AugmentationLaws, SizeAugSentinelIdentity) {
  check_sentinel_identity<SizeAug>();
}
TEST(AugmentationLaws, SizeAugAssociativity) { check_associativity<SizeAug>(); }
TEST(AugmentationLaws, SizeAugFoldOrderIndependence) {
  check_fold_order_independence<SizeAug>();
}

TEST(AugmentationLaws, KeySumSentinelIdentity) {
  check_sentinel_identity<KeySumAug>();
}
TEST(AugmentationLaws, KeySumAssociativity) {
  check_associativity<KeySumAug>();
}
TEST(AugmentationLaws, KeySumFoldOrderIndependence) {
  check_fold_order_independence<KeySumAug>();
}

TEST(AugmentationLaws, MinMaxSentinelIdentity) {
  check_sentinel_identity<MinMaxAug>();
}
TEST(AugmentationLaws, MinMaxAssociativity) {
  check_associativity<MinMaxAug>();
}
TEST(AugmentationLaws, MinMaxFoldOrderIndependence) {
  check_fold_order_independence<MinMaxAug>();
}

TEST(AugmentationLaws, PairAugSentinelIdentity) {
  check_sentinel_identity<SizeSumAug>();
  check_sentinel_identity<PairAug<SizeAug, MinMaxAug>>();
}
TEST(AugmentationLaws, PairAugAssociativity) {
  check_associativity<SizeSumAug>();
  check_associativity<PairAug<SizeAug, MinMaxAug>>();
}
TEST(AugmentationLaws, PairAugFoldOrderIndependence) {
  check_fold_order_independence<SizeSumAug>();
}

// SizedAugmentation law: the size reported by size_of equals the number
// of leaves combined into the value, regardless of association order.
template <SizedAugmentation Aug>
void check_size_consistency() {
  const auto keys = sample_keys();
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                        std::size_t{7}, keys.size()}) {
    std::vector<Key> prefix(keys.begin(), keys.begin() + n);
    EXPECT_EQ(Aug::size_of(fold_left<Aug>(prefix)),
              static_cast<std::int64_t>(n));
    EXPECT_EQ(Aug::size_of(fold_balanced<Aug>(prefix, 0, n)),
              static_cast<std::int64_t>(n));
  }
  EXPECT_EQ(Aug::size_of(Aug::sentinel()), 0);
  EXPECT_EQ(Aug::size_of(Aug::leaf(42)), 1);
}

TEST(AugmentationLaws, SizeAugSizeConsistency) {
  check_size_consistency<SizeAug>();
}
TEST(AugmentationLaws, PairAugSizeConsistency) {
  check_size_consistency<SizeSumAug>();
  check_size_consistency<PairAug<SizeAug, MinMaxAug>>();
}

// Concept sanity: the concepts themselves must classify the policies the
// way the trees rely on (FR-BST/BAT gate rank/select on SizedAugmentation).
static_assert(Augmentation<SizeAug>);
static_assert(Augmentation<KeySumAug>);
static_assert(Augmentation<MinMaxAug>);
static_assert(Augmentation<SizeSumAug>);
static_assert(SizedAugmentation<SizeAug>);
static_assert(SizedAugmentation<SizeSumAug>);
static_assert(!SizedAugmentation<KeySumAug>);
static_assert(!SizedAugmentation<MinMaxAug>);
static_assert(!SizedAugmentation<PairAug<KeySumAug, SizeAug>>);

}  // namespace
}  // namespace cbat
