// Tests for FR-BST (augmented unbalanced lock-free BST).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "frbst/frbst.h"
#include "util/random.h"

namespace cbat {
namespace {

using Tree = FrBst<SizeAug>;

TEST(FrBst, EmptyTree) {
  Tree t;
  EXPECT_EQ(t.size(), 0);
  EXPECT_FALSE(t.contains(3));
  EXPECT_FALSE(t.erase(3));
  EXPECT_EQ(t.select(1), std::nullopt);
}

TEST(FrBst, BasicInsertEraseContains) {
  Tree t;
  EXPECT_TRUE(t.insert(5));
  EXPECT_FALSE(t.insert(5));
  EXPECT_TRUE(t.contains(5));
  EXPECT_EQ(t.size(), 1);
  EXPECT_TRUE(t.insert(3));
  EXPECT_TRUE(t.insert(7));
  EXPECT_EQ(t.size(), 3);
  EXPECT_TRUE(t.erase(5));
  EXPECT_FALSE(t.contains(5));
  EXPECT_TRUE(t.contains(3));
  EXPECT_TRUE(t.contains(7));
  EXPECT_EQ(t.size(), 2);
}

TEST(FrBst, MatchesStdSetSequential) {
  Tree t;
  std::set<Key> ref;
  Xoshiro256 rng(21);
  for (int i = 0; i < 15000; ++i) {
    const Key k = static_cast<Key>(rng.below(400));
    switch (rng.below(4)) {
      case 0:
        ASSERT_EQ(t.insert(k), ref.insert(k).second);
        break;
      case 1:
        ASSERT_EQ(t.erase(k), ref.erase(k) > 0);
        break;
      case 2:
        ASSERT_EQ(t.contains(k), ref.count(k) > 0);
        break;
      default:
        ASSERT_EQ(t.rank(k), static_cast<std::int64_t>(std::distance(
                                 ref.begin(), ref.upper_bound(k))));
    }
  }
  EXPECT_EQ(t.size(), static_cast<std::int64_t>(ref.size()));
  EbrGuard g;
  EXPECT_TRUE(version_tree_valid<SizeAug>(t.root_version_unsafe(),
                                          std::numeric_limits<Key>::min(),
                                          kInf2));
}

TEST(FrBst, OrderStatisticsMatchBat) {
  Tree t;
  for (Key k = 0; k < 1000; k += 7) t.insert(k);
  EXPECT_EQ(t.rank(6), 1);
  EXPECT_EQ(t.rank(7), 2);
  EXPECT_EQ(t.select(1), std::make_optional<Key>(0));
  EXPECT_EQ(t.select(3), std::make_optional<Key>(14));
  EXPECT_EQ(t.range_count(7, 21), 3);
}

TEST(FrBst, UnbalancedHeightOnSortedInsert) {
  // The defining weakness of FR-BST vs BAT (paper Fig. 5b): sorted inserts
  // give linear height.
  Tree t;
  constexpr Key kN = 512;
  for (Key k = 0; k < kN; ++k) t.insert(k);
  EXPECT_GE(t.height_slow(), static_cast<int>(kN / 2));
}

TEST(FrBst, SnapshotImmutableUnderUpdates) {
  FrBst<SizeAug> t;
  for (Key k = 0; k < 50; ++k) t.insert(k * 2);
  EbrGuard g;
  const auto* snap = t.root_version_unsafe();
  const auto before = version_size<SizeAug>(snap);
  for (Key k = 0; k < 50; ++k) t.insert(k * 2 + 1);
  EXPECT_EQ(version_size<SizeAug>(snap), before);
  EXPECT_EQ(t.size(), 100);
}

TEST(FrBst, GenericAugmentationSum) {
  FrBst<SizeSumAug> t;
  for (Key k = 1; k <= 50; ++k) t.insert(k);
  const auto agg = t.range_aggregate(10, 20);
  EXPECT_EQ(agg.first, 11);
  EXPECT_EQ(agg.second, (10 + 20) * 11 / 2);
}

TEST(FrBstConcurrent, DisjointRangesDeterministic) {
  Tree t;
  constexpr int kThreads = 8;
  constexpr Key kPer = 1200;
  std::atomic<bool> failed{false};
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&, i] {
      const Key base = i * kPer;
      for (Key k = base; k < base + kPer; ++k) {
        if (!t.insert(k)) failed = true;
      }
      for (Key k = base + 1; k < base + kPer; k += 2) {
        if (!t.erase(k)) failed = true;
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(t.size(), kThreads * kPer / 2);
  EbrGuard g;
  EXPECT_TRUE(version_tree_valid<SizeAug>(t.root_version_unsafe(),
                                          std::numeric_limits<Key>::min(),
                                          kInf2));
}

TEST(FrBstConcurrent, MixedWorkloadQuiescentConsistency) {
  Tree t;
  constexpr int kThreads = 6;
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&, i] {
      Xoshiro256 rng(42 + i);
      for (int op = 0; op < 10000; ++op) {
        const Key k = static_cast<Key>(rng.below(256));
        if (rng.below(2) == 0) {
          t.insert(k);
        } else {
          t.erase(k);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  // Version tree consistent and matches membership queries.
  const auto keys = t.range_collect(0, 256);
  EXPECT_EQ(t.size(), static_cast<std::int64_t>(keys.size()));
  for (Key k : keys) EXPECT_TRUE(t.contains(k));
  EbrGuard g;
  EXPECT_TRUE(version_tree_valid<SizeAug>(t.root_version_unsafe(),
                                          std::numeric_limits<Key>::min(),
                                          kInf2));
}

TEST(FrBstConcurrent, QueriesSeeConsistentSnapshots) {
  Tree t;
  for (Key k = 0; k < 1000; k += 2) t.insert(k);
  std::atomic<bool> stop{false};
  std::atomic<long> bad{0};
  std::thread updater([&] {
    Xoshiro256 rng(1);
    while (!stop.load()) {
      const Key k = static_cast<Key>(rng.below(500)) * 2 + 1;
      if (rng.below(2) == 0) {
        t.insert(k);
      } else {
        t.erase(k);
      }
    }
  });
  for (int i = 0; i < 2000; ++i) {
    EbrGuard g;
    const auto* v = t.root_version_unsafe();
    const auto n = version_size<SizeAug>(v);
    if (version_rank<SizeAug>(v, 999) != n) bad.fetch_add(1);
    if (!version_contains<SizeAug>(v, 500)) bad.fetch_add(1);
  }
  stop = true;
  updater.join();
  EXPECT_EQ(bad.load(), 0);
}

}  // namespace
}  // namespace cbat
