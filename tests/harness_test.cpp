// Tests for the benchmark harness itself: workload streams, the pool, and
// the driver (a harness bug would silently invalidate every figure).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "bench/driver.h"
#include "bench/workload.h"
#include "reclamation/pool.h"

namespace cbat {
namespace {

using namespace cbat::bench;

TEST(Workload, MixProportionsRespected) {
  Workload w;
  w.insert_pct = 10;
  w.delete_pct = 10;
  w.find_pct = 40;
  w.query_pct = 40;
  std::atomic<std::int64_t> ctr{0};
  OpStream s(w, 42, &ctr);
  int counts[4] = {};
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) ++counts[static_cast<int>(s.next_op())];
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.10, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.10, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.40, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(kN), 0.40, 0.01);
}

TEST(Workload, FractionalPercentages) {
  // Figure 7 uses mixes like 0.01% rank queries.
  Workload w;
  w.insert_pct = 49.995;
  w.delete_pct = 49.995;
  w.query_pct = 0.01;
  std::atomic<std::int64_t> ctr{0};
  OpStream s(w, 7, &ctr);
  int queries = 0;
  constexpr int kN = 2000000;
  for (int i = 0; i < kN; ++i) {
    if (s.next_op() == OpStream::Op::kQuery) ++queries;
  }
  EXPECT_GT(queries, 50);   // ~200 expected
  EXPECT_LT(queries, 800);
}

TEST(Workload, UniformKeysInRange) {
  Workload w;
  w.max_key = 1000;
  std::atomic<std::int64_t> ctr{0};
  OpStream s(w, 3, &ctr);
  for (int i = 0; i < 10000; ++i) {
    const Key k = s.next_key();
    ASSERT_GE(k, 0);
    ASSERT_LT(k, 1000);
  }
}

TEST(Workload, SortedKeysAscendInBatches) {
  Workload w;
  w.dist = KeyDist::kSorted;
  std::atomic<std::int64_t> ctr{0};
  OpStream a(w, 1, &ctr), b(w, 2, &ctr);
  // Each stream takes batches of 100 from the shared counter.
  Key last_a = a.next_key();
  for (int i = 1; i < 100; ++i) {
    const Key k = a.next_key();
    EXPECT_EQ(k, last_a + 1);
    last_a = k;
  }
  const Key first_b = b.next_key();
  EXPECT_EQ(first_b, 100);  // the second batch
  const Key next_a = a.next_key();
  EXPECT_EQ(next_a, 200);  // a's second batch comes after b's
}

TEST(Workload, ZipfKeysSkewed) {
  Workload w;
  w.dist = KeyDist::kZipf;
  w.zipf_theta = 0.99;
  w.max_key = 100000;
  std::atomic<std::int64_t> ctr{0};
  OpStream s(w, 5, &ctr);
  int low = 0;
  for (int i = 0; i < 50000; ++i) {
    if (s.next_key() < 100) ++low;
  }
  // Under uniform, P(key < 100) = 0.1%; under Zipf 0.99 it is large.
  EXPECT_GT(low, 5000);
}

TEST(Workload, RangeLoLeavesRoomForRq) {
  Workload w;
  w.max_key = 1000;
  w.rq_size = 900;
  std::atomic<std::int64_t> ctr{0};
  OpStream s(w, 9, &ctr);
  for (int i = 0; i < 1000; ++i) {
    const Key lo = s.next_range_lo();
    ASSERT_GE(lo, 0);
    ASSERT_LE(lo + w.rq_size, w.max_key + w.rq_size);  // sane bounds
    ASSERT_LT(lo, w.max_key);
  }
}

TEST(Pool, RecyclesMemory) {
  struct Small {
    std::int64_t a, b;
  };
  void* p1 = Pool<Small>::alloc();
  Pool<Small>::dealloc(p1);
  void* p2 = Pool<Small>::alloc();
  EXPECT_EQ(p1, p2);  // same thread, LIFO free list
  Pool<Small>::dealloc(p2);
}

TEST(Pool, PoolNewRunsConstructor) {
  struct Init {
    int x = 7;
    int y;
  };
  Init* p = pool_new<Init>();
  EXPECT_EQ(p->x, 7);
  pool_delete(p);
}

TEST(Pool, RetireDefersToGrace) {
  struct Small {
    std::int64_t a;
  };
  auto* p = pool_new<Small>();
  p->a = 123;
  {
    EbrGuard g;
    pool_retire(p);
    // Still readable inside the same epoch.
    EXPECT_EQ(p->a, 123);
  }
  Ebr::drain();
}

TEST(Driver, RunsAndCountsOps) {
  RunConfig cfg;
  cfg.workload.insert_pct = 25;
  cfg.workload.delete_pct = 25;
  cfg.workload.find_pct = 25;
  cfg.workload.query_pct = 25;
  cfg.workload.max_key = 2000;
  cfg.workload.rq_size = 100;
  cfg.threads = 2;
  cfg.duration_ms = 60;
  const RunResult r = run_benchmark("BAT-EagerDel", cfg);
  EXPECT_GT(r.total_ops, 0);
  EXPECT_GT(r.updates, 0);
  EXPECT_GT(r.finds, 0);
  EXPECT_GT(r.queries, 0);
  EXPECT_GT(r.seconds, 0.05);
  EXPECT_NEAR(static_cast<double>(r.updates) / r.total_ops, 0.5, 0.1);
  EXPECT_GT(r.update_latency.count, 0);
  EXPECT_GT(r.update_latency.p50_ns, 0);
  EXPECT_LE(r.update_latency.p50_ns, r.update_latency.p99_ns);
  EXPECT_GT(r.query_latency.count, 0);
  EXPECT_GT(r.query_latency.p50_ns, 0);
  EXPECT_LE(r.query_latency.p50_ns, r.query_latency.p99_ns);
  EXPECT_GT(r.find_latency.count, 0);
}

TEST(Driver, PrefillReachesTarget) {
  RunConfig cfg;
  cfg.workload.max_key = 10000;
  cfg.threads = 2;
  cfg.duration_ms = 20;
  auto set = make_structure("BAT");
  ASSERT_NE(set, nullptr);
  const RunResult r = run_on(*set, cfg);
  // Prefill target is max_key/2; the run adds/removes a balanced mix, so
  // the final size should be near 5000.
  EXPECT_NEAR(static_cast<double>(set->size()), 5000.0, 1500.0);
}

TEST(Driver, AllStructureNamesConstructible) {
  for (const char* name :
       {"BAT", "BAT-Del", "BAT-EagerDel", "FR-BST", "VcasBST", "VerlibBTree",
        "BundledCitrusTree"}) {
    auto set = make_structure(name);
    ASSERT_NE(set, nullptr) << name;
    EXPECT_TRUE(set->insert(1));
    EXPECT_TRUE(set->contains(1));
    EXPECT_EQ(set->range_count(0, 10), 1);
    EXPECT_EQ(set->rank(5), 1);
    EXPECT_EQ(set->select_query(1), 1);
  }
  EXPECT_EQ(make_structure("nope"), nullptr);
}

}  // namespace
}  // namespace cbat
