// Tests for the unaugmented baselines: VcasBST, VerBTree, BundledTree.
// All three expose the same set interface, so the semantic suites are
// written once and instantiated per structure (typed tests).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "btree/verbtree.h"
#include "bundled/bundled_tree.h"
#include "util/random.h"
#include "vcasbst/vcas_bst.h"

namespace cbat {
namespace {

template <class T>
class BaselineSet : public ::testing::Test {};

using Baselines = ::testing::Types<VcasBst, VerBTree, BundledTree>;
TYPED_TEST_SUITE(BaselineSet, Baselines);

TYPED_TEST(BaselineSet, EmptySet) {
  TypeParam t;
  EXPECT_FALSE(t.contains(1));
  EXPECT_FALSE(t.erase(1));
  EXPECT_EQ(t.size(), 0);
  EXPECT_EQ(t.rank(100), 0);
  EXPECT_EQ(t.select(1), std::nullopt);
  EXPECT_EQ(t.range_count(0, 100), 0);
}

TYPED_TEST(BaselineSet, BasicOps) {
  TypeParam t;
  EXPECT_TRUE(t.insert(5));
  EXPECT_FALSE(t.insert(5));
  EXPECT_TRUE(t.contains(5));
  EXPECT_FALSE(t.contains(4));
  EXPECT_TRUE(t.insert(3));
  EXPECT_TRUE(t.insert(7));
  EXPECT_EQ(t.size(), 3);
  EXPECT_TRUE(t.erase(5));
  EXPECT_FALSE(t.erase(5));
  EXPECT_FALSE(t.contains(5));
  EXPECT_EQ(t.size(), 2);
  // Reinsert after erase.
  EXPECT_TRUE(t.insert(5));
  EXPECT_TRUE(t.contains(5));
}

TYPED_TEST(BaselineSet, MatchesStdSetSequential) {
  TypeParam t;
  std::set<Key> ref;
  Xoshiro256 rng(31);
  for (int i = 0; i < 10000; ++i) {
    const Key k = static_cast<Key>(rng.below(300));
    switch (rng.below(3)) {
      case 0:
        ASSERT_EQ(t.insert(k), ref.insert(k).second) << "insert " << k;
        break;
      case 1:
        ASSERT_EQ(t.erase(k), ref.erase(k) > 0) << "erase " << k;
        break;
      default:
        ASSERT_EQ(t.contains(k), ref.count(k) > 0) << "contains " << k;
    }
  }
  EXPECT_EQ(t.size(), static_cast<std::int64_t>(ref.size()));
}

TYPED_TEST(BaselineSet, QueriesMatchReference) {
  TypeParam t;
  std::set<Key> ref;
  Xoshiro256 rng(32);
  for (int i = 0; i < 500; ++i) {
    const Key k = static_cast<Key>(rng.below(2000));
    t.insert(k);
    ref.insert(k);
  }
  for (int i = 0; i < 200; ++i) {
    const Key k = static_cast<Key>(rng.below(2000));
    t.erase(k);
    ref.erase(k);
  }
  // rank
  for (Key k = 0; k < 2000; k += 97) {
    ASSERT_EQ(t.rank(k), static_cast<std::int64_t>(std::distance(
                             ref.begin(), ref.upper_bound(k))))
        << "rank " << k;
  }
  // select
  std::vector<Key> sorted(ref.begin(), ref.end());
  for (std::size_t i = 1; i <= sorted.size(); i += 53) {
    ASSERT_EQ(t.select(static_cast<std::int64_t>(i)),
              std::make_optional(sorted[i - 1]))
        << "select " << i;
  }
  EXPECT_EQ(t.select(static_cast<std::int64_t>(sorted.size() + 1)),
            std::nullopt);
  // range count / collect
  for (Key lo = 0; lo < 2000; lo += 331) {
    const Key hi = lo + 257;
    ASSERT_EQ(t.range_count(lo, hi),
              static_cast<std::int64_t>(std::distance(
                  ref.lower_bound(lo), ref.upper_bound(hi))));
    const auto got = t.range_collect(lo, hi);
    std::vector<Key> want(ref.lower_bound(lo), ref.upper_bound(hi));
    ASSERT_EQ(got, want);
  }
}

TYPED_TEST(BaselineSet, ConcurrentDisjointRanges) {
  TypeParam t;
  constexpr int kThreads = 8;
  constexpr Key kPer = 1000;
  std::atomic<bool> failed{false};
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&, i] {
      const Key base = i * kPer;
      for (Key k = base; k < base + kPer; ++k) {
        if (!t.insert(k)) failed = true;
      }
      for (Key k = base + 1; k < base + kPer; k += 2) {
        if (!t.erase(k)) failed = true;
      }
      for (Key k = base; k < base + kPer; k += 2) {
        if (!t.contains(k)) failed = true;
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(t.size(), kThreads * kPer / 2);
}

TYPED_TEST(BaselineSet, ConcurrentSameKeyLinearizable) {
  TypeParam t;
  constexpr int kThreads = 6;
  std::atomic<long> ins{0}, del{0};
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&, i] {
      Xoshiro256 rng(i);
      for (int op = 0; op < 3000; ++op) {
        if (rng.below(2) == 0) {
          if (t.insert(99)) ins.fetch_add(1);
        } else {
          if (t.erase(99)) del.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  const long diff = ins.load() - del.load();
  EXPECT_TRUE(diff == 0 || diff == 1);
  EXPECT_EQ(t.contains(99), diff == 1);
}

// Snapshot queries concurrent with updates must be internally consistent:
// keys 0..999 even are permanent, odds churn; a consistent snapshot always
// reports all 500 evens.
TYPED_TEST(BaselineSet, RangeQueriesAreSnapshotConsistent) {
  TypeParam t;
  for (Key k = 0; k < 1000; k += 2) t.insert(k);
  std::atomic<bool> stop{false};
  std::atomic<long> bad{0};
  std::thread updater([&] {
    Xoshiro256 rng(5);
    while (!stop.load()) {
      const Key k = static_cast<Key>(rng.below(500)) * 2 + 1;
      if (rng.below(2) == 0) {
        t.insert(k);
      } else {
        t.erase(k);
      }
    }
  });
  for (int i = 0; i < 300; ++i) {
    const auto keys = t.range_collect(0, 999);
    long evens = 0;
    bool sorted = true;
    for (std::size_t j = 0; j < keys.size(); ++j) {
      if (keys[j] % 2 == 0) ++evens;
      if (j > 0 && keys[j] <= keys[j - 1]) sorted = false;
    }
    if (evens != 500) bad.fetch_add(1);
    if (!sorted) bad.fetch_add(1);
  }
  stop = true;
  updater.join();
  EXPECT_EQ(bad.load(), 0);
}

// --- structure-specific tests ----------------------------------------------

TEST(VcasBstSpecific, OldSnapshotsSurviveTruncation) {
  VcasBst t;
  for (Key k = 0; k < 100; ++k) t.insert(k);
  // Heavy churn to trigger version-list truncation.
  for (int round = 0; round < 50; ++round) {
    for (Key k = 100; k < 200; ++k) t.insert(k);
    for (Key k = 100; k < 200; ++k) t.erase(k);
  }
  EXPECT_EQ(t.size(), 100);
  EXPECT_EQ(t.range_count(0, 99), 100);
}

TEST(VerBTreeSpecific, StaysShallow) {
  VerBTree t;
  for (Key k = 0; k < 100000; ++k) t.insert(k);  // sorted insertion
  EXPECT_EQ(t.size(), 100000);
  // Fanout 16 => height ~ log_16(n/16) + slack for half-full splits.
  EXPECT_LE(t.height_slow(), 8);
  EXPECT_EQ(t.rank(49999), 50000);
  EXPECT_EQ(t.select(1), std::make_optional<Key>(0));
  EXPECT_EQ(t.select(100000), std::make_optional<Key>(99999));
}

TEST(VerBTreeSpecific, SplitHeavyConcurrentInserts) {
  VerBTree t;
  constexpr int kThreads = 8;
  constexpr Key kPer = 20000;
  std::atomic<bool> failed{false};
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&, i] {
      // Interleaved keys maximize concurrent splits of shared leaves.
      for (Key k = i; k < kThreads * kPer; k += kThreads) {
        if (!t.insert(k)) failed = true;
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(t.size(), kThreads * kPer);
  for (Key k = 0; k < kThreads * kPer; k += 997) EXPECT_TRUE(t.contains(k));
}

TEST(BundledSpecific, LogicalDeleteThenReinsertKeepsStructureSane) {
  BundledTree t;
  for (int round = 0; round < 20; ++round) {
    for (Key k = 0; k < 100; ++k) ASSERT_EQ(t.insert(k), true);
    for (Key k = 0; k < 100; ++k) ASSERT_EQ(t.erase(k), true);
  }
  EXPECT_EQ(t.size(), 0);
  // Physical structure is append-only: height bounded by distinct keys, and
  // queries still correct.
  for (Key k = 0; k < 100; k += 2) t.insert(k);
  EXPECT_EQ(t.range_count(0, 99), 50);
}

TEST(VcasBstSpecific, UnbalancedHeightOnSortedInsert) {
  VcasBst t;
  constexpr Key kN = 512;
  for (Key k = 0; k < kN; ++k) t.insert(k);
  EXPECT_GE(t.height_slow(), static_cast<int>(kN / 2));
}

}  // namespace
}  // namespace cbat
