// Tests for the shard layer (src/shard/sharded_set.h): shard-map algebra,
// a std::set-oracle equivalence check for the cross-shard order statistics
// (exercising keys and ranges that straddle shard boundaries), snapshot
// multi-query consistency, and a multi-threaded quiescent-consistency
// check that is run under TSan in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "combine/combined_set.h"
#include "core/bat_tree.h"
#include "shard/aggregate_cache.h"
#include "shard/sharded_set.h"
#include "util/counters.h"
#include "util/random.h"

namespace cbat {
namespace {

using Sharded4 = ShardedSet<Bat<SizeAug>, 4>;
using Sharded16 = ShardedSet<Bat<SizeAug>, 16>;

TEST(ShardedSet, ShardMapIsMonotoneAndCoversTheKeyspace) {
  Sharded4 s(1000);
  EXPECT_EQ(s.keyspace(), 1000);
  EXPECT_EQ(s.num_shards(), 4);
  int prev = 0;
  for (Key k = 0; k < 1200; ++k) {
    const int sh = s.shard_of(k);
    ASSERT_GE(sh, prev) << k;  // monotone: order statistics compose
    ASSERT_LT(sh, 4) << k;
    prev = sh;
  }
  EXPECT_EQ(s.shard_of(0), 0);
  EXPECT_EQ(s.shard_of(-5), 0);        // out-of-range keys clamp
  EXPECT_EQ(s.shard_of(999), 3);
  EXPECT_EQ(s.shard_of(1000000), 3);
  EXPECT_EQ(s.shard_of(kMaxUserKey), 3);
}

TEST(ShardedSet, HugeKeyspaceDoesNotOverflowTheShardMap) {
  // A keyspace near INT64_MAX must not wrap the ceiling in the width
  // computation (which would make shard_of negative: out-of-bounds).
  ShardedSet<Bat<SizeAug>, 64> s(kMaxUserKey);
  EXPECT_EQ(s.shard_of(0), 0);
  EXPECT_EQ(s.shard_of(kMaxUserKey / 2), 31);
  EXPECT_EQ(s.shard_of(kMaxUserKey), 63);
  EXPECT_TRUE(s.insert(kMaxUserKey));
  EXPECT_TRUE(s.contains(kMaxUserKey));
  EXPECT_EQ(s.rank(kMaxUserKey), 1);
  EXPECT_EQ(s.select(1), kMaxUserKey);
}

TEST(ShardedSet, KeyRangeHintOnlyWhileEmpty) {
  Sharded4 s(1000);
  EXPECT_TRUE(s.key_range_hint(4000));
  EXPECT_EQ(s.keyspace(), 4000);
  EXPECT_FALSE(s.key_range_hint(0));
  EXPECT_FALSE(s.key_range_hint(-7));
  EXPECT_TRUE(s.insert(17));
  EXPECT_FALSE(s.key_range_hint(8000)) << "populated set must refuse";
  EXPECT_EQ(s.keyspace(), 4000);
  EXPECT_TRUE(s.erase(17));
  EXPECT_TRUE(s.key_range_hint(8000)) << "empty again, hint applies";
}

TEST(ShardedSet, DefaultKeyspaceKnobIsShared) {
  const Key saved = shard_detail::default_keyspace();
  shard_detail::set_default_keyspace(12345);
  EXPECT_EQ(Sharded4().keyspace(), 12345);
  EXPECT_EQ(Sharded16().keyspace(), 12345);
  shard_detail::set_default_keyspace(saved);
  EXPECT_EQ(Sharded4().keyspace(), saved);
}

// Reference implementation of every order statistic on a std::set.
struct Oracle {
  std::set<Key> s;

  std::int64_t rank(Key k) const {
    return static_cast<std::int64_t>(
        std::distance(s.begin(), s.upper_bound(k)));
  }
  std::optional<Key> select(std::int64_t i) const {
    if (i < 1 || i > static_cast<std::int64_t>(s.size())) return std::nullopt;
    auto it = s.begin();
    std::advance(it, i - 1);
    return *it;
  }
  std::int64_t range_count(Key lo, Key hi) const {
    if (lo > hi) return 0;
    return static_cast<std::int64_t>(
        std::distance(s.lower_bound(lo), s.upper_bound(hi)));
  }
};

TEST(ShardedSet, OracleEquivalenceAcrossShardBoundaries) {
  constexpr Key kKeyspace = 4000;  // shard width 1000 in Sharded4
  Sharded4 set(kKeyspace);
  Oracle oracle;
  Xoshiro256 rng(42);

  // Mixed random inserts/erases, biased around the three shard boundaries
  // (1000/2000/3000) so boundary keys and straddling ranges are common.
  for (int step = 0; step < 6000; ++step) {
    Key k;
    if (rng.below(4) == 0) {
      const Key boundary = 1000 * static_cast<Key>(1 + rng.below(3));
      k = boundary - 3 + static_cast<Key>(rng.below(7));
    } else {
      k = static_cast<Key>(rng.below(kKeyspace));
    }
    if (rng.below(3) == 0) {
      EXPECT_EQ(set.erase(k), oracle.s.erase(k) > 0) << k;
    } else {
      EXPECT_EQ(set.insert(k), oracle.s.insert(k).second) << k;
    }

    if (step % 100 != 99) continue;
    ASSERT_EQ(set.size(), static_cast<std::int64_t>(oracle.s.size()));
    // Point queries at and around the boundaries.
    for (Key q : {Key{0}, Key{999}, Key{1000}, Key{1001}, Key{2500},
                  Key{3999}, Key{4500}}) {
      ASSERT_EQ(set.contains(q), oracle.s.count(q) > 0) << q;
      ASSERT_EQ(set.rank(q), oracle.rank(q)) << q;
    }
    // Selects across the whole size range, plus both out-of-range sides.
    const std::int64_t n = set.size();
    for (std::int64_t i : {std::int64_t{0}, std::int64_t{1}, n / 4, n / 2,
                           n, n + 1}) {
      ASSERT_EQ(set.select(i), oracle.select(i)) << i;
    }
    // Ranges that straddle one, two, and three boundaries, plus empty and
    // degenerate ones.
    const struct {
      Key lo, hi;
    } ranges[] = {{900, 1100},  {500, 2500},   {0, 3999},  {1000, 2999},
                  {2500, 2500}, {3000, 2000},  {-50, 800}, {3900, 9999}};
    for (const auto& r : ranges) {
      ASSERT_EQ(set.range_count(r.lo, r.hi), oracle.range_count(r.lo, r.hi))
          << r.lo << ".." << r.hi;
    }
  }
}

TEST(ShardedSet, CompositeQueriesAgreeOnOneSnapshot) {
  Sharded4 set(4000);
  for (Key k = 0; k < 4000; k += 7) set.insert(k);

  Sharded4::Snapshot snap(set);
  const std::int64_t n = snap.size();
  ASSERT_GT(n, 0);
  EXPECT_EQ(snap.range_count(std::numeric_limits<Key>::min(), kMaxUserKey),
            n);
  // select and rank are inverse on a snapshot.
  for (std::int64_t i = 1; i <= n; i += 97) {
    const auto k = snap.select(i);
    ASSERT_TRUE(k.has_value()) << i;
    EXPECT_EQ(snap.rank(*k), i) << i;
  }
  // select_in_range equals filtering by hand.
  EXPECT_EQ(snap.select_in_range(995, 2005, 1), snap.ceiling(995));
  EXPECT_EQ(snap.select_in_range(995, 2005, snap.range_count(995, 2005)),
            snap.floor(2005));
  EXPECT_EQ(snap.select_in_range(995, 2005, snap.range_count(995, 2005) + 1),
            std::nullopt);
  // keys() is sorted and consistent with range_count.
  const auto keys = snap.keys(900, 3100);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(static_cast<std::int64_t>(keys.size()),
            snap.range_count(900, 3100));
  // Updates after the snapshot stay invisible to it.
  const Key fresh = 4001;
  ASSERT_TRUE(set.insert(fresh));
  EXPECT_FALSE(snap.contains(fresh));
  EXPECT_EQ(snap.size(), n);
  EXPECT_TRUE(set.contains(fresh));
}

TEST(ShardedSet, RangeAggregateComposesAcrossShards) {
  ShardedSet<Bat<SizeSumAug>, 4> set(4000);
  std::int64_t sum = 0;
  for (Key k = 10; k < 4000; k += 10) {
    set.insert(k);
    if (k >= 500 && k <= 3500) sum += k;
  }
  const auto agg = set.range_aggregate(500, 3500);
  EXPECT_EQ(SizeSumAug::size_of(agg), set.range_count(500, 3500));
  EXPECT_EQ(agg.second, sum);
}

// Quiescent consistency: concurrent mixed updates with concurrent
// snapshot readers; each reader's snapshot must be internally consistent
// at all times, and after quiescence the forest must equal a sequential
// replay oracle cross-checked per shard.  TSan runs this in CI.
TEST(ShardedSet, MultiThreadedQuiescentConsistency) {
  constexpr Key kKeyspace = 1 << 14;
  constexpr int kUpdaters = 3;
  constexpr int kOpsPerThread = 20000;
  Sharded16 set(kKeyspace);
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kUpdaters; ++t) {
    threads.emplace_back([&set, t] {
      // Each thread owns keys congruent to t mod kUpdaters, so the final
      // contents are deterministic despite interleaving.
      Xoshiro256 rng(1000 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const Key k = static_cast<Key>(rng.below(kKeyspace) /
                                       kUpdaters * kUpdaters) +
                      t;
        if (rng.below(3) == 0) {
          set.erase(k);
        } else {
          set.insert(k);
        }
      }
    });
  }
  std::thread reader([&set, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      Sharded16::Snapshot snap(set);
      const std::int64_t n = snap.size();
      // Internal consistency of one pinned snapshot.
      ASSERT_EQ(snap.range_count(std::numeric_limits<Key>::min(),
                                 kMaxUserKey),
                n);
      ASSERT_EQ(snap.rank(kMaxUserKey), n);
      if (n > 0) {
        const auto mid = snap.select((n + 1) / 2);
        ASSERT_TRUE(mid.has_value());
        ASSERT_EQ(snap.rank(*mid), (n + 1) / 2);
        ASSERT_TRUE(snap.contains(*mid));
      }
      ASSERT_EQ(snap.select(n + 1), std::nullopt);
    }
  });
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  // Quiesced: replay each thread's deterministic stream sequentially.
  std::set<Key> oracle;
  for (int t = 0; t < kUpdaters; ++t) {
    Xoshiro256 rng(1000 + t);
    for (int i = 0; i < kOpsPerThread; ++i) {
      const Key k = static_cast<Key>(rng.below(kKeyspace) /
                                     kUpdaters * kUpdaters) +
                    t;
      if (rng.below(3) == 0) {
        oracle.erase(k);
      } else {
        oracle.insert(k);
      }
    }
  }
  ASSERT_EQ(set.size(), static_cast<std::int64_t>(oracle.size()));
  const auto keys = Sharded16::Snapshot(set).keys();
  ASSERT_EQ(keys.size(), oracle.size());
  EXPECT_TRUE(std::equal(keys.begin(), keys.end(), oracle.begin()));
}

// --- the combined read path (ISSUE 6: leasing + aggregate caches) ---------

using QuiescentRC4 =
    ShardedSet<Bat<SizeAug>, 4, SnapshotPolicy::kQuiescent,
               ReadPath::kCombined>;
using LinRC4 = ShardedSet<Bat<SizeAug>, 4, SnapshotPolicy::kLinearizable,
                          ReadPath::kCombined>;

// The cache's only correctness job is refusing entries whose stamp is not
// the caller's pinned root's stamp; everything else is best effort.
TEST(AggregateCache4, ValidatesByStampIdentity) {
  AggregateCache<4> cache;
  std::int64_t v = -1;
  // Empty entries never hit, whatever stamp is probed (kEpochTbd == 0 is
  // the unstamped sentinel and must be unmatchable).
  EXPECT_FALSE(cache.load_size(0, 0, &v));
  EXPECT_FALSE(cache.load_size(0, 7, &v));

  cache.store_size(2, /*stamp=*/7, /*v=*/41);
  EXPECT_TRUE(cache.load_size(2, 7, &v));
  EXPECT_EQ(v, 41);
  EXPECT_FALSE(cache.load_size(2, 8, &v)) << "stamp mismatch must miss";
  EXPECT_FALSE(cache.load_size(1, 7, &v)) << "other shards unaffected";

  // A refill under a new stamp supersedes the old entry entirely.
  cache.store_size(2, 9, 43);
  EXPECT_FALSE(cache.load_size(2, 7, &v));
  EXPECT_TRUE(cache.load_size(2, 9, &v));
  EXPECT_EQ(v, 43);

  // Range entries additionally key on the exact bounds: a colliding way
  // must miss on bounds, never return another range's aggregate.
  cache.store_range(0, 100, 900, /*stamp=*/5, /*v=*/17);
  EXPECT_TRUE(cache.load_range(0, 100, 900, 5, &v));
  EXPECT_EQ(v, 17);
  EXPECT_FALSE(cache.load_range(0, 100, 900, 6, &v));
  EXPECT_FALSE(cache.load_range(0, 100, 901, 5, &v));
  EXPECT_FALSE(cache.load_range(0, 101, 900, 5, &v));
}

// Mixed updates with composite reads after every step, so the leased
// fast path (unchanged seq), the incremental repair walk (after each
// update), the updater self-patch, and the hot-range cache all run
// constantly against a std::set oracle.
TEST(ShardedSetRC, OracleEquivalenceThroughLeasedReads) {
  constexpr Key kKeyspace = 4000;
  QuiescentRC4 set(kKeyspace);
  Oracle oracle;
  Xoshiro256 rng(1234);
  for (int step = 0; step < 4000; ++step) {
    const Key k = static_cast<Key>(rng.below(kKeyspace));
    if (rng.below(3) == 0) {
      ASSERT_EQ(set.erase(k), oracle.s.erase(k) > 0) << k;
    } else {
      ASSERT_EQ(set.insert(k), oracle.s.insert(k).second) << k;
    }
    // A composite read after every update: the lease is repaired (or
    // self-patched) each iteration, then revalidated on the fast path by
    // the immediately following reads.
    ASSERT_EQ(set.size(), static_cast<std::int64_t>(oracle.s.size()));
    if (step % 5 != 4) continue;
    const Key q = static_cast<Key>(rng.below(kKeyspace));
    ASSERT_EQ(set.rank(q), oracle.rank(q)) << q;
    ASSERT_EQ(set.range_count(q, q + 500), oracle.range_count(q, q + 500))
        << q;
    // range_aggregate == range_count for SizeAug, served through the
    // hot-range cache (the repeated fixed range keeps one entry hot).
    ASSERT_EQ(set.range_aggregate(1000, 2999),
              oracle.range_count(1000, 2999));
    const std::int64_t n = static_cast<std::int64_t>(oracle.s.size());
    if (n > 0) {
      const std::int64_t i = 1 + static_cast<std::int64_t>(
                                     rng.below(static_cast<std::uint64_t>(n)));
      ASSERT_EQ(set.select(i), oracle.select(i)) << i;
    }
    ASSERT_EQ(set.select(n + 1), std::nullopt);
  }
}

TEST(ShardedSetRC, LinearizableVariantMatchesOracleToo) {
  constexpr Key kKeyspace = 4000;
  LinRC4 set(kKeyspace);
  Oracle oracle;
  Xoshiro256 rng(4321);
  for (int step = 0; step < 3000; ++step) {
    const Key k = static_cast<Key>(rng.below(kKeyspace));
    if (rng.below(3) == 0) {
      ASSERT_EQ(set.erase(k), oracle.s.erase(k) > 0) << k;
    } else {
      ASSERT_EQ(set.insert(k), oracle.s.insert(k).second) << k;
    }
    if (step % 5 != 4) continue;
    ASSERT_EQ(set.size(), static_cast<std::int64_t>(oracle.s.size()));
    const Key q = static_cast<Key>(rng.below(kKeyspace));
    ASSERT_EQ(set.rank(q), oracle.rank(q)) << q;
    ASSERT_EQ(set.range_aggregate(500, 3500), oracle.range_count(500, 3500));
  }
}

// Both read-side amortizations are toggleable for benchmark attribution;
// the answers must be identical with either (or both) off.
TEST(ShardedSetRC, TogglesPreserveSemantics) {
  constexpr Key kKeyspace = 4000;
  QuiescentRC4 set(kKeyspace);
  Oracle oracle;
  Xoshiro256 rng(99);
  for (Key k = 0; k < kKeyspace; k += 3) {
    set.insert(k);
    oracle.s.insert(k);
  }
  const struct {
    bool lease, cache;
  } modes[] = {{true, true}, {true, false}, {false, true}, {false, false}};
  for (const auto& m : modes) {
    set_lease_reads(m.lease);
    set_aggregate_cache(m.cache);
    ASSERT_EQ(set.size(), static_cast<std::int64_t>(oracle.s.size()));
    for (Key q : {Key{0}, Key{999}, Key{2500}, Key{3999}}) {
      ASSERT_EQ(set.rank(q), oracle.rank(q)) << q;
      ASSERT_EQ(set.range_aggregate(q, q + 700),
                oracle.range_count(q, q + 700))
          << q;
    }
    // Interleave an update so the lease is never trivially fresh.
    const Key k = static_cast<Key>(1 + rng.below(kKeyspace));
    ASSERT_EQ(set.insert(k), oracle.s.insert(k).second);
    ASSERT_EQ(set.rank(kMaxUserKey),
              static_cast<std::int64_t>(oracle.s.size()));
  }
  set_lease_reads(true);
  set_aggregate_cache(true);
}

// Hierarchy accounting: a run of leased reads must register cache/lease
// hits and at least one lease cut.  Reads run in their own thread so the
// batched thread-local tallies flush at thread exit.
TEST(ShardedSetRC, CacheAndLeaseCountersAdvance) {
  constexpr Key kKeyspace = 4000;
  QuiescentRC4 set(kKeyspace);
  for (Key k = 0; k < kKeyspace; k += 5) set.insert(k);
  const auto before = Counters::snapshot();
  std::thread([&] {
    for (int i = 0; i < 200; ++i) {
      set.size();
      set.rank(2000);
      set.range_aggregate(1000, 2999);
    }
  }).join();
  const auto after = Counters::snapshot();
  EXPECT_GT(after[Counter::kAggCacheHits], before[Counter::kAggCacheHits])
      << "undisturbed leased reads must hit the lease/cache hierarchy";
  EXPECT_GT(after[Counter::kLeaseCuts], before[Counter::kLeaseCuts])
      << "the first read takes the thread's lease cut";
}

// Read-regime routing: on a combined-shard forest, a thread whose last
// traffic was a composite read applies its next update solo (no
// combining handshake), and the result stream must stay exact — this
// alternating pattern drives insert_solo/erase_solo on every step.
TEST(ShardedSetRC, RegimeRoutedUpdatesStayExact) {
  using CombinedRC4 = ShardedSet<CombinedSet<Bat<SizeAug>>, 4,
                                 SnapshotPolicy::kQuiescent,
                                 ReadPath::kCombined>;
  constexpr Key kKeyspace = 4000;
  CombinedRC4 set(kKeyspace);
  Oracle oracle;
  Xoshiro256 rng(7);
  for (int step = 0; step < 3000; ++step) {
    const Key k = static_cast<Key>(rng.below(kKeyspace));
    if (rng.below(3) == 0) {
      ASSERT_EQ(set.erase(k), oracle.s.erase(k) > 0) << k;
    } else {
      ASSERT_EQ(set.insert(k), oracle.s.insert(k).second) << k;
    }
    // The read between updates is what arms the solo route for the next
    // update (kRegimeSoloReads == 1).
    ASSERT_EQ(set.size(), static_cast<std::int64_t>(oracle.s.size()));
  }
  // Update-dense tail with no composite reads: the counter stays 0 after
  // the first update and the combining protocol is back in force.
  for (int step = 0; step < 500; ++step) {
    const Key k = static_cast<Key>(rng.below(kKeyspace));
    if (rng.below(2) == 0) {
      ASSERT_EQ(set.erase(k), oracle.s.erase(k) > 0) << k;
    } else {
      ASSERT_EQ(set.insert(k), oracle.s.insert(k).second) << k;
    }
  }
  ASSERT_EQ(set.size(), static_cast<std::int64_t>(oracle.s.size()));
  ASSERT_EQ(set.rank(kMaxUserKey),
            static_cast<std::int64_t>(oracle.s.size()));
}

// --- adaptive rebalancing (ISSUE 7: epoch-cut key migration) --------------

using Adapt4 = ShardedSet<CombinedSet<Bat<SizeAug>>, 4,
                          SnapshotPolicy::kQuiescent, ReadPath::kDirect,
                          /*Adaptive=*/true>;

// rebalance_once argument guards: non-adjacent pairs, out-of-bounds
// indices, and shards too small to split must all refuse without
// touching the map.
TEST(AdaptiveShardedSet, RebalanceOnceRefusesBadMoves) {
  Adapt4 set(4096);
  set.set_adaptive_enabled(false);
  EXPECT_EQ(set.map_generation(), 1u);
  EXPECT_FALSE(set.rebalance_once(0, 2)) << "not adjacent";
  EXPECT_FALSE(set.rebalance_once(0, 0)) << "not adjacent";
  EXPECT_FALSE(set.rebalance_once(-1, 0));
  EXPECT_FALSE(set.rebalance_once(3, 4));
  EXPECT_FALSE(set.rebalance_once(0, 1)) << "empty shard: nothing to split";
  for (Key k = 0; k < 10; ++k) ASSERT_TRUE(set.insert(k));
  EXPECT_FALSE(set.rebalance_once(0, 1)) << "below the split minimum";
  EXPECT_EQ(set.map_generation(), 1u);
  for (Key k = 10; k < 64; ++k) ASSERT_TRUE(set.insert(k));
  const auto before = Counters::snapshot();
  EXPECT_TRUE(set.rebalance_once(0, 1));
  EXPECT_EQ(set.map_generation(), 2u);
  const auto after = Counters::snapshot();
  EXPECT_EQ(after[Counter::kShardMigrations],
            before[Counter::kShardMigrations] + 1);
  EXPECT_GT(after[Counter::kShardMigratedKeys],
            before[Counter::kShardMigratedKeys]);
  // Membership survived the move.
  for (Key k = 0; k < 64; ++k) EXPECT_TRUE(set.contains(k)) << k;
  EXPECT_EQ(set.size(), 64);
}

// The piggybacked policy alone (no explicit rebalance_once) must detect a
// single-shard hotspot and move its keys: all traffic lands in shard 0,
// so the update-rate counters cross the hot-factor threshold within a
// few check periods.
TEST(AdaptiveShardedSet, PolicyMigratesUnderSkewedUpdates) {
  Adapt4 set(4096);
  set.set_rebalance_check_period(128);
  Xoshiro256 rng(5);
  for (int step = 0; step < 20000 && set.map_generation() == 1; ++step) {
    const Key k = static_cast<Key>(rng.below(1024));  // shard 0 only
    if (rng.below(2) == 0) {
      set.insert(k);
    } else {
      set.erase(k);
    }
  }
  EXPECT_GT(set.map_generation(), 1u)
      << "a pure shard-0 workload must trigger the controller";
}

// Migrations racing real update/reader traffic (TSan-gated in CI, with
// the quiescent-consistency suite).  Updaters own disjoint key classes so
// the final contents replay deterministically; a migrator thread
// ping-pongs the 0/1 boundary through entire protocol cycles while the
// policy (short check period) is free to add its own moves; a reader
// checks snapshot-internal consistency throughout.  After quiescence the
// forest must equal the sequential oracle exactly — every key exactly
// once, wherever it lives now.
TEST(AdaptiveShardedSet, MigrateUnderLoadStaysExact) {
  constexpr Key kKeyspace = 1 << 12;
  constexpr int kUpdaters = 2;
  constexpr int kOpsPerThread = 12000;
  Adapt4 set(kKeyspace);
  set.set_rebalance_check_period(256);
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kUpdaters; ++t) {
    threads.emplace_back([&set, t] {
      // Zipf-ish skew by construction: three quarters of the traffic in
      // the lowest shard, so migrations have something to chase.
      Xoshiro256 rng(77 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t span = rng.below(4) == 0 ? kKeyspace : 1024;
        const Key k =
            static_cast<Key>(rng.below(span) / kUpdaters * kUpdaters) + t;
        if (rng.below(3) == 0) {
          set.erase(k);
        } else {
          set.insert(k);
        }
      }
    });
  }
  std::thread migrator([&set, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      set.rebalance_once(0, 1);
      set.rebalance_once(1, 0);
      set.rebalance_once(1, 2);
      set.rebalance_once(2, 1);
    }
  });
  std::thread reader([&set, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      Adapt4::Snapshot snap(set);
      const std::int64_t n = snap.size();
      ASSERT_GE(n, 0);
      ASSERT_EQ(snap.range_count(std::numeric_limits<Key>::min(),
                                 kMaxUserKey),
                n);
      if (n > 0) {
        const auto mid = snap.select((n + 1) / 2);
        ASSERT_TRUE(mid.has_value());
        ASSERT_EQ(snap.rank(*mid), (n + 1) / 2);
        ASSERT_TRUE(snap.contains(*mid));
      }
    }
  });
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_release);
  migrator.join();
  reader.join();

  EXPECT_GT(set.map_generation(), 1u) << "no migration ever completed";

  std::set<Key> oracle;
  for (int t = 0; t < kUpdaters; ++t) {
    Xoshiro256 rng(77 + t);
    for (int i = 0; i < kOpsPerThread; ++i) {
      const std::uint64_t span = rng.below(4) == 0 ? kKeyspace : 1024;
      const Key k =
          static_cast<Key>(rng.below(span) / kUpdaters * kUpdaters) + t;
      if (rng.below(3) == 0) {
        oracle.erase(k);
      } else {
        oracle.insert(k);
      }
    }
  }
  ASSERT_EQ(set.size(), static_cast<std::int64_t>(oracle.size()));
  const auto keys = Adapt4::Snapshot(set).keys();
  ASSERT_EQ(keys.size(), oracle.size());
  EXPECT_TRUE(std::equal(keys.begin(), keys.end(), oracle.begin()));
  // Per-key sweep through the post-migration routing map.
  for (Key k = 0; k < 1024; ++k) {
    ASSERT_EQ(set.contains(k), oracle.count(k) > 0) << k;
  }
}

// --- migration abort & rollback (ISSUE 9: graceful degradation) -----------

// Every pre-flip boundary must roll back to a state indistinguishable
// from "the migration never happened": map generation unchanged,
// double-routing disarmed, no keys leaked into the destination shard,
// and the very next migration attempt healthy.
TEST(AdaptiveShardedSet, AbortRollsBackAtEveryBoundary) {
  for (int b = 0; b <= 4; ++b) {
    SCOPED_TRACE(testing::Message() << "boundary " << b);
    Adapt4 set(4096);
    set.set_adaptive_enabled(false);
    std::set<Key> oracle;
    for (Key k = 0; k < 64; ++k) {
      ASSERT_TRUE(set.insert(k));
      oracle.insert(k);
    }
    const auto before = Counters::snapshot();
    set.set_migration_abort_point(b);
    EXPECT_FALSE(set.rebalance_once(0, 1));
    const auto after = Counters::snapshot();
    EXPECT_EQ(after[Counter::kShardMigrationAborts],
              before[Counter::kShardMigrationAborts] + 1);
    EXPECT_EQ(after[Counter::kShardMigrations],
              before[Counter::kShardMigrations]);
    EXPECT_EQ(set.map_generation(), 1u);
    // Oracle equality through the public interface...
    EXPECT_EQ(set.size(), static_cast<std::int64_t>(oracle.size()));
    for (Key k = 0; k < 64; ++k) EXPECT_TRUE(set.contains(k)) << k;
    // ...and through the raw shards: the rollback must have erased the
    // half-copied range from the destination, or the sum double-counts.
    std::int64_t raw = 0;
    for (int s = 0; s < 4; ++s) raw += set.shard_at(s).size();
    EXPECT_EQ(raw, static_cast<std::int64_t>(oracle.size()))
        << "keys leaked into the destination shard";
    // Double-routing is disarmed: post-abort updates are plain routes.
    const auto dr0 = Counters::snapshot()[Counter::kShardDoubleRoutes];
    ASSERT_TRUE(set.insert(500));
    ASSERT_TRUE(set.erase(500));
    EXPECT_EQ(Counters::snapshot()[Counter::kShardDoubleRoutes], dr0);
    // The abort seam is one-shot: the next attempt goes through.
    EXPECT_TRUE(set.rebalance_once(0, 1));
    EXPECT_EQ(set.map_generation(), 2u);
    EXPECT_EQ(set.size(), static_cast<std::int64_t>(oracle.size()));
    for (Key k = 0; k < 64; ++k) EXPECT_TRUE(set.contains(k)) << k;
  }
}

// Updates that route during the copy phase must survive an abort: the
// rollback erases only what the migrator copied into the destination,
// never live updates (those land in the source, which the preserved old
// map keeps authoritative).
TEST(AdaptiveShardedSet, AbortPreservesUpdatesRoutedDuringCopy) {
  Adapt4 set(4096);
  set.set_adaptive_enabled(false);
  std::set<Key> oracle;
  for (Key k = 0; k < 64; ++k) {
    ASSERT_TRUE(set.insert(k));
    oracle.insert(k);
  }
  struct Ctx {
    Adapt4* set;
    std::set<Key>* oracle;
  } ctx{&set, &oracle};
  set.set_migration_hook(
      [](void* p, int stage) {
        if (stage != Adapt4::kMigHookCopied) return;
        auto* c = static_cast<Ctx*>(p);
        // Inside the copy window: keys in the migrating range double-route
        // into the half-built destination copy the abort will discard.
        for (Key k = 64; k < 72; ++k) {
          ASSERT_TRUE(c->set->insert(k));
          c->oracle->insert(k);
        }
        ASSERT_TRUE(c->set->erase(0));
        c->oracle->erase(0);
      },
      &ctx);
  set.set_migration_abort_point(1);
  EXPECT_FALSE(set.rebalance_once(0, 1));
  set.set_migration_hook(nullptr, nullptr);
  EXPECT_EQ(set.map_generation(), 1u);
  EXPECT_EQ(set.size(), static_cast<std::int64_t>(oracle.size()));
  for (Key k = 0; k < 72; ++k) {
    EXPECT_EQ(set.contains(k), oracle.count(k) > 0) << k;
  }
  std::int64_t raw = 0;
  for (int s = 0; s < 4; ++s) raw += set.shard_at(s).size();
  EXPECT_EQ(raw, static_cast<std::int64_t>(oracle.size()))
      << "copy-window updates leaked into the destination shard";
}

}  // namespace
}  // namespace cbat
