// Unit tests for src/util: PRNG, Zipfian sampler, flat set, registry,
// counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "util/counters.h"
#include "util/flat_set.h"
#include "util/keys.h"
#include "util/random.h"
#include "util/thread_registry.h"
#include "util/zipf.h"

namespace cbat {
namespace {

TEST(Keys, SentinelOrdering) {
  EXPECT_LT(kInf1, kInf2);
  EXPECT_LT(kMaxUserKey, kInf1);
  EXPECT_TRUE(is_sentinel_key(kInf1));
  EXPECT_TRUE(is_sentinel_key(kInf2));
  EXPECT_FALSE(is_sentinel_key(kMaxUserKey));
  EXPECT_FALSE(is_sentinel_key(0));
  EXPECT_FALSE(is_sentinel_key(-5));
}

TEST(Random, DeterministicPerSeed) {
  Xoshiro256 a(42), b(42), c(43);
  bool all_equal_c = true;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) all_equal_c = false;
  }
  EXPECT_FALSE(all_equal_c);
}

TEST(Random, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Random, RangeInclusive) {
  Xoshiro256 rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Random, Uniform01Bounds) {
  Xoshiro256 rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Zipf, RangeAndSkew) {
  Xoshiro256 rng(1);
  ZipfGenerator zipf(1000, 0.99);
  std::vector<int> hist(1001, 0);
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const auto v = zipf.next(rng);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 1000u);
    ++hist[v];
  }
  // Item 1 must dominate; the top-10 items should take a large share.
  EXPECT_GT(hist[1], hist[10]);
  EXPECT_GT(hist[1], hist[100]);
  int top10 = 0;
  for (int i = 1; i <= 10; ++i) top10 += hist[i];
  EXPECT_GT(top10, kDraws / 4);  // heavy skew at theta=0.99
}

TEST(Zipf, FrequencyMatchesTheory) {
  // P(k) proportional to 1/k^theta; check the 1-vs-2 ratio.
  Xoshiro256 rng(5);
  const double theta = 0.95;
  ZipfGenerator zipf(100000, theta);
  int c1 = 0, c2 = 0;
  for (int i = 0; i < 400000; ++i) {
    const auto v = zipf.next(rng);
    if (v == 1) ++c1;
    if (v == 2) ++c2;
  }
  ASSERT_GT(c2, 0);
  EXPECT_NEAR(static_cast<double>(c1) / c2, std::pow(2.0, theta), 0.25);
}

TEST(Zipf, MildThetaCoversRange) {
  Xoshiro256 rng(3);
  ZipfGenerator zipf(50, 0.5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 20000; ++i) seen.insert(zipf.next(rng));
  EXPECT_EQ(seen.size(), 50u);  // every item eventually drawn
}

TEST(FlatPtrSet, InsertContains) {
  FlatPtrSet s;
  int a, b, c;
  EXPECT_FALSE(s.contains(&a));
  EXPECT_TRUE(s.insert(&a));
  EXPECT_FALSE(s.insert(&a));
  EXPECT_TRUE(s.insert(&b));
  EXPECT_TRUE(s.contains(&a));
  EXPECT_TRUE(s.contains(&b));
  EXPECT_FALSE(s.contains(&c));
  EXPECT_EQ(s.size(), 2u);
}

TEST(FlatPtrSet, ClearIsCheapAndCorrect) {
  FlatPtrSet s;
  std::vector<int> storage(100);
  for (auto& x : storage) s.insert(&x);
  EXPECT_EQ(s.size(), 100u);
  s.clear();
  EXPECT_EQ(s.size(), 0u);
  for (auto& x : storage) EXPECT_FALSE(s.contains(&x));
  // Reusable after clear.
  EXPECT_TRUE(s.insert(&storage[0]));
  EXPECT_TRUE(s.contains(&storage[0]));
}

TEST(FlatPtrSet, GrowsPastInitialCapacity) {
  FlatPtrSet s(16);
  std::vector<long> storage(5000);
  for (auto& x : storage) ASSERT_TRUE(s.insert(&x));
  for (auto& x : storage) ASSERT_TRUE(s.contains(&x));
  EXPECT_EQ(s.size(), storage.size());
}

TEST(FlatPtrSet, ManyClearCycles) {
  FlatPtrSet s;
  int x;
  for (int i = 0; i < 100000; ++i) {
    s.insert(&x);
    ASSERT_TRUE(s.contains(&x));
    s.clear();
    ASSERT_FALSE(s.contains(&x));
  }
}

TEST(ThreadRegistry, DistinctIdsAcrossConcurrentThreads) {
  // Slots are recycled at thread exit, so ids are only unique among threads
  // that are alive at the same time: hold all threads at a barrier until
  // every one has registered.
  constexpr int kThreads = 8;
  std::vector<int> ids(kThreads, -1);
  std::atomic<int> registered{0};
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&, i] {
      ids[i] = ThreadRegistry::thread_id();
      registered.fetch_add(1);
      while (registered.load() < kThreads) std::this_thread::yield();
    });
  }
  for (auto& t : ts) t.join();
  std::set<int> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads));
  for (int id : ids) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, kMaxThreads);
  }
}

TEST(ThreadRegistry, StableWithinThread) {
  const int a = ThreadRegistry::thread_id();
  const int b = ThreadRegistry::thread_id();
  EXPECT_EQ(a, b);
}

TEST(Counters, BumpAndSnapshot) {
  Counters::reset();
  Counters::bump(Counter::kRefreshCas);
  Counters::bump(Counter::kRefreshCas, 4);
  Counters::bump(Counter::kDelegations);
  const auto snap = Counters::snapshot();
  EXPECT_EQ(snap[Counter::kRefreshCas], 5u);
  EXPECT_EQ(snap[Counter::kDelegations], 1u);
  EXPECT_EQ(snap[Counter::kScxAttempts], 0u);
  Counters::reset();
  EXPECT_EQ(Counters::snapshot()[Counter::kRefreshCas], 0u);
}

TEST(Counters, AggregatesAcrossThreads) {
  Counters::reset();
  std::vector<std::thread> ts;
  for (int i = 0; i < 4; ++i) {
    ts.emplace_back([] {
      for (int j = 0; j < 100; ++j) Counters::bump(Counter::kPropagateCalls);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(Counters::snapshot()[Counter::kPropagateCalls], 400u);
  Counters::reset();
}

}  // namespace
}  // namespace cbat
