// Unit tests for the versioned-CAS substrate and the snapshot registry.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "reclamation/snapshot_registry.h"
#include "vcasbst/vcas.h"

namespace cbat {
namespace {

struct Obj {
  int id;
};

TEST(VersionedPtr, ReadReturnsLatest) {
  Obj a{1}, b{2};
  VersionedPtr<Obj> p;
  p.init(&a);
  EXPECT_EQ(p.read(), &a);
  EXPECT_TRUE(p.vcas(&a, &b));
  EXPECT_EQ(p.read(), &b);
  EXPECT_FALSE(p.vcas(&a, &b));  // expected mismatch
  EXPECT_TRUE(p.vcas(&b, &b));   // no-op CAS succeeds
}

TEST(VersionedPtr, ReadAtSeesHistory) {
  EbrGuard g;
  Obj a{1}, b{2}, c{3};
  VersionedPtr<Obj> p;
  p.init(&a);
  const auto t0 = VcasClock::take_snapshot();
  // Snapshots must be announced (as SnapshotScope does) or truncation may
  // legitimately discard the history they need.
  SnapshotRegistry::Guard guard(t0);
  ASSERT_TRUE(p.vcas(&a, &b));
  const auto t1 = VcasClock::take_snapshot();
  ASSERT_TRUE(p.vcas(&b, &c));
  const auto t2 = VcasClock::take_snapshot();
  EXPECT_EQ(p.read_at(t0), &a);
  EXPECT_EQ(p.read_at(t1), &b);
  EXPECT_EQ(p.read_at(t2), &c);
  EXPECT_EQ(p.read(), &c);
}

TEST(VersionedPtr, SnapshotIsolationAcrossManyWrites) {
  EbrGuard g;
  std::vector<Obj> objs(50);
  for (int i = 0; i < 50; ++i) objs[i].id = i;
  VersionedPtr<Obj> p;
  p.init(&objs[0]);
  // Announce before writing: truncation must preserve everything at or
  // after the oldest announced snapshot.
  SnapshotRegistry::Guard guard(VcasClock::now());
  std::vector<std::uint64_t> stamps;
  for (int i = 1; i < 50; ++i) {
    stamps.push_back(VcasClock::take_snapshot());
    ASSERT_TRUE(p.vcas(&objs[i - 1], &objs[i]));
  }
  for (int i = 1; i < 50; ++i) {
    EXPECT_EQ(p.read_at(stamps[i - 1])->id, i - 1);
  }
}

TEST(VersionedPtr, TruncationKeepsAnnouncedSnapshots) {
  EbrGuard g;
  std::vector<Obj> objs(2000);
  VersionedPtr<Obj> p;
  p.init(&objs[0]);
  // Announce, then tick: writes after the tick are stamped strictly later
  // than t0, so the pinned snapshot keeps resolving to the initial value.
  SnapshotRegistry::Guard guard(VcasClock::now());
  const auto t0 = VcasClock::take_snapshot();
  Obj* prev = &objs[0];
  for (int i = 1; i < 2000; ++i) {
    ASSERT_TRUE(p.vcas(prev, &objs[i]));  // each vcas attempts truncation
    prev = &objs[i];
  }
  // The pinned snapshot must still resolve to the original object.
  EXPECT_EQ(p.read_at(t0), &objs[0]);
}

TEST(VersionedPtr, ConcurrentCasLinearizable) {
  // N threads CAS the pointer forward through a chain; every transition
  // happens exactly once.
  constexpr int kSteps = 20000;
  std::vector<Obj> objs(kSteps + 1);
  VersionedPtr<Obj> p;
  p.init(&objs[0]);
  std::atomic<int> successes{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&] {
      while (true) {
        EbrGuard g;
        Obj* cur = p.read();
        const int idx = static_cast<int>(cur - objs.data());
        if (idx >= kSteps) return;
        if (p.vcas(cur, &objs[idx + 1])) successes.fetch_add(1);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(successes.load(), kSteps);
  EXPECT_EQ(p.read(), &objs[kSteps]);
}

TEST(SnapshotRegistry, MinActiveTracksGuards) {
  const auto fallback = 1000000ULL;
  {
    SnapshotRegistry::Guard a(42);
    EXPECT_LE(SnapshotRegistry::min_active(fallback), 42u);
    {
      SnapshotRegistry::Guard b(17);
      EXPECT_LE(SnapshotRegistry::min_active(fallback), 17u);
    }
  }
  // After both guards release, only other threads' announcements (none in
  // this test) constrain the minimum.
  EXPECT_EQ(SnapshotRegistry::min_active(fallback), fallback);
}

TEST(SnapshotRegistry, NestedGuardsRestorePrevious) {
  SnapshotRegistry::Guard outer(100);
  {
    SnapshotRegistry::Guard inner(50);
    EXPECT_LE(SnapshotRegistry::min_active(~0ULL), 50u);
  }
  EXPECT_EQ(SnapshotRegistry::min_active(~0ULL), 100u);
}

TEST(VcasClock, Monotonic) {
  const auto a = VcasClock::now();
  const auto b = VcasClock::take_snapshot();
  const auto c = VcasClock::now();
  EXPECT_LE(a, b);
  EXPECT_LT(b, c);
}

}  // namespace
}  // namespace cbat
