// Minimal recursive-descent JSON parser used only by tests, to prove the
// writer's output round-trips.  Supports the full value grammar the bench
// schema uses; throws std::runtime_error on malformed input.
#pragma once

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace cbat::testjson {

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<ValuePtr> arr;
  std::map<std::string, ValuePtr> obj;

  bool is_null() const { return kind == Kind::kNull; }
  const Value& at(const std::string& k) const {
    auto it = obj.find(k);
    if (kind != Kind::kObject || it == obj.end()) {
      throw std::runtime_error("missing key: " + k);
    }
    return *it->second;
  }
  bool has(const std::string& k) const {
    return kind == Kind::kObject && obj.count(k) > 0;
  }
  const Value& item(std::size_t i) const {
    if (kind != Kind::kArray || i >= arr.size()) {
      throw std::runtime_error("bad array index");
    }
    return *arr[i];
  }
};

class Parser {
 public:
  explicit Parser(const std::string& s) : s_(s) {}

  ValuePtr parse() {
    ValuePtr v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  ValuePtr parse_value() {
    const char c = peek();
    auto v = std::make_shared<Value>();
    if (c == '{') {
      v->kind = Value::Kind::kObject;
      expect('{');
      if (peek() != '}') {
        while (true) {
          std::string key = parse_string_raw();
          expect(':');
          v->obj[key] = parse_value();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          break;
        }
      }
      expect('}');
    } else if (c == '[') {
      v->kind = Value::Kind::kArray;
      expect('[');
      if (peek() != ']') {
        while (true) {
          v->arr.push_back(parse_value());
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          break;
        }
      }
      expect(']');
    } else if (c == '"') {
      v->kind = Value::Kind::kString;
      v->str = parse_string_raw();
    } else if (c == 't') {
      if (!consume_literal("true")) throw std::runtime_error("bad literal");
      v->kind = Value::Kind::kBool;
      v->b = true;
    } else if (c == 'f') {
      if (!consume_literal("false")) throw std::runtime_error("bad literal");
      v->kind = Value::Kind::kBool;
      v->b = false;
    } else if (c == 'n') {
      if (!consume_literal("null")) throw std::runtime_error("bad literal");
      v->kind = Value::Kind::kNull;
    } else {
      v->kind = Value::Kind::kNumber;
      char* end = nullptr;
      v->num = std::strtod(s_.c_str() + pos_, &end);
      if (end == s_.c_str() + pos_) throw std::runtime_error("bad number");
      pos_ = static_cast<std::size_t>(end - s_.c_str());
    }
    return v;
  }

  std::string parse_string_raw() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) throw std::runtime_error("unterminated string");
      char c = s_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= s_.size()) throw std::runtime_error("bad escape");
        char e = s_[pos_++];
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 > s_.size()) throw std::runtime_error("bad \\u");
            const unsigned long cp =
                std::strtoul(s_.substr(pos_, 4).c_str(), nullptr, 16);
            pos_ += 4;
            // The writer only emits \u00xx for control characters, so a
            // single byte suffices here.
            if (cp > 0xff) throw std::runtime_error("unsupported \\u");
            out += static_cast<char>(cp);
            break;
          }
          default:
            throw std::runtime_error("bad escape char");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

inline ValuePtr parse(const std::string& s) { return Parser(s).parse(); }

}  // namespace cbat::testjson
