// Chaos suite for the deterministic fault-injection layer (ISSUE 9).
//
// Sweeps seeded FaultPlans across every instrumented site and two thread
// regimes ({single, oversubscribed}), then checks the two properties the
// graceful-degradation work promises: std::set-oracle equivalence (no
// injected fault may lose or invent a key) and version-tree validity (the
// BST + augmentation invariants hold on every surviving root).  The suite
// is meaningless without the hooks compiled in, hence the guard:
#if !defined(CBAT_FAULT_INJECTION) || !CBAT_FAULT_INJECTION
#error "fault_injection_test requires -DCBAT_FAULT_INJECTION=ON"
#endif

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "combine/combined_set.h"
#include "core/bat_tree.h"
#include "core/version_queries.h"
#include "reclamation/ebr.h"
#include "shard/sharded_set.h"
#include "util/counters.h"
#include "util/fault.h"
#include "util/keys.h"

namespace cbat {
namespace {

using CS = CombinedSet<Bat<SizeAug>>;
// Adaptive AND read-combined: one structure reaches the migration sites,
// the leased read-wait site, and the aggregate-cache seqlock fills.
using SH = ShardedSet<CombinedSet<Bat<SizeAug>>, 4, SnapshotPolicy::kQuiescent,
                      ReadPath::kCombined, true>;

constexpr Key kKeySpace = 1 << 14;

// Workload PRNG — deliberately separate from the fault layer's stream so a
// plan's injections never perturb which keys a thread touches.
std::uint64_t wmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Plans executed and the union of sites visited, accumulated across every
// chaos run so the final coverage test can audit the whole sweep.
int g_plans_run = 0;
std::set<std::string> g_sites_union;

int oversubscribed_threads() {
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  return static_cast<int>(std::min(2 * hw, 12u));
}

// Thread t's op i: key class k % threads == t, so streams on different
// threads commute and a sequential per-thread replay is an exact oracle.
Key op_key(std::uint64_t h, int threads, int t) {
  const Key classes = kKeySpace / threads;
  return static_cast<Key>((h >> 16) % classes) * threads + t;
}

void validate_versions(CS& s) {
  EbrGuard g;
  EXPECT_TRUE(version_tree_valid<SizeAug>(
      s.root_version_unsafe(), std::numeric_limits<Key>::min(), kInf2));
}
void validate_versions(SH& s) {
  EbrGuard g;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(version_tree_valid<SizeAug>(
        s.shard_at(i).root_version_unsafe(), std::numeric_limits<Key>::min(),
        kInf2))
        << "shard " << i;
  }
}

// One chaos run: arm the plan, hammer the set from `threads` workers (plus
// a migrator ping-ponging a shard boundary where the structure supports
// it), then disarm and check oracle equivalence + version validity.
template <class Set>
void chaos_run(Set& s, const FaultPlan& plan, int threads,
               int ops_per_thread) {
  fault_arm(plan);
  std::atomic<bool> stop{false};
  std::thread migrator;
  if constexpr (requires { s.rebalance_once(0, 1); }) {
    migrator = std::thread([&s, &stop] {
      int flip = 0;
      while (!stop.load(std::memory_order_acquire)) {
        if (flip == 0) {
          s.rebalance_once(0, 1);
        } else {
          s.rebalance_once(1, 0);
        }
        flip ^= 1;
        std::this_thread::yield();
      }
    });
  }

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&s, &plan, threads, ops_per_thread, t] {
      std::uint64_t h = plan.seed * 0x9e3779b97f4a7c15ULL + t;
      for (int i = 0; i < ops_per_thread; ++i) {
        h = wmix(h);
        const Key k = op_key(h, threads, t);
        if ((h & 1) != 0) {
          s.insert(k);
        } else {
          s.erase(k);
        }
        if ((i & 15) == 0) {
          // Composite reads ride the leased/combined read path; their
          // answers are checked for sanity only — exact answers race with
          // concurrent updates by design.  range_aggregate is what drives
          // the aggregate-cache fills (the seqlock fault sites).
          EXPECT_GE(s.size(), 0);
          EXPECT_GE(s.rank(k), 0);
          EXPECT_GE(s.range_count(kKeySpace / 4, kKeySpace / 2), 0);
          EXPECT_GE(s.range_aggregate(0, kKeySpace / 2), 0);
          (void)s.contains(k);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  if (migrator.joinable()) migrator.join();
  fault_disarm();

  ++g_plans_run;
  for (const std::string& site : fault_sites_seen()) g_sites_union.insert(site);

  // Sequential oracle replay (disjoint key classes commute).
  std::set<Key> oracle;
  for (int t = 0; t < threads; ++t) {
    std::uint64_t h = plan.seed * 0x9e3779b97f4a7c15ULL + t;
    for (int i = 0; i < ops_per_thread; ++i) {
      h = wmix(h);
      const Key k = op_key(h, threads, t);
      if ((h & 1) != 0) {
        oracle.insert(k);
      } else {
        oracle.erase(k);
      }
    }
  }

  ASSERT_EQ(s.size(), static_cast<std::int64_t>(oracle.size()));
  for (Key k : oracle) ASSERT_TRUE(s.contains(k)) << "lost key " << k;
  for (Key k = 0; k < kKeySpace; k += 13) {
    ASSERT_EQ(s.contains(k), oracle.count(k) != 0) << "key " << k;
  }
  // Order statistics agree with the oracle at a few cuts.
  if (!oracle.empty()) {
    const Key mid = *std::next(oracle.begin(), oracle.size() / 2);
    const std::int64_t want =
        static_cast<std::int64_t>(std::distance(
            oracle.begin(), oracle.upper_bound(mid)));
    ASSERT_EQ(s.rank(mid), want);
  }
  validate_versions(s);
}

// Both regimes for one plan.  A fresh structure per regime: plans must not
// contaminate each other through leftover state.
template <class Set>
Set make_set() {
  if constexpr (std::is_constructible_v<Set, Key>) {
    return Set(kKeySpace);  // sharded: keyspace hint sizes the shard map
  } else {
    return Set();
  }
}

template <class Set>
void chaos_plan(const FaultPlan& plan) {
  {
    Set s = make_set<Set>();
    chaos_run(s, plan, /*threads=*/1, /*ops_per_thread=*/4000);
  }
  {
    Set s = make_set<Set>();
    chaos_run(s, plan, oversubscribed_threads(), /*ops_per_thread=*/800);
  }
  Ebr::drain();
}

const std::uint64_t kSeeds[] = {0x1, 0x2f1, 0x5aa5, 0xdead};

FaultPlan all_sites_plan(std::uint64_t seed, std::uint32_t yield_pm,
                         std::uint32_t delay_pm, std::uint32_t fail_pm) {
  FaultPlan p;
  p.seed = seed;
  p.yield_permil = yield_pm;
  p.delay_permil = delay_pm;
  p.fail_permil = fail_pm;
  return p;
}

FaultPlan one_site_plan(std::uint64_t seed, const char* site) {
  FaultPlan p;
  p.seed = seed;
  p.yield_permil = 64;
  p.delay_permil = 64;
  p.fail_permil = 300;
  p.only_site = site;
  return p;
}

TEST(FaultInjection, ArmedDecisionSequencesAreDeterministic) {
  // Determinism is a property of the decision stream, not of whole-process
  // replay: protocol-level visit sequences legitimately differ between
  // rounds (pool free lists warm up, the EBR epoch moves on), so the test
  // drives the macros directly with a fixed visit sequence.
  const FaultPlan plan = all_sites_plan(0xfeed, 200, 100, 30);
  std::uint64_t injected[2];
  std::uint64_t forced[2];
  for (int round = 0; round < 2; ++round) {
    fault_arm(plan);
    std::uint64_t sink = 0;
    for (int i = 0; i < 20000; ++i) {
      CBAT_FAULT_POINT("chaos.det_point");
      if (CBAT_FAULT_FORCE("chaos.det_force")) ++sink;
    }
    fault_disarm();
    injected[round] = fault_injections();
    forced[round] = fault_forced_failures();
    EXPECT_GT(injected[round], 0u);
    EXPECT_EQ(forced[round], sink);
  }
  // Same plan, same thread, same visit sequence: exact replay.
  EXPECT_EQ(injected[0], injected[1]);
  EXPECT_EQ(forced[0], forced[1]);
}

TEST(FaultInjection, AllSiteShapesCombinedSet) {
  for (std::uint64_t seed : kSeeds) {
    chaos_plan<CS>(all_sites_plan(seed, 250, 0, 0));    // yield-heavy
    chaos_plan<CS>(all_sites_plan(seed, 0, 150, 0));    // delay-heavy
    chaos_plan<CS>(all_sites_plan(seed, 100, 60, 40));  // mixed failures
  }
}

TEST(FaultInjection, AllSiteShapesShardedSet) {
  for (std::uint64_t seed : kSeeds) {
    chaos_plan<SH>(all_sites_plan(seed, 250, 0, 0));
    chaos_plan<SH>(all_sites_plan(seed, 0, 150, 0));
    chaos_plan<SH>(all_sites_plan(seed, 100, 60, 40));
  }
}

TEST(FaultInjection, PerSiteFailuresCombinedSet) {
  const char* sites[] = {
      "pool.alloc_fail",   "bat.refresh_cas",     "combine.elected",
      "combine.read_elected", "combine.publish_full", "combine.claim",
      "combine.update_wait",  "combine.read_wait",    "ebr.advance_skip",
  };
  for (std::uint64_t seed : kSeeds) {
    for (const char* site : sites) chaos_plan<CS>(one_site_plan(seed, site));
  }
}

TEST(FaultInjection, PerSiteFailuresShardedSet) {
  const char* sites[] = {
      "shard.read_wait", "mig.copy_begin", "mig.copied",
      "mig.sealed",      "mig.replayed",   "mig.flip",
  };
  const auto before = Counters::snapshot();
  for (std::uint64_t seed : kSeeds) {
    for (const char* site : sites) chaos_plan<SH>(one_site_plan(seed, site));
  }
  const auto after = Counters::snapshot();
  // The mig.* plans force pre-flip faults, so the abort/rollback path must
  // actually have fired — and every run above still ended oracle-equal.
  EXPECT_GT(after[Counter::kShardMigrationAborts],
            before[Counter::kShardMigrationAborts]);
}

// Runs last (gtest preserves definition order within a file): audits the
// sweep itself, not the structures.
TEST(FaultInjection, SweepCoversThePlanMatrixAndTheInstrumentedSites) {
  EXPECT_GE(g_plans_run, 64) << "acceptance: >= 64 seeded plans";
  // Sites every sweep must structurally reach.  The remaining sites
  // (contention-dependent waits, cache fills) are exercised by the plans
  // above but can be scheduler-dependent, so their absence is not an
  // error; print the union for the curious.
  const char* must_see[] = {
      "pool.alloc_fail", "ebr.retire",      "ebr.advance",
      "bat.apply_batch", "bat.refresh_build", "bat.refresh_cas",
      "combine.elected", "combine.publish",  "mig.copy_begin",
      "mig.flipped",     "mig.cleaned",
  };
  for (const char* site : must_see) {
    EXPECT_TRUE(g_sites_union.count(site) != 0) << "never visited: " << site;
  }
  std::string all;
  for (const std::string& s : g_sites_union) all += s + " ";
  std::printf("chaos sweep: %d plans, sites visited: %s\n", g_plans_run,
              all.c_str());
}

}  // namespace
}  // namespace cbat
