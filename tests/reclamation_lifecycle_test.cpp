// End-to-end reclamation tests (paper §6): the trees must neither leak nor
// free early under churn.  Early frees are caught by the ASan jobs and the
// poisoning checks here; leaks are caught by asserting that the EBR's limbo
// count returns to zero at quiescence and that version chains are bounded.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/bat_tree.h"
#include "frbst/frbst.h"
#include "reclamation/ebr.h"
#include "util/random.h"
#include "vcasbst/vcas_bst.h"

namespace cbat {
namespace {

// After any amount of churn and a drain, nothing may remain in limbo.
TEST(Reclamation, BatDrainsToZero) {
  {
    Bat<SizeAug> t;
    Xoshiro256 rng(1);
    for (int i = 0; i < 30000; ++i) {
      const Key k = static_cast<Key>(rng.below(512));
      if (rng.below(2) == 0) {
        t.insert(k);
      } else {
        t.erase(k);
      }
    }
    Ebr::drain();
    // Retired versions/nodes/descriptors from the churn are gone; only the
    // live tree remains (freed by the destructor below).
    EXPECT_EQ(Ebr::pending(), 0u);
  }
  Ebr::drain();
  EXPECT_EQ(Ebr::pending(), 0u);
}

TEST(Reclamation, EagerDelDrainsToZeroAfterContention) {
  {
    BatEagerDel<SizeAug> t;
    constexpr int kThreads = 6;
    std::vector<std::thread> ts;
    for (int i = 0; i < kThreads; ++i) {
      ts.emplace_back([&, i] {
        Xoshiro256 rng(100 + i);
        for (int op = 0; op < 10000; ++op) {
          const Key k = static_cast<Key>(rng.below(64));
          if (rng.below(2) == 0) {
            t.insert(k);
          } else {
            t.erase(k);
          }
        }
      });
    }
    for (auto& th : ts) th.join();
    Ebr::drain();
    EXPECT_EQ(Ebr::pending(), 0u);
  }
  Ebr::drain();
  EXPECT_EQ(Ebr::pending(), 0u);
}

TEST(Reclamation, FrBstDrainsToZero) {
  {
    FrBst<SizeAug> t;
    Xoshiro256 rng(2);
    for (int i = 0; i < 30000; ++i) {
      const Key k = static_cast<Key>(rng.below(512));
      if (rng.below(2) == 0) {
        t.insert(k);
      } else {
        t.erase(k);
      }
    }
    Ebr::drain();
    EXPECT_EQ(Ebr::pending(), 0u);
  }
  Ebr::drain();
  EXPECT_EQ(Ebr::pending(), 0u);
}

TEST(Reclamation, VcasBstVersionChainsBoundedByTruncation) {
  {
    VcasBst t;
    for (Key k = 0; k < 64; ++k) t.insert(k);
    // Churn one key: its grandparent edge accumulates versions that
    // truncation must keep cutting (no snapshot is announced).
    for (int i = 0; i < 50000; ++i) {
      t.erase(63);
      t.insert(63);
    }
    Ebr::drain();
    // If truncation failed, tens of thousands of VNodes would be pending
    // or (worse) unreachable; pending must be zero after drain and the
    // structure still correct.
    EXPECT_EQ(Ebr::pending(), 0u);
    EXPECT_EQ(t.size(), 64);
  }
  Ebr::drain();
  EXPECT_EQ(Ebr::pending(), 0u);
}

// A long-lived snapshot must keep its view alive across heavy reclamation
// pressure — and release it afterwards.
TEST(Reclamation, SnapshotPinsItsVersionTree) {
  Bat<SizeAug> t;
  for (Key k = 0; k < 1000; ++k) t.insert(k);
  {
    Bat<SizeAug>::Snapshot snap(t);
    const auto n0 = snap.size();
    std::thread churn([&] {
      Xoshiro256 rng(3);
      for (int i = 0; i < 20000; ++i) {
        const Key k = static_cast<Key>(rng.below(1000));
        if (rng.below(2) == 0) {
          t.erase(k);
        } else {
          t.insert(k);
        }
      }
    });
    churn.join();
    // The pinned snapshot still answers exactly as at capture time.
    EXPECT_EQ(snap.size(), n0);
    EXPECT_EQ(snap.rank(999), n0);
    for (Key k = 0; k < 1000; k += 97) EXPECT_TRUE(snap.contains(k));
  }
  Ebr::drain();
  EXPECT_EQ(Ebr::pending(), 0u);
}

// Destruction after concurrent use must release everything (relies on the
// ASan CI job to flag double/early frees; here we check the books).
TEST(Reclamation, SequentialCreateDestroyManyTrees) {
  for (int round = 0; round < 20; ++round) {
    BatDel<SizeAug> t;
    for (Key k = 0; k < 500; ++k) t.insert(k);
    for (Key k = 0; k < 500; k += 2) t.erase(k);
    EXPECT_EQ(t.size(), 250);
  }
  Ebr::drain();
  EXPECT_EQ(Ebr::pending(), 0u);
}

}  // namespace
}  // namespace cbat
