// Targeted tests for the chromatic-tree rebalancing machinery: each
// transformation class (BLK, RB1, RB2, PUSH, W-FAR, W-NEAR, RED-SIB and
// their mirrors) is exercised by adversarial insertion/deletion patterns,
// and the weighted-path invariant is checked after every phase.  These are
// the invariants DESIGN.md derives; a wrong weight in any transformation
// breaks path_sums_equal immediately.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "chromatic/chromatic_set.h"
#include "util/random.h"

namespace cbat {
namespace {

using Report = ChromaticTree<NoVersionPolicy>::InvariantReport;

void expect_clean(const ChromaticSet& s, const char* what) {
  const Report r = s.check_invariants();
  EXPECT_TRUE(r.bst_order) << what;
  EXPECT_TRUE(r.leaf_oriented) << what;
  EXPECT_TRUE(r.path_sums_equal) << what;
  EXPECT_TRUE(r.leaves_positive_weight) << what;
  EXPECT_EQ(r.red_red_violations, 0u) << what;
  EXPECT_EQ(r.overweight_violations, 0u) << what;
}

// Ascending inserts drive RB1/BLK on the right spine (and their mirrors on
// descending runs): every insert makes a red leaf-parent chain that the
// cleanup must resolve.
TEST(Rebalance, AscendingRunsExerciseRightSpineFixes) {
  ChromaticSet s;
  for (Key k = 0; k < 3000; ++k) {
    ASSERT_TRUE(s.insert(k));
    if (k % 500 == 499) expect_clean(s, "ascending");
  }
  const Report r = s.check_invariants();
  EXPECT_LE(r.height, 2 * 12 + 4);
}

TEST(Rebalance, DescendingRunsExerciseLeftSpineFixes) {
  ChromaticSet s;
  for (Key k = 3000; k > 0; --k) {
    ASSERT_TRUE(s.insert(k));
    if (k % 500 == 1) expect_clean(s, "descending");
  }
  EXPECT_LE(s.check_invariants().height, 2 * 12 + 4);
}

// Zig-zag insertion (alternating ends of a shrinking interval) forces the
// inner-child red-red case (RB2) in both directions.
TEST(Rebalance, ZigZagInsertionExercisesDoubleRotations) {
  ChromaticSet s;
  Key lo = 0, hi = 100000;
  while (lo < hi) {
    ASSERT_TRUE(s.insert(lo));
    ASSERT_TRUE(s.insert(hi));
    lo += 13;
    hi -= 17;
  }
  expect_clean(s, "zigzag");
}

// Deletions create overweight nodes; deleting a whole contiguous block
// funnels every weight case (PUSH and the rotations) through one region.
TEST(Rebalance, BlockDeletionExercisesWeightCases) {
  ChromaticSet s;
  for (Key k = 0; k < 4096; ++k) ASSERT_TRUE(s.insert(k));
  // Left block, right-to-left: overweight fixes with right siblings.
  for (Key k = 1023; k >= 0; --k) ASSERT_TRUE(s.erase(k));
  expect_clean(s, "left block");
  // Right block, left-to-right: the mirror cases.
  for (Key k = 3072; k < 4096; ++k) ASSERT_TRUE(s.erase(k));
  expect_clean(s, "right block");
  EXPECT_EQ(s.size_slow(), 2048u);
}

// Alternating keys then deleting every other one stresses PUSH (sibling
// subtrees of equal weight) across the whole tree.
TEST(Rebalance, CombDeletionStressesPush) {
  ChromaticSet s;
  for (Key k = 0; k < 8192; ++k) ASSERT_TRUE(s.insert(k));
  for (Key k = 0; k < 8192; k += 2) ASSERT_TRUE(s.erase(k));
  expect_clean(s, "comb");
  EXPECT_EQ(s.size_slow(), 4096u);
  EXPECT_LE(s.check_invariants().height, 2 * 13 + 4);
}

// Shrink to (almost) empty repeatedly: the root-adjacent special cases
// (weight clamping at root.left, sentinel handling) run constantly.
TEST(Rebalance, GrowShrinkCyclesNearEmpty) {
  ChromaticSet s;
  Xoshiro256 rng(17);
  for (int cycle = 0; cycle < 30; ++cycle) {
    std::vector<Key> keys;
    const int n = 1 + static_cast<int>(rng.below(60));
    for (int i = 0; i < n; ++i) {
      const Key k = static_cast<Key>(rng.below(1000));
      if (s.insert(k)) keys.push_back(k);
    }
    for (Key k : keys) ASSERT_TRUE(s.erase(k));
    expect_clean(s, "cycle");
    EXPECT_EQ(s.size_slow(), 0u);
  }
}

// fix_to_key must be idempotent and harmless on a clean tree.
TEST(Rebalance, FixToKeyOnCleanTreeIsNoop) {
  ChromaticSet s;
  for (Key k = 0; k < 500; ++k) s.insert(k * 3);
  const Report before = s.check_invariants();
  {
    EbrGuard g;
    for (Key k = 0; k < 1500; k += 7) s.tree().fix_to_key(k);
  }
  const Report after = s.check_invariants();
  EXPECT_EQ(before.real_keys, after.real_keys);
  EXPECT_TRUE(after.path_sums_equal);
  EXPECT_EQ(after.red_red_violations, 0u);
  EXPECT_EQ(after.overweight_violations, 0u);
}

// Height stays logarithmic across a long adversarial mix: ascending runs,
// descending runs, block deletes, uniform churn.
TEST(Rebalance, HeightBoundedUnderAdversarialMix) {
  ChromaticSet s;
  Xoshiro256 rng(23);
  std::set<Key> ref;
  auto apply = [&](Key k, bool ins) {
    if (ins) {
      ASSERT_EQ(s.insert(k), ref.insert(k).second);
    } else {
      ASSERT_EQ(s.erase(k), ref.erase(k) > 0);
    }
  };
  for (int phase = 0; phase < 6; ++phase) {
    switch (phase % 3) {
      case 0:
        for (Key k = phase * 1000; k < phase * 1000 + 900; ++k) {
          apply(k, true);
        }
        break;
      case 1:
        for (Key k = phase * 1000 + 900; k >= phase * 1000; --k) {
          apply(k, (k % 3) != 0);
        }
        break;
      default:
        for (int i = 0; i < 2000; ++i) {
          apply(static_cast<Key>(rng.below(8000)), rng.below(2) == 0);
        }
    }
    const Report r = s.check_invariants();
    ASSERT_TRUE(r.structurally_ok()) << "phase " << phase;
    ASSERT_EQ(r.red_red_violations, 0u);
    ASSERT_EQ(r.overweight_violations, 0u);
    ASSERT_EQ(r.real_keys, ref.size());
    // 2*log2(n+1) + slack; n <= 8000.
    ASSERT_LE(r.height, 2 * 13 + 4);
  }
}

// Concurrent rebalancing: threads hammer adjacent ascending runs so their
// cleanup windows overlap constantly; the final tree must be clean.
TEST(Rebalance, ConcurrentAscendingRunsStayClean) {
  ChromaticSet s;
  constexpr int kThreads = 6;
  constexpr Key kPer = 3000;
  std::vector<std::thread> ts;
  std::atomic<bool> failed{false};
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      // Interleaved ascending sequences: thread t inserts t, t+T, t+2T, ...
      for (Key k = t; k < kThreads * kPer; k += kThreads) {
        if (!s.insert(k)) failed = true;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_FALSE(failed.load());
  const Report r = s.check_invariants();
  EXPECT_TRUE(r.structurally_ok());
  EXPECT_EQ(r.real_keys, static_cast<std::size_t>(kThreads * kPer));
  EXPECT_EQ(r.red_red_violations, 0u);
  EXPECT_EQ(r.overweight_violations, 0u);
  EXPECT_LE(r.height, 2 * 15 + 6);
}

TEST(Rebalance, ConcurrentMixedChurnStaysClean) {
  ChromaticSet s;
  constexpr int kThreads = 8;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      Xoshiro256 rng(31 * t + 5);
      for (int i = 0; i < 15000; ++i) {
        const Key k = static_cast<Key>(rng.below(1024));
        if (rng.below(2) == 0) {
          s.insert(k);
        } else {
          s.erase(k);
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  const Report r = s.check_invariants();
  EXPECT_TRUE(r.structurally_ok());
  EXPECT_EQ(r.red_red_violations, 0u);
  EXPECT_EQ(r.overweight_violations, 0u);
}

}  // namespace
}  // namespace cbat
