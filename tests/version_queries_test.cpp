// Property tests for the version-tree query algorithms, run against a
// std::set oracle over randomized BAT instances (parameterized sweeps over
// set size and key density), plus targeted edge cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "core/bat_tree.h"
#include "util/random.h"

namespace cbat {
namespace {

class QueryProperty
    : public ::testing::TestWithParam<std::tuple<int, Key, int>> {
 protected:
  // Builds a BAT and a reference set with the parameterized shape.
  void build(Bat<SizeAug>* t, std::set<Key>* ref) {
    const int inserts = std::get<0>(GetParam());
    const Key range = std::get<1>(GetParam());
    const int erases = std::get<2>(GetParam());
    Xoshiro256 rng(static_cast<std::uint64_t>(inserts) * 31 + range);
    for (int i = 0; i < inserts; ++i) {
      const Key k = static_cast<Key>(rng.below(range));
      t->insert(k);
      ref->insert(k);
    }
    for (int i = 0; i < erases; ++i) {
      const Key k = static_cast<Key>(rng.below(range));
      t->erase(k);
      ref->erase(k);
    }
  }
};

TEST_P(QueryProperty, RankAgreesWithOracleEverywhere) {
  Bat<SizeAug> t;
  std::set<Key> ref;
  build(&t, &ref);
  const Key range = std::get<1>(GetParam());
  for (Key k = -2; k <= range + 2; k += std::max<Key>(1, range / 97)) {
    ASSERT_EQ(t.rank(k), static_cast<std::int64_t>(std::distance(
                             ref.begin(), ref.upper_bound(k))))
        << "rank(" << k << ")";
  }
}

TEST_P(QueryProperty, SelectIsInverseOfRank) {
  Bat<SizeAug> t;
  std::set<Key> ref;
  build(&t, &ref);
  const auto n = t.size();
  ASSERT_EQ(n, static_cast<std::int64_t>(ref.size()));
  std::vector<Key> sorted(ref.begin(), ref.end());
  for (std::int64_t i = 1; i <= n; i += std::max<std::int64_t>(1, n / 53)) {
    const auto k = t.select(i);
    ASSERT_TRUE(k.has_value());
    EXPECT_EQ(*k, sorted[i - 1]);
    EXPECT_EQ(t.rank(*k), i);
  }
  EXPECT_EQ(t.select(0), std::nullopt);
  EXPECT_EQ(t.select(n + 1), std::nullopt);
}

TEST_P(QueryProperty, RangeCountMatchesAggregateAndOracle) {
  Bat<SizeAug> t;
  std::set<Key> ref;
  build(&t, &ref);
  const Key range = std::get<1>(GetParam());
  Xoshiro256 rng(4242);
  for (int i = 0; i < 50; ++i) {
    Key lo = static_cast<Key>(rng.below(range));
    Key hi = static_cast<Key>(rng.below(range));
    if (lo > hi) std::swap(lo, hi);
    const auto want = static_cast<std::int64_t>(
        std::distance(ref.lower_bound(lo), ref.upper_bound(hi)));
    ASSERT_EQ(t.range_count(lo, hi), want);
    ASSERT_EQ(t.range_aggregate(lo, hi), want);  // SizeAug: same number
    const auto collected = t.range_collect(lo, hi);
    ASSERT_EQ(static_cast<std::int64_t>(collected.size()), want);
    ASSERT_TRUE(std::is_sorted(collected.begin(), collected.end()));
  }
}

TEST_P(QueryProperty, FloorCeilingAgreeWithOracle) {
  Bat<SizeAug> t;
  std::set<Key> ref;
  build(&t, &ref);
  const Key range = std::get<1>(GetParam());
  Xoshiro256 rng(77);
  for (int i = 0; i < 200; ++i) {
    const Key k = static_cast<Key>(rng.below(range + 10)) - 5;
    // floor = largest <= k
    std::optional<Key> want_floor;
    auto it = ref.upper_bound(k);
    if (it != ref.begin()) want_floor = *std::prev(it);
    ASSERT_EQ(t.floor(k), want_floor) << "floor(" << k << ")";
    // ceiling = smallest >= k
    std::optional<Key> want_ceil;
    auto jt = ref.lower_bound(k);
    if (jt != ref.end()) want_ceil = *jt;
    ASSERT_EQ(t.ceiling(k), want_ceil) << "ceiling(" << k << ")";
  }
}

TEST_P(QueryProperty, SelectInRangeMatchesOracle) {
  Bat<SizeAug> t;
  std::set<Key> ref;
  build(&t, &ref);
  const Key range = std::get<1>(GetParam());
  Xoshiro256 rng(99);
  for (int i = 0; i < 50; ++i) {
    Key lo = static_cast<Key>(rng.below(range));
    Key hi = static_cast<Key>(rng.below(range));
    if (lo > hi) std::swap(lo, hi);
    std::vector<Key> in_range(ref.lower_bound(lo), ref.upper_bound(hi));
    for (std::int64_t j :
         {std::int64_t{1}, static_cast<std::int64_t>(in_range.size() / 2),
          static_cast<std::int64_t>(in_range.size())}) {
      if (j < 1) continue;
      const auto got = t.select_in_range(lo, hi, j);
      if (j <= static_cast<std::int64_t>(in_range.size())) {
        ASSERT_EQ(got, std::make_optional(in_range[j - 1]));
      } else {
        ASSERT_EQ(got, std::nullopt);
      }
    }
    ASSERT_EQ(
        t.select_in_range(lo, hi,
                          static_cast<std::int64_t>(in_range.size()) + 1),
        std::nullopt);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QueryProperty,
    ::testing::Combine(
        /*inserts=*/::testing::Values(0, 1, 64, 2000),
        /*key range=*/::testing::Values<Key>(8, 1000, 1000000),
        /*erases=*/::testing::Values(0, 500)));

TEST(QueryEdge, SingleElement) {
  Bat<SizeAug> t;
  t.insert(42);
  EXPECT_EQ(t.floor(41), std::nullopt);
  EXPECT_EQ(t.floor(42), std::make_optional<Key>(42));
  EXPECT_EQ(t.floor(1000), std::make_optional<Key>(42));
  EXPECT_EQ(t.ceiling(43), std::nullopt);
  EXPECT_EQ(t.ceiling(42), std::make_optional<Key>(42));
  EXPECT_EQ(t.ceiling(-5), std::make_optional<Key>(42));
  EXPECT_EQ(t.select_in_range(0, 100, 1), std::make_optional<Key>(42));
  EXPECT_EQ(t.select_in_range(43, 100, 1), std::nullopt);
}

TEST(QueryEdge, ExtremeKeys) {
  Bat<SizeAug> t;
  t.insert(std::numeric_limits<Key>::min());
  t.insert(kMaxUserKey);
  EXPECT_EQ(t.rank(kMaxUserKey), 2);
  EXPECT_EQ(t.floor(kMaxUserKey), std::make_optional(kMaxUserKey));
  EXPECT_EQ(t.ceiling(kMaxUserKey), std::make_optional(kMaxUserKey));
  EXPECT_EQ(t.ceiling(std::numeric_limits<Key>::min()),
            std::make_optional(std::numeric_limits<Key>::min()));
  EXPECT_EQ(t.range_count(std::numeric_limits<Key>::min(), kMaxUserKey), 2);
}

TEST(QueryEdge, SnapshotFloorCeilingStable) {
  Bat<SizeAug> t;
  for (Key k = 0; k < 100; k += 10) t.insert(k);
  EbrGuard g;
  const auto* v = t.root_version_unsafe();
  t.erase(50);
  t.insert(55);
  // The captured version tree still answers as of the capture.
  EXPECT_EQ(version_floor<SizeAug>(v, 54), std::make_optional<Key>(50));
  EXPECT_EQ(version_ceiling<SizeAug>(v, 51), std::make_optional<Key>(60));
}

}  // namespace
}  // namespace cbat
