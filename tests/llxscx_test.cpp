// Tests for the LLX/SCX primitives, independent of the chromatic tree.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "llxscx/llx_scx.h"
#include "reclamation/ebr.h"

namespace cbat {
namespace {

Node* leaf(Key k) { return new Node(k, 1, nullptr, nullptr); }
Node* internal(Key k, Node* l, Node* r) { return new Node(k, 1, l, r); }

void free_node(Node* n) {
  release_node_info(n);
  delete n;
}

TEST(Llx, SnapshotsQuiescentNode) {
  EbrGuard g;
  Node* a = leaf(1);
  Node* b = leaf(5);
  Node* p = internal(5, a, b);
  LlxSnap s;
  ASSERT_EQ(llx(p, &s), LlxStatus::kOk);
  EXPECT_EQ(s.node, p);
  EXPECT_EQ(s.left(), a);
  EXPECT_EQ(s.right(), b);
  EXPECT_EQ(s.info, scx_initial_record());
  free_node(p);
  free_node(a);
  free_node(b);
}

TEST(Llx, FinalizedNodeReported) {
  EbrGuard g;
  Node* a = leaf(1);
  a->marked.store(true);
  LlxSnap s;
  EXPECT_EQ(llx(a, &s), LlxStatus::kFinalized);
  free_node(a);
}

TEST(Scx, SingleThreadedChildSwing) {
  EbrGuard g;
  Node* a = leaf(1);
  Node* b = leaf(5);
  Node* p = internal(5, a, b);
  LlxSnap ps, as;
  ASSERT_EQ(llx(p, &ps), LlxStatus::kOk);
  ASSERT_EQ(llx(a, &as), LlxStatus::kOk);
  Node* a2 = leaf(2);
  LlxSnap v[2] = {ps, as};
  ASSERT_TRUE(scx(v, 2, 1, &p->child[0], a2));
  EXPECT_EQ(p->child[0].load(), a2);
  EXPECT_TRUE(a->is_finalized());
  EXPECT_FALSE(p->is_finalized());
  free_node(p);
  free_node(a);
  free_node(b);
  free_node(a2);
}

TEST(Scx, FailsAfterConflictingScx) {
  EbrGuard g;
  Node* a = leaf(1);
  Node* b = leaf(5);
  Node* p = internal(5, a, b);
  LlxSnap ps1, as1;
  ASSERT_EQ(llx(p, &ps1), LlxStatus::kOk);
  ASSERT_EQ(llx(a, &as1), LlxStatus::kOk);

  // A second operation performs an SCX on p between our LLX and SCX.
  LlxSnap ps2, as2;
  ASSERT_EQ(llx(p, &ps2), LlxStatus::kOk);
  ASSERT_EQ(llx(a, &as2), LlxStatus::kOk);
  Node* x = leaf(3);
  LlxSnap v2[2] = {ps2, as2};
  ASSERT_TRUE(scx(v2, 2, 1, &p->child[0], x));

  // Our SCX must now fail: p's info changed since our LLX.
  Node* y = leaf(4);
  LlxSnap v1[2] = {ps1, as1};
  EXPECT_FALSE(scx(v1, 2, 1, &p->child[0], y));
  EXPECT_EQ(p->child[0].load(), x);
  free_node(p);
  free_node(a);
  free_node(b);
  free_node(x);
  free_node(y);
}

TEST(Scx, LlxFailsOrFinalizedOnRemovedNode) {
  EbrGuard g;
  Node* a = leaf(1);
  Node* b = leaf(5);
  Node* p = internal(5, a, b);
  LlxSnap ps, as;
  ASSERT_EQ(llx(p, &ps), LlxStatus::kOk);
  ASSERT_EQ(llx(a, &as), LlxStatus::kOk);
  Node* a2 = leaf(2);
  LlxSnap v[2] = {ps, as};
  ASSERT_TRUE(scx(v, 2, 1, &p->child[0], a2));
  LlxSnap s;
  EXPECT_EQ(llx(a, &s), LlxStatus::kFinalized);
  // The surviving node is LLX-able again.
  EXPECT_EQ(llx(p, &s), LlxStatus::kOk);
  free_node(p);
  free_node(a);
  free_node(b);
  free_node(a2);
}

// Concurrent counter built from LLX/SCX: N threads repeatedly replace the
// left child of a fixed parent with a leaf of key+1.  Exactly one SCX can
// succeed per value, so the final key equals the number of successes.
TEST(Scx, ConcurrentIncrementsAreAtomic) {
  Node* cell = leaf(0);
  Node* right = leaf(1000);
  Node* p = internal(1000, cell, right);

  constexpr int kThreads = 6;
  constexpr int kIncrPerThread = 3000;
  std::atomic<long> successes{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kIncrPerThread; ++i) {
        while (true) {
          EbrGuard g;
          LlxSnap ps, cs;
          if (llx(p, &ps) != LlxStatus::kOk) continue;
          Node* cur = ps.left();
          if (llx(cur, &cs) != LlxStatus::kOk) continue;
          Node* next = leaf(cur->key + 1);
          LlxSnap v[2] = {ps, cs};
          if (scx(v, 2, 1, &p->child[0], next)) {
            successes.fetch_add(1);
            Ebr::retire(cur, [](void* q) {
              Node* n = static_cast<Node*>(q);
              release_node_info(n);
              delete n;
            });
            break;
          }
          release_node_info(next);
          delete next;
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(successes.load(), kThreads * kIncrPerThread);
  EXPECT_EQ(p->child[0].load()->key,
            static_cast<Key>(kThreads * kIncrPerThread));
  free_node(p->child[0].load());
  free_node(p);
  free_node(right);
  Ebr::drain();
}

// Two disjoint SCXs on different subtrees must both succeed without
// interference.
TEST(Scx, DisjointScxesDoNotConflict) {
  EbrGuard g;
  Node* a = leaf(1);
  Node* b = leaf(2);
  Node* c = leaf(6);
  Node* d = leaf(7);
  Node* pl = internal(2, a, b);
  Node* pr = internal(7, c, d);
  Node* top = internal(5, pl, pr);

  LlxSnap pls, as;
  ASSERT_EQ(llx(pl, &pls), LlxStatus::kOk);
  ASSERT_EQ(llx(a, &as), LlxStatus::kOk);

  LlxSnap prs, cs;
  ASSERT_EQ(llx(pr, &prs), LlxStatus::kOk);
  ASSERT_EQ(llx(c, &cs), LlxStatus::kOk);

  Node* a2 = leaf(0);
  LlxSnap v1[2] = {pls, as};
  EXPECT_TRUE(scx(v1, 2, 1, &pl->child[0], a2));

  Node* c2 = leaf(5);
  LlxSnap v2[2] = {prs, cs};
  EXPECT_TRUE(scx(v2, 2, 1, &pr->child[0], c2));

  EXPECT_EQ(pl->child[0].load(), a2);
  EXPECT_EQ(pr->child[0].load(), c2);
  for (Node* n : {top, pl, pr, a, b, c, d, a2, c2}) free_node(n);
}

}  // namespace
}  // namespace cbat
