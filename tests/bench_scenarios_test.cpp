// Tests for the scenario registry: every paper scenario is listed, lookup
// works, and dispatching a scenario actually runs benchmark cells and
// produces JSON the shared schema promises.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/args.h"
#include "bench/scenarios.h"
#include "mini_json.h"

namespace cbat::bench {
namespace {

using cbat::testjson::parse;
using cbat::testjson::Value;

Args make_args(std::vector<std::string> words) {
  static std::vector<std::string> storage;  // keeps c_str()s alive
  storage = std::move(words);
  static std::vector<char*> argv;
  argv.clear();
  static char name[] = "test";
  argv.push_back(name);
  for (auto& w : storage) argv.push_back(w.data());
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(ScenarioRegistry, ListsAllPaperScenarios) {
  const std::vector<std::string> expected = {
      "fig5a",  "fig5b",  "fig5c",  "fig6",
      "fig7",   "fig8",   "fig9",   "fig10",
      "table3", "shard_sweep", "shard_hotspot", "combine_sweep",
      "snapshot_consistency", "micro_components", "micro_llxscx"};
  const auto names = ScenarioRegistry::instance().names();
  // >= rather than ==: other tests may add scenarios, and gtest order is
  // not guaranteed under --gtest_shuffle.
  EXPECT_GE(names.size(), expected.size());
  for (const auto& e : expected) {
    EXPECT_NE(std::find(names.begin(), names.end(), e), names.end()) << e;
  }
  for (const auto& s : ScenarioRegistry::instance().all()) {
    EXPECT_FALSE(s.title.empty()) << s.name;
    EXPECT_TRUE(static_cast<bool>(s.run)) << s.name;
  }
}

TEST(ScenarioRegistry, FindIsExactAndUnknownIsNull) {
  EXPECT_NE(ScenarioRegistry::instance().find("fig8"), nullptr);
  EXPECT_NE(ScenarioRegistry::instance().find("table3"), nullptr);
  EXPECT_EQ(ScenarioRegistry::instance().find("fig11"), nullptr);
  EXPECT_EQ(ScenarioRegistry::instance().find("FIG8"), nullptr);
  EXPECT_EQ(ScenarioRegistry::instance().find(""), nullptr);
}

TEST(ScenarioRegistry, UserScenariosCanBeRegistered) {
  ScenarioRegistry::instance().add(
      {"test_noop", "no-op scenario for the registry test",
       [](ScenarioContext&) {}});
  const Scenario* s = ScenarioRegistry::instance().find("test_noop");
  ASSERT_NE(s, nullptr);
  ScenarioOutput out;
  Args args = make_args({});
  ScenarioContext ctx{&args, &out};
  s->run(ctx);
  EXPECT_TRUE(out.runs.empty());
}

TEST(ArgsScenarioFlags, StringListAndModes) {
  Args a = make_args({"--scenario", "fig5a", "--scenario", "fig8,table3"});
  const auto list = a.get_str_list("--scenario");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], "fig5a");
  EXPECT_EQ(list[1], "fig8");
  EXPECT_EQ(list[2], "table3");
  EXPECT_EQ(a.get_str("--json", ""), "");
  EXPECT_STREQ(a.mode_name(), "default");

  Args smoke = make_args({"--smoke"});
  EXPECT_TRUE(smoke.smoke());
  EXPECT_STREQ(smoke.mode_name(), "smoke");

  Args both = make_args({"--smoke", "--full"});
  EXPECT_FALSE(both.smoke());  // --full wins
  EXPECT_STREQ(both.mode_name(), "full");

  Args eq = make_args({"--json=/tmp/x.json"});
  EXPECT_EQ(eq.get_str("--json", ""), "/tmp/x.json");
}

// Dispatch test: run the cheapest real scenario end to end with tiny
// overrides and check the output is fully populated.
TEST(ScenarioDispatch, Fig5aProducesRunsAndCells) {
  const Scenario* s = ScenarioRegistry::instance().find("fig5a");
  ASSERT_NE(s, nullptr);
  Args args = make_args(
      {"--smoke", "--ms", "5", "--threads", "1", "--maxkey", "2000"});
  ScenarioOutput out;
  ScenarioContext ctx{&args, &out};
  s->run(ctx);

  // 4 structures x 1 thread count.
  ASSERT_EQ(out.runs.size(), 4u);
  ASSERT_EQ(out.cells.size(), 4u);
  std::vector<std::string> series;
  for (const auto& r : out.runs) {
    EXPECT_TRUE(r.has_result);
    EXPECT_EQ(r.x_label, "threads");
    EXPECT_EQ(r.x, "1");
    EXPECT_EQ(r.series, r.result.structure);
    EXPECT_GT(r.result.total_ops, 0) << r.series;
    EXPECT_GT(r.result.seconds, 0) << r.series;
    EXPECT_EQ(r.result.config.threads, 1);
    EXPECT_EQ(r.result.config.workload.max_key, 2000);
    series.push_back(r.series);
  }
  for (const char* want : {"BAT", "BAT-Del", "BAT-EagerDel", "FR-BST"}) {
    EXPECT_NE(std::find(series.begin(), series.end(), want), series.end())
        << want;
  }
}

TEST(ScenarioDispatch, JsonDocumentContainsScenarioRuns) {
  const Scenario* s = ScenarioRegistry::instance().find("fig5a");
  ASSERT_NE(s, nullptr);
  Args args = make_args(
      {"--smoke", "--ms", "5", "--threads", "1", "--maxkey", "2000"});
  ScenarioOutput out;
  ScenarioContext ctx{&args, &out};
  s->run(ctx);

  const std::string doc =
      bench_json_document({{"fig5a", std::move(out)}}, args);
  const auto v = parse(doc);
  EXPECT_EQ(v->at("mode").str, "smoke");
  const Value& sc = v->at("scenarios").item(0);
  EXPECT_EQ(sc.at("name").str, "fig5a");
  ASSERT_EQ(sc.at("runs").arr.size(), 4u);
  for (const auto& run : sc.at("runs").arr) {
    EXPECT_GT(run->at("throughput_ops_per_sec").num, 0);
    EXPECT_GE(run->at("latency_ns").at("update").at("p50").num, 0);
    EXPECT_GE(run->at("latency_ns").at("update").at("p99").num,
              run->at("latency_ns").at("update").at("p50").num);
    // Every measured run reports its composite-query guarantee; fig5a
    // runs single trees, which are linearizable.
    EXPECT_EQ(run->at("consistency").str, "linearizable");
  }
}

}  // namespace
}  // namespace cbat::bench
