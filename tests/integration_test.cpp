// Cross-structure integration tests: every tree in the repository must
// implement the exact same abstract set, so a single random operation
// sequence applied to all of them (plus a std::set oracle) must produce
// identical results, operation by operation.  This is the repository-level
// equivalence check behind Table 1.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "bench/adapters.h"
#include "core/bat_tree.h"
#include "frbst/frbst.h"
#include "util/random.h"

namespace cbat {
namespace {

using bench::SetAdapter;
using bench::make_structure;

const std::vector<std::string>& names() {
  static const std::vector<std::string> v = {
      "BAT",     "BAT-Del",     "BAT-EagerDel",      "FR-BST",
      "VcasBST", "VerlibBTree", "BundledCitrusTree", "Sharded16-BAT"};
  return v;
}

TEST(Integration, AllStructuresAgreeOnRandomSequence) {
  std::vector<std::unique_ptr<SetAdapter>> sets;
  for (const auto& n : names()) sets.push_back(make_structure(n));
  std::set<Key> oracle;
  Xoshiro256 rng(2024);
  for (int i = 0; i < 4000; ++i) {
    const Key k = static_cast<Key>(rng.below(500));
    switch (rng.below(5)) {
      case 0: {
        const bool want = oracle.insert(k).second;
        for (auto& s : sets) {
          ASSERT_EQ(s->insert(k), want) << s->name() << " insert " << k;
        }
        break;
      }
      case 1: {
        const bool want = oracle.erase(k) > 0;
        for (auto& s : sets) {
          ASSERT_EQ(s->erase(k), want) << s->name() << " erase " << k;
        }
        break;
      }
      case 2: {
        const bool want = oracle.count(k) > 0;
        for (auto& s : sets) {
          ASSERT_EQ(s->contains(k), want) << s->name() << " contains " << k;
        }
        break;
      }
      case 3: {
        const auto want = static_cast<std::int64_t>(
            std::distance(oracle.begin(), oracle.upper_bound(k)));
        for (auto& s : sets) {
          ASSERT_EQ(s->rank(k), want) << s->name() << " rank " << k;
        }
        break;
      }
      default: {
        const Key hi = k + static_cast<Key>(rng.below(100));
        const auto want = static_cast<std::int64_t>(
            std::distance(oracle.lower_bound(k), oracle.upper_bound(hi)));
        for (auto& s : sets) {
          ASSERT_EQ(s->range_count(k, hi), want)
              << s->name() << " count [" << k << "," << hi << "]";
        }
      }
    }
  }
  for (auto& s : sets) {
    EXPECT_EQ(s->size(), static_cast<std::int64_t>(oracle.size()))
        << s->name();
  }
}

// Concurrent smoke across all structures at once: disjoint per-thread key
// blocks keep results deterministic per structure.
TEST(Integration, AllStructuresSurviveConcurrencySideBySide) {
  for (const auto& n : names()) {
    auto set = make_structure(n);
    constexpr int kThreads = 4;
    constexpr Key kPer = 800;
    std::atomic<bool> failed{false};
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([&, t] {
        const Key base = t * kPer;
        for (Key k = base; k < base + kPer; ++k) {
          if (!set->insert(k)) failed = true;
        }
        for (Key k = base; k < base + kPer; k += 2) {
          if (!set->erase(k)) failed = true;
        }
      });
    }
    for (auto& t : ts) t.join();
    EXPECT_FALSE(failed.load()) << n;
    EXPECT_EQ(set->size(), kThreads * kPer / 2) << n;
    EXPECT_EQ(set->range_count(0, kThreads * kPer), kThreads * kPer / 2)
        << n;
  }
}

// The augmented trees must answer order statistics identically on the same
// content — including after structural churn that exercises rotations in
// BAT but not in FR-BST.
TEST(Integration, AugmentedTreesAgreeOnOrderStatistics) {
  Bat<SizeAug> bat;
  BatEagerDel<SizeAug> eager;
  FrBst<SizeAug> fr;
  Xoshiro256 rng(5);
  for (int i = 0; i < 5000; ++i) {
    const Key k = static_cast<Key>(rng.below(3000));
    if (rng.below(3) == 0) {
      bat.erase(k);
      eager.erase(k);
      fr.erase(k);
    } else {
      bat.insert(k);
      eager.insert(k);
      fr.insert(k);
    }
  }
  ASSERT_EQ(bat.size(), fr.size());
  ASSERT_EQ(bat.size(), eager.size());
  for (std::int64_t i = 1; i <= bat.size(); i += 97) {
    ASSERT_EQ(bat.select(i), fr.select(i)) << i;
    ASSERT_EQ(bat.select(i), eager.select(i)) << i;
  }
  for (Key k = 0; k < 3000; k += 131) {
    ASSERT_EQ(bat.rank(k), fr.rank(k)) << k;
    ASSERT_EQ(bat.rank(k), eager.rank(k)) << k;
    ASSERT_EQ(bat.floor(k), eager.floor(k)) << k;
  }
}

// Balance contrast: identical sorted insertions, radically different
// heights — the repository-level restatement of Figure 5b's cause.
TEST(Integration, BalanceContrastOnSortedKeys) {
  BatEagerDel<SizeAug> bat;
  FrBst<SizeAug> fr;
  constexpr Key kN = 2048;
  for (Key k = 0; k < kN; ++k) {
    bat.insert(k);
    fr.insert(k);
  }
  const auto report = bat.node_tree().check_invariants();
  EXPECT_TRUE(report.structurally_ok());
  EXPECT_LE(report.height, 2 * 12 + 4);       // logarithmic
  EXPECT_GE(fr.height_slow(), static_cast<int>(kN / 2));  // linear
  EXPECT_EQ(bat.size(), fr.size());
}

}  // namespace
}  // namespace cbat
