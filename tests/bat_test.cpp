// Tests for BAT (plain variant): sequential semantics, order-statistic
// queries, snapshot consistency, version-tree invariants, concurrency.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "core/bat_tree.h"
#include "util/random.h"

namespace cbat {
namespace {

using Tree = Bat<SizeAug>;

TEST(Bat, EmptyTreeQueries) {
  Tree t;
  EXPECT_EQ(t.size(), 0);
  EXPECT_FALSE(t.contains(1));
  EXPECT_EQ(t.rank(100), 0);
  EXPECT_EQ(t.select(1), std::nullopt);
  EXPECT_EQ(t.range_count(0, 1000), 0);
}

TEST(Bat, InsertContainsEraseBasics) {
  Tree t;
  EXPECT_TRUE(t.insert(10));
  EXPECT_TRUE(t.insert(20));
  EXPECT_FALSE(t.insert(10));
  EXPECT_TRUE(t.contains(10));
  EXPECT_FALSE(t.contains(15));
  EXPECT_EQ(t.size(), 2);
  EXPECT_TRUE(t.erase(10));
  EXPECT_FALSE(t.erase(10));
  EXPECT_FALSE(t.contains(10));
  EXPECT_EQ(t.size(), 1);
}

TEST(Bat, RankSelectRangeOnKnownSet) {
  Tree t;
  // keys 10, 20, ..., 1000
  for (Key k = 10; k <= 1000; k += 10) ASSERT_TRUE(t.insert(k));
  EXPECT_EQ(t.size(), 100);
  EXPECT_EQ(t.rank(9), 0);
  EXPECT_EQ(t.rank(10), 1);
  EXPECT_EQ(t.rank(15), 1);
  EXPECT_EQ(t.rank(1000), 100);
  EXPECT_EQ(t.rank(99999), 100);
  for (std::int64_t i = 1; i <= 100; ++i) {
    ASSERT_EQ(t.select(i), std::make_optional<Key>(i * 10)) << i;
  }
  EXPECT_EQ(t.select(0), std::nullopt);
  EXPECT_EQ(t.select(101), std::nullopt);
  EXPECT_EQ(t.range_count(10, 1000), 100);
  EXPECT_EQ(t.range_count(15, 25), 1);
  EXPECT_EQ(t.range_count(10, 10), 1);
  EXPECT_EQ(t.range_count(11, 19), 0);
  EXPECT_EQ(t.range_count(995, 2000), 1);
  EXPECT_EQ(t.range_count(500, 100), 0);  // inverted range
}

TEST(Bat, RangeCollectOrdered) {
  Tree t;
  std::vector<Key> keys = {5, 1, 9, 3, 7, 2, 8};
  for (Key k : keys) t.insert(k);
  auto got = t.range_collect(2, 8);
  std::vector<Key> want = {2, 3, 5, 7, 8};
  EXPECT_EQ(got, want);
  auto limited = t.range_collect(1, 9, 3);
  EXPECT_EQ(limited.size(), 3u);
  EXPECT_TRUE(std::is_sorted(limited.begin(), limited.end()));
}

TEST(Bat, MatchesStdSetWithQueriesSequential) {
  Tree t;
  std::set<Key> ref;
  Xoshiro256 rng(99);
  for (int i = 0; i < 15000; ++i) {
    const Key k = static_cast<Key>(rng.below(400));
    switch (rng.below(5)) {
      case 0:
        ASSERT_EQ(t.insert(k), ref.insert(k).second);
        break;
      case 1:
        ASSERT_EQ(t.erase(k), ref.erase(k) > 0);
        break;
      case 2:
        ASSERT_EQ(t.contains(k), ref.count(k) > 0);
        break;
      case 3: {
        // rank(k) == number of ref elements <= k
        const auto want = static_cast<std::int64_t>(
            std::distance(ref.begin(), ref.upper_bound(k)));
        ASSERT_EQ(t.rank(k), want) << "rank " << k;
        break;
      }
      default: {
        const Key hi = k + static_cast<Key>(rng.below(50));
        const auto want = static_cast<std::int64_t>(std::distance(
            ref.lower_bound(k), ref.upper_bound(hi)));
        ASSERT_EQ(t.range_count(k, hi), want) << "count " << k << " " << hi;
      }
    }
    if (i % 1000 == 0) {
      ASSERT_EQ(t.size(), static_cast<std::int64_t>(ref.size()));
    }
  }
}

TEST(Bat, VersionTreeSatisfiesInvariant24) {
  Tree t;
  Xoshiro256 rng(3);
  for (int i = 0; i < 3000; ++i) t.insert(static_cast<Key>(rng.below(5000)));
  for (int i = 0; i < 1000; ++i) t.erase(static_cast<Key>(rng.below(5000)));
  EbrGuard g;
  const auto* v = t.root_version_unsafe();
  EXPECT_TRUE(version_tree_valid<SizeAug>(v, std::numeric_limits<Key>::min(),
                                          kInf2));
}

TEST(Bat, SnapshotIsImmutableUnderUpdates) {
  Tree t;
  for (Key k = 0; k < 100; ++k) t.insert(k);
  typename Tree::Snapshot snap(t);
  EXPECT_EQ(snap.size(), 100);
  // Mutate heavily after the snapshot.
  for (Key k = 0; k < 100; k += 2) t.erase(k);
  for (Key k = 200; k < 300; ++k) t.insert(k);
  // Snapshot still answers from the frozen version tree.
  EXPECT_EQ(snap.size(), 100);
  EXPECT_EQ(snap.rank(99), 100);
  EXPECT_TRUE(snap.contains(42));
  EXPECT_FALSE(snap.contains(250));
  EXPECT_EQ(t.size(), 150);
}

TEST(Bat, SnapshotQueriesMutuallyConsistent) {
  Tree t;
  for (Key k = 1; k <= 500; ++k) t.insert(k * 3);
  typename Tree::Snapshot snap(t);
  const auto n = snap.size();
  for (std::int64_t i = 1; i <= n; i += 37) {
    const auto k = snap.select(i);
    ASSERT_TRUE(k.has_value());
    EXPECT_EQ(snap.rank(*k), i);  // select and rank are inverses
  }
  EXPECT_EQ(snap.range_count(3, 1500), n);
}

TEST(Bat, GenericAugmentationSum) {
  BatTree<SizeSumAug> t;
  std::int64_t want_sum = 0;
  for (Key k = 1; k <= 100; ++k) {
    t.insert(k);
    want_sum += k;
  }
  const auto whole = t.range_aggregate(1, 100);
  EXPECT_EQ(whole.first, 100);        // size part
  EXPECT_EQ(whole.second, want_sum);  // sum part
  const auto part = t.range_aggregate(10, 20);
  EXPECT_EQ(part.first, 11);
  EXPECT_EQ(part.second, (10 + 20) * 11 / 2);
  t.erase(15);
  const auto after = t.range_aggregate(10, 20);
  EXPECT_EQ(after.first, 10);
  EXPECT_EQ(after.second, (10 + 20) * 11 / 2 - 15);
}

TEST(Bat, GenericAugmentationMinMax) {
  BatTree<MinMaxAug> t;
  for (Key k : {50, 10, 90, 30, 70}) t.insert(k);
  const auto mm = t.range_aggregate(20, 80);
  EXPECT_EQ(mm.min, 30);
  EXPECT_EQ(mm.max, 70);
  const auto all = t.range_aggregate(std::numeric_limits<Key>::min(),
                                     kMaxUserKey);
  EXPECT_EQ(all.min, 10);
  EXPECT_EQ(all.max, 90);
}

// --- concurrency -----------------------------------------------------------

TEST(BatConcurrent, DisjointRangesDeterministic) {
  Tree t;
  constexpr int kThreads = 8;
  constexpr Key kPer = 1500;
  std::atomic<bool> failed{false};
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&, i] {
      const Key base = i * kPer;
      for (Key k = base; k < base + kPer; ++k) {
        if (!t.insert(k)) failed = true;
      }
      for (Key k = base + 1; k < base + kPer; k += 2) {
        if (!t.erase(k)) failed = true;
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(t.size(), kThreads * kPer / 2);
  // Version tree agrees with node tree after quiescence.
  EbrGuard g;
  EXPECT_TRUE(version_tree_valid<SizeAug>(t.root_version_unsafe(),
                                          std::numeric_limits<Key>::min(),
                                          kInf2));
  const auto report = t.node_tree().check_invariants();
  EXPECT_TRUE(report.structurally_ok());
  EXPECT_EQ(report.real_keys, static_cast<std::size_t>(kThreads * kPer / 2));
}

// Queries running concurrently with updates must always see consistent
// snapshots: size/rank/select must agree with each other within a snapshot.
TEST(BatConcurrent, QueriesSeeConsistentSnapshots) {
  Tree t;
  for (Key k = 0; k < 2000; k += 2) t.insert(k);  // evens
  std::atomic<bool> stop{false};
  std::atomic<long> bad{0};

  std::thread updater([&] {
    Xoshiro256 rng(1);
    while (!stop.load()) {
      const Key k = static_cast<Key>(rng.below(1000)) * 2 + 1;  // odds
      if (rng.below(2) == 0) {
        t.insert(k);
      } else {
        t.erase(k);
      }
    }
  });

  std::thread querier([&] {
    for (int i = 0; i < 3000; ++i) {
      typename Tree::Snapshot snap(t);
      const auto n = snap.size();
      // Every key (evens 0..1998, odds up to 1999) is <= 1999, so the
      // whole-range rank is exactly the snapshot size.  (This used to
      // probe 1998, which undercounts whenever the updater's largest odd
      // key 1999 is present in the snapshot.)
      if (snap.rank(1999) != n) bad.fetch_add(1);
      if (n > 0) {
        const auto k = snap.select(n);
        if (!k.has_value() || snap.rank(*k) != n) bad.fetch_add(1);
      }
      // Evens never disappear.
      if (!snap.contains(1000)) bad.fetch_add(1);
      if (snap.range_count(0, 1999) != n) bad.fetch_add(1);
    }
  });

  querier.join();
  stop = true;
  updater.join();
  EXPECT_EQ(bad.load(), 0);
}

// Mixed random workload; afterwards version tree == node tree.
TEST(BatConcurrent, VersionTreeMatchesNodeTreeAfterQuiescence) {
  Tree t;
  constexpr int kThreads = 6;
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&, i] {
      Xoshiro256 rng(500 + i);
      for (int op = 0; op < 12000; ++op) {
        const Key k = static_cast<Key>(rng.below(300));
        if (rng.below(2) == 0) {
          t.insert(k);
        } else {
          t.erase(k);
        }
      }
    });
  }
  for (auto& th : ts) th.join();

  // Collect keys from the node tree (ground truth) and compare with the
  // version-tree snapshot.
  const auto snap_keys = t.range_collect(std::numeric_limits<Key>::min(),
                                         kMaxUserKey);
  std::set<Key> node_keys;
  for (Key k = 0; k < 300; ++k) {
    if (t.node_tree().contains(k)) node_keys.insert(k);
  }
  EXPECT_EQ(std::set<Key>(snap_keys.begin(), snap_keys.end()), node_keys);
  EXPECT_EQ(t.size(), static_cast<std::int64_t>(node_keys.size()));
  EbrGuard g;
  EXPECT_TRUE(version_tree_valid<SizeAug>(t.root_version_unsafe(),
                                          std::numeric_limits<Key>::min(),
                                          kInf2));
}

// Same-key contention: insert/erase successes must alternate.
TEST(BatConcurrent, SameKeyLinearizable) {
  Tree t;
  constexpr int kThreads = 8;
  std::atomic<long> ins{0}, del{0};
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&, i] {
      Xoshiro256 rng(i);
      for (int op = 0; op < 3000; ++op) {
        if (rng.below(2) == 0) {
          if (t.insert(5)) ins.fetch_add(1);
        } else {
          if (t.erase(5)) del.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  const long diff = ins.load() - del.load();
  EXPECT_TRUE(diff == 0 || diff == 1);
  EXPECT_EQ(t.size(), diff);
  EXPECT_EQ(t.contains(5), diff == 1);
}

}  // namespace
}  // namespace cbat
