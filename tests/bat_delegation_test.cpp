// Tests for the delegation variants BAT-Del and BAT-EagerDel (paper §5,
// Appendix A).  The variants must be observationally identical to plain BAT;
// these tests re-run the semantic suites on both and additionally exercise
// the delegation machinery (chains, timeouts) under contention.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "core/bat_tree.h"
#include "util/random.h"

namespace cbat {
namespace {

template <class T>
class BatVariant : public ::testing::Test {};

using Variants =
    ::testing::Types<Bat<SizeAug>, BatDel<SizeAug>, BatEagerDel<SizeAug>>;
TYPED_TEST_SUITE(BatVariant, Variants);

TYPED_TEST(BatVariant, SequentialSemantics) {
  TypeParam t;
  std::set<Key> ref;
  Xoshiro256 rng(77);
  for (int i = 0; i < 8000; ++i) {
    const Key k = static_cast<Key>(rng.below(300));
    switch (rng.below(4)) {
      case 0:
        ASSERT_EQ(t.insert(k), ref.insert(k).second);
        break;
      case 1:
        ASSERT_EQ(t.erase(k), ref.erase(k) > 0);
        break;
      case 2:
        ASSERT_EQ(t.contains(k), ref.count(k) > 0);
        break;
      default:
        ASSERT_EQ(t.rank(k), static_cast<std::int64_t>(std::distance(
                                 ref.begin(), ref.upper_bound(k))));
    }
  }
  ASSERT_EQ(t.size(), static_cast<std::int64_t>(ref.size()));
}

TYPED_TEST(BatVariant, ConcurrentDisjointRanges) {
  TypeParam t;
  constexpr int kThreads = 8;
  constexpr Key kPer = 1200;
  std::atomic<bool> failed{false};
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&, i] {
      const Key base = i * kPer;
      for (Key k = base; k < base + kPer; ++k) {
        if (!t.insert(k)) failed = true;
      }
      for (Key k = base; k < base + kPer; k += 3) {
        if (!t.erase(k)) failed = true;
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_FALSE(failed.load());
  std::int64_t expect = 0;
  for (Key k = 0; k < kPer; ++k) {
    if (k % 3 != 0) ++expect;
  }
  EXPECT_EQ(t.size(), expect * kThreads);
  EbrGuard g;
  EXPECT_TRUE(version_tree_valid<SizeAug>(t.root_version_unsafe(),
                                          std::numeric_limits<Key>::min(),
                                          kInf2));
}

// Heavy contention on a tiny key range: this is the regime where delegation
// actually fires (many Propagates fighting over the same root path).
TYPED_TEST(BatVariant, HighContentionTinyRange) {
  TypeParam t;
  constexpr int kThreads = 8;
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&, i] {
      Xoshiro256 rng(9000 + i);
      for (int op = 0; op < 6000; ++op) {
        const Key k = static_cast<Key>(rng.below(8));
        if (rng.below(2) == 0) {
          t.insert(k);
        } else {
          t.erase(k);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  // Quiescent consistency: node tree and version tree agree exactly.
  std::set<Key> node_keys;
  for (Key k = 0; k < 8; ++k) {
    if (t.node_tree().contains(k)) node_keys.insert(k);
  }
  const auto vkeys = t.range_collect(0, 8);
  EXPECT_EQ(std::set<Key>(vkeys.begin(), vkeys.end()), node_keys);
  EXPECT_EQ(t.size(), static_cast<std::int64_t>(node_keys.size()));
}

// Snapshot consistency under concurrent churn, per variant.
TYPED_TEST(BatVariant, SnapshotConsistencyUnderChurn) {
  TypeParam t;
  for (Key k = 0; k < 1000; k += 2) t.insert(k);
  std::atomic<bool> stop{false};
  std::atomic<long> bad{0};
  std::vector<std::thread> updaters;
  for (int i = 0; i < 3; ++i) {
    updaters.emplace_back([&, i] {
      Xoshiro256 rng(i);
      while (!stop.load()) {
        const Key k = static_cast<Key>(rng.below(500)) * 2 + 1;
        if (rng.below(2) == 0) {
          t.insert(k);
        } else {
          t.erase(k);
        }
      }
    });
  }
  for (int q = 0; q < 1500; ++q) {
    typename TypeParam::Snapshot snap(t);
    const auto n = snap.size();
    if (snap.range_count(0, 999) != n) bad.fetch_add(1);
    if (snap.rank(999) != n) bad.fetch_add(1);
    if (!snap.contains(500)) bad.fetch_add(1);
  }
  stop = true;
  for (auto& th : updaters) th.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(Delegation, DelegationsActuallyHappenUnderContention) {
  Counters::reset();
  BatEagerDel<SizeAug> t;
  constexpr int kThreads = 8;
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&, i] {
      Xoshiro256 rng(i);
      for (int op = 0; op < 8000; ++op) {
        const Key k = static_cast<Key>(rng.below(64));
        if (rng.below(2) == 0) {
          t.insert(k);
        } else {
          t.erase(k);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  const auto snap = Counters::snapshot();
  // The churn must stay correct regardless of whether delegation fired.
  std::set<Key> node_keys;
  for (Key k = 0; k < 64; ++k) {
    if (t.node_tree().contains(k)) node_keys.insert(k);
  }
  EXPECT_EQ(t.size(), static_cast<std::int64_t>(node_keys.size()));
  Counters::reset();
  // Delegation fires on a refresh CAS conflict, which needs two Propagates
  // running at the same instant.  On a single hardware thread the OS
  // timeslices the workers, refresh windows essentially never overlap
  // (observed: ~1 failed CAS per 400k), and the assertion below would be
  // vacuous either way — skip rather than flake.
  if (std::thread::hardware_concurrency() < 2) {
    GTEST_SKIP() << "single hardware thread: refresh conflicts cannot occur";
  }
  // With 8 threads hammering 64 keys there must be refresh conflicts, and
  // EagerDel delegates on the first conflict.
  EXPECT_GT(snap[Counter::kDelegations], 0u)
      << "contention did not trigger delegation";
}

TEST(Delegation, TinyTimeoutStillCorrect) {
  // Force timeouts to fire constantly: the non-blocking fallback (resume
  // propagating yourself) must preserve correctness.
  BatDel<SizeAug>::set_delegation_timeout(8);
  BatEagerDel<SizeAug>::set_delegation_timeout(8);
  {
    BatEagerDel<SizeAug> t;
    constexpr int kThreads = 6;
    std::vector<std::thread> ts;
    std::atomic<bool> failed{false};
    for (int i = 0; i < kThreads; ++i) {
      ts.emplace_back([&, i] {
        const Key base = i * 500;
        for (Key k = base; k < base + 500; ++k) {
          if (!t.insert(k)) failed = true;
        }
      });
    }
    for (auto& th : ts) th.join();
    EXPECT_FALSE(failed.load());
    EXPECT_EQ(t.size(), kThreads * 500);
  }
  BatDel<SizeAug>::set_delegation_timeout(1u << 16);
  BatEagerDel<SizeAug>::set_delegation_timeout(1u << 16);
}

TEST(Delegation, BlockingModeCompletes) {
  // Timeout disabled: pure blocking delegation as in the paper's Fig. 13/14.
  BatEagerDel<SizeAug>::set_delegation_timeout(0);
  {
    BatEagerDel<SizeAug> t;
    constexpr int kThreads = 4;
    std::vector<std::thread> ts;
    for (int i = 0; i < kThreads; ++i) {
      ts.emplace_back([&, i] {
        Xoshiro256 rng(i);
        for (int op = 0; op < 4000; ++op) {
          const Key k = static_cast<Key>(rng.below(32));
          if (rng.below(2) == 0) {
            t.insert(k);
          } else {
            t.erase(k);
          }
        }
      });
    }
    for (auto& th : ts) th.join();
    EbrGuard g;
    EXPECT_TRUE(version_tree_valid<SizeAug>(t.root_version_unsafe(),
                                            std::numeric_limits<Key>::min(),
                                            kInf2));
  }
  BatEagerDel<SizeAug>::set_delegation_timeout(1u << 16);
}

}  // namespace
}  // namespace cbat
