// Tests for epoch-based reclamation and refcounted descriptors.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "reclamation/descriptor.h"
#include "reclamation/ebr.h"
#include "util/counters.h"

namespace cbat {
namespace {

std::atomic<int> g_freed{0};

struct Tracked {
  explicit Tracked(int v) : value(v) {}
  ~Tracked() { g_freed.fetch_add(1); }
  int value;
};

TEST(Ebr, RetireEventuallyFrees) {
  g_freed = 0;
  {
    EbrGuard g;
    ebr_retire(new Tracked(1));
    ebr_retire(new Tracked(2));
  }
  Ebr::drain();
  EXPECT_EQ(g_freed.load(), 2);
}

TEST(Ebr, GuardDelaysReclamation) {
  g_freed = 0;
  auto* t = new Tracked(7);
  std::atomic<bool> reader_ready{false};
  std::atomic<bool> retired{false};
  std::atomic<bool> release_reader{false};

  std::thread reader([&] {
    EbrGuard g;
    reader_ready = true;  // guard is open *before* the retire below
    while (!retired.load()) std::this_thread::yield();
    // The reader entered its epoch before the retire completed, so the
    // object must not be freed while this guard is open, no matter how many
    // retires other threads push through.
    for (int i = 0; i < 2000; ++i) {
      EXPECT_EQ(t->value, 7);  // would be use-after-free if EBR misbehaved
      if (i % 100 == 0) std::this_thread::yield();
    }
    while (!release_reader.load()) std::this_thread::yield();
  });

  while (!reader_ready.load()) std::this_thread::yield();
  {
    EbrGuard g;
    ebr_retire(t);
    retired = true;
  }
  // Push many retires to force epoch-advance attempts while reader is live.
  for (int i = 0; i < 5000; ++i) {
    EbrGuard g;
    ebr_retire(new Tracked(0));
  }
  EXPECT_EQ(t->value, 7);
  release_reader = true;
  reader.join();
  Ebr::drain();
  EXPECT_EQ(g_freed.load(), 5001);
}

// ISSUE 9: limbo-pressure guardrail.  A reader parked in an old epoch
// stalls advancement, so limbo bags grow; once a thread's local bags
// cross the high-water mark, each further retire must register a
// pressure event and force an advance attempt instead of growing limbo
// silently.
TEST(Ebr, LimboPressureEventsFireWhenReclamationStalls) {
  g_freed = 0;
  const std::int64_t saved = ebr_limbo_high_water();
  set_ebr_limbo_high_water(8);

  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread pinner([&] {
    EbrGuard g;
    pinned = true;
    while (!release.load()) std::this_thread::yield();
  });
  while (!pinned.load()) std::this_thread::yield();

  const auto before = Counters::snapshot();
  for (int i = 0; i < 100; ++i) {
    EbrGuard g;
    ebr_retire(new Tracked(0));
  }
  const auto after = Counters::snapshot();
  EXPECT_GT(after[Counter::kEbrPressureEvents],
            before[Counter::kEbrPressureEvents])
      << "retires past the mark must register pressure";

  release = true;
  pinner.join();
  set_ebr_limbo_high_water(saved);
  Ebr::drain();
  EXPECT_EQ(g_freed.load(), 100);
}

TEST(Ebr, DrainHandlesChainedRetires) {
  // A deleter that retires another object (node -> final version in §6).
  g_freed = 0;
  struct Outer {
    Tracked* inner;
    ~Outer() { ebr_retire(inner); }
  };
  {
    EbrGuard g;
    auto* o = new Outer{new Tracked(3)};
    Ebr::retire(o, [](void* p) { delete static_cast<Outer*>(p); });
  }
  Ebr::drain();
  EXPECT_EQ(g_freed.load(), 1);
}

TEST(Ebr, ReentrantGuards) {
  g_freed = 0;
  {
    EbrGuard a;
    {
      EbrGuard b;
      ebr_retire(new Tracked(0));
    }
    // still protected by `a`
  }
  Ebr::drain();
  EXPECT_EQ(g_freed.load(), 1);
}

TEST(Ebr, ManyThreadsRetireConcurrently) {
  g_freed = 0;
  constexpr int kThreads = 6;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([] {
      for (int j = 0; j < kPerThread; ++j) {
        EbrGuard g;
        ebr_retire(new Tracked(j));
      }
    });
  }
  for (auto& t : ts) t.join();
  Ebr::drain();
  EXPECT_EQ(g_freed.load(), kThreads * kPerThread);
  EXPECT_EQ(Ebr::pending(), 0u);
}

// Descriptors are pool-recycled, so destructors cannot be used to observe
// frees; instead we observe the refcount while the creator credit provably
// keeps the object alive, and rely on ASan runs to flag double-frees.
struct PlainDesc : RefCountedDescriptor {};

TEST(Descriptor, CreatorCreditKeepsAlive) {
  Ebr::drain();
  auto* d = pool_new<PlainDesc>();
  {
    EbrGuard g;
    descriptor_ref(d);           // an install
    descriptor_retire_unref(d);  // the install is replaced (deferred)
  }
  Ebr::drain();  // deferred unref has executed by now
  // Still alive: only the creator credit remains.
  EXPECT_EQ(d->refs.load(), 1);
  {
    EbrGuard g;
    descriptor_retire_unref(d);  // creator drops its credit
  }
  EXPECT_GT(Ebr::pending(), 0u);  // free is queued, not immediate
  Ebr::drain();
  EXPECT_EQ(Ebr::pending(), 0u);
}

TEST(Descriptor, StaticDescriptorsNeverFreed) {
  static PlainDesc stat;
  stat.is_static = true;
  {
    EbrGuard g;
    descriptor_ref(&stat);
    descriptor_unref(&stat);
    descriptor_retire_unref(&stat);
    descriptor_unref(&stat);
  }
  Ebr::drain();
  EXPECT_EQ(stat.refs.load(), 1);  // untouched: statics are skipped entirely
}

TEST(Descriptor, ConcurrentRefUnrefIsBalanced) {
  auto* d = pool_new<PlainDesc>();
  constexpr int kThreads = 4;
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([d] {
      for (int j = 0; j < 5000; ++j) {
        EbrGuard g;
        descriptor_ref(d);
        descriptor_retire_unref(d);
      }
    });
  }
  for (auto& t : ts) t.join();
  Ebr::drain();
  EXPECT_EQ(d->refs.load(), 1);  // perfectly balanced: creator credit left
  {
    EbrGuard g;
    descriptor_retire_unref(d);
  }
  Ebr::drain();
}

}  // namespace
}  // namespace cbat
