// Regression tests for the workload generator and the driver prefill:
//   * next_op threshold coverage: a mix summing to 100 must make every
//     0% class unreachable for every 32-bit draw (the old per-class
//     truncation left a ~2^-32 window that emitted queries on 0%-query
//     mixes, biasing every published number and hitting structures
//     without order statistics);
//   * next_range_lo: range starts must cover every in-bounds position,
//     and a range wider than the keyspace must not pin lo to 0;
//   * prefill: the prefilled size must be exactly max_key/2, not overshot
//     by per-thread insert batches.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <vector>

#include "bench/adapters.h"
#include "bench/driver.h"
#include "bench/workload.h"

namespace cbat::bench {
namespace {

using Op = OpStream::Op;

OpStream make_stream(const Workload& w) { return OpStream(w, 7, nullptr); }

// The r values where misclassification can happen: all class boundaries
// are multiples of 2^32/100, so probing every boundary neighborhood plus
// the extremes covers every possible rounding error.
std::vector<std::uint64_t> boundary_draws() {
  std::vector<std::uint64_t> rs = {0, 1, (1ULL << 32) - 1, (1ULL << 32) - 2};
  for (int pct = 1; pct < 100; ++pct) {
    const std::uint64_t b =
        static_cast<std::uint64_t>(pct * (4294967296.0 / 100.0));
    for (std::int64_t d = -2; d <= 2; ++d) {
      const std::int64_t r = static_cast<std::int64_t>(b) + d;
      if (r >= 0 && r < (1LL << 32)) {
        rs.push_back(static_cast<std::uint64_t>(r));
      }
    }
  }
  return rs;
}

TEST(OpStreamMix, ZeroPercentClassesAreUnreachable) {
  const struct {
    double i, d, f, q;
  } mixes[] = {
      {50, 50, 0, 0},   {100, 0, 0, 0},   {0, 100, 0, 0}, {0, 0, 100, 0},
      {0, 0, 0, 100},   {25, 25, 50, 0},  {1, 1, 98, 0},  {50, 0, 50, 0},
      {0, 50, 0, 50},   {33.3, 33.3, 33.4, 0},
  };
  const auto rs = boundary_draws();
  for (const auto& m : mixes) {
    Workload w;
    w.insert_pct = m.i;
    w.delete_pct = m.d;
    w.find_pct = m.f;
    w.query_pct = m.q;
    OpStream stream = make_stream(w);
    for (const std::uint64_t r : rs) {
      const Op op = stream.op_for(r);
      if (m.i <= 0) ASSERT_NE(op, Op::kInsert) << m.i << " r=" << r;
      if (m.d <= 0) ASSERT_NE(op, Op::kDelete) << m.d << " r=" << r;
      if (m.f <= 0) ASSERT_NE(op, Op::kFind) << m.f << " r=" << r;
      if (m.q <= 0) ASSERT_NE(op, Op::kQuery)
          << "0%-query mix " << w.mix_string() << " emitted a query at r="
          << r;
    }
  }
}

TEST(OpStreamMix, NonZeroClassesKeepTheirShare) {
  Workload w;
  w.insert_pct = 10;
  w.delete_pct = 20;
  w.find_pct = 30;
  w.query_pct = 40;
  OpStream stream = make_stream(w);
  // Exact threshold positions: cumulative 10%, 30%, 60% of 2^32.
  EXPECT_EQ(stream.op_for(0), Op::kInsert);
  EXPECT_EQ(stream.op_for(429496729), Op::kInsert);   // just under 10%
  EXPECT_EQ(stream.op_for(429496730), Op::kDelete);   // at 10%
  EXPECT_EQ(stream.op_for(1288490188), Op::kDelete);  // just under 30%
  EXPECT_EQ(stream.op_for(1288490189), Op::kFind);    // at 30%
  EXPECT_EQ(stream.op_for(2576980377), Op::kFind);    // just under 60%
  EXPECT_EQ(stream.op_for(2576980378), Op::kQuery);   // at 60%
  EXPECT_EQ(stream.op_for((1ULL << 32) - 1), Op::kQuery);
  // And a long sampled stream lands close to the nominal shares.
  std::int64_t counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 400000; ++i) {
    ++counts[static_cast<int>(stream.next_op())];
  }
  EXPECT_NEAR(counts[0] / 400000.0, 0.10, 0.01);
  EXPECT_NEAR(counts[1] / 400000.0, 0.20, 0.01);
  EXPECT_NEAR(counts[2] / 400000.0, 0.30, 0.01);
  EXPECT_NEAR(counts[3] / 400000.0, 0.40, 0.01);
}

TEST(OpStreamRange, LoCoversEveryInBoundsStart) {
  Workload w;
  w.max_key = 100;
  w.rq_size = 90;
  OpStream stream = make_stream(w);
  std::set<Key> seen;
  for (int i = 0; i < 5000; ++i) {
    const Key lo = stream.next_range_lo();
    ASSERT_GE(lo, 0);
    // Every start must keep [lo, lo + rq - 1] inside [0, max_key).
    ASSERT_LE(lo + w.rq_size - 1, w.max_key - 1) << lo;
    seen.insert(lo);
  }
  // All 11 valid starts appear, including max_key - rq_size itself (the
  // old hi_bound skipped it).
  EXPECT_EQ(seen.size(), 11u);
  EXPECT_TRUE(seen.count(10)) << "lo = max_key - rq_size must be reachable";
}

TEST(OpStreamRange, KeyspaceWideRangeGetsRandomLo) {
  Workload w;
  w.max_key = 1000;
  w.rq_size = 5000;  // wider than the keyspace: old code pinned lo to 0
  OpStream stream = make_stream(w);
  std::set<Key> seen;
  for (int i = 0; i < 2000; ++i) {
    const Key lo = stream.next_range_lo();
    ASSERT_GE(lo, 0);
    ASSERT_LT(lo, w.max_key);
    seen.insert(lo);
  }
  EXPECT_GT(seen.size(), 100u)
      << "degenerate bound pinned every range query to lo = 0";
}

TEST(Prefill, FillsToExactlyHalfTheKeyRange) {
  for (const int threads : {1, 4}) {
    auto set = make_structure("BAT");
    ASSERT_NE(set, nullptr);
    Workload w;
    w.max_key = 20000;
    prefill(*set, w, threads, /*seed=*/99);
    // Exactly max_key/2: the claim-based batches cannot overshoot (the old
    // per-thread 256-op counters overshot by up to threads*256).
    EXPECT_EQ(set->size(), w.max_key / 2) << threads << " threads";
  }
}

TEST(Prefill, TinyKeyRange) {
  auto set = make_structure("BAT");
  Workload w;
  w.max_key = 3;
  prefill(*set, w, 4, 5);
  EXPECT_EQ(set->size(), 1);
  w.max_key = 1;  // target 0: must terminate without inserting
  auto empty = make_structure("BAT");
  prefill(*empty, w, 2, 5);
  EXPECT_EQ(empty->size(), 0);
}

}  // namespace
}  // namespace cbat::bench
