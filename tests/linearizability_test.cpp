// History-based linearizability checking for cross-shard composite
// queries (ISSUE 5 / ROADMAP "cross-shard linearizable snapshots").
//
// The history class is deliberately restricted so the check is exact and
// cheap: ONE writer thread applies a known sequence of updates over a
// small tracked key set, readers observe the full tracked-key membership
// through one Snapshot each.  For such histories a legal total order
// exists iff every observation equals some prefix of the writer's
// sequence, where the prefix index is bounded below by the number of
// writer ops already *completed* when the snapshot was acquired and above
// by the number already *begun* when its queries returned (the real-time
// constraint of linearizability).
//
// The deterministic tests drive the real Snapshot acquisition code
// through its mid-acquire test hook: two sequential inserts (a then b,
// landing in the first and last shard) are injected after the first
// shard's root is pinned.  The quiescent policy then observes {b present,
// a absent} — b's insert began after a's completed, so no prefix matches
// and the checker rejects the history.  The epoch-stamped policy resolves
// the last shard's root back past the cut and observes the empty prefix:
// same interleaving, linearizable history.  The concurrent test runs the
// same checker over a free-running writer/reader schedule (TSan-gated in
// CI alongside the sharded_set suite).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "combine/combined_set.h"
#include "core/bat_tree.h"
#include "shard/sharded_set.h"
#include "util/random.h"

namespace cbat {
namespace {

using Quiescent4 = ShardedSet<Bat<SizeAug>, 4, SnapshotPolicy::kQuiescent>;
using Lin4 = ShardedSet<Bat<SizeAug>, 4, SnapshotPolicy::kLinearizable>;

// One reader observation: the membership of every tracked key as seen
// through a single Snapshot, plus the real-time bounds on which writer
// prefix may explain it.
struct TrackedObservation {
  std::int64_t done_at_inv = 0;     // writer ops completed before acquire
  std::int64_t started_at_resp = 0;  // writer ops begun when queries ended
  std::vector<bool> members;
};

// prefix_states[j] is the tracked-key membership after the writer's first
// j operations.  The observation linearizes iff some in-bounds prefix
// reproduces it exactly.
bool observation_linearizes(
    const std::vector<std::vector<bool>>& prefix_states,
    const TrackedObservation& o) {
  const auto hi = std::min<std::int64_t>(
      o.started_at_resp, static_cast<std::int64_t>(prefix_states.size()) - 1);
  for (std::int64_t j = o.done_at_inv; j <= hi; ++j) {
    if (prefix_states[static_cast<std::size_t>(j)] == o.members) return true;
  }
  return false;
}

// --- deterministic interleaving through the mid-acquire hook --------------

constexpr Key kKeyspace = 4000;  // Sharded4 width 1000
constexpr Key kKeyA = 100;       // shard 0
constexpr Key kKeyB = 3900;      // shard 3

// Writer sequence: insert a, then insert b (sequential, so a's completion
// precedes b's invocation).  Prefix states over {a, b}.
std::vector<std::vector<bool>> pair_prefix_states() {
  return {{false, false}, {true, false}, {true, true}};
}

// Acquires one Snapshot of an initially empty set, injecting both inserts
// after shard 0's root is pinned and before shard 1's is read.  Returns
// the observation with its (trivially known) real-time bounds: no op had
// completed at acquisition, both had begun by the response.
template <class Set>
TrackedObservation observe_with_mid_acquire_writes() {
  Set set(kKeyspace);
  const auto hook = [](void* ctx, int next_shard) {
    if (next_shard != 1) return;
    auto* s = static_cast<Set*>(ctx);
    s->insert(kKeyA);  // completes before insert(kKeyB) is invoked
    s->insert(kKeyB);
  };
  typename Set::Snapshot snap(set, hook, &set);
  TrackedObservation o;
  o.done_at_inv = 0;
  o.started_at_resp = 2;
  o.members = {snap.contains(kKeyA), snap.contains(kKeyB)};
  // Whatever the cut, one pinned snapshot must at least be internally
  // consistent: size agrees with the tracked memberships (the set never
  // holds untracked keys here).
  EXPECT_EQ(snap.size(),
            static_cast<std::int64_t>(o.members[0]) +
                static_cast<std::int64_t>(o.members[1]));
  return o;
}

// The quiescent cut reads shard roots one after another, so it observes
// the *second* insert while missing the *first* — a state no prefix of
// the writer's sequence explains.  This is the violation the epoch cut
// exists to close; if this test ever fails, the quiescent path silently
// became linearizable and the "-Lin" variants (and their acquisition
// cost) are dead weight.
TEST(CrossShardLinearizability, CheckerRejectsQuiescentCut) {
  const TrackedObservation o =
      observe_with_mid_acquire_writes<Quiescent4>();
  EXPECT_FALSE(o.members[0]) << "shard 0 was pinned before insert(a)";
  EXPECT_TRUE(o.members[1]) << "shard 3 was pinned after insert(b)";
  EXPECT_FALSE(observation_linearizes(pair_prefix_states(), o))
      << "{b without a} must not linearize: insert(a) completed before "
         "insert(b) began";
}

// Same interleaving, epoch-stamped acquisition: both inserts are stamped
// after the snapshot's counter increment, so resolving shard 3's root
// walks its history back past b's installation and the observation is the
// (legal) empty prefix.
TEST(CrossShardLinearizability, CheckerAcceptsEpochStampedCut) {
  const TrackedObservation o = observe_with_mid_acquire_writes<Lin4>();
  EXPECT_FALSE(o.members[0]);
  EXPECT_FALSE(o.members[1]) << "b's root must resolve past the cut";
  EXPECT_TRUE(observation_linearizes(pair_prefix_states(), o));
}

// --- epoch bookkeeping ----------------------------------------------------

TEST(CrossShardLinearizability, EpochAdvancesPerAcquisitionAndCutsPin) {
  Lin4 set(kKeyspace);
  EXPECT_EQ(set.current_epoch(), 1u);
  ASSERT_TRUE(set.insert(kKeyA));

  Lin4::Snapshot s1(set);
  EXPECT_EQ(s1.epoch(), 1u);
  EXPECT_EQ(set.current_epoch(), 2u);
  // Completed before acquisition: included.
  EXPECT_TRUE(s1.contains(kKeyA));
  EXPECT_EQ(s1.size(), 1);

  ASSERT_TRUE(set.insert(kKeyB));
  Lin4::Snapshot s2(set);
  EXPECT_EQ(s2.epoch(), 2u);
  EXPECT_TRUE(s2.contains(kKeyB));
  EXPECT_EQ(s2.size(), 2);
  // The older cut is immutable.
  EXPECT_FALSE(s1.contains(kKeyB));
  EXPECT_EQ(s1.size(), 1);

  // Quiescent forests never advance the counter (acquisition is a plain
  // root sweep), but their write path stamps all the same.
  Quiescent4 q(kKeyspace);
  q.insert(kKeyA);
  Quiescent4::Snapshot qs(q);
  EXPECT_EQ(qs.epoch(), 0u);
  EXPECT_EQ(q.current_epoch(), 1u);
}

// Resolution must hand back the current root in the no-race case even
// after the counter has advanced far past the stamps in the tree: a
// std::set oracle equivalence run with snapshots interleaved to keep the
// epoch moving.
TEST(CrossShardLinearizability, LinearizableForestMatchesOracle) {
  Lin4 set(kKeyspace);
  std::set<Key> oracle;
  Xoshiro256 rng(2026);
  for (int step = 0; step < 4000; ++step) {
    const Key k = static_cast<Key>(rng.below(kKeyspace));
    if (rng.below(3) == 0) {
      ASSERT_EQ(set.erase(k), oracle.erase(k) > 0) << k;
    } else {
      ASSERT_EQ(set.insert(k), oracle.insert(k).second) << k;
    }
    if (step % 200 != 199) continue;
    Lin4::Snapshot snap(set);
    ASSERT_EQ(snap.size(), static_cast<std::int64_t>(oracle.size()));
    for (Key q : {Key{0}, Key{999}, Key{1000}, Key{2500}, Key{3999}}) {
      ASSERT_EQ(snap.contains(q), oracle.count(q) > 0) << q;
      ASSERT_EQ(snap.rank(q),
                static_cast<std::int64_t>(std::distance(
                    oracle.begin(), oracle.upper_bound(q))))
          << q;
    }
    const std::int64_t n = snap.size();
    if (n > 0) {
      const auto mid = snap.select((n + 1) / 2);
      ASSERT_TRUE(mid.has_value());
      ASSERT_EQ(snap.rank(*mid), (n + 1) / 2);
    }
  }
}

// --- concurrent history check (TSan-gated in CI) --------------------------

// Free-running schedule: one writer applies a precomputed toggle sequence
// over tracked keys spread across all four shards, publishing begun /
// completed counts; readers acquire linearizable snapshots and record the
// tracked membership with those counts as real-time bounds.  Every
// recorded observation must be explained by an in-bounds writer prefix.
TEST(CrossShardLinearizability, ConcurrentSingleWriterHistoryLinearizes) {
  constexpr int kTracked = 8;
  constexpr int kOps = 6000;
  constexpr int kReaders = 2;
  std::vector<Key> tracked;
  for (int i = 0; i < kTracked; ++i) {
    tracked.push_back(static_cast<Key>(i * 500 + 100));  // 2 keys per shard
  }

  // Precompute the toggle sequence and every prefix state.
  std::vector<std::vector<bool>> prefix_states;
  std::vector<std::pair<int, bool>> ops;  // (tracked index, is_insert)
  {
    std::vector<bool> state(kTracked, false);
    prefix_states.push_back(state);
    Xoshiro256 rng(7);
    for (int j = 0; j < kOps; ++j) {
      const int i = static_cast<int>(rng.below(kTracked));
      const bool is_insert = !state[static_cast<std::size_t>(i)];
      ops.emplace_back(i, is_insert);
      state[static_cast<std::size_t>(i)] = is_insert;
      prefix_states.push_back(state);
    }
  }

  Lin4 set(kKeyspace);
  std::atomic<std::int64_t> started{0};
  std::atomic<std::int64_t> done{0};
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    for (int j = 0; j < kOps; ++j) {
      started.store(j + 1, std::memory_order_seq_cst);
      const auto [i, is_insert] = ops[static_cast<std::size_t>(j)];
      const Key k = tracked[static_cast<std::size_t>(i)];
      // The toggle sequence makes every update effective, so prefix
      // states track the set exactly.
      ASSERT_TRUE(is_insert ? set.insert(k) : set.erase(k)) << j;
      done.store(j + 1, std::memory_order_seq_cst);
    }
    stop.store(true, std::memory_order_release);
  });

  std::vector<std::vector<TrackedObservation>> logs(kReaders);
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      auto& log = logs[static_cast<std::size_t>(r)];
      log.reserve(4096);
      // do-while: on a single-core host the writer may finish before this
      // thread first runs; one post-quiescence observation is still a
      // valid (and checkable) history entry.
      do {
        TrackedObservation o;
        o.done_at_inv = done.load(std::memory_order_seq_cst);
        Lin4::Snapshot snap(set);
        o.members.reserve(kTracked);
        std::int64_t present = 0;
        for (const Key k : tracked) {
          const bool m = snap.contains(k);
          o.members.push_back(m);
          present += m ? 1 : 0;
        }
        // Internal consistency of the pinned cut: only tracked keys ever
        // enter the set.
        ASSERT_EQ(snap.size(), present);
        o.started_at_resp = started.load(std::memory_order_seq_cst);
        log.push_back(std::move(o));
      } while (!stop.load(std::memory_order_acquire));
    });
  }
  writer.join();
  for (auto& t : readers) t.join();

  std::size_t checked = 0;
  for (const auto& log : logs) {
    for (const auto& o : log) {
      ASSERT_TRUE(observation_linearizes(prefix_states, o))
          << "observation #" << checked << " bounds [" << o.done_at_inv
          << ", " << o.started_at_resp << "]";
      ++checked;
    }
  }
  ASSERT_GT(checked, 0u);
}

// Two writers over *disjoint* tracked key sets (each spanning all four
// shards, so both feed every shard's combining buffer), on the sharded
// combined forest: exercises epoch stamping through apply_batch's merged
// Propagate.  Disjoint ownership keeps the check exact — each writer's
// projection of an observation must independently match one of that
// writer's prefixes within its own real-time bounds.
TEST(CrossShardLinearizability, ConcurrentCombinedTwoWriterHistoryLinearizes) {
  using LinCombined4 =
      ShardedSet<CombinedSet<Bat<SizeAug>>, 4, SnapshotPolicy::kLinearizable>;
  constexpr int kWriters = 2;
  constexpr int kPerWriter = 4;  // one tracked key per shard per writer
  constexpr int kOps = 4000;

  std::vector<std::vector<Key>> tracked(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kPerWriter; ++i) {
      tracked[static_cast<std::size_t>(w)].push_back(
          static_cast<Key>(i * 1000 + 100 + w * 250));
    }
  }
  std::vector<std::vector<std::vector<bool>>> prefix_states(kWriters);
  std::vector<std::vector<std::pair<int, bool>>> ops(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    std::vector<bool> state(kPerWriter, false);
    prefix_states[static_cast<std::size_t>(w)].push_back(state);
    Xoshiro256 rng(100 + static_cast<std::uint64_t>(w));
    for (int j = 0; j < kOps; ++j) {
      const int i = static_cast<int>(rng.below(kPerWriter));
      const bool is_insert = !state[static_cast<std::size_t>(i)];
      ops[static_cast<std::size_t>(w)].emplace_back(i, is_insert);
      state[static_cast<std::size_t>(i)] = is_insert;
      prefix_states[static_cast<std::size_t>(w)].push_back(state);
    }
  }

  LinCombined4 set(kKeyspace);
  std::atomic<std::int64_t> started[kWriters] = {};
  std::atomic<std::int64_t> done[kWriters] = {};
  std::atomic<bool> stop{false};
  std::atomic<int> writers_left{kWriters};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int j = 0; j < kOps; ++j) {
        started[w].store(j + 1, std::memory_order_seq_cst);
        const auto [i, is_insert] = ops[static_cast<std::size_t>(w)]
                                       [static_cast<std::size_t>(j)];
        const Key k =
            tracked[static_cast<std::size_t>(w)][static_cast<std::size_t>(i)];
        ASSERT_TRUE(is_insert ? set.insert(k) : set.erase(k)) << w << "/" << j;
        done[w].store(j + 1, std::memory_order_seq_cst);
      }
      if (writers_left.fetch_sub(1) == 1) {
        stop.store(true, std::memory_order_release);
      }
    });
  }

  std::vector<TrackedObservation> log[kWriters];
  std::thread reader([&] {
    // do-while, like the single-writer test: never record zero history.
    do {
      std::int64_t inv[kWriters];
      for (int w = 0; w < kWriters; ++w) {
        inv[w] = done[w].load(std::memory_order_seq_cst);
      }
      LinCombined4::Snapshot snap(set);
      std::int64_t present = 0;
      std::vector<bool> members[kWriters];
      for (int w = 0; w < kWriters; ++w) {
        for (const Key k : tracked[static_cast<std::size_t>(w)]) {
          const bool m = snap.contains(k);
          members[w].push_back(m);
          present += m ? 1 : 0;
        }
      }
      ASSERT_EQ(snap.size(), present);
      for (int w = 0; w < kWriters; ++w) {
        TrackedObservation o;
        o.done_at_inv = inv[w];
        o.started_at_resp = started[w].load(std::memory_order_seq_cst);
        o.members = std::move(members[w]);
        log[w].push_back(std::move(o));
      }
    } while (!stop.load(std::memory_order_acquire));
  });
  for (auto& t : writers) t.join();
  reader.join();

  for (int w = 0; w < kWriters; ++w) {
    ASSERT_GT(log[w].size(), 0u);
    for (const auto& o : log[w]) {
      ASSERT_TRUE(observation_linearizes(
          prefix_states[static_cast<std::size_t>(w)], o))
          << "writer " << w << " bounds [" << o.done_at_inv << ", "
          << o.started_at_resp << "]";
    }
  }
}

// --- stale cache races a root CAS (ISSUE 6: epoch-stamped caches) ---------

// The aggregate caches accept an entry only when its stored stamp equals
// the stamp of the root the *caller* has pinned (aggregate_cache.h).  The
// deterministic tests below construct the exact interleaving that check
// exists for — a cache fill racing a root CAS — and fail if the stamp
// validation is removed (make load_size/load_range ignore `stamp` and
// both turn red).

using QuiescentRC4 =
    ShardedSet<Bat<SizeAug>, 4, SnapshotPolicy::kQuiescent,
               ReadPath::kCombined>;
using LinRC4 = ShardedSet<Bat<SizeAug>, 4, SnapshotPolicy::kLinearizable,
                          ReadPath::kCombined>;

// Range cache: a snapshot pins shard 0's root, an update CASes that root
// mid-acquisition, and the snapshot then answers (correctly, on its old
// cut) and MEMOIZES that answer under the old root's stamp — a stale
// entry written into the cache after the root has already moved.  A
// fresh query, whose pinned root carries the new fetch_add-minted stamp,
// probes the same entry and must reject it: with the stamp check gone it
// would serve the pre-update aggregate.
TEST(StaleAggregateCache, RangeEntryOutlivedByRootCas) {
  constexpr Key kLo = 100, kHi = 900;  // inside shard 0 (width 1000)
  LinRC4 set(kKeyspace);
  for (Key k = kLo; k <= kHi; k += 100) ASSERT_TRUE(set.insert(k));
  const std::int64_t before = 9;
  ASSERT_EQ(set.range_aggregate(kLo, kHi), before);

  // Pin shard 0, then land an in-range insert before shard 1 is read.
  const auto hook = [](void* ctx, int next_shard) {
    if (next_shard != 1) return;
    ASSERT_TRUE(static_cast<LinRC4*>(ctx)->insert(kLo + 50));
  };
  LinRC4::Snapshot snap(set, hook, &set);
  // The snapshot's cut predates the insert; its answer — which it also
  // stores into the range cache under the OLD root's stamp — is `before`.
  EXPECT_EQ(snap.range_aggregate(kLo, kHi), before);
  // A fresh read pins the post-CAS root: the cached entry's stamp no
  // longer matches and the aggregate must be recomputed.
  EXPECT_EQ(set.range_aggregate(kLo, kHi), before + 1);
}

// Size row: reader thread A fills the shared per-shard size row; an
// update then CASes one shard's root (new unique stamp) without touching
// the row; reader thread B's lease renewal probes the row with the NEW
// stamp and must miss and recompute.  Threads (rather than one thread)
// because a thread's own update self-patches its thread-local lease —
// only a fresh lease exercises the shared row's validation.
TEST(StaleAggregateCache, SizeRowOutlivedByRootCas) {
  QuiescentRC4 set(kKeyspace);
  for (Key k = 0; k < 20; ++k) ASSERT_TRUE(set.insert(k * 200));
  std::thread([&] { EXPECT_EQ(set.size(), 20); }).join();  // fills the row
  ASSERT_TRUE(set.insert(kKeyA));  // shard 0 root CAS; row now stale
  std::int64_t observed = -1;
  std::thread([&] { observed = set.size(); }).join();  // fresh lease
  EXPECT_EQ(observed, 21);
  // The key's shard-local effects must be visible through composite
  // queries too (rank = prefix over the repaired row + one descent).
  EXPECT_EQ(set.rank(kKeyA), set.range_count(0, kKeyA));
}

// Concurrent variant (TSan-gated in CI with the rest of this suite): the
// leased/cached read path must serve linearizable answers while updates
// re-stamp roots under it.  Single writer, known toggle sequence; readers
// observe through the PUBLIC composite-query API — size() and a
// whole-keyspace range_aggregate(), both answered via the lease and the
// epoch-stamped caches — and every observation must equal the tracked
// population of some writer prefix within its real-time bounds.
TEST(StaleAggregateCache, ConcurrentCachedReadsLinearize) {
  constexpr int kTracked = 8;
  constexpr int kOps = 6000;
  constexpr int kReaders = 2;
  std::vector<Key> tracked;
  for (int i = 0; i < kTracked; ++i) {
    tracked.push_back(static_cast<Key>(i * 500 + 100));
  }
  std::vector<std::int64_t> prefix_pop;  // population after j writer ops
  std::vector<std::pair<int, bool>> ops;
  {
    std::vector<bool> state(kTracked, false);
    std::int64_t pop = 0;
    prefix_pop.push_back(pop);
    Xoshiro256 rng(11);
    for (int j = 0; j < kOps; ++j) {
      const int i = static_cast<int>(rng.below(kTracked));
      const bool is_insert = !state[static_cast<std::size_t>(i)];
      ops.emplace_back(i, is_insert);
      state[static_cast<std::size_t>(i)] = is_insert;
      pop += is_insert ? 1 : -1;
      prefix_pop.push_back(pop);
    }
  }

  LinRC4 set(kKeyspace);
  std::atomic<std::int64_t> started{0};
  std::atomic<std::int64_t> done{0};
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    for (int j = 0; j < kOps; ++j) {
      started.store(j + 1, std::memory_order_seq_cst);
      const auto [i, is_insert] = ops[static_cast<std::size_t>(j)];
      const Key k = tracked[static_cast<std::size_t>(i)];
      ASSERT_TRUE(is_insert ? set.insert(k) : set.erase(k)) << j;
      done.store(j + 1, std::memory_order_seq_cst);
    }
    stop.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  std::atomic<std::int64_t> checked{0};
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256 rng(77 + static_cast<std::uint64_t>(r));
      do {
        // One observation per query: each composite read linearizes at
        // its own instant, so each gets its own real-time bounds.
        const std::int64_t inv = done.load(std::memory_order_seq_cst);
        std::int64_t obs;
        switch (rng.below(3)) {
          case 0:
            obs = set.size();
            break;
          case 1:
            obs = set.range_aggregate(0, kKeyspace - 1);
            break;
          default:
            obs = set.range_count(0, kKeyspace - 1);
            break;
        }
        const std::int64_t resp = started.load(std::memory_order_seq_cst);
        bool ok = false;
        const auto hi = std::min<std::int64_t>(
            resp, static_cast<std::int64_t>(prefix_pop.size()) - 1);
        for (std::int64_t j = inv; j <= hi && !ok; ++j) {
          ok = prefix_pop[static_cast<std::size_t>(j)] == obs;
        }
        ASSERT_TRUE(ok) << "population " << obs << " not reachable in ["
                        << inv << ", " << resp << "]";
        // relaxed: statistics counter, read after join().
        checked.fetch_add(1, std::memory_order_relaxed);
      } while (!stop.load(std::memory_order_acquire));
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  ASSERT_GT(checked.load(), 0);

  // Quiescence: with the writer joined, every read path — leased fast
  // path, repair walk, and both caches — must agree on the final state.
  const std::int64_t final_pop = prefix_pop.back();
  EXPECT_EQ(set.size(), final_pop);
  EXPECT_EQ(set.range_aggregate(0, kKeyspace - 1), final_pop);
  std::thread([&] { EXPECT_EQ(set.size(), final_pop); }).join();
}

// --- migration protocol: epoch-cut key moves (ISSUE 7) --------------------

// The adaptive forest moves key ranges between shards while updates and
// snapshots run.  These tests drive the real migrate() through its
// phase hook (set_migration_hook) and check that the cut stays
// linearizable at EVERY protocol boundary.  They are written to fail if
// double-routing is disabled: the hook lands updates inside the moving
// range during the copy phase, and only the dirty log's replay makes the
// destination's copy exact — remove mig_log()/replay_log() and the
// post-flip membership diverges from the oracle.

using AdaptLin4 = ShardedSet<CombinedSet<Bat<SizeAug>>, 4,
                             SnapshotPolicy::kLinearizable, ReadPath::kDirect,
                             /*Adaptive=*/true>;

// Shared state for the deterministic hook: the set, a same-thread oracle,
// and the per-stage updates to apply.  The hook runs on the migrator's
// own thread, so in-range updates are legal only while the range is not
// sealed (kCopyBegin/kCopied before the seal, kOpened/kCleaned after the
// flip); sealed stages apply out-of-range updates, which never park.
struct MigHookState {
  AdaptLin4* set = nullptr;
  std::set<Key>* oracle = nullptr;
  std::vector<int> stages;
};

void check_against_oracle(const AdaptLin4& set, const std::set<Key>& oracle,
                          int stage) {
  // Single-threaded history: a linearizable snapshot taken between
  // operations must equal the oracle exactly, whatever migration phase
  // the forest is in.
  AdaptLin4::Snapshot snap(set);
  ASSERT_EQ(snap.size(), static_cast<std::int64_t>(oracle.size()))
      << "stage " << stage;
  for (Key k : {Key{100}, Key{506}, Key{515}, Key{650}, Key{705}, Key{905},
                Key{996}, Key{2105}, Key{3900}}) {
    ASSERT_EQ(snap.contains(k), oracle.count(k) > 0)
        << "key " << k << " at stage " << stage;
  }
  ASSERT_EQ(snap.range_count(0, kKeyspace - 1),
            static_cast<std::int64_t>(oracle.size()))
      << "stage " << stage;
}

void mig_stage_hook(void* ctx, int stage) {
  auto* st = static_cast<MigHookState*>(ctx);
  st->stages.push_back(stage);
  AdaptLin4& set = *st->set;
  std::set<Key>& oracle = *st->oracle;
  // Every stage op TOGGLES its key, so it is effective (and asserted so)
  // no matter how many migrations ran before — a silently lost update
  // cannot hide behind an already-correct membership.
  auto toggle = [&](Key k) {
    if (oracle.count(k) > 0) {
      ASSERT_TRUE(set.erase(k)) << k << " at stage " << stage;
      oracle.erase(k);
    } else {
      ASSERT_TRUE(set.insert(k)) << k << " at stage " << stage;
      oracle.insert(k);
    }
  };
  switch (stage) {
    case AdaptLin4::kMigHookCopyBegin:
      // Copy phase, pre-bulk-copy: an in-range update double-routes (it
      // lands in the source shard and is logged for replay).
      toggle(996);
      toggle(515);
      break;
    case AdaptLin4::kMigHookCopied:
      // Copy phase, AFTER the bulk copy seeded the destination: these
      // land in the source and reach the destination only through the
      // dirty-log replay — the stage that catches a disabled
      // double-route (705 erases a key the bulk copy already moved; 506
      // inserts one it never saw).
      toggle(705);
      toggle(506);
      break;
    case AdaptLin4::kMigHookSealed:
    case AdaptLin4::kMigHookReplayed:
    case AdaptLin4::kMigHookFlipped:
      // Range sealed: in-range updates would park on this very thread,
      // so exercise out-of-range ones (they must never block).
      toggle(2105 + static_cast<Key>(stage));
      break;
    case AdaptLin4::kMigHookOpened:
      // Phase kDone: in-range updates resume and must route by the NEW
      // map (the key now lives in the destination shard).
      toggle(996);
      toggle(650);
      break;
    case AdaptLin4::kMigHookCleaned:
      toggle(650);
      break;
    default:
      break;
  }
  check_against_oracle(set, oracle, stage);
}

// One forced boundary move with updates and snapshots injected at every
// protocol stage; membership must match the oracle at each cut and after
// the move (both migration directions).
TEST(MigrationLinearizability, EveryCutStageMatchesOracle) {
  AdaptLin4 set(kKeyspace);
  set.set_adaptive_enabled(false);  // manual migrations only
  std::set<Key> oracle;
  for (Key k = 5; k < 1000; k += 10) {  // 100 keys, all in shard 0
    ASSERT_TRUE(set.insert(k));
    oracle.insert(k);
  }
  ASSERT_TRUE(set.insert(3900));
  oracle.insert(3900);

  MigHookState st{&set, &oracle, {}};
  set.set_migration_hook(&mig_stage_hook, &st);
  ASSERT_EQ(set.map_generation(), 1u);
  ASSERT_TRUE(set.rebalance_once(0, 1));  // move shard 0's upper half right
  ASSERT_EQ(set.map_generation(), 2u);
  // The hook fired at every protocol boundary, in order.
  ASSERT_EQ(st.stages,
            (std::vector<int>{
                AdaptLin4::kMigHookCopyBegin, AdaptLin4::kMigHookCopied,
                AdaptLin4::kMigHookSealed, AdaptLin4::kMigHookReplayed,
                AdaptLin4::kMigHookFlipped, AdaptLin4::kMigHookOpened,
                AdaptLin4::kMigHookCleaned}));
  check_against_oracle(set, oracle, /*stage=*/-1);

  // Move the range back (dst == src - 1 exercises the other median
  // branch); the same per-stage checks run again on the reverse cut.
  st.stages.clear();
  ASSERT_TRUE(set.rebalance_once(1, 0));
  ASSERT_EQ(set.map_generation(), 3u);
  ASSERT_EQ(st.stages.size(), 7u);
  check_against_oracle(set, oracle, /*stage=*/-2);

  // Full membership sweep through the per-key read path: source-shard
  // stale copies must have been retired, destination copies adopted.
  set.set_migration_hook(nullptr, nullptr);
  for (Key k = 0; k < kKeyspace; ++k) {
    ASSERT_EQ(set.contains(k), oracle.count(k) > 0) << k;
  }
}

// Free-running history check (TSan-gated in CI): one writer toggles
// tracked keys inside the migrating range, a migrator ping-pongs the
// boundary between shards 0 and 1, readers snapshot and record
// real-time-bounded observations.  Every observation must be explained
// by an in-bounds writer prefix — cuts before, during, and after a move
// all accept; a lost double-route shows up as an inexplicable mixed
// state.
TEST(MigrationLinearizability, ConcurrentHistoryLinearizesAcrossMoves) {
  constexpr int kTracked = 8;
  constexpr int kOps = 4000;
  std::vector<Key> tracked;
  for (int i = 0; i < kTracked; ++i) {
    tracked.push_back(static_cast<Key>(i * 125 + 2));  // shard 0, not %5==0
  }
  std::vector<std::vector<bool>> prefix_states;
  std::vector<std::pair<int, bool>> ops;
  {
    std::vector<bool> state(kTracked, false);
    prefix_states.push_back(state);
    Xoshiro256 rng(19);
    for (int j = 0; j < kOps; ++j) {
      const int i = static_cast<int>(rng.below(kTracked));
      const bool is_insert = !state[static_cast<std::size_t>(i)];
      ops.emplace_back(i, is_insert);
      state[static_cast<std::size_t>(i)] = is_insert;
      prefix_states.push_back(state);
    }
  }

  AdaptLin4 set(kKeyspace);
  set.set_adaptive_enabled(false);  // the migrator thread drives moves
  // Static ballast in shard 0 so every boundary move has keys to split;
  // multiples of 5 never collide with the tracked keys.
  std::int64_t ballast = 0;
  for (Key k = 0; k < 1000; k += 5) {
    ASSERT_TRUE(set.insert(k));
    ++ballast;
  }

  std::atomic<std::int64_t> started{0};
  std::atomic<std::int64_t> done{0};
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    for (int j = 0; j < kOps; ++j) {
      started.store(j + 1, std::memory_order_seq_cst);
      const auto [i, is_insert] = ops[static_cast<std::size_t>(j)];
      const Key k = tracked[static_cast<std::size_t>(i)];
      ASSERT_TRUE(is_insert ? set.insert(k) : set.erase(k)) << j;
      done.store(j + 1, std::memory_order_seq_cst);
    }
    stop.store(true, std::memory_order_release);
  });

  std::atomic<int> moves{0};
  std::thread migrator([&] {
    // Keep going past `stop` until at least one move has landed: on a
    // single-hardware-thread host the writer can finish its whole run
    // before this thread is ever scheduled, and a zero-move pass would
    // make the history check vacuous.  Once the writer is done the set
    // is quiescent and the ballast keeps shard 0 above the split
    // minimum, so a move is guaranteed to succeed and the loop exits.
    while (!stop.load(std::memory_order_acquire) || moves.load() == 0) {
      if (set.rebalance_once(0, 1)) moves.fetch_add(1);
      if (set.rebalance_once(1, 0)) moves.fetch_add(1);
    }
  });

  std::vector<TrackedObservation> log;
  std::thread reader([&] {
    do {
      TrackedObservation o;
      o.done_at_inv = done.load(std::memory_order_seq_cst);
      AdaptLin4::Snapshot snap(set);
      std::int64_t present = 0;
      for (const Key k : tracked) {
        const bool m = snap.contains(k);
        o.members.push_back(m);
        present += m ? 1 : 0;
      }
      // A cut mid-migration must still count every key exactly once
      // (duplicates in the destination shard are outside its owned range
      // until the flip; stale source copies outside it after).
      ASSERT_EQ(snap.size(), ballast + present);
      o.started_at_resp = started.load(std::memory_order_seq_cst);
      log.push_back(std::move(o));
    } while (!stop.load(std::memory_order_acquire));
  });

  writer.join();
  migrator.join();
  reader.join();

  ASSERT_GT(moves.load(), 0) << "no boundary move ever ran";
  ASSERT_GT(log.size(), 0u);
  for (const auto& o : log) {
    ASSERT_TRUE(observation_linearizes(prefix_states, o))
        << "bounds [" << o.done_at_inv << ", " << o.started_at_resp << "]";
  }
  // Quiescent final sweep: membership equals the last writer prefix.
  const std::vector<bool>& fin = prefix_states.back();
  for (int i = 0; i < kTracked; ++i) {
    ASSERT_EQ(set.contains(tracked[static_cast<std::size_t>(i)]),
              fin[static_cast<std::size_t>(i)])
        << i;
  }
}

}  // namespace
}  // namespace cbat
