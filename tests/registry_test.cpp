// Tests for the unified ordered-set API layer (src/api/ordered_set.h):
// concept classification, the structure registry, and the type-erased
// adapter including its fallbacks for non-ranked structures.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "api/ordered_set.h"
#include "bench/adapters.h"
#include "chromatic/chromatic_set.h"
#include "core/bat_tree.h"

namespace cbat {
namespace {

using api::AbstractOrderedSet;
using api::StructureRegistry;

const char* kBuiltins[] = {"BAT",     "BAT-Del",     "BAT-EagerDel",
                           "FR-BST",  "VcasBST",     "VerlibBTree",
                           "BundledCitrusTree",      "ChromaticSet"};

TEST(Registry, AllPaperStructureNamesResolve) {
  auto& reg = StructureRegistry::instance();
  for (const char* name : kBuiltins) {
    EXPECT_TRUE(reg.contains(name)) << name;
    auto set = reg.create(name);
    ASSERT_NE(set, nullptr) << name;
    EXPECT_EQ(set->name(), name);
  }
}

TEST(Registry, UnknownNameReturnsNull) {
  EXPECT_EQ(StructureRegistry::instance().create("nope"), nullptr);
  EXPECT_FALSE(StructureRegistry::instance().contains("nope"));
  EXPECT_EQ(bench::make_structure("nope"), nullptr);
}

TEST(Registry, RankednessIsDerivedFromTheType) {
  auto& reg = StructureRegistry::instance();
  for (const char* name : kBuiltins) {
    EXPECT_EQ(reg.is_ranked(name), std::string(name) != "ChromaticSet")
        << name;
  }
}

TEST(Registry, ComparisonSetMatchesFigures6To9) {
  const std::vector<std::string> want = {"BAT-EagerDel", "FR-BST", "VcasBST",
                                         "VerlibBTree", "BundledCitrusTree"};
  EXPECT_EQ(StructureRegistry::instance().comparison_set(), want);
  EXPECT_EQ(bench::all_structures(), want);
}

TEST(Registry, NamesListsEveryBuiltin) {
  const auto names = StructureRegistry::instance().names();
  for (const char* name : kBuiltins) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << name;
  }
}

TEST(Registry, MakeStructureGoesThroughRegistry) {
  auto set = bench::make_structure("BAT");
  ASSERT_NE(set, nullptr);
  EXPECT_TRUE(set->insert(5));
  EXPECT_TRUE(set->insert(9));
  EXPECT_FALSE(set->insert(5));
  EXPECT_TRUE(set->contains(9));
  EXPECT_EQ(set->size(), 2);
  EXPECT_EQ(set->rank(9), 2);
  EXPECT_EQ(set->select_query(1), 5);
  EXPECT_EQ(set->range_count(0, 100), 2);
  EXPECT_TRUE(set->supports_order_statistics());
}

TEST(Registry, NonRankedStructureUsesDocumentedFallbacks) {
  auto set = bench::make_structure("ChromaticSet");
  ASSERT_NE(set, nullptr);
  EXPECT_FALSE(set->supports_order_statistics());
  EXPECT_TRUE(set->insert(1));
  EXPECT_TRUE(set->insert(2));
  EXPECT_EQ(set->size(), 2);
  EXPECT_EQ(set->rank(2), 0);
  EXPECT_EQ(set->range_count(0, 10), 0);
  EXPECT_EQ(set->select_query(1), kInf2);
}

TEST(Registry, ShardedStructureNamesResolve) {
  auto& reg = StructureRegistry::instance();
  for (const char* name : {"Sharded1-BAT", "Sharded4-BAT", "Sharded16-BAT",
                           "Sharded64-BAT", "Sharded16-BAT-Del"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
    EXPECT_TRUE(reg.is_ranked(name)) << name;
    auto set = reg.create(name);
    ASSERT_NE(set, nullptr) << name;
    EXPECT_EQ(set->name(), name);
    EXPECT_TRUE(set->supports_order_statistics()) << name;
    // The shard layer accepts the driver's key-range hint; single trees
    // keep the no-op default.
    EXPECT_TRUE(set->set_key_range_hint(10000)) << name;
    // And behaves like any RankedSet through the type-erased interface.
    EXPECT_TRUE(set->insert(5));
    EXPECT_TRUE(set->insert(9999));  // last shard
    EXPECT_EQ(set->size(), 2);
    EXPECT_EQ(set->rank(9999), 2);
    EXPECT_EQ(set->select_query(1), 5);
    EXPECT_EQ(set->range_count(0, 10000), 2);
    // Populated: the hint must now be refused.
    EXPECT_FALSE(set->set_key_range_hint(20000)) << name;
  }
  // Not in the paper's Figures 6-9 comparison set.
  const auto cmp = reg.comparison_set();
  EXPECT_EQ(std::find(cmp.begin(), cmp.end(), "Sharded16-BAT"), cmp.end());
}

TEST(Registry, CombinedStructureNamesResolve) {
  auto& reg = StructureRegistry::instance();
  for (const char* name : {"Combined-BAT", "Sharded16-Combined-BAT"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
    EXPECT_TRUE(reg.is_ranked(name)) << name;
    auto set = reg.create(name);
    ASSERT_NE(set, nullptr) << name;
    EXPECT_EQ(set->name(), name);
    EXPECT_TRUE(set->supports_order_statistics()) << name;
    // The combining layer keeps the full RankedSet contract through the
    // type-erased interface.
    EXPECT_TRUE(set->insert(5));
    EXPECT_TRUE(set->insert(11));
    EXPECT_FALSE(set->insert(11));
    EXPECT_EQ(set->size(), 2);
    EXPECT_EQ(set->rank(11), 2);
    EXPECT_EQ(set->select_query(1), 5);
    EXPECT_EQ(set->range_count(0, 100), 2);
    EXPECT_TRUE(set->erase(5));
    EXPECT_EQ(set->size(), 1);
    // warm_up is advisory and must be callable through the interface.
    set->warm_up(64);
  }
  // Only the sharded-combined forest takes the key-range hint.
  EXPECT_FALSE(reg.create("Combined-BAT")->set_key_range_hint(10000));
  EXPECT_TRUE(
      reg.create("Sharded16-Combined-BAT")->set_key_range_hint(10000));
  // Not in the paper's comparison set.
  const auto cmp = reg.comparison_set();
  EXPECT_EQ(std::find(cmp.begin(), cmp.end(), "Combined-BAT"), cmp.end());
}

TEST(Registry, LinearizableSnapshotVariantsResolve) {
  auto& reg = StructureRegistry::instance();
  for (const char* name : {"Sharded16-BAT-Lin", "Sharded16-Combined-BAT-Lin"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
    EXPECT_TRUE(reg.is_ranked(name)) << name;
    auto set = reg.create(name);
    ASSERT_NE(set, nullptr) << name;
    EXPECT_EQ(set->name(), name);
    // Same RankedSet + key-range-hint contract as the quiescent twins.
    EXPECT_TRUE(set->set_key_range_hint(10000)) << name;
    EXPECT_TRUE(set->insert(5));
    EXPECT_TRUE(set->insert(9999));
    EXPECT_EQ(set->size(), 2);
    EXPECT_EQ(set->rank(9999), 2);
    EXPECT_EQ(set->select_query(1), 5);
    EXPECT_EQ(set->range_count(0, 10000), 2);
  }
  // Not in the paper's comparison set.
  const auto cmp = reg.comparison_set();
  EXPECT_EQ(std::find(cmp.begin(), cmp.end(), "Sharded16-BAT-Lin"),
            cmp.end());
}

TEST(Registry, ConsistencyIntrospectionPerStructure) {
  // Single trees answer composite queries from one atomic root snapshot:
  // linearizable, via the default.  The quiescent shard forests report
  // the weaker guarantee; their "-Lin" twins restore the strong one.
  const struct {
    const char* name;
    api::Consistency want;
  } cases[] = {
      {"BAT", api::Consistency::kLinearizable},
      {"Combined-BAT", api::Consistency::kLinearizable},
      {"ChromaticSet", api::Consistency::kQuiescentlyConsistent},
      {"Sharded16-BAT", api::Consistency::kQuiescentlyConsistent},
      {"Sharded16-Combined-BAT", api::Consistency::kQuiescentlyConsistent},
      {"Sharded16-BAT-Lin", api::Consistency::kLinearizable},
      {"Sharded16-Combined-BAT-Lin", api::Consistency::kLinearizable},
  };
  for (const auto& c : cases) {
    auto set = bench::make_structure(c.name);
    ASSERT_NE(set, nullptr) << c.name;
    EXPECT_EQ(set->consistency(), c.want) << c.name;
  }
  EXPECT_STREQ(api::consistency_name(api::Consistency::kLinearizable),
               "linearizable");
  EXPECT_STREQ(
      api::consistency_name(api::Consistency::kQuiescentlyConsistent),
      "quiescently_consistent");
}

TEST(Registry, SingleTreesIgnoreKeyRangeHint) {
  auto set = bench::make_structure("BAT");
  ASSERT_NE(set, nullptr);
  EXPECT_FALSE(set->set_key_range_hint(10000));
}

TEST(Registry, UserStructuresCanBeRegistered) {
  // A std::set-backed reference structure is itself a valid RankedSet —
  // registering it makes it available to the whole harness.
  struct RefSet {
    std::set<Key> s;
    bool insert(Key k) { return s.insert(k).second; }
    bool erase(Key k) { return s.erase(k) > 0; }
    bool contains(Key k) const { return s.count(k) > 0; }
    std::int64_t size() const { return static_cast<std::int64_t>(s.size()); }
    std::int64_t rank(Key k) const {
      return static_cast<std::int64_t>(
          std::distance(s.begin(), s.upper_bound(k)));
    }
    std::optional<Key> select(std::int64_t i) const {
      if (i < 1 || i > size()) return std::nullopt;
      auto it = s.begin();
      std::advance(it, i - 1);
      return *it;
    }
    std::int64_t range_count(Key lo, Key hi) const {
      return static_cast<std::int64_t>(
          std::distance(s.lower_bound(lo), s.upper_bound(hi)));
    }
  };
  static_assert(api::RankedSet<RefSet>);

  auto& reg = StructureRegistry::instance();
  reg.register_type<RefSet>("test-only-RefSet");
  auto set = bench::make_structure("test-only-RefSet");
  ASSERT_NE(set, nullptr);
  EXPECT_TRUE(set->supports_order_statistics());
  for (Key k = 0; k < 100; ++k) set->insert(k);
  EXPECT_EQ(set->size(), 100);
  EXPECT_EQ(set->rank(49), 50);
  EXPECT_EQ(set->range_count(10, 19), 10);
  // Not part of the comparison sweep unless opted in.
  const auto cmp = reg.comparison_set();
  EXPECT_EQ(std::find(cmp.begin(), cmp.end(), "test-only-RefSet"), cmp.end());
}

// The concept layer must agree with the adapter layer about each tree.
static_assert(api::OrderedSet<Bat<SizeAug>>);
static_assert(api::RankedSet<Bat<SizeAug>>);
static_assert(api::OrderedSet<ChromaticSet>);
static_assert(!api::RankedSet<ChromaticSet>);

}  // namespace
}  // namespace cbat
