// Tests for the unified ordered-set API layer (src/api/ordered_set.h):
// concept classification, the structure registry, and the type-erased
// adapter including its fallbacks for non-ranked structures.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>

#include "api/ordered_set.h"
#include "bench/adapters.h"
#include "chromatic/chromatic_set.h"
#include "combine/combining_buffer.h"
#include "core/bat_tree.h"
#include "reclamation/ebr.h"
#include "shard/aggregate_cache.h"

namespace cbat {
namespace {

using api::AbstractOrderedSet;
using api::StructureRegistry;

const char* kBuiltins[] = {"BAT",     "BAT-Del",     "BAT-EagerDel",
                           "FR-BST",  "VcasBST",     "VerlibBTree",
                           "BundledCitrusTree",      "ChromaticSet"};

TEST(Registry, AllPaperStructureNamesResolve) {
  auto& reg = StructureRegistry::instance();
  for (const char* name : kBuiltins) {
    EXPECT_TRUE(reg.contains(name)) << name;
    auto set = reg.create(name);
    ASSERT_NE(set, nullptr) << name;
    EXPECT_EQ(set->name(), name);
  }
}

TEST(Registry, UnknownNameReturnsNull) {
  EXPECT_EQ(StructureRegistry::instance().create("nope"), nullptr);
  EXPECT_FALSE(StructureRegistry::instance().contains("nope"));
  EXPECT_EQ(bench::make_structure("nope"), nullptr);
}

TEST(Registry, RankednessIsDerivedFromTheType) {
  auto& reg = StructureRegistry::instance();
  for (const char* name : kBuiltins) {
    EXPECT_EQ(reg.is_ranked(name), std::string(name) != "ChromaticSet")
        << name;
  }
}

TEST(Registry, ComparisonSetMatchesFigures6To9) {
  const std::vector<std::string> want = {"BAT-EagerDel", "FR-BST", "VcasBST",
                                         "VerlibBTree", "BundledCitrusTree"};
  EXPECT_EQ(StructureRegistry::instance().comparison_set(), want);
  EXPECT_EQ(bench::all_structures(), want);
}

TEST(Registry, NamesListsEveryBuiltin) {
  const auto names = StructureRegistry::instance().names();
  for (const char* name : kBuiltins) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << name;
  }
}

TEST(Registry, MakeStructureGoesThroughRegistry) {
  auto set = bench::make_structure("BAT");
  ASSERT_NE(set, nullptr);
  EXPECT_TRUE(set->insert(5));
  EXPECT_TRUE(set->insert(9));
  EXPECT_FALSE(set->insert(5));
  EXPECT_TRUE(set->contains(9));
  EXPECT_EQ(set->size(), 2);
  EXPECT_EQ(set->rank(9), 2);
  EXPECT_EQ(set->select_query(1), 5);
  EXPECT_EQ(set->range_count(0, 100), 2);
  EXPECT_TRUE(set->supports_order_statistics());
}

TEST(Registry, NonRankedStructureUsesDocumentedFallbacks) {
  auto set = bench::make_structure("ChromaticSet");
  ASSERT_NE(set, nullptr);
  EXPECT_FALSE(set->supports_order_statistics());
  EXPECT_TRUE(set->insert(1));
  EXPECT_TRUE(set->insert(2));
  EXPECT_EQ(set->size(), 2);
  EXPECT_EQ(set->rank(2), 0);
  EXPECT_EQ(set->range_count(0, 10), 0);
  EXPECT_EQ(set->select_query(1), kInf2);
}

TEST(Registry, ShardedStructureNamesResolve) {
  auto& reg = StructureRegistry::instance();
  for (const char* name : {"Sharded1-BAT", "Sharded4-BAT", "Sharded16-BAT",
                           "Sharded64-BAT", "Sharded16-BAT-Del"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
    EXPECT_TRUE(reg.is_ranked(name)) << name;
    auto set = reg.create(name);
    ASSERT_NE(set, nullptr) << name;
    EXPECT_EQ(set->name(), name);
    EXPECT_TRUE(set->supports_order_statistics()) << name;
    // The shard layer accepts the driver's key-range hint; single trees
    // keep the no-op default.
    EXPECT_TRUE(set->set_key_range_hint(10000)) << name;
    // And behaves like any RankedSet through the type-erased interface.
    EXPECT_TRUE(set->insert(5));
    EXPECT_TRUE(set->insert(9999));  // last shard
    EXPECT_EQ(set->size(), 2);
    EXPECT_EQ(set->rank(9999), 2);
    EXPECT_EQ(set->select_query(1), 5);
    EXPECT_EQ(set->range_count(0, 10000), 2);
    // Populated: the hint must now be refused.
    EXPECT_FALSE(set->set_key_range_hint(20000)) << name;
  }
  // Not in the paper's Figures 6-9 comparison set.
  const auto cmp = reg.comparison_set();
  EXPECT_EQ(std::find(cmp.begin(), cmp.end(), "Sharded16-BAT"), cmp.end());
}

TEST(Registry, CombinedStructureNamesResolve) {
  auto& reg = StructureRegistry::instance();
  for (const char* name : {"Combined-BAT", "Sharded16-Combined-BAT"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
    EXPECT_TRUE(reg.is_ranked(name)) << name;
    auto set = reg.create(name);
    ASSERT_NE(set, nullptr) << name;
    EXPECT_EQ(set->name(), name);
    EXPECT_TRUE(set->supports_order_statistics()) << name;
    // The combining layer keeps the full RankedSet contract through the
    // type-erased interface.
    EXPECT_TRUE(set->insert(5));
    EXPECT_TRUE(set->insert(11));
    EXPECT_FALSE(set->insert(11));
    EXPECT_EQ(set->size(), 2);
    EXPECT_EQ(set->rank(11), 2);
    EXPECT_EQ(set->select_query(1), 5);
    EXPECT_EQ(set->range_count(0, 100), 2);
    EXPECT_TRUE(set->erase(5));
    EXPECT_EQ(set->size(), 1);
    // warm_up is advisory and must be callable through the interface.
    set->warm_up(64);
  }
  // Only the sharded-combined forest takes the key-range hint.
  EXPECT_FALSE(reg.create("Combined-BAT")->set_key_range_hint(10000));
  EXPECT_TRUE(
      reg.create("Sharded16-Combined-BAT")->set_key_range_hint(10000));
  // Not in the paper's comparison set.
  const auto cmp = reg.comparison_set();
  EXPECT_EQ(std::find(cmp.begin(), cmp.end(), "Combined-BAT"), cmp.end());
}

TEST(Registry, LinearizableSnapshotVariantsResolve) {
  auto& reg = StructureRegistry::instance();
  for (const char* name : {"Sharded16-BAT-Lin", "Sharded16-Combined-BAT-Lin"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
    EXPECT_TRUE(reg.is_ranked(name)) << name;
    auto set = reg.create(name);
    ASSERT_NE(set, nullptr) << name;
    EXPECT_EQ(set->name(), name);
    // Same RankedSet + key-range-hint contract as the quiescent twins.
    EXPECT_TRUE(set->set_key_range_hint(10000)) << name;
    EXPECT_TRUE(set->insert(5));
    EXPECT_TRUE(set->insert(9999));
    EXPECT_EQ(set->size(), 2);
    EXPECT_EQ(set->rank(9999), 2);
    EXPECT_EQ(set->select_query(1), 5);
    EXPECT_EQ(set->range_count(0, 10000), 2);
  }
  // Not in the paper's comparison set.
  const auto cmp = reg.comparison_set();
  EXPECT_EQ(std::find(cmp.begin(), cmp.end(), "Sharded16-BAT-Lin"),
            cmp.end());
}

TEST(Registry, ConsistencyIntrospectionPerStructure) {
  // Single trees answer composite queries from one atomic root snapshot:
  // linearizable, via the default.  The quiescent shard forests report
  // the weaker guarantee; their "-Lin" twins restore the strong one.
  const struct {
    const char* name;
    api::Consistency want;
  } cases[] = {
      {"BAT", api::Consistency::kLinearizable},
      {"Combined-BAT", api::Consistency::kLinearizable},
      {"ChromaticSet", api::Consistency::kQuiescentlyConsistent},
      {"Sharded16-BAT", api::Consistency::kQuiescentlyConsistent},
      {"Sharded16-Combined-BAT", api::Consistency::kQuiescentlyConsistent},
      {"Sharded16-BAT-Lin", api::Consistency::kLinearizable},
      {"Sharded16-Combined-BAT-Lin", api::Consistency::kLinearizable},
  };
  for (const auto& c : cases) {
    auto set = bench::make_structure(c.name);
    ASSERT_NE(set, nullptr) << c.name;
    EXPECT_EQ(set->consistency(), c.want) << c.name;
  }
  EXPECT_STREQ(api::consistency_name(api::Consistency::kLinearizable),
               "linearizable");
  EXPECT_STREQ(
      api::consistency_name(api::Consistency::kQuiescentlyConsistent),
      "quiescently_consistent");
}

TEST(Registry, SingleTreesIgnoreKeyRangeHint) {
  auto set = bench::make_structure("BAT");
  ASSERT_NE(set, nullptr);
  EXPECT_FALSE(set->set_key_range_hint(10000));
}

TEST(Registry, UserStructuresCanBeRegistered) {
  // A std::set-backed reference structure is itself a valid RankedSet —
  // registering it makes it available to the whole harness.
  struct RefSet {
    std::set<Key> s;
    bool insert(Key k) { return s.insert(k).second; }
    bool erase(Key k) { return s.erase(k) > 0; }
    bool contains(Key k) const { return s.count(k) > 0; }
    std::int64_t size() const { return static_cast<std::int64_t>(s.size()); }
    std::int64_t rank(Key k) const {
      return static_cast<std::int64_t>(
          std::distance(s.begin(), s.upper_bound(k)));
    }
    std::optional<Key> select(std::int64_t i) const {
      if (i < 1 || i > size()) return std::nullopt;
      auto it = s.begin();
      std::advance(it, i - 1);
      return *it;
    }
    std::int64_t range_count(Key lo, Key hi) const {
      return static_cast<std::int64_t>(
          std::distance(s.lower_bound(lo), s.upper_bound(hi)));
    }
  };
  static_assert(api::RankedSet<RefSet>);

  auto& reg = StructureRegistry::instance();
  reg.register_type<RefSet>("test-only-RefSet");
  auto set = bench::make_structure("test-only-RefSet");
  ASSERT_NE(set, nullptr);
  EXPECT_TRUE(set->supports_order_statistics());
  for (Key k = 0; k < 100; ++k) set->insert(k);
  EXPECT_EQ(set->size(), 100);
  EXPECT_EQ(set->rank(49), 50);
  EXPECT_EQ(set->range_count(10, 19), 10);
  // Not part of the comparison sweep unless opted in.
  const auto cmp = reg.comparison_set();
  EXPECT_EQ(std::find(cmp.begin(), cmp.end(), "test-only-RefSet"), cmp.end());
}

// --- ISSUE 7: capability introspection + the configure() front door -------

TEST(Registry, StructureInfoIsDerivedFromTheType) {
  auto& reg = StructureRegistry::instance();
  EXPECT_FALSE(reg.info("nope").has_value());

  const struct {
    const char* name;
    bool ranked, combining, read_combining, adaptive;
    int shards;
    api::Consistency consistency;
  } cases[] = {
      {"BAT", true, false, false, false, 1, api::Consistency::kLinearizable},
      {"ChromaticSet", false, false, false, false, 1,
       api::Consistency::kQuiescentlyConsistent},
      // Combined-BAT's composite reads ride the buffer too (SizeAug fits
      // the wide response slot), so it reports read_combining.
      {"Combined-BAT", true, true, true, false, 1,
       api::Consistency::kLinearizable},
      {"Sharded16-BAT", true, false, false, false, 16,
       api::Consistency::kQuiescentlyConsistent},
      {"Sharded16-Combined-BAT-RC", true, true, true, false, 16,
       api::Consistency::kQuiescentlyConsistent},
      {"Sharded16-Combined-BAT-Adapt", true, true, false, true, 16,
       api::Consistency::kQuiescentlyConsistent},
      {"Sharded16-Combined-BAT-Adapt-Lin", true, true, false, true, 16,
       api::Consistency::kLinearizable},
  };
  for (const auto& c : cases) {
    const auto info = reg.info(c.name);
    ASSERT_TRUE(info.has_value()) << c.name;
    EXPECT_EQ(info->ranked, c.ranked) << c.name;
    EXPECT_EQ(info->combining, c.combining) << c.name;
    EXPECT_EQ(info->read_combining, c.read_combining) << c.name;
    EXPECT_EQ(info->adaptive, c.adaptive) << c.name;
    EXPECT_EQ(info->shards, c.shards) << c.name;
    EXPECT_EQ(info->consistency, c.consistency) << c.name;
    // info() must agree with the instance the registry hands out.
    auto set = reg.create(c.name);
    ASSERT_NE(set, nullptr) << c.name;
    EXPECT_EQ(set->supports_order_statistics(), c.ranked) << c.name;
    EXPECT_EQ(set->consistency(), c.consistency) << c.name;
  }
}

TEST(Registry, ConfigureReportsExactlyWhatItApplied) {
  auto& reg = StructureRegistry::instance();
  // An empty options bag trivially succeeds everywhere.
  EXPECT_TRUE(reg.create("BAT")->configure({}));
  EXPECT_TRUE(reg.create("ChromaticSet")->configure({}));

  // key_range_hint: honored by shard forests while empty, refused by
  // single trees and by populated forests — and configure() must say so.
  api::SetOptions hint;
  hint.key_range_hint = 10000;
  EXPECT_FALSE(reg.create("BAT")->configure(hint));
  auto forest = reg.create("Sharded16-BAT");
  EXPECT_TRUE(forest->configure(hint));
  EXPECT_TRUE(forest->insert(5));
  EXPECT_FALSE(forest->configure(hint)) << "populated forest must refuse";

  // Rebalancing fields: only the "-Adapt" forests can honor them.
  api::SetOptions adapt;
  adapt.adaptive_rebalance = false;
  adapt.rebalance_hot_factor = 3.0;
  adapt.rebalance_check_period = 1024;
  EXPECT_FALSE(reg.create("Sharded16-Combined-BAT")->configure(adapt));
  EXPECT_TRUE(reg.create("Sharded16-Combined-BAT-Adapt")->configure(adapt));

  // A mixed bag applies what it can but still reports the refusal.
  api::SetOptions mixed;
  mixed.key_range_hint = 4096;
  mixed.adaptive_rebalance = true;
  EXPECT_FALSE(reg.create("Sharded16-BAT")->configure(mixed));
  EXPECT_TRUE(reg.create("Sharded16-Combined-BAT-Adapt")->configure(mixed));
}

TEST(Registry, ConfigureRejectsMalformedKnobs) {
  auto& reg = StructureRegistry::instance();
  const int saved_batch = combine_max_batch();

  // combine_max_batch: 1 legitimately disables combining, but zero and
  // negative batches are malformed and must leave the knob untouched.
  for (const int bad : {0, -1, -64}) {
    api::SetOptions o;
    o.combine_max_batch = bad;
    EXPECT_FALSE(reg.create("Sharded16-Combined-BAT")->configure(o))
        << "batch " << bad << " must be refused";
    EXPECT_EQ(combine_max_batch(), saved_batch)
        << "a refused batch must not be applied";
  }

  // hot_factor: the policy compares rates against hot_factor * mean, so
  // non-finite values and factors <= 1.0 are refused even by structures
  // that have the setter.
  for (const double bad :
       {0.5, 1.0, -2.0, std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity()}) {
    api::SetOptions o;
    o.rebalance_hot_factor = bad;
    EXPECT_FALSE(reg.create("Sharded16-Combined-BAT-Adapt")->configure(o))
        << "hot_factor " << bad << " must be refused";
  }

  // check_period: zero would run the policy on every update.
  api::SetOptions zero_period;
  zero_period.rebalance_check_period = 0;
  EXPECT_FALSE(
      reg.create("Sharded16-Combined-BAT-Adapt")->configure(zero_period));

  // The boundary values just past malformed still apply cleanly.
  api::SetOptions good;
  good.combine_max_batch = 1;  // "disable combining" is a valid request
  good.rebalance_hot_factor = 1.5;
  good.rebalance_check_period = 1;
  EXPECT_TRUE(reg.create("Sharded16-Combined-BAT-Adapt")->configure(good));
  EXPECT_EQ(combine_max_batch(), 1);
  set_combine_max_batch(saved_batch);
}

// ISSUE 9: the EBR limbo-pressure guardrail rides the same front door.
// Zero legitimately disables the guardrail; a negative mark is malformed
// (no limbo population can sit below zero) and must leave the knob alone.
TEST(Registry, ConfigureEbrLimboHighWater) {
  auto& reg = StructureRegistry::instance();
  const std::int64_t saved = ebr_limbo_high_water();

  api::SetOptions neg;
  neg.ebr_limbo_high_water = -1;
  EXPECT_FALSE(reg.create("BAT")->configure(neg));
  EXPECT_EQ(ebr_limbo_high_water(), saved)
      << "a refused mark must not be applied";

  api::SetOptions apply;
  apply.ebr_limbo_high_water = 123;
  EXPECT_TRUE(reg.create("BAT")->configure(apply));
  EXPECT_EQ(ebr_limbo_high_water(), 123);

  api::SetOptions off;
  off.ebr_limbo_high_water = 0;
  EXPECT_TRUE(reg.create("BAT")->configure(off));
  EXPECT_EQ(ebr_limbo_high_water(), 0);

  set_ebr_limbo_high_water(saved);
}

TEST(Registry, ConfigureDrivesTheProcessWideKnobs) {
  const int saved_batch = combine_max_batch();
  const bool saved_cache = aggregate_cache_enabled();
  const bool saved_lease = lease_reads_enabled();
  const std::uint64_t saved_timeout = Bat<SizeAug>::delegation_timeout();

  auto set = bench::make_structure("Sharded16-Combined-BAT");
  api::SetOptions o;
  o.combine_max_batch = saved_batch + 3;
  o.aggregate_cache = !saved_cache;
  o.lease_reads = !saved_lease;
  o.delegation_timeout = saved_timeout + 17;
  EXPECT_TRUE(set->configure(o));
  EXPECT_EQ(combine_max_batch(), saved_batch + 3);
  EXPECT_EQ(aggregate_cache_enabled(), !saved_cache);
  EXPECT_EQ(lease_reads_enabled(), !saved_lease);
  EXPECT_EQ(Bat<SizeAug>::delegation_timeout(), saved_timeout + 17);

  // The deprecated wrappers still work and observe the same slots.
  set_combine_max_batch(saved_batch);
  set_aggregate_cache(saved_cache);
  set_lease_reads(saved_lease);
  Bat<SizeAug>::set_delegation_timeout(saved_timeout);
  BatDel<SizeAug>::set_delegation_timeout(saved_timeout);
  BatEagerDel<SizeAug>::set_delegation_timeout(saved_timeout);
  EXPECT_EQ(combine_max_batch(), saved_batch);
  EXPECT_EQ(Bat<SizeAug>::delegation_timeout(), saved_timeout);
}

// The concept layer must agree with the adapter layer about each tree.
static_assert(api::OrderedSet<Bat<SizeAug>>);
static_assert(api::RankedSet<Bat<SizeAug>>);
static_assert(api::OrderedSet<ChromaticSet>);
static_assert(!api::RankedSet<ChromaticSet>);

}  // namespace
}  // namespace cbat
