// Positive control for the negative-compile suite: the same operations as
// the bad_* TUs, written against protocol.  This file must compile CLEAN
// under clang -Werror=thread-safety — if it fails, the annotations are
// over-constraining legitimate use and the bad_* diagnostics prove nothing.
#include <atomic>
#include <cstdint>

#include "combine/combining_buffer.h"
#include "core/augmentations.h"
#include "core/version_queries.h"
#include "reclamation/ebr.h"
#include "util/seqlock.h"

bool guarded_contains(const cbat::Version<cbat::SizeAug>* root, cbat::Key k) {
  cbat::EbrGuard g;  // named local: TSA tracks the scoped capability
  return cbat::version_contains(root, k);
}

int elected_drain(cbat::CombiningBuffer<8>& buf) {
  if (!buf.try_lock()) return 0;  // lost the election: someone else drains
  cbat::CombiningBuffer<8>::DrainedRequest reqs[8];
  const int n = buf.drain(reqs, 8);
  buf.unlock();
  return n;
}

bool tokened_publish(cbat::Seqlock& seq,
                     std::atomic<std::uint64_t>& payload) {
  if (!seq.try_write()) return false;  // writer in flight: skip
  payload.store(42, std::memory_order_relaxed);
  seq.end_write();
  return true;
}
