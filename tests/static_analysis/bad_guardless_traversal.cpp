// Negative-compile TU: traversing raw Version pointers without holding the
// EBR capability.  Every version_* query is CBAT_REQUIRES(ebr_capability);
// with no EbrGuard in scope, clang -Werror=thread-safety must reject this
// with "requires holding ... 'ebr_capability'".  The ctest harness compiles
// this file and asserts the diagnostic fires — if it ever compiles clean,
// the guard protocol has silently lost its static teeth.
#include "core/augmentations.h"
#include "core/version_queries.h"

bool guardless_contains(const cbat::Version<cbat::SizeAug>* root,
                        cbat::Key k) {
  // No EbrGuard: `root` may be reclaimed mid-walk.
  return cbat::version_contains(root, k);
}
