// Negative-compile TU: draining a combining buffer without first winning
// the combiner election (try_lock).  drain() is CBAT_REQUIRES(this); with
// no lock held, clang -Werror=thread-safety must reject this with
// "requires holding ... exclusively".  A lockless drain would race the
// winning combiner and hand the same request to two appliers.
#include "combine/combining_buffer.h"

int lockless_drain(cbat::CombiningBuffer<8>& buf) {
  cbat::CombiningBuffer<8>::DrainedRequest reqs[8];
  return buf.drain(reqs, 8);
}
