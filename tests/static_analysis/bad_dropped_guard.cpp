// Negative-compile TU: the use-after-unpin bug the EbrGuard capability
// exists to catch.  The guard is scoped to the inner block, so by the time
// the query runs the epoch is released and the version tree may already be
// reclaimed.  clang -Werror=thread-safety must reject the call with
// "requires holding ... 'ebr_capability'".
#include "core/augmentations.h"
#include "core/version_queries.h"
#include "reclamation/ebr.h"

std::int64_t dropped_guard_size(const cbat::Version<cbat::SizeAug>* root) {
  {
    cbat::EbrGuard g;  // pins an epoch... until the brace below
  }
  return cbat::version_size(root);  // guard already gone
}
