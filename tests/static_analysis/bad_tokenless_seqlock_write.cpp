// Negative-compile TU: publishing through a seqlock without holding the
// writer token.  end_write() is CBAT_RELEASE(); releasing a capability that
// was never acquired must be rejected by clang -Werror=thread-safety with
// "releasing ... that was not held".  A tokenless end_write flips the
// sequence word to odd and wedges every future reader into miss loops.
#include <atomic>
#include <cstdint>

#include "util/seqlock.h"

void tokenless_publish(cbat::Seqlock& seq,
                       std::atomic<std::uint64_t>& payload) {
  payload.store(42, std::memory_order_relaxed);
  seq.end_write();  // never called try_write()
}
