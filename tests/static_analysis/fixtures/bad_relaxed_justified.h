// Lint fixture: a memory_order_relaxed site with no justification
// comment anywhere in the window.  Must trip [relaxed-justified].
// (The justification token itself must not appear in this file outside
// the site, or the window check would be satisfied by accident.)
#pragma once
#include <atomic>

inline int load_counter(std::atomic<int>& c) {
  return c.load(std::memory_order_relaxed);
}
