// Lint fixture: a header-declared atomic data member with no padding
// wrapper and no false-sharing justification comment.  Must trip
// [shared-atomics-padded].
#pragma once
#include <atomic>
#include <cstdint>

struct HotCounters {
  std::atomic<std::uint64_t> hits{0};
};
