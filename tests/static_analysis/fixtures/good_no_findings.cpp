// Lint fixture: ordinary concurrency-free code — nothing for any rule to
// object to.  Must pass clean.  Also demonstrates the rules are scoped:
// acquire/release orderings need no justification comment.
#include <atomic>

int acquire_release_roundtrip() {
  std::atomic<int> x{0};
  x.store(1, std::memory_order_release);
  return x.load(std::memory_order_acquire);
}
