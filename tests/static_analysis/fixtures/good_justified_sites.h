// Lint fixture: the compliant counterpart of the bad_* files — every
// rule's escape hatch used correctly.  Must pass clean.
#pragma once
#include <atomic>
#include <cstdint>

// relaxed: statistics counter; lost ordering is harmless noise.
inline int load_counter(std::atomic<int>& c) {
  return c.load(std::memory_order_relaxed);
}

template <class T>
inline void do_not_optimize(const T& v) {
  // volatile: deliberate optimizer barrier; never read, never raced.
  static volatile const void* sink;
  sink = &v;
}

struct PaddedCounters {
  // The wrapper earns the pass: one counter per destination cache line.
  alignas(64) std::atomic<std::uint64_t> hits{0};
};

struct JustifiedCounters {
  // shared: read-mostly knob; padding a cold word buys nothing.
  std::atomic<std::uint64_t> config{0};
};
