// Lint fixture: two fault-injection hooks sharing one site name.  Site
// names key the fault planner's per-site budgets and only_site filters,
// so a duplicate silently conflates two protocol sites.  Must trip
// [fault-point-unique].
#pragma once

namespace cbat_fixture {

inline void publish_path() {
  CBAT_FAULT_POINT("fixture.duplicate_site");
}

inline bool drain_path() {
  // Reused name: this is a DIFFERENT protocol site and needs its own.
  return CBAT_FAULT_FORCE("fixture.duplicate_site");
}

}  // namespace cbat_fixture
