// Lint fixture: memory_order_consume is forbidden outright (no escape
// comment exists for this rule).  Must trip [no-consume].
#pragma once
#include <atomic>

inline int* load_ptr(std::atomic<int*>& p) {
  return p.load(std::memory_order_consume);
}
