// Lint fixture: volatile used as a (non-)synchronization primitive with
// no optimizer-barrier justification comment.  Must trip [no-volatile].
#pragma once

inline volatile int g_flag = 0;

inline void spin_wait() {
  while (g_flag == 0) {
  }
}
