// Lint fixture: a retire() call in a file that is not reclamation-aware
// (not under src/reclamation/, not in RETIRE_ALLOWLIST).  Must trip
// [retire-scoped].
#pragma once

namespace cbat_fixture {
struct Node;
void retire_node(Node* n);

inline void unlink(Node* n) { retire_node(n); }

template <class Ebr, class T>
void drop(Ebr& ebr, T* p) {
  ebr.retire(p);
}
}  // namespace cbat_fixture
