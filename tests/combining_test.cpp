// Tests for the combining layer (src/combine/): the CombiningBuffer slot
// protocol, the BatTree::apply_batch bulk path against a std::set oracle,
// CombinedSet semantics standalone and under ShardedSet, the
// delegation-timeout boundaries (0 = always solo, huge = effectively
// unbounded waiting), and a multi-threaded quiescent-consistency harness
// that CI runs under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "combine/combined_set.h"
#include "core/bat_tree.h"
#include "core/version_queries.h"
#include "shard/sharded_set.h"
#include "util/counters.h"
#include "util/thread_annotations.h"
#include "util/random.h"

namespace cbat {
namespace {

using CombinedBat = CombinedSet<Bat<SizeAug>>;
using ShardedCombined = ShardedSet<CombinedBat, 16>;

// Restores the global combining/delegation knobs around each test.
class CombiningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_batch_ = combine_max_batch();
    saved_timeout_ = Bat<SizeAug>::delegation_timeout();
  }
  void TearDown() override {
    set_combine_max_batch(saved_batch_);
    Bat<SizeAug>::set_delegation_timeout(saved_timeout_);
  }

 private:
  int saved_batch_ = 0;
  std::uint64_t saved_timeout_ = 0;
};

// --- CombiningBuffer slot protocol (single-threaded state machine) --------

// Probes that a held election lock refuses a second claim — a deliberate
// protocol violation, so it opts out of TSA (re-claiming from the holding
// thread is exactly what the analysis forbids).
template <int N>
bool relock_fails(CombiningBuffer<N>& buf) CBAT_NO_THREAD_SAFETY_ANALYSIS {
  return !buf.try_lock();
}

// The lock acquisitions below use `if (!try_lock()) FAIL()` instead of
// ASSERT_TRUE: gtest wraps the condition in an AssertionResult temporary,
// which hides the try-acquire branch from TSA.

TEST_F(CombiningTest, BufferPublishDrainCompleteRoundTrip) {
  CombiningBuffer<8> buf;
  if (!buf.try_lock()) FAIL() << "a fresh buffer's lock must be free";
  EXPECT_TRUE(relock_fails(buf)) << "the lock must be exclusive";

  const int s0 = buf.publish(42, /*is_insert=*/true);
  const int s1 = buf.publish(7, /*is_insert=*/false);
  ASSERT_GE(s0, 0);
  ASSERT_GE(s1, 0);
  ASSERT_NE(s0, s1);
  EXPECT_EQ(buf.slot_state(s0), CombiningBuffer<8>::kPending);

  CombiningBuffer<8>::DrainedRequest reqs[8];
  const int n = buf.drain(reqs, 8);
  ASSERT_EQ(n, 2);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(buf.slot_state(reqs[i].slot), CombiningBuffer<8>::kTaken);
    if (reqs[i].slot == s0) {
      EXPECT_EQ(reqs[i].key, 42);
      EXPECT_TRUE(reqs[i].is_insert);
    } else {
      EXPECT_EQ(reqs[i].key, 7);
      EXPECT_FALSE(reqs[i].is_insert);
    }
  }
  // A drained request can no longer be retracted (solo would double-run).
  EXPECT_FALSE(buf.try_retract(s0));

  buf.complete(s0, true);
  buf.complete(s1, false);
  EXPECT_EQ(buf.slot_state(s0), CombiningBuffer<8>::kDone);
  EXPECT_TRUE(buf.take_result(s0));
  EXPECT_FALSE(buf.take_result(s1));
  EXPECT_EQ(buf.slot_state(s0), CombiningBuffer<8>::kEmpty);
  buf.unlock();
  if (!buf.try_lock()) FAIL() << "unlock must free the lock";
  buf.unlock();
}

TEST_F(CombiningTest, BufferRetractBeforeDrainAndFullBuffer) {
  CombiningBuffer<2> buf;
  const int s0 = buf.publish(1, true);
  const int s1 = buf.publish(2, true);
  ASSERT_GE(s0, 0);
  ASSERT_GE(s1, 0);
  EXPECT_EQ(buf.publish(3, true), -1) << "full buffer must refuse";
  EXPECT_TRUE(buf.try_retract(s0)) << "unclaimed requests retract";
  EXPECT_EQ(buf.slot_state(s0), CombiningBuffer<2>::kEmpty);
  EXPECT_GE(buf.publish(3, true), 0) << "retracted slot is reusable";
  // Clean up the pending slots so the buffer is quiescent.
  CombiningBuffer<2>::DrainedRequest reqs[2];
  if (!buf.try_lock()) FAIL() << "the election lock must be free";
  const int n = buf.drain(reqs, 2);
  ASSERT_EQ(n, 2);
  for (int i = 0; i < n; ++i) buf.complete(reqs[i].slot, false);
  buf.take_result(reqs[0].slot);
  buf.take_result(reqs[1].slot);
  (void)s1;
  buf.unlock();
}

// --- BatTree::apply_batch against a std::set oracle -----------------------

TEST_F(CombiningTest, ApplyBatchMatchesSequentialOracle) {
  Bat<SizeAug> t;
  std::set<Key> ref;
  Xoshiro256 rng(123);
  for (int round = 0; round < 200; ++round) {
    std::vector<BatchOp> ops;
    const int n = 1 + static_cast<int>(rng.below(24));
    for (int i = 0; i < n; ++i) {
      ops.push_back({static_cast<Key>(rng.below(400)), rng.below(2) == 0,
                     false, i});
    }
    std::stable_sort(ops.begin(), ops.end(),
                     [](const BatchOp& a, const BatchOp& b) {
                       return a.key < b.key;
                     });
    t.apply_batch(ops.data(), n);
    // The oracle replays the ops in the same (sorted) order the batch
    // applied them; each result must match the sequential outcome.
    for (const BatchOp& op : ops) {
      if (op.is_insert) {
        ASSERT_EQ(op.result, ref.insert(op.key).second) << op.key;
      } else {
        ASSERT_EQ(op.result, ref.erase(op.key) > 0) << op.key;
      }
    }
    ASSERT_EQ(t.size(), static_cast<std::int64_t>(ref.size()));
  }
  // The one merged Propagate must have carried everything to the root:
  // the version tree agrees with the oracle exactly.
  const auto keys = t.range_collect(0, 400);
  ASSERT_EQ(std::set<Key>(keys.begin(), keys.end()), ref);
  EbrGuard g;
  EXPECT_TRUE(version_tree_valid<SizeAug>(t.root_version_unsafe(),
                                          std::numeric_limits<Key>::min(),
                                          kInf2));
}

TEST_F(CombiningTest, ApplyBatchHandlesDuplicateKeysInOrder) {
  Bat<SizeAug> t;
  // insert(5), insert(5), erase(5), insert(9) — sorted, duplicates kept in
  // order: results must be the sequential ones.
  std::vector<BatchOp> ops = {
      {5, true, false, 0},
      {5, true, false, 1},
      {5, false, false, 2},
      {9, true, false, 3},
  };
  t.apply_batch(ops.data(), static_cast<int>(ops.size()));
  EXPECT_TRUE(ops[0].result);
  EXPECT_FALSE(ops[1].result) << "second insert of the same key fails";
  EXPECT_TRUE(ops[2].result);
  EXPECT_TRUE(ops[3].result);
  EXPECT_FALSE(t.contains(5));
  EXPECT_TRUE(t.contains(9));
  EXPECT_EQ(t.size(), 1);
}

TEST_F(CombiningTest, ApplyBatchSpanningTheWholeTreeStaysConsistent) {
  // Batches that touch far-apart subtrees exercise the post-order sweep's
  // shared-prefix deferral (the root must be refreshed exactly last).
  Bat<SizeAug> t;
  for (Key k = 0; k < 2000; k += 2) t.insert(k);
  std::vector<BatchOp> ops;
  for (int i = 0; i < 40; ++i) {
    ops.push_back({static_cast<Key>(i * 50 + (i % 2)), i % 2 == 0, false, i});
  }
  t.apply_batch(ops.data(), static_cast<int>(ops.size()));
  EbrGuard g;
  EXPECT_TRUE(version_tree_valid<SizeAug>(t.root_version_unsafe(),
                                          std::numeric_limits<Key>::min(),
                                          kInf2));
  // Node tree and version tree agree (the batch propagate reached the
  // root for every key).
  std::set<Key> node_keys;
  for (Key k = 0; k < 2000; ++k) {
    if (t.node_tree().contains(k)) node_keys.insert(k);
  }
  const auto vkeys = t.range_collect(0, 2000);
  EXPECT_EQ(std::set<Key>(vkeys.begin(), vkeys.end()), node_keys);
}

// --- CombinedSet semantics ------------------------------------------------

TEST_F(CombiningTest, CombinedSetSequentialOracleEquivalence) {
  CombinedBat t;
  std::set<Key> ref;
  Xoshiro256 rng(77);
  for (int i = 0; i < 8000; ++i) {
    const Key k = static_cast<Key>(rng.below(300));
    switch (rng.below(4)) {
      case 0:
        ASSERT_EQ(t.insert(k), ref.insert(k).second);
        break;
      case 1:
        ASSERT_EQ(t.erase(k), ref.erase(k) > 0);
        break;
      case 2:
        ASSERT_EQ(t.contains(k), ref.count(k) > 0);
        break;
      default:
        ASSERT_EQ(t.rank(k), static_cast<std::int64_t>(std::distance(
                                 ref.begin(), ref.upper_bound(k))));
    }
  }
  ASSERT_EQ(t.size(), static_cast<std::int64_t>(ref.size()));
}

TEST_F(CombiningTest, ShardedCombinedOracleEquivalence) {
  ShardedCombined set(4000);
  std::set<Key> ref;
  Xoshiro256 rng(42);
  for (int i = 0; i < 4000; ++i) {
    const Key k = static_cast<Key>(rng.below(4000));
    if (rng.below(3) == 0) {
      ASSERT_EQ(set.erase(k), ref.erase(k) > 0) << k;
    } else {
      ASSERT_EQ(set.insert(k), ref.insert(k).second) << k;
    }
    if (i % 250 == 249) {
      ASSERT_EQ(set.size(), static_cast<std::int64_t>(ref.size()));
      ASSERT_EQ(set.range_count(900, 3100),
                static_cast<std::int64_t>(
                    std::distance(ref.lower_bound(900),
                                  ref.upper_bound(3100))));
    }
  }
}

// --- concurrency: quiescent consistency under combining -------------------

// Deterministic per-thread update streams; after quiescence the set equals
// a sequential replay.  This is the harness CI runs under TSan; it covers
// publishers, combiners, timeouts, and solo fallbacks racing.
template <class Set>
void run_quiescent_consistency_harness(Set& set, Key keyspace,
                                       int updaters, int ops_per_thread) {
  std::vector<std::thread> threads;
  for (int t = 0; t < updaters; ++t) {
    threads.emplace_back([&set, keyspace, updaters, ops_per_thread, t] {
      // Each thread owns keys congruent to t mod updaters, so the final
      // contents are deterministic despite interleaving.
      Xoshiro256 rng(5000 + t);
      for (int i = 0; i < ops_per_thread; ++i) {
        const Key k =
            static_cast<Key>(rng.below(static_cast<std::uint64_t>(keyspace)) /
                             updaters * updaters) +
            t;
        if (rng.below(3) == 0) {
          set.erase(k);
        } else {
          set.insert(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  std::set<Key> oracle;
  for (int t = 0; t < updaters; ++t) {
    Xoshiro256 rng(5000 + t);
    for (int i = 0; i < ops_per_thread; ++i) {
      const Key k =
          static_cast<Key>(rng.below(static_cast<std::uint64_t>(keyspace)) /
                           updaters * updaters) +
          t;
      if (rng.below(3) == 0) {
        oracle.erase(k);
      } else {
        oracle.insert(k);
      }
    }
  }
  ASSERT_EQ(set.size(), static_cast<std::int64_t>(oracle.size()));
  const auto keys = set.range_collect(0, keyspace + updaters);
  ASSERT_EQ(keys.size(), oracle.size());
  EXPECT_TRUE(std::equal(keys.begin(), keys.end(), oracle.begin()));
}

TEST_F(CombiningTest, MultiThreadedQuiescentConsistency) {
  Counters::reset();
  CombinedBat set;
  run_quiescent_consistency_harness(set, Key{1} << 10, 4, 15000);
  const auto c = Counters::snapshot();
  // Every combiner pass counts as one batch (size >= 1), so batches must
  // have happened, and the bookkeeping must be consistent.
  EXPECT_GT(c[Counter::kCombineBatches], 0u);
  EXPECT_GE(c[Counter::kCombineBatchedOps], c[Counter::kCombineBatches]);
}

TEST_F(CombiningTest, ShardedCombinedMultiThreadedQuiescentConsistency) {
  ShardedCombined set(Key{1} << 12);
  run_quiescent_consistency_harness(set, Key{1} << 12, 3, 12000);
}

TEST_F(CombiningTest, ConcurrentReadersSeeConsistentSnapshots) {
  CombinedBat set;
  for (Key k = 0; k < 1000; k += 2) set.insert(k);
  std::atomic<bool> stop{false};
  std::atomic<long> bad{0};
  std::vector<std::thread> updaters;
  for (int i = 0; i < 3; ++i) {
    updaters.emplace_back([&, i] {
      Xoshiro256 rng(i);
      while (!stop.load()) {
        const Key k = static_cast<Key>(rng.below(500)) * 2 + 1;
        if (rng.below(2) == 0) {
          set.insert(k);
        } else {
          set.erase(k);
        }
      }
    });
  }
  for (int q = 0; q < 1500; ++q) {
    // rank/range_count/size on the inner snapshot must stay coherent
    // while batches land.
    typename Bat<SizeAug>::Snapshot snap(set.inner());
    const auto n = snap.size();
    if (snap.range_count(0, 999) != n) bad.fetch_add(1);
    if (snap.rank(999) != n) bad.fetch_add(1);
    if (!snap.contains(500)) bad.fetch_add(1);
  }
  stop = true;
  for (auto& th : updaters) th.join();
  EXPECT_EQ(bad.load(), 0);
}

// ISSUE 9: publication waits back off exponentially instead of pounding
// the slot's cache line, and the pause tally is observable (the
// combine_sweep scenario reports it as combine_retract_backoffs).
TEST_F(CombiningTest, SlotWaitsAreCountedAsRetractBackoffs) {
  Counters::reset();
  CombinedBat set;
  run_quiescent_consistency_harness(set, Key{1} << 10, 4, 15000);
  const auto c = Counters::snapshot();
  EXPECT_GT(c[Counter::kCombineBatches], 0u);
  EXPECT_GT(c[Counter::kCombineRetractBackoffs], 0u)
      << "contended publications must record their backoff pauses";
  Counters::reset();
}

// --- delegation-timeout boundaries ----------------------------------------

TEST_F(CombiningTest, ZeroTimeoutMeansAlwaysSoloAndStaysCorrect) {
  Bat<SizeAug>::set_delegation_timeout(0);
  Counters::reset();
  CombinedBat set;
  run_quiescent_consistency_harness(set, Key{1} << 10, 4, 10000);
  const auto c = Counters::snapshot();
  EXPECT_EQ(c[Counter::kCombineBatches], 0u)
      << "budget 0 must disable combining entirely";
  EXPECT_GT(c[Counter::kCombineSolo], 0u);
  Counters::reset();
}

TEST_F(CombiningTest, HugeTimeoutStaysCorrect) {
  // An effectively unbounded wait budget: waiters block on their slot
  // until the combiner answers; progress then relies on lock inheritance
  // (a waiter that finds the lock free drains the buffer itself).
  Bat<SizeAug>::set_delegation_timeout(~std::uint64_t{0});
  CombinedBat set;
  run_quiescent_consistency_harness(set, Key{1} << 9, 4, 10000);
}

TEST_F(CombiningTest, TinyTimeoutForcesRetractionsAndStaysCorrect) {
  Bat<SizeAug>::set_delegation_timeout(4);
  CombinedBat set;
  run_quiescent_consistency_harness(set, Key{1} << 10, 4, 10000);
}

TEST_F(CombiningTest, MaxBatchOneDisablesCombining) {
  set_combine_max_batch(1);
  Counters::reset();
  CombinedBat set;
  std::set<Key> ref;
  Xoshiro256 rng(9);
  for (int i = 0; i < 3000; ++i) {
    const Key k = static_cast<Key>(rng.below(200));
    if (rng.below(2) == 0) {
      ASSERT_EQ(set.insert(k), ref.insert(k).second);
    } else {
      ASSERT_EQ(set.erase(k), ref.erase(k) > 0);
    }
  }
  const auto c = Counters::snapshot();
  EXPECT_EQ(c[Counter::kCombineBatches], 0u);
  EXPECT_EQ(c[Counter::kCombineSolo], 3000u);
  Counters::reset();
}

}  // namespace
}  // namespace cbat
