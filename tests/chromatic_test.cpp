// Tests for the lock-free chromatic tree (plain, unaugmented).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "chromatic/chromatic_set.h"
#include "util/random.h"

namespace cbat {
namespace {

TEST(Chromatic, EmptyTree) {
  ChromaticSet s;
  EXPECT_FALSE(s.contains(5));
  EXPECT_EQ(s.size_slow(), 0u);
  EXPECT_FALSE(s.erase(5));
  auto r = s.check_invariants();
  EXPECT_TRUE(r.balanced_clean());
}

TEST(Chromatic, InsertFindEraseSingle) {
  ChromaticSet s;
  EXPECT_TRUE(s.insert(42));
  EXPECT_TRUE(s.contains(42));
  EXPECT_FALSE(s.insert(42));
  EXPECT_EQ(s.size_slow(), 1u);
  EXPECT_TRUE(s.erase(42));
  EXPECT_FALSE(s.contains(42));
  EXPECT_FALSE(s.erase(42));
  EXPECT_EQ(s.size_slow(), 0u);
  EXPECT_TRUE(s.check_invariants().balanced_clean());
}

TEST(Chromatic, InsertEraseReinsertCycles) {
  ChromaticSet s;
  for (int round = 0; round < 10; ++round) {
    for (Key k = 0; k < 50; ++k) ASSERT_TRUE(s.insert(k));
    EXPECT_EQ(s.size_slow(), 50u);
    for (Key k = 0; k < 50; ++k) ASSERT_TRUE(s.erase(k));
    EXPECT_EQ(s.size_slow(), 0u);
    ASSERT_TRUE(s.check_invariants().structurally_ok());
  }
}

TEST(Chromatic, MatchesStdSetSequential) {
  ChromaticSet s;
  std::set<Key> ref;
  Xoshiro256 rng(123);
  for (int i = 0; i < 20000; ++i) {
    const Key k = static_cast<Key>(rng.below(500));
    const int op = static_cast<int>(rng.below(3));
    if (op == 0) {
      EXPECT_EQ(s.insert(k), ref.insert(k).second) << "insert " << k;
    } else if (op == 1) {
      EXPECT_EQ(s.erase(k), ref.erase(k) > 0) << "erase " << k;
    } else {
      EXPECT_EQ(s.contains(k), ref.count(k) > 0) << "contains " << k;
    }
  }
  EXPECT_EQ(s.size_slow(), ref.size());
  EXPECT_TRUE(s.check_invariants().structurally_ok());
}

TEST(Chromatic, SortedInsertionStaysBalanced) {
  // The whole reason the paper builds on a *balanced* tree: sorted inserts
  // must yield logarithmic height, not a path.
  ChromaticSet s;
  constexpr Key kN = 8192;
  for (Key k = 0; k < kN; ++k) ASSERT_TRUE(s.insert(k));
  auto r = s.check_invariants();
  EXPECT_TRUE(r.structurally_ok());
  EXPECT_EQ(r.real_keys, static_cast<std::size_t>(kN));
  // Perfect red-black height bound would be 2*log2(n+1) + O(1); allow slack
  // for sentinels and weights.
  EXPECT_LE(r.height, 2 * 14 + 4);
  // After quiescence every violation created by our own updates was fixed
  // by fix_to_key before the update returned.
  EXPECT_EQ(r.red_red_violations, 0u);
  EXPECT_EQ(r.overweight_violations, 0u);
}

TEST(Chromatic, ReverseSortedInsertionStaysBalanced) {
  ChromaticSet s;
  constexpr Key kN = 8192;
  for (Key k = kN; k > 0; --k) ASSERT_TRUE(s.insert(k));
  auto r = s.check_invariants();
  EXPECT_TRUE(r.structurally_ok());
  EXPECT_LE(r.height, 2 * 14 + 4);
  EXPECT_EQ(r.red_red_violations, 0u);
  EXPECT_EQ(r.overweight_violations, 0u);
}

TEST(Chromatic, DeleteHeavyStaysBalancedAndClean) {
  ChromaticSet s;
  constexpr Key kN = 4096;
  for (Key k = 0; k < kN; ++k) ASSERT_TRUE(s.insert(k));
  // Delete three quarters.
  for (Key k = 0; k < kN; ++k) {
    if (k % 4 != 0) {
      ASSERT_TRUE(s.erase(k));
    }
  }
  auto r = s.check_invariants();
  EXPECT_TRUE(r.structurally_ok());
  EXPECT_EQ(r.real_keys, static_cast<std::size_t>(kN / 4));
  EXPECT_EQ(r.red_red_violations, 0u);
  EXPECT_EQ(r.overweight_violations, 0u);
  EXPECT_LE(r.height, 2 * 12 + 4);
}

TEST(Chromatic, NegativeAndExtremeKeys) {
  ChromaticSet s;
  std::vector<Key> keys = {0, -1, 1, std::numeric_limits<Key>::min(),
                           kMaxUserKey, -1000000, 1000000};
  for (Key k : keys) ASSERT_TRUE(s.insert(k)) << k;
  for (Key k : keys) EXPECT_TRUE(s.contains(k)) << k;
  EXPECT_EQ(s.size_slow(), keys.size());
  for (Key k : keys) ASSERT_TRUE(s.erase(k)) << k;
  EXPECT_EQ(s.size_slow(), 0u);
  EXPECT_TRUE(s.check_invariants().structurally_ok());
}

// --- concurrent tests ------------------------------------------------------

// Threads operate on disjoint key ranges, so the final contents are exactly
// predictable and every operation's return value is checkable.
TEST(ChromaticConcurrent, DisjointRangesDeterministic) {
  ChromaticSet s;
  constexpr int kThreads = 8;
  constexpr Key kPerThread = 2000;
  std::vector<std::thread> ts;
  std::atomic<bool> failed{false};
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      const Key base = t * kPerThread;
      for (Key k = base; k < base + kPerThread; ++k) {
        if (!s.insert(k)) failed = true;
      }
      // erase the odd keys again
      for (Key k = base + 1; k < base + kPerThread; k += 2) {
        if (!s.erase(k)) failed = true;
      }
      for (Key k = base; k < base + kPerThread; k += 2) {
        if (!s.contains(k)) failed = true;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(s.size_slow(), static_cast<std::size_t>(kThreads * kPerThread / 2));
  auto r = s.check_invariants();
  EXPECT_TRUE(r.structurally_ok());
  EXPECT_EQ(r.red_red_violations, 0u);
  EXPECT_EQ(r.overweight_violations, 0u);
}

// Random mixed workload on a shared key range; afterwards the tree must be
// structurally sound and agree with a replay of the successful operations.
TEST(ChromaticConcurrent, MixedWorkloadStructurallySound) {
  ChromaticSet s;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  constexpr Key kRange = 512;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      Xoshiro256 rng(1000 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const Key k = static_cast<Key>(rng.below(kRange));
        switch (rng.below(3)) {
          case 0:
            s.insert(k);
            break;
          case 1:
            s.erase(k);
            break;
          default:
            s.contains(k);
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  auto r = s.check_invariants();
  EXPECT_TRUE(r.structurally_ok());
  EXPECT_EQ(r.red_red_violations, 0u);
  EXPECT_EQ(r.overweight_violations, 0u);
  // Height must be logarithmic in the key range, not in the op count.
  EXPECT_LE(r.height, 40);
}

// Insert/erase the *same* key from many threads: successes must alternate
// (an insert can only succeed when absent), so per-key success counts obey
// |inserts - erases| <= 1 and final membership matches the difference.
TEST(ChromaticConcurrent, SameKeyInsertEraseLinearizable) {
  ChromaticSet s;
  constexpr int kThreads = 8;
  constexpr int kOps = 4000;
  std::atomic<long> ins{0}, del{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      Xoshiro256 rng(t);
      for (int i = 0; i < kOps; ++i) {
        if (rng.below(2) == 0) {
          if (s.insert(77)) ins.fetch_add(1);
        } else {
          if (s.erase(77)) del.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  const long diff = ins.load() - del.load();
  EXPECT_TRUE(diff == 0 || diff == 1) << "ins=" << ins << " del=" << del;
  EXPECT_EQ(s.contains(77), diff == 1);
  EXPECT_TRUE(s.check_invariants().structurally_ok());
}

// Parameterized stress: sweep thread counts and key ranges.
class ChromaticStress
    : public ::testing::TestWithParam<std::tuple<int, Key>> {};

TEST_P(ChromaticStress, RandomOpsKeepInvariants) {
  const int threads = std::get<0>(GetParam());
  const Key range = std::get<1>(GetParam());
  ChromaticSet s;
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      Xoshiro256 rng(7777 + t);
      for (int i = 0; i < 8000; ++i) {
        const Key k = static_cast<Key>(rng.below(range));
        if (rng.below(2) == 0) {
          s.insert(k);
        } else {
          s.erase(k);
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  auto r = s.check_invariants();
  EXPECT_TRUE(r.structurally_ok());
  EXPECT_EQ(r.red_red_violations, 0u);
  EXPECT_EQ(r.overweight_violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChromaticStress,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values<Key>(16, 256, 65536)));

}  // namespace
}  // namespace cbat
